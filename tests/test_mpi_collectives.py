"""Collective operations against reference results."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import MPIErrArg, MPIErrRank
from repro.mpi import reduceops
from tests.conftest import run_world

SIZES = (1, 2, 3, 4, 5, 8)


@pytest.mark.parametrize("size", SIZES)
class TestObjectCollectivesAllSizes:
    def test_barrier(self, size):
        def main(comm):
            for _ in range(3):
                comm.barrier()
            return "done"

        assert run_world(size, main) == ["done"] * size

    def test_bcast(self, size):
        def main(comm):
            return comm.bcast({"v": 42} if comm.rank == 0 else None, root=0)

        assert run_world(size, main) == [{"v": 42}] * size

    def test_bcast_nonzero_root(self, size):
        root = size - 1

        def main(comm):
            return comm.bcast("payload" if comm.rank == root else None,
                              root=root)

        assert run_world(size, main) == ["payload"] * size

    def test_reduce_sum(self, size):
        def main(comm):
            return comm.reduce(comm.rank + 1, op=reduceops.SUM, root=0)

        expected = size * (size + 1) // 2
        results = run_world(size, main)
        assert results[0] == expected
        assert all(r is None for r in results[1:])

    def test_allreduce_max(self, size):
        def main(comm):
            return comm.allreduce(comm.rank * 7, op=reduceops.MAX)

        assert run_world(size, main) == [(size - 1) * 7] * size

    def test_gather(self, size):
        def main(comm):
            return comm.gather(chr(ord("a") + comm.rank), root=0)

        results = run_world(size, main)
        assert results[0] == [chr(ord("a") + i) for i in range(size)]

    def test_allgather(self, size):
        def main(comm):
            return comm.allgather(comm.rank ** 2)

        expected = [i ** 2 for i in range(size)]
        assert run_world(size, main) == [expected] * size

    def test_scatter(self, size):
        def main(comm):
            objs = [f"item{i}" for i in range(size)] \
                if comm.rank == 0 else None
            return comm.scatter(objs, root=0)

        assert run_world(size, main) == [f"item{i}" for i in range(size)]

    def test_alltoall(self, size):
        def main(comm):
            objs = [(comm.rank, dest) for dest in range(size)]
            return comm.alltoall(objs)

        results = run_world(size, main)
        for rank, got in enumerate(results):
            assert got == [(src, rank) for src in range(size)]

    def test_scan(self, size):
        def main(comm):
            return comm.scan(comm.rank + 1, op=reduceops.SUM)

        assert run_world(size, main) == \
            [sum(range(1, i + 2)) for i in range(size)]

    def test_exscan(self, size):
        def main(comm):
            return comm.exscan(comm.rank + 1, op=reduceops.SUM)

        expected = [None] + [sum(range(1, i + 1)) for i in range(1, size)]
        assert run_world(size, main) == expected


class TestBufferCollectives:
    def test_Bcast(self):
        def main(comm):
            buf = np.arange(8, dtype=np.float64) if comm.rank == 0 \
                else np.zeros(8, dtype=np.float64)
            comm.Bcast(buf, root=0)
            return buf.tolist()

        results = run_world(4, main)
        assert all(r == list(np.arange(8.0)) for r in results)

    def test_Reduce(self):
        def main(comm):
            send = np.full(4, float(comm.rank + 1))
            recv = np.zeros(4) if comm.rank == 0 else None
            comm.Reduce(send, recv, op=reduceops.SUM, root=0)
            return recv.tolist() if comm.rank == 0 else None

        assert run_world(4, main)[0] == [10.0] * 4

    def test_Allreduce_matches_numpy(self):
        def main(comm):
            rng = np.random.default_rng(comm.rank)
            send = rng.normal(size=16)
            recv = np.zeros(16)
            comm.Allreduce(send, recv, op=reduceops.SUM)
            return send, recv

        results = run_world(4, main)
        expected = np.sum([s for s, _ in results], axis=0)
        for _, recv in results:
            np.testing.assert_allclose(recv, expected, rtol=1e-12)

    def test_Allgather(self):
        def main(comm):
            send = np.full(2, float(comm.rank))
            recv = np.zeros(2 * comm.size)
            comm.Allgather(send, recv)
            return recv.tolist()

        expected = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0]
        assert run_world(4, main) == [expected] * 4

    def test_Alltoall(self):
        def main(comm):
            send = np.arange(comm.size, dtype=np.float64) \
                + 100 * comm.rank
            recv = np.zeros(comm.size)
            comm.Alltoall(send, recv)
            return recv.tolist()

        results = run_world(3, main)
        for rank, got in enumerate(results):
            assert got == [100.0 * src + rank for src in range(3)]

    def test_Alltoall_indivisible_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.Alltoall(np.zeros(5), np.zeros(5))
            return "ok"

        run_world(3, main)

    def test_Bcast_size_mismatch_rejected(self):
        def main(comm):
            buf = np.zeros(4 if comm.rank == 0 else 6)
            if comm.rank == 0:
                comm.Bcast(buf, root=0)
                return "root ok"
            with pytest.raises(MPIErrArg):
                comm.Bcast(buf, root=0)
            return "caught"

        results = run_world(2, main)
        assert results == ["root ok", "caught"]

    def test_bad_root_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrRank):
                comm.bcast("x", root=5)
            return "ok"

        run_world(2, main)


class TestCollectiveProperties:
    @given(values=st.lists(st.integers(-1000, 1000), min_size=4,
                           max_size=4))
    @settings(max_examples=15, deadline=None)
    def test_allreduce_equals_python_sum(self, values):
        def main(comm, vals):
            return comm.allreduce(vals[comm.rank], op=reduceops.SUM)

        results = run_world(4, main, args=(values,))
        assert results == [sum(values)] * 4

    @given(st.integers(0, 3), st.binary(min_size=0, max_size=64))
    @settings(max_examples=15, deadline=None)
    def test_bcast_arbitrary_payload(self, root, payload):
        def main(comm):
            return comm.bcast(payload if comm.rank == root else None,
                              root=root)

        assert run_world(4, main) == [payload] * 4

    def test_nonuniform_payload_sizes(self):
        def main(comm):
            return comm.allgather(b"z" * (100 * comm.rank))

        results = run_world(4, main)
        assert results[0] == [b"", b"z" * 100, b"z" * 200, b"z" * 300]

    def test_back_to_back_collectives_do_not_cross_talk(self):
        def main(comm):
            a = comm.allreduce(1, op=reduceops.SUM)
            b = comm.allreduce(comm.rank, op=reduceops.MAX)
            c = comm.allgather(comm.rank)
            comm.barrier()
            return a, b, c

        results = run_world(5, main)
        assert all(r == (5, 4, [0, 1, 2, 3, 4]) for r in results)

    def test_collectives_on_subcommunicator(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2)
            total = sub.allreduce(comm.rank, op=reduceops.SUM)
            return sub.size, total

        results = run_world(6, main)
        # evens: 0+2+4 = 6; odds: 1+3+5 = 9
        assert results[0] == (3, 6)
        assert results[1] == (3, 9)
