"""Shared test fixtures and helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.runtime.world import World


def run_world(nranks: int, fn, config: BuildConfig | None = None,
              args: tuple = (), timeout: float = 120.0):
    """Run *fn(comm, *args)* on a fresh world; returns per-rank results."""
    world = World(nranks, config if config is not None else BuildConfig())
    return world.run(fn, args=args, timeout=timeout)


@pytest.fixture
def two_rank_world():
    """A fresh default-build 2-rank world."""
    return World(2, BuildConfig())


@pytest.fixture
def four_rank_world():
    """A fresh default-build 4-rank world."""
    return World(4, BuildConfig())


@pytest.fixture
def rng():
    """Seeded numpy generator for reproducible randomized tests."""
    return np.random.default_rng(20260707)
