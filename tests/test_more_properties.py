"""Additional property-based tests: cart topology, recursive doubling,
subarray layouts, persistent gather-scatter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import pack, subarray, unpack
from repro.datatypes.predefined import DOUBLE
from repro.mpi import reduceops
from repro.mpi.cart import dims_create
from tests.conftest import run_world


class TestCartProperties:
    @given(st.integers(1, 360), st.integers(1, 4))
    @settings(max_examples=60, deadline=None)
    def test_dims_create_product_is_exact(self, nnodes, ndims):
        dims = dims_create(nnodes, ndims)
        prod = 1
        for d in dims:
            prod *= d
        assert prod == nnodes
        assert len(dims) == ndims
        assert all(d >= 1 for d in dims)

    @given(st.integers(1, 20), st.integers(1, 20))
    @settings(max_examples=30, deadline=None)
    def test_dims_create_balanced(self, a, b):
        """For 2-D factorizations the spread is within the factor
        structure of n (no worse than the most-balanced split)."""
        n = a * b
        dims = sorted(dims_create(n, 2))
        best = min((max(n // d, d) for d in range(1, n + 1) if n % d == 0))
        assert max(dims) == best or max(dims) >= best

    @given(st.tuples(st.integers(1, 4), st.integers(1, 4)),
           st.tuples(st.booleans(), st.booleans()))
    @settings(max_examples=20, deadline=None)
    def test_coords_rank_bijection(self, dims, periods):
        nranks = dims[0] * dims[1]
        if nranks > 8:
            return

        def main(comm, dims=dims, periods=periods):
            cart = comm.create_cart(dims, periods)
            seen = {cart.cart_rank(cart.coords(r))
                    for r in range(cart.size)}
            return seen == set(range(cart.size))

        assert all(run_world(nranks, main))


class TestRecursiveDoublingProperties:
    @given(st.integers(1, 8), st.data())
    @settings(max_examples=20, deadline=None)
    def test_matches_reference_for_random_inputs(self, size, data):
        values = data.draw(st.lists(
            st.integers(-10**6, 10**6), min_size=size, max_size=size))

        def main(comm, vals=tuple(values)):
            send = np.array([vals[comm.rank]], dtype=np.int64)
            recv = np.zeros(1, dtype=np.int64)
            comm.Allreduce(send, recv, op=reduceops.SUM,
                           algorithm="recursive_doubling")
            return int(recv[0])

        assert run_world(size, main) == [sum(values)] * size

    @pytest.mark.parametrize("op,reducer", [
        (reduceops.MAX, max), (reduceops.MIN, min)])
    def test_non_sum_ops(self, op, reducer):
        def main(comm):
            send = np.array([float((comm.rank * 7 + 3) % 11)])
            recv = np.zeros(1)
            comm.Allreduce(send, recv, op=op,
                           algorithm="recursive_doubling")
            return recv[0]

        size = 5
        expected = reducer(float((r * 7 + 3) % 11) for r in range(size))
        assert run_world(size, main) == [expected] * size


class TestSubarrayProperties:
    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_3d_subarray_pack_equals_numpy_slice(self, data):
        sizes = [data.draw(st.integers(1, 5), label=f"size{d}")
                 for d in range(3)]
        subsizes = [data.draw(st.integers(1, sizes[d]), label=f"sub{d}")
                    for d in range(3)]
        starts = [data.draw(st.integers(0, sizes[d] - subsizes[d]),
                            label=f"start{d}")
                  for d in range(3)]
        dt = subarray(sizes, subsizes, starts, DOUBLE).commit()
        cube = np.arange(np.prod(sizes), dtype=np.float64).reshape(sizes)
        packed = np.frombuffer(pack(np.ascontiguousarray(cube), 1, dt),
                               np.float64)
        ref = cube[tuple(slice(s, s + z)
                         for s, z in zip(starts, subsizes))]
        np.testing.assert_array_equal(packed, ref.reshape(-1))

        # Scatter back into a fresh cube: only the block is written.
        out = np.full(sizes, -1.0)
        unpack(packed.tobytes(), out, 1, dt)
        np.testing.assert_array_equal(
            out[tuple(slice(s, s + z)
                      for s, z in zip(starts, subsizes))], ref)
        mask = np.full(sizes, True)
        mask[tuple(slice(s, s + z)
                   for s, z in zip(starts, subsizes))] = False
        assert np.all(out[mask] == -1.0)


class TestPersistentGS:
    @pytest.mark.parametrize("nranks", [2, 4, 8])
    def test_persistent_gs_matches_default(self, nranks):
        def main(comm, use_persistent):
            from repro.apps.nek.gs import GatherScatter
            from repro.apps.nek.mesh import BoxDecomposition, RankPatch
            d = BoxDecomposition.balanced(8, comm.size, 3)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch,
                               use_persistent=use_persistent)
            u = np.zeros(patch.shape)
            for i in range(patch.shape[0]):
                for j in range(patch.shape[1]):
                    for k in range(patch.shape[2]):
                        gx, gy, gz = patch.global_coords((i, j, k))
                        u[i, j, k] = 3 * gx + 5 * gy + 2 * gz
            # Two rounds, to prove the persistent set restarts cleanly.
            gs(u)
            gs(u)
            return u.sum()

        default = run_world(nranks, main, args=(False,))
        persistent = run_world(nranks, main, args=(True,))
        assert default == persistent

    def test_persistent_gs_spends_fewer_instructions(self):
        """The MPI_START fast path amortizes the per-send setup."""
        from repro.core.config import BuildConfig

        def main(comm, use_persistent):
            from repro.apps.nek.gs import GatherScatter
            from repro.apps.nek.mesh import BoxDecomposition, RankPatch
            d = BoxDecomposition.balanced(8, comm.size, 2)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch,
                               use_persistent=use_persistent)
            before = comm.proc.counter.total   # exclude setup cost
            u = np.ones(patch.shape)
            for _ in range(10):
                gs(u)
            return comm.proc.counter.total - before

        cfg = BuildConfig.ipo_build()
        default = sum(run_world(8, main, cfg, args=(False,)))
        persistent = sum(run_world(8, main, cfg, args=(True,)))
        assert persistent < default

    def test_persistent_datatypes_exclusive(self):
        def main(comm):
            from repro.apps.nek.gs import GatherScatter
            from repro.apps.nek.mesh import BoxDecomposition, RankPatch
            d = BoxDecomposition.balanced(8, comm.size, 2)
            patch = RankPatch(d, comm.rank)
            with pytest.raises(ValueError):
                GatherScatter(comm, patch, use_datatypes=True,
                              use_persistent=True)
            return "ok"

        run_world(8, main)
