"""Pack/unpack engines, including hypothesis round-trip properties."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.datatypes import (contiguous, indexed, pack, packed_size,
                             resized, struct, subarray, unpack, vector)
from repro.datatypes.pack import as_bytes
from repro.datatypes.predefined import BYTE, DOUBLE, INT
from repro.errors import MPIErrBuffer, MPIErrCount, MPIErrTruncate


class TestAsBytes:
    def test_ndarray_view(self):
        arr = np.arange(4, dtype=np.float64)
        raw = as_bytes(arr)
        assert raw.size == 32
        raw[0] = 255   # view, not copy
        assert arr.view(np.uint8)[0] == 255

    def test_bytes_and_bytearray(self):
        assert as_bytes(b"abc").tolist() == [97, 98, 99]
        assert as_bytes(bytearray(b"xy")).size == 2

    def test_noncontiguous_rejected(self):
        arr = np.arange(16, dtype=np.float64)[::2]
        with pytest.raises(MPIErrBuffer):
            as_bytes(arr)

    def test_unsupported_type_rejected(self):
        with pytest.raises(MPIErrBuffer):
            as_bytes([1, 2, 3])


class TestPackContiguous:
    def test_whole_array(self):
        arr = np.arange(5, dtype=np.float64)
        data = pack(arr, 5, DOUBLE)
        assert np.frombuffer(data, np.float64).tolist() == arr.tolist()

    def test_prefix(self):
        arr = np.arange(5, dtype=np.int32)
        data = pack(arr, 2, INT)
        assert np.frombuffer(data, np.int32).tolist() == [0, 1]

    def test_zero_count(self):
        assert pack(np.zeros(1), 0, DOUBLE) == b""

    def test_count_beyond_buffer_rejected(self):
        with pytest.raises(MPIErrBuffer):
            pack(np.zeros(2, dtype=np.float64), 3, DOUBLE)

    def test_negative_count_rejected(self):
        with pytest.raises(MPIErrCount):
            pack(np.zeros(2), -1, DOUBLE)
        with pytest.raises(MPIErrCount):
            packed_size(-1, DOUBLE)


class TestPackDerived:
    def test_vector_gathers_strided(self):
        arr = np.arange(8, dtype=np.float64)
        dt = vector(count=2, blocklength=1, stride=2, base=DOUBLE).commit()
        data = pack(arr, 2, dt)   # two vector elements, extent 3*8? no:
        vals = np.frombuffer(data, np.float64)
        # element 0 gathers arr[0], arr[2]; element 1 starts at extent.
        assert vals[0] == arr[0]
        assert vals[1] == arr[2]

    def test_indexed_pack(self):
        arr = np.arange(6, dtype=np.float64)
        dt = indexed([1, 2], [0, 3], DOUBLE).commit()
        vals = np.frombuffer(pack(arr, 1, dt), np.float64)
        assert vals.tolist() == [0.0, 3.0, 4.0]

    def test_subarray_pack_matches_numpy_slice(self):
        arr = np.arange(16, dtype=np.float64).reshape(4, 4)
        dt = subarray([4, 4], [2, 3], [1, 0], DOUBLE).commit()
        vals = np.frombuffer(pack(np.ascontiguousarray(arr), 1, dt),
                             np.float64)
        assert vals.tolist() == arr[1:3, 0:3].reshape(-1).tolist()

    def test_struct_pack(self):
        raw = np.zeros(24, dtype=np.uint8)
        raw[:4].view(np.int32)[0] = 7
        raw[8:24].view(np.float64)[:] = [1.5, 2.5]
        dt = struct([1, 2], [0, 8], [INT, DOUBLE]).commit()
        data = pack(raw, 1, dt)
        assert len(data) == 20
        assert np.frombuffer(data[:4], np.int32)[0] == 7
        assert np.frombuffer(data[4:], np.float64).tolist() == [1.5, 2.5]


class TestUnpack:
    def test_roundtrip_contiguous(self):
        arr = np.arange(4, dtype=np.float64)
        out = np.zeros_like(arr)
        n = unpack(pack(arr, 4, DOUBLE), out, 4, DOUBLE)
        assert n == 4
        assert out.tolist() == arr.tolist()

    def test_short_message_allowed(self):
        out = np.zeros(4, dtype=np.float64)
        n = unpack(pack(np.ones(2), 2, DOUBLE), out, 4, DOUBLE)
        assert n == 2
        assert out.tolist() == [1.0, 1.0, 0.0, 0.0]

    def test_oversized_message_truncates(self):
        out = np.zeros(1, dtype=np.float64)
        with pytest.raises(MPIErrTruncate):
            unpack(pack(np.ones(2), 2, DOUBLE), out, 1, DOUBLE)

    def test_partial_element_rejected(self):
        out = np.zeros(2, dtype=np.float64)
        with pytest.raises(MPIErrTruncate):
            unpack(b"\x00" * 12, out, 2, DOUBLE)

    def test_readonly_target_rejected(self):
        with pytest.raises(MPIErrBuffer):
            unpack(b"\x00" * 8, b"\x00" * 8, 1, DOUBLE)

    def test_zero_bytes(self):
        out = np.ones(2, dtype=np.float64)
        assert unpack(b"", out, 2, DOUBLE) == 0
        assert out.tolist() == [1.0, 1.0]


# ---------------------------------------------------------------------------
# property-based round trips
# ---------------------------------------------------------------------------

_derived_strategy = st.one_of(
    st.builds(lambda c: contiguous(c, DOUBLE), st.integers(1, 5)),
    st.builds(lambda c, b, s: vector(c, b, b + s, DOUBLE),
              st.integers(1, 4), st.integers(1, 3), st.integers(0, 3)),
    st.builds(lambda lens: indexed(
        lens, list(np.cumsum([0] + [ln + 1 for ln in lens[:-1]])), DOUBLE),
        st.lists(st.integers(1, 3), min_size=1, max_size=4)),
    st.builds(lambda: resized(DOUBLE, 0, 24)),
)


@settings(max_examples=60, deadline=None)
@given(dt=_derived_strategy, count=st.integers(1, 4), data=st.data())
def test_pack_unpack_roundtrip_any_derived_type(dt, count, data):
    """unpack(pack(x)) == x on the packed positions, for any layout."""
    dt.commit()
    span = int((count - 1) * dt.extent + dt.typemap.ub)
    nvals = span // 8 + 1
    values = data.draw(st.lists(
        st.floats(allow_nan=False, allow_infinity=False, width=32),
        min_size=nvals, max_size=nvals))
    src = np.asarray(values, dtype=np.float64)
    packed = pack(src, count, dt)
    assert len(packed) == packed_size(count, dt)

    dst = np.full_like(src, -999.0)
    n = unpack(packed, dst, count, dt)
    assert n == count

    # The gathered byte positions must round-trip exactly; the rest of
    # the destination must be untouched.
    idx = set()
    for k in range(count):
        for off in dt.typemap.byte_offsets():
            idx.add(k * dt.extent + off)
    src_raw = src.view(np.uint8).reshape(-1)
    dst_raw = dst.view(np.uint8).reshape(-1)
    for byte in range(src_raw.size):
        if byte in idx:
            assert dst_raw[byte] == src_raw[byte]


@settings(max_examples=30, deadline=None)
@given(st.binary(min_size=0, max_size=200))
def test_byte_pack_roundtrip(payload):
    """BYTE pack/unpack is the identity on raw bytes."""
    out = bytearray(len(payload))
    packed = pack(np.frombuffer(payload, np.uint8)
                  if payload else np.empty(0, np.uint8),
                  len(payload), BYTE)
    assert packed == payload
    n = unpack(packed, out, len(payload), BYTE)
    assert n == len(payload)
    assert bytes(out) == payload
