"""Distributed BFS proxy: all exchange modes vs the serial reference."""

import numpy as np
import pytest

from repro.apps.bfs import (MODES, DistributedBFS, random_graph_edges,
                            run_bfs, serial_bfs_levels)
from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from repro.instrument.categories import Subsystem
from tests.conftest import run_world

NV, DEG, SEED = 60, 3, 11


def _gather_levels(comm, mode, nvertices=NV, degree=DEG, seed=SEED,
                   root=0):
    levels = run_bfs(comm, nvertices, degree, root=root, mode=mode,
                     seed=seed)
    return comm.gather(levels.tolist(), root=0)


class TestCorrectness:
    @pytest.mark.parametrize("mode", MODES)
    @pytest.mark.parametrize("nranks", [1, 2, 4])
    def test_matches_serial_reference(self, mode, nranks):
        def main(comm):
            return _gather_levels(comm, mode)

        pieces = run_world(nranks, main)[0]
        got = np.asarray([v for p in pieces for v in p])
        expected = serial_bfs_levels(NV, random_graph_edges(NV, DEG,
                                                            SEED), 0)
        np.testing.assert_array_equal(got, expected)

    def test_all_modes_identical(self):
        def main(comm, mode):
            return _gather_levels(comm, mode)

        reference = None
        for mode in MODES:
            out = run_world(4, main, args=(mode,))[0]
            if reference is None:
                reference = out
            assert out == reference, mode

    def test_nonzero_root(self):
        def main(comm):
            return _gather_levels(comm, "alltoall", root=17)

        pieces = run_world(2, main)[0]
        got = np.asarray([v for p in pieces for v in p])
        expected = serial_bfs_levels(NV, random_graph_edges(NV, DEG,
                                                            SEED), 17)
        np.testing.assert_array_equal(got, expected)

    def test_matches_networkx(self):
        nx = pytest.importorskip("networkx")
        edges = random_graph_edges(40, 2, seed=3)
        graph = nx.Graph()
        graph.add_nodes_from(range(40))
        graph.add_edges_from(map(tuple, edges))
        nx_levels = nx.single_source_shortest_path_length(graph, 0)

        def main(comm):
            bfs = DistributedBFS(comm, 40, edges, mode="isend")
            return comm.gather(bfs.run(0).tolist(), root=0)

        pieces = run_world(2, main)[0]
        got = [v for p in pieces for v in p]
        for vertex in range(40):
            expected = nx_levels.get(vertex, -1)
            assert got[vertex] == expected, vertex

    def test_more_ranks_than_vertices(self):
        def main(comm):
            return _gather_levels(comm, "alltoall", nvertices=5,
                                  degree=2)

        pieces = run_world(8, main)[0]
        got = np.asarray([v for p in pieces for v in p])
        expected = serial_bfs_levels(5, random_graph_edges(5, 2, SEED), 0)
        np.testing.assert_array_equal(got, expected)


class TestValidation:
    def test_bad_mode(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                DistributedBFS(comm, 10, random_graph_edges(10, 2),
                               mode="psychic")
            return "ok"

        run_world(1, main)

    def test_bad_root(self):
        def main(comm):
            bfs = DistributedBFS(comm, 10, random_graph_edges(10, 2))
            with pytest.raises(MPIErrArg):
                bfs.run(10)
            return "ok"

        run_world(1, main)

    def test_bad_graph_args(self):
        with pytest.raises(MPIErrArg):
            random_graph_edges(0, 2)
        with pytest.raises(MPIErrArg):
            random_graph_edges(4, 0)


class TestSection36Accounting:
    def test_nomatch_mode_spends_fewer_match_instructions(self):
        """§3.6 in an application: the nomatch frontier exchange
        charges fewer match-bit instructions per message."""
        def main(comm, mode):
            run_bfs(comm, NV, DEG, mode=mode, seed=SEED)
            return comm.proc.counter.by_subsystem[Subsystem.MATCH_BITS]

        cfg = BuildConfig.ipo_build()
        standard = sum(run_world(4, main, cfg, args=("isend",)))
        nomatch = sum(run_world(4, main, cfg, args=("nomatch",)))
        assert nomatch < standard

    def test_message_modes_count_messages(self):
        def main(comm, mode):
            edges = random_graph_edges(NV, DEG, SEED)
            bfs = DistributedBFS(comm, NV, edges, mode=mode)
            bfs.run(0)
            return bfs.messages_sent

        isend_msgs = sum(run_world(4, main, args=("isend",)))
        nomatch_msgs = sum(run_world(4, main, args=("nomatch",)))
        assert isend_msgs == nomatch_msgs > 0
