"""Point-to-point semantics through the full MPI layer."""

import numpy as np
import pytest

from repro.consts import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB
from repro.core.config import BuildConfig
from repro.datatypes import vector
from repro.datatypes.predefined import BYTE, DOUBLE
from repro.errors import (MPIErrBuffer, MPIErrCount, MPIErrDatatype,
                          MPIErrRank, MPIErrTag, MPIErrTruncate)
from tests.conftest import run_world


class TestObjectAPI:
    def test_send_recv_roundtrip(self):
        def main(comm):
            if comm.rank == 0:
                comm.send({"k": [1, 2, 3]}, dest=1, tag=5)
                return None
            return comm.recv(source=0, tag=5)

        assert run_world(2, main)[1] == {"k": [1, 2, 3]}

    def test_any_source_any_tag(self):
        def main(comm):
            if comm.rank == 0:
                got = {comm.recv(source=ANY_SOURCE, tag=ANY_TAG)
                       for _ in range(comm.size - 1)}
                return got
            comm.send(comm.rank * 10, dest=0, tag=comm.rank)
            return None

        assert run_world(4, main)[0] == {10, 20, 30}

    def test_non_overtaking_order(self):
        """Messages from one sender with the same envelope arrive in
        program order (MPI non-overtaking guarantee)."""
        def main(comm):
            if comm.rank == 0:
                for i in range(20):
                    comm.send(i, dest=1, tag=3)
                return None
            return [comm.recv(source=0, tag=3) for _ in range(20)]

        assert run_world(2, main)[1] == list(range(20))

    def test_tag_selectivity(self):
        def main(comm):
            if comm.rank == 0:
                comm.send("a", dest=1, tag=1)
                comm.send("b", dest=1, tag=2)
                return None
            second = comm.recv(source=0, tag=2)
            first = comm.recv(source=0, tag=1)
            return (first, second)

        assert run_world(2, main)[1] == ("a", "b")

    def test_sendrecv(self):
        def main(comm):
            partner = (comm.rank + 1) % comm.size
            source = (comm.rank - 1) % comm.size
            return comm.sendrecv(comm.rank, dest=partner, source=source,
                                 sendtag=1, recvtag=1)

        results = run_world(4, main)
        assert results == [3, 0, 1, 2]

    def test_ssend_completes_on_match(self):
        def main(comm):
            if comm.rank == 0:
                comm.ssend("sync", dest=1, tag=1)
                return "sender done"
            return comm.recv(source=0, tag=1)

        assert run_world(2, main) == ["sender done", "sync"]

    def test_send_to_proc_null_is_discarded(self):
        def main(comm):
            comm.send("void", dest=PROC_NULL, tag=0)
            return comm.recv(source=PROC_NULL, tag=0)

        assert run_world(2, main) == [None, None]

    def test_send_to_self(self):
        def main(comm):
            comm.send("me", dest=comm.rank, tag=9)
            return comm.recv(source=comm.rank, tag=9)

        assert run_world(2, main) == ["me", "me"]


class TestBufferAPI:
    def test_isend_irecv_numpy(self):
        def main(comm):
            if comm.rank == 0:
                data = np.arange(16, dtype=np.float64)
                comm.Isend(data, dest=1, tag=0).wait()
                return None
            buf = np.zeros(16, dtype=np.float64)
            status = comm.Recv(buf, source=0, tag=0)
            return buf.sum(), status.get_count(DOUBLE), status.source

        assert run_world(2, main)[1] == (120.0, 16, 0)

    def test_triple_form_with_derived_type(self):
        def main(comm):
            dt = vector(count=2, blocklength=2, stride=4,
                        base=DOUBLE).commit()
            if comm.rank == 0:
                src = np.arange(12, dtype=np.float64)
                comm.Send((src, 1, dt), dest=1, tag=0)
                return None
            dst = np.zeros(12, dtype=np.float64)
            comm.Recv((dst, 1, dt), source=0, tag=0)
            return dst.tolist()

        out = run_world(2, main)[1]
        assert out[0:2] == [0.0, 1.0]
        assert out[4:6] == [4.0, 5.0]
        assert out[2:4] == [0.0, 0.0]   # gap untouched

    def test_truncation_error_on_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.zeros(8, dtype=np.float64), dest=1, tag=0)
                return None
            buf = np.zeros(2, dtype=np.float64)
            with pytest.raises(MPIErrTruncate):
                comm.Recv(buf, source=0, tag=0)
            return "caught"

        assert run_world(2, main)[1] == "caught"

    def test_short_recv_count(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.ones(2, dtype=np.float64), dest=1, tag=0)
                return None
            buf = np.zeros(8, dtype=np.float64)
            status = comm.Recv(buf, source=0, tag=0)
            return status.get_count(DOUBLE)

        assert run_world(2, main)[1] == 2

    def test_probe_then_sized_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.Send(np.arange(5, dtype=np.float64), dest=1, tag=4)
                return None
            status = comm.probe(source=0, tag=4)
            n = status.get_count(DOUBLE)
            buf = np.zeros(n, dtype=np.float64)
            comm.Recv(buf, source=status.source, tag=status.tag)
            return buf.tolist()

        assert run_world(2, main)[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_iprobe(self):
        def main(comm):
            if comm.rank == 0:
                assert comm.iprobe(source=1) is None or True
                comm.send("x", dest=1, tag=2)
                return None
            while comm.iprobe(source=0, tag=2) is None:
                pass
            return comm.recv(source=0, tag=2)

        assert run_world(2, main)[1] == "x"


class TestValidation:
    """Error checking runs only in error-checking builds (Table 1)."""

    def test_bad_rank_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(MPIErrRank):
                    comm.send("x", dest=99, tag=0)
            return "ok"

        assert run_world(2, main)[0] == "ok"

    def test_bad_tag_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(MPIErrTag):
                    comm.send("x", dest=1, tag=TAG_UB + 1)
                with pytest.raises(MPIErrTag):
                    comm.send("x", dest=1, tag=-5)
            return "ok"

        run_world(2, main)

    def test_negative_count_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(MPIErrCount):
                    comm.Isend((np.zeros(1), -1, DOUBLE), dest=1, tag=0)
            return "ok"

        run_world(2, main)

    def test_uncommitted_datatype_rejected(self):
        def main(comm):
            dt = vector(2, 1, 2, DOUBLE)   # never committed
            if comm.rank == 0:
                with pytest.raises(MPIErrDatatype):
                    comm.Isend((np.zeros(8), 1, dt), dest=1, tag=0)
            return "ok"

        run_world(2, main)

    def test_no_error_build_skips_validation(self):
        """Without error checking, an in-range-but-wrong call is the
        user's problem — the classic no-err build trade-off.  A bad
        tag sails through the MPI layer (and still works, since our
        matching accepts any integer tag)."""
        def main(comm):
            if comm.rank == 0:
                comm.send("x", dest=1, tag=TAG_UB + 5)
                return None
            return comm.recv(source=0, tag=TAG_UB + 5)

        cfg = BuildConfig.no_errors()
        assert run_world(2, main, cfg)[1] == "x"

    def test_bad_buffer_tuple_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrBuffer):
                comm.Isend("not a buffer", dest=0, tag=0)
            return "ok"

        run_world(1, main)


class TestWorldMechanics:
    def test_exception_aborts_world(self):
        def main(comm):
            if comm.rank == 0:
                raise RuntimeError("deliberate")
            # Rank 1 blocks forever; the abort must unwedge it.
            comm.recv(source=0, tag=0)

        with pytest.raises(RuntimeError, match="deliberate"):
            run_world(2, main)

    def test_results_in_rank_order(self):
        assert run_world(4, lambda comm: comm.rank ** 2) == [0, 1, 4, 9]

    def test_world_reusable(self):
        from repro.runtime.world import World
        world = World(2)
        first = world.run(lambda comm: comm.rank)
        second = world.run(lambda comm: comm.rank + 10)
        assert first == [0, 1]
        assert second == [10, 11]

    def test_instruction_counts_accumulate_per_rank(self):
        from repro.runtime.world import World
        world = World(2)

        def main(comm):
            if comm.rank == 0:
                comm.send(b"x", dest=1, tag=0)
            else:
                comm.recv(source=0, tag=0)

        world.run(main)
        assert world.total_instructions() == 442   # 221 send + 221 recv
        world.reset_accounting()
        assert world.total_instructions() == 0
