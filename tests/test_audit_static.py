"""Audit rule fixtures: purity, lockset, FP104, pragmas, call graph."""

from __future__ import annotations

import textwrap

from repro.audit.callgraph import CodeIndex
from repro.audit.lockset import scan_lockset
from repro.audit.provenance import (_observable_work, _subtree_charges,
                                    _tight_callees)
from repro.audit.noneguard import (GUARD_SPECS, scan_detectorguard,
                                   scan_ftguard, scan_progressguard,
                                   scan_tsanguard)
from repro.audit.purity import scan_purity
from repro.audit.rules import FP_RULES, render_fp_catalog


def _index(tmp_path, source: str, name: str = "mod.py") -> CodeIndex:
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    return CodeIndex.build([str(path)])


def _purity_ids(tmp_path, source: str) -> list[str]:
    return [f.rule_id for f in scan_purity(_index(tmp_path, source))]


FASTPATH_STUB = """\
    def fastpath(func):
        return func

"""


class TestPurityFixtures:
    """FP201-FP205 each fire on a minimal @fastpath fixture."""

    def test_fp201_list_display(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(xs):\n"
            "        out = []\n"
            "        return out\n")
        assert _purity_ids(tmp_path, src) == ["FP201"]

    def test_fp201_builtin_ctor_and_comprehension(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(xs):\n"
            "        a = dict()\n"
            "        return [x for x in xs], a\n")
        assert _purity_ids(tmp_path, src) == ["FP201", "FP201"]

    def test_fp201_generator_expression_allowed(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(xs):\n"
            "        return sum(x for x in xs)\n")
        assert _purity_ids(tmp_path, src) == []

    def test_fp202_chain_lookup_in_loop(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self, items):\n"
            "        for x in items:\n"
            "            self.table.slot.use(x)\n")
        assert _purity_ids(tmp_path, src) == ["FP202"]

    def test_fp202_hoisted_lookup_clean(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self, items):\n"
            "        use = self.table.use\n"
            "        for x in items:\n"
            "            use(x)\n")
        assert _purity_ids(tmp_path, src) == []

    def test_fp203_with_lock(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self):\n"
            "        with self._lock:\n"
            "            return self.state\n")
        assert _purity_ids(tmp_path, src) == ["FP203"]

    def test_fp204_try(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self):\n"
            "        try:\n"
            "            return self.state\n"
            "        finally:\n"
            "            pass\n")
        assert _purity_ids(tmp_path, src) == ["FP204"]

    def test_fp205_print_and_logger(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self, logger):\n"
            "        print(self.state)\n"
            "        logger.debug('x')\n")
        assert _purity_ids(tmp_path, src) == ["FP205", "FP205"]

    def test_unmarked_function_not_scanned(self, tmp_path):
        src = (
            "    def f(self):\n"
            "        with self._lock:\n"
            "            return []\n")
        assert _purity_ids(tmp_path, textwrap.dedent(src)) == []

    def test_nested_def_body_excluded(self, tmp_path):
        # Regression: a closure's try/alloc runs off the audited path —
        # walk_body must not descend into nested definitions.
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self, request):\n"
            "        def on_match(msg):\n"
            "            try:\n"
            "                return [msg]\n"
            "            finally:\n"
            "                pass\n"
            "        return on_match\n")
        assert _purity_ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self):\n"
            "        with self._lock:  # audit: allow[FP203] - modeled CS\n"
            "            return self.state\n")
        assert _purity_ids(tmp_path, src) == []

    def test_pragma_is_rule_specific(self, tmp_path):
        src = FASTPATH_STUB + (
            "    @fastpath\n"
            "    def f(self):\n"
            "        with self._lock:  # audit: allow[FP204]\n"
            "            return self.state\n")
        assert _purity_ids(tmp_path, src) == ["FP203"]


class TestLocksetFixtures:
    """FP301/FP302 on minimal runtime-class fixtures."""

    def _lockset_ids(self, tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id for f in scan_lockset(index, path_filter="")]

    def test_fp301_bare_write_flagged(self, tmp_path):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def reset(self):
                    self.value = 0
        """
        assert self._lockset_ids(tmp_path, src) == ["FP301"]

    def test_fp301_clean_when_consistent(self, tmp_path):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self.value += 1

                def reset(self):
                    with self._lock:
                        self.value = 0
        """
        assert self._lockset_ids(tmp_path, src) == []

    def test_fp301_single_owner_state_ignored(self, tmp_path):
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def reset(self):
                    self.value = 0
        """
        assert self._lockset_ids(tmp_path, src) == []

    def test_fp301_helper_inherits_caller_lockset(self, tmp_path):
        # _apply is only ever called with the lock held, so its write
        # counts as guarded — no finding.
        src = """\
            import threading

            class Box:
                def __init__(self):
                    self._lock = threading.Lock()
                    self.value = 0

                def bump(self):
                    with self._lock:
                        self._apply()

                def set(self):
                    with self._lock:
                        self.value = 9

                def _apply(self):
                    self.value += 1
        """
        assert self._lockset_ids(tmp_path, src) == []

    def test_fp302_lock_order_cycle(self, tmp_path):
        src = """\
            import threading

            class Pair:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def forward(self):
                    with self.a:
                        with self.b:
                            pass

                def backward(self):
                    with self.b:
                        with self.a:
                            pass
        """
        assert "FP302" in self._lockset_ids(tmp_path, src)

    def test_fp302_consistent_order_clean(self, tmp_path):
        src = """\
            import threading

            class Pair:
                def __init__(self):
                    self.a = threading.Lock()
                    self.b = threading.Lock()

                def one(self):
                    with self.a:
                        with self.b:
                            pass

                def two(self):
                    with self.a:
                        with self.b:
                            pass
        """
        assert self._lockset_ids(tmp_path, src) == []


class TestFP303VCINesting:
    """FP303: at most one VCI-family (``<base>.lock``) lock at a time."""

    def _ids(self, tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id for f in scan_lockset(index, path_filter="")]

    def test_nested_different_bases_flagged(self, tmp_path):
        src = """\
            class Engine:
                def cross(self):
                    with self.vcis[0].lock:
                        with self.vcis[1].lock:
                            pass
        """
        assert self._ids(tmp_path, src) == ["FP303"]

    def test_same_base_reentrant_clean(self, tmp_path):
        src = """\
            class Engine:
                def reenter(self):
                    with self.vci.lock:
                        with self.vci.lock:
                            pass
        """
        assert self._ids(tmp_path, src) == []

    def test_non_family_inner_lock_clean(self, tmp_path):
        # The wildcard registry lock is outside the family by naming
        # convention; shard-then-registry nesting is the documented
        # discipline.
        src = """\
            class Engine:
                def discipline(self):
                    with self.vcis[0].lock:
                        with self._wild_lock:
                            pass
        """
        assert self._ids(tmp_path, src) == []

    def test_interprocedural_call_flagged(self, tmp_path):
        src = """\
            class Engine:
                def note(self):
                    with self.lock:
                        pass

                def outer(self):
                    with self.vci.lock:
                        self.note()
        """
        assert self._ids(tmp_path, src) == ["FP303"]

    def test_call_without_held_lock_clean(self, tmp_path):
        src = """\
            class Engine:
                def note(self):
                    with self.lock:
                        pass

                def outer(self):
                    self.note()
        """
        assert self._ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            class Engine:
                def cross(self):
                    with self.vcis[0].lock:
                        with self.vcis[1].lock:  # audit: allow[FP303]
                            pass
        """
        assert self._ids(tmp_path, src) == []


class TestFP104Subtree:
    """The uncharged-work check uses tight call edges."""

    def test_work_without_charge_detected(self, tmp_path):
        src = """\
            def fastpath(func):
                return func

            class Dev:
                @fastpath
                def null_send(self, op):
                    request = self.pool.acquire('send')
                    request.complete(0.0)
                    return request
        """
        index = _index(tmp_path, src)
        func = index.find_method("Dev", "null_send")
        assert _observable_work(index, func) == {"acquire", "complete"}
        assert not _subtree_charges(index, func)

    def test_direct_charge_satisfies(self, tmp_path):
        src = """\
            def fastpath(func):
                return func

            class Dev:
                @fastpath
                def null_send(self, op):
                    self.proc.charge('mand', 2)
                    request = self.pool.acquire('send')
                    request.complete(0.0)
                    return request
        """
        index = _index(tmp_path, src)
        func = index.find_method("Dev", "null_send")
        assert _subtree_charges(index, func)

    def test_family_helper_charge_satisfies(self, tmp_path):
        src = """\
            def fastpath(func):
                return func

            class Dev:
                @fastpath
                def issue(self, op):
                    self._charge_it()
                    return self.pool.acquire('send')

                def _charge_it(self):
                    self.proc.charge('mand', 2)
        """
        index = _index(tmp_path, src)
        func = index.find_method("Dev", "issue")
        assert _subtree_charges(index, func)

    def test_duck_typed_call_does_not_satisfy(self, tmp_path):
        # Some *other* class's complete() charges, but a tight walk must
        # not follow the duck-typed request.complete() edge.
        src = """\
            def fastpath(func):
                return func

            class Other:
                def complete(self):
                    self.proc.charge('mand', 1)

            class Dev:
                @fastpath
                def issue(self, request):
                    request.complete()
        """
        index = _index(tmp_path, src)
        func = index.find_method("Dev", "issue")
        assert not _subtree_charges(index, func)

    def test_tight_callees_keep_plain_names(self, tmp_path):
        import ast
        src = """\
            def helper():
                pass

            class Dev:
                def issue(self):
                    helper()
        """
        index = _index(tmp_path, src)
        func = index.find_method("Dev", "issue")
        call = next(n for n in ast.walk(func.node)
                    if isinstance(n, ast.Call))
        assert [f.name for f in _tight_callees(index, call.func, func)] \
            == ["helper"]


class TestCallGraph:
    """CodeIndex structure and resolution."""

    def test_self_call_prefers_class_family(self, tmp_path):
        import ast
        src = """\
            class Base:
                def step(self):
                    pass

            class Derived(Base):
                def run(self):
                    self.step()

            class Unrelated:
                def step(self):
                    pass
        """
        index = _index(tmp_path, src)
        run = index.find_method("Derived", "run")
        call = next(n for n in ast.walk(run.node)
                    if isinstance(n, ast.Call))
        resolved = index.resolve_call(call.func, run)
        assert [f.cls for f in resolved] == ["Base"]

    def test_class_family_is_transitive(self, tmp_path):
        src = """\
            class A:
                pass

            class B(A):
                pass

            class C(B):
                pass
        """
        index = _index(tmp_path, src)
        assert index.class_family("B") == frozenset({"A", "B", "C"})

    def test_qualname_is_tree_relative(self, tmp_path):
        pkg = tmp_path / "repro" / "sub"
        pkg.mkdir(parents=True)
        (pkg / "m.py").write_text("class K:\n    def f(self):\n        pass\n")
        index = CodeIndex.build([str(tmp_path)])
        func = index.find_method("K", "f")
        assert func.qualname == "repro/sub/m.py:K.f"

    def test_syntax_error_files_skipped(self, tmp_path):
        (tmp_path / "bad.py").write_text("def broken(:\n")
        (tmp_path / "good.py").write_text("def ok():\n    pass\n")
        index = CodeIndex.build([str(tmp_path)])
        assert len(index.modules) == 1


class TestFTGuardFixtures:
    """FP304: fault hooks outside repro/ft/ must be None-guarded."""

    @staticmethod
    def _ftguard_ids(tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id for f in scan_ftguard(index, path_filter="")]

    def test_unguarded_hook_flagged(self, tmp_path):
        src = """\
            def hook(proc):
                proc.faults.check_self()
        """
        assert self._ftguard_ids(tmp_path, src) == ["FP304"]

    def test_guarded_hook_clean(self, tmp_path):
        src = """\
            def hook(proc):
                if proc.faults is not None:
                    proc.faults.check_self()
        """
        assert self._ftguard_ids(tmp_path, src) == []

    def test_alias_early_exit_clean(self, tmp_path):
        src = """\
            def hook(proc, op):
                faults = proc.faults
                if faults is None:
                    return issue(op)
                faults.check_comm(op.comm)
                return issue(op)
        """
        assert self._ftguard_ids(tmp_path, src) == []

    def test_store_only_clean(self, tmp_path):
        src = """\
            def bind(proc, view):
                proc.faults = view
        """
        assert self._ftguard_ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            def hook(proc):
                proc.faults.drain()  # audit: allow[FP304]
        """
        assert self._ftguard_ids(tmp_path, src) == []

    def test_repro_tree_has_no_unguarded_hooks(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        index = CodeIndex.build([str(root / "src" / "repro")])
        assert scan_ftguard(index) == []


class TestProgressGuardFixtures:
    """FP305: progress hooks outside repro/progress/ must be guarded."""

    @staticmethod
    def _progressguard_ids(tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id for f in scan_progressguard(index, path_filter="")]

    def test_unguarded_hook_flagged(self, tmp_path):
        src = """\
            def hook(proc, vci, transport, request, when):
                proc.progress.park_completion(vci, transport, request, when)
        """
        assert self._progressguard_ids(tmp_path, src) == ["FP305"]

    def test_guarded_hook_clean(self, tmp_path):
        src = """\
            def hook(proc, vci, transport, request, when):
                if proc.progress is not None:
                    proc.progress.park_completion(
                        vci, transport, request, when)
        """
        assert self._progressguard_ids(tmp_path, src) == []

    def test_alias_early_exit_clean(self, tmp_path):
        src = """\
            def hook(proc, fn, request):
                progress = proc.progress
                if progress is None:
                    return fn(request)
                progress.post_continuation(fn, request)
        """
        assert self._progressguard_ids(tmp_path, src) == []

    def test_store_only_clean(self, tmp_path):
        src = """\
            def bind(proc, view):
                proc.progress = view
        """
        assert self._progressguard_ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            def hook(proc):
                proc.progress.kick()  # audit: allow[FP305]
        """
        assert self._progressguard_ids(tmp_path, src) == []

    def test_repro_tree_has_no_unguarded_hooks(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        index = CodeIndex.build([str(root / "src" / "repro")])
        assert scan_progressguard(index) == []


class TestTsanGuardFixtures:
    """FP306: tsan hooks outside repro/tsan/ must be None-guarded."""

    @staticmethod
    def _tsanguard_ids(tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id for f in scan_tsanguard(index, path_filter="")]

    def test_unguarded_hook_flagged(self, tmp_path):
        src = """\
            def hook(proc, key):
                proc.tsan.note_access(key)
        """
        assert self._tsanguard_ids(tmp_path, src) == ["FP306"]

    def test_guarded_hook_clean(self, tmp_path):
        src = """\
            def hook(proc, key):
                if proc.tsan is not None:
                    proc.tsan.note_access(key)
        """
        assert self._tsanguard_ids(tmp_path, src) == []

    def test_alias_early_exit_clean(self, tmp_path):
        src = """\
            def hook(proc, key):
                tsan = proc.tsan
                if tsan is None:
                    return
                tsan.note_access(key)
        """
        assert self._tsanguard_ids(tmp_path, src) == []

    def test_store_only_clean(self, tmp_path):
        src = """\
            def bind(proc, view):
                proc.tsan = view
        """
        assert self._tsanguard_ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            def hook(proc):
                proc.tsan.check_continuation("x")  # audit: allow[FP306]
        """
        assert self._tsanguard_ids(tmp_path, src) == []

    def test_repro_tree_has_no_unguarded_hooks(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        index = CodeIndex.build([str(root / "src" / "repro")])
        assert scan_tsanguard(index) == []


class TestDetectorGuardFixtures:
    """FP307: detector hooks outside repro/ft/ must be None-guarded."""

    @staticmethod
    def _detectorguard_ids(tmp_path, source: str) -> list[str]:
        index = _index(tmp_path, source)
        return [f.rule_id
                for f in scan_detectorguard(index, path_filter="")]

    def test_unguarded_hook_flagged(self, tmp_path):
        src = """\
            def hook(proc):
                proc.detector.beat()
        """
        assert self._detectorguard_ids(tmp_path, src) == ["FP307"]

    def test_guarded_hook_clean(self, tmp_path):
        src = """\
            def hook(proc):
                if proc.detector is not None:
                    proc.detector.beat()
        """
        assert self._detectorguard_ids(tmp_path, src) == []

    def test_alias_early_exit_clean(self, tmp_path):
        src = """\
            def hook(proc):
                detector = proc.detector
                if detector is None:
                    return
                detector.maybe_tick()
        """
        assert self._detectorguard_ids(tmp_path, src) == []

    def test_store_only_clean(self, tmp_path):
        src = """\
            def bind(proc, view):
                proc.detector = view
        """
        assert self._detectorguard_ids(tmp_path, src) == []

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            def hook(proc):
                proc.detector.enter_wait()  # audit: allow[FP307]
        """
        assert self._detectorguard_ids(tmp_path, src) == []

    def test_repro_tree_has_no_unguarded_hooks(self):
        import pathlib
        root = pathlib.Path(__file__).resolve().parent.parent
        index = CodeIndex.build([str(root / "src" / "repro")])
        assert scan_detectorguard(index) == []


class TestGuardSpecs:
    """The parameterized checker registers all four disciplines."""

    def test_specs_cover_all_four_rules(self):
        assert set(GUARD_SPECS) == {"FP304", "FP305", "FP306", "FP307"}

    def test_spec_fields_match_rule_catalog(self):
        for rule_id, spec in GUARD_SPECS.items():
            assert rule_id in FP_RULES
            assert f".{spec.hook_attr}" in FP_RULES[rule_id].title
            assert spec.exempt_prefix in FP_RULES[rule_id].title


class TestRuleCatalog:
    """The FP rule table is complete and renderable."""

    def test_all_rule_families_present(self):
        ids = set(FP_RULES)
        assert {"FP101", "FP102", "FP103", "FP104"} <= ids
        assert {"FP201", "FP202", "FP203", "FP204", "FP205"} <= ids
        assert {"FP301", "FP302", "FP303", "FP304", "FP305",
                "FP306", "FP307"} <= ids

    def test_catalog_renders_every_rule(self):
        text = render_fp_catalog()
        for rule_id in FP_RULES:
            assert rule_id in text
