"""Netmods/shmmods: capabilities, AM fallback, locality routing."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.datatypes import vector
from repro.datatypes.predefined import DOUBLE
from repro.fabric.model import OFI_PSM2
from repro.fabric.topology import Topology
from repro.netmod import (InfiniteNetmod, OFINetmod, PosixShmmod,
                          UCXNetmod, XpmemShmmod, build_netmod,
                          build_shmmod)
from repro.runtime.world import World


class TestCapabilities:
    def test_ofi_profile(self):
        assert not OFINetmod.native_noncontig_send
        assert OFINetmod.native_rma_contig
        assert not OFINetmod.native_rma_noncontig

    def test_ucx_profile(self):
        assert UCXNetmod.native_noncontig_send
        assert not UCXNetmod.native_rma_noncontig

    def test_infinite_everything_native(self):
        assert InfiniteNetmod.native_noncontig_send
        assert InfiniteNetmod.native_rma_noncontig
        assert InfiniteNetmod.native_atomics

    def test_shmmods_all_native(self):
        for cls in (PosixShmmod, XpmemShmmod):
            assert cls.native_noncontig_send
            assert cls.native_rma_noncontig

    def test_registry(self):
        with pytest.raises(KeyError):
            build_netmod(None, "token-ring")
        with pytest.raises(KeyError):
            build_shmmod(None, "sysv")


def _internode_world(config):
    """2 ranks forced onto different nodes, so traffic uses the netmod."""
    return World(2, config, topology=Topology(nranks=2, cores_per_node=1))


class TestFallbackRouting:
    def test_ofi_noncontig_send_falls_back_to_am(self):
        def main(comm):
            dt = vector(3, 1, 2, DOUBLE).commit()
            buf = np.zeros(6, dtype=np.float64)
            if comm.rank == 0:
                comm.Isend((buf, 1, dt), dest=1, tag=0).wait()
                nm = comm.proc.device.netmod
                return nm.n_native, nm.n_am_fallback
            comm.Recv((np.zeros(6, dtype=np.float64), 1, dt),
                      source=0, tag=0)
            return None

        native, fallback = _internode_world(
            BuildConfig(fabric="ofi")).run(main)[0]
        assert (native, fallback) == (0, 1)

    def test_ofi_contig_send_is_native(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(4, dtype=np.float64), dest=1,
                           tag=0).wait()
                nm = comm.proc.device.netmod
                return nm.n_native, nm.n_am_fallback
            comm.Recv(np.zeros(4, dtype=np.float64), source=0, tag=0)
            return None

        native, fallback = _internode_world(
            BuildConfig(fabric="ofi")).run(main)[0]
        assert (native, fallback) == (1, 0)

    def test_am_fallback_charges_more(self):
        """The fast-path-vs-AM gap is the point of CH4's design."""
        def main(comm, contig):
            if contig:
                payload = (np.zeros(3, dtype=np.float64), 3, DOUBLE)
            else:
                dt = vector(3, 1, 2, DOUBLE).commit()
                payload = (np.zeros(6, dtype=np.float64), 1, dt)
            if comm.rank == 0:
                with comm.proc.tracer.call("send"):
                    comm.Isend(payload, dest=1, tag=0).wait()
                return comm.proc.tracer.last("send").total
            buf = (np.zeros(6, dtype=np.float64), payload[1], payload[2])
            comm.Recv(buf, source=0, tag=0)
            return None

        cfg = BuildConfig(fabric="ofi")
        contig = _internode_world(cfg).run(main, args=(True,))[0]
        noncontig = _internode_world(cfg).run(main, args=(False,))[0]
        assert noncontig > contig

    def test_force_am_ablation_flag(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(1, dtype=np.float64), dest=1,
                           tag=0).wait()
                nm = comm.proc.device.netmod
                return nm.n_am_fallback
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            return None

        cfg = BuildConfig(fabric="ofi", force_am_fallback=True)
        assert _internode_world(cfg).run(main)[0] == 1


class TestLocalityRouting:
    def test_same_node_uses_shmmod(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(1, dtype=np.float64), dest=1,
                           tag=0).wait()
                dev = comm.proc.device
                return (dev.shmmod.n_native + dev.shmmod.n_am_fallback,
                        dev.netmod.n_native + dev.netmod.n_am_fallback)
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            return None

        # Default topology: 16 cores/node -> ranks 0 and 1 share a node.
        world = World(2, BuildConfig(fabric="ofi"))
        shm, net = world.run(main)[0]
        assert shm == 1 and net == 0

    def test_cross_node_uses_netmod(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.zeros(1, dtype=np.float64), dest=1,
                           tag=0).wait()
                dev = comm.proc.device
                return (dev.shmmod.n_native + dev.shmmod.n_am_fallback,
                        dev.netmod.n_native + dev.netmod.n_am_fallback)
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            return None

        shm, net = _internode_world(BuildConfig(fabric="ofi")).run(main)[0]
        assert shm == 0 and net == 1

    def test_self_send_uses_shmmod(self):
        def main(comm):
            comm.Isend(np.zeros(1, dtype=np.float64), dest=0,
                       tag=0).wait()
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            dev = comm.proc.device
            return dev.shmmod.n_native

        world = World(1, BuildConfig(fabric="ofi"))
        assert world.run(main)[0] == 1

    def test_shm_is_faster_than_net(self):
        def main(comm):
            if comm.rank == 0:
                t0 = comm.proc.vclock.now
                comm.Isend(np.zeros(1, dtype=np.float64), dest=1,
                           tag=0).wait()
                return comm.proc.vclock.now - t0
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            return None

        cfg = BuildConfig(fabric="ofi")
        intra = World(2, cfg).run(main)[0]
        inter = _internode_world(cfg).run(main)[0]
        assert intra < inter


class TestIssueTiming:
    def test_issue_advances_clock_by_inject_cycles(self):
        world = World(1, BuildConfig(fabric="ofi"))
        proc = world.proc(0)
        nm = build_netmod(proc, "ofi")
        t0 = proc.vclock.now
        result = nm.issue(1, native=True)
        dt = proc.vclock.now - t0
        assert dt == pytest.approx(
            OFI_PSM2.cycles_to_seconds(OFI_PSM2.inject_cycles))
        assert result.arrive_s == pytest.approx(
            proc.vclock.now + OFI_PSM2.latency_s + 1 / OFI_PSM2.bandwidth_Bps)

    def test_round_trip_completion(self):
        world = World(1, BuildConfig(fabric="ofi"))
        proc = world.proc(0)
        nm = build_netmod(proc, "ofi")
        res = nm.issue(8, native=True, round_trip=True)
        assert res.complete_s == pytest.approx(
            res.arrive_s + OFI_PSM2.latency_s)
