"""Derived datatype constructors."""

import numpy as np
import pytest

from repro.datatypes import (contiguous, hindexed, hvector, indexed,
                             indexed_block, resized, struct, subarray,
                             vector)
from repro.datatypes.predefined import (BYTE, DOUBLE, FLOAT, INT,
                                        from_numpy_dtype)
from repro.errors import MPIErrArg, MPIErrDatatype


class TestPredefined:
    def test_sizes(self):
        assert DOUBLE.size == 8
        assert FLOAT.size == 4
        assert INT.size == 4
        assert BYTE.size == 1

    def test_predefined_committed_and_contig(self):
        assert DOUBLE.committed
        assert DOUBLE.contig
        assert DOUBLE.predefined

    def test_free_predefined_rejected(self):
        with pytest.raises(MPIErrDatatype):
            DOUBLE.free()

    def test_from_numpy_dtype(self):
        assert from_numpy_dtype(np.float64) is DOUBLE
        assert from_numpy_dtype("int32").size == 4
        with pytest.raises(KeyError):
            from_numpy_dtype(np.dtype([("a", "f8")]))


class TestContiguous:
    def test_layout(self):
        dt = contiguous(4, DOUBLE)
        assert dt.size == 32
        assert dt.extent == 32
        assert dt.contig
        assert not dt.committed

    def test_commit_cycle(self):
        dt = contiguous(2, INT).commit()
        assert dt.committed
        dt.free()
        assert not dt.committed

    def test_nested(self):
        inner = contiguous(2, DOUBLE)
        outer = contiguous(3, inner)
        assert outer.size == 48

    def test_rejects_bad_count(self):
        with pytest.raises(MPIErrArg):
            contiguous(0, DOUBLE)


class TestVector:
    def test_strided_layout(self):
        dt = vector(count=3, blocklength=2, stride=4, base=DOUBLE)
        assert dt.size == 3 * 2 * 8
        assert not dt.contig
        assert dt.extent == (2 * 4 + 2) * 8
        offsets = dt.typemap.byte_offsets()
        assert offsets[0] == 0
        assert offsets[16] == 32 * 1   # second block starts at stride*8

    def test_dense_vector_is_contiguous(self):
        dt = vector(count=3, blocklength=2, stride=2, base=DOUBLE)
        assert dt.contig

    def test_negative_stride_normalized(self):
        dt = hvector(count=2, blocklength=1, stride_bytes=-16, base=DOUBLE)
        assert dt.typemap.lb == 0
        assert dt.size == 16

    def test_zero_stride_rejected(self):
        with pytest.raises(MPIErrArg):
            vector(count=2, blocklength=1, stride=0, base=DOUBLE)


class TestIndexed:
    def test_layout(self):
        dt = indexed([2, 1], [0, 4], DOUBLE)
        assert dt.size == 24
        assert dt.typemap.ub == 5 * 8

    def test_indexed_block(self):
        dt = indexed_block(2, [0, 4], INT)
        assert dt.size == 4 * 4

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(MPIErrArg):
            indexed([1, 2], [0], DOUBLE)

    def test_negative_displacement_rejected(self):
        with pytest.raises(MPIErrArg):
            hindexed([1], [-8], DOUBLE)

    def test_empty_rejected(self):
        with pytest.raises(MPIErrArg):
            indexed([], [], DOUBLE)


class TestStruct:
    def test_heterogeneous_layout(self):
        dt = struct([1, 2], [0, 8], [INT, DOUBLE])
        assert dt.size == 4 + 16
        assert dt.typemap.ub == 24

    def test_length_mismatch_rejected(self):
        with pytest.raises(MPIErrArg):
            struct([1], [0, 8], [INT])


class TestSubarray:
    def test_2d_interior_block(self):
        dt = subarray(sizes=[4, 4], subsizes=[2, 2], starts=[1, 1],
                      base=DOUBLE)
        assert dt.size == 4 * 8
        offs = dt.typemap.byte_offsets()
        # Elements (1,1), (1,2), (2,1), (2,2) of a 4x4 row-major array.
        elements = sorted({o // 8 for o in offs})
        assert elements == [5, 6, 9, 10]

    def test_full_array_is_contiguous(self):
        dt = subarray(sizes=[3, 3], subsizes=[3, 3], starts=[0, 0],
                      base=DOUBLE)
        assert dt.contig

    def test_fortran_order(self):
        c_dt = subarray([4, 6], [2, 3], [1, 2], DOUBLE, order="C")
        f_dt = subarray([6, 4], [3, 2], [2, 1], DOUBLE, order="F")
        assert c_dt.typemap == f_dt.typemap

    def test_3d_face(self):
        dt = subarray(sizes=[4, 4, 4], subsizes=[4, 4, 1], starts=[0, 0, 3],
                      base=DOUBLE)
        assert dt.size == 16 * 8

    def test_out_of_bounds_rejected(self):
        with pytest.raises(MPIErrArg):
            subarray([4, 4], [2, 2], [3, 3], DOUBLE)

    def test_bad_order_rejected(self):
        with pytest.raises(MPIErrArg):
            subarray([4], [2], [0], DOUBLE, order="X")


class TestResized:
    def test_extent_override(self):
        dt = resized(DOUBLE, lb=0, extent=16)
        assert dt.size == 8
        assert dt.extent == 16
        assert not dt.contig

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(MPIErrArg):
            resized(DOUBLE, lb=0, extent=0)


class TestEnvelope:
    def test_dup(self):
        dt = contiguous(2, DOUBLE).commit()
        copy = dt.dup()
        assert copy.typemap == dt.typemap
        assert not copy.committed

    def test_construction_args_recorded(self):
        dt = vector(3, 2, 4, DOUBLE)
        assert dt.combiner == "hvector"
        assert dt.construction_args["count"] == 3
