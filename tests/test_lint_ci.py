"""CI lint gate: every static/dynamic analysis the tree ships.

The MPI linter runs over every shipped program (``examples/`` and the
mini-apps) exactly as the CI job would:
``python -m repro.sanitize examples src/repro/apps``; the fast-path
audit over ``src/repro``; the buffer-ownership & copy-census gate
(``python -m repro.bufcheck``, snapshot frozen in ``COPYMAP.json``);
the unified ``python -m repro.check`` driver; the race detector's
quick stress pass via ``benchmarks/bench_tsan.py --quick``; and ruff
where installed (the job skips cleanly when the binary is missing).
``TestUnifiedLintGate`` chains all of them as the single CI entry
point.  The calibration-guard classes pin the committed Figure 2 /
Table 1 charging against every opt-in subsystem's off switch.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


class TestSanitizeCLI:
    """``python -m repro.sanitize`` as CI runs it."""

    def test_tree_lints_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize",
             "examples", "src/repro/apps"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_findings_fail_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(comm, buf):\n"
                       "    comm.isend(buf, dest=1, tag=0)\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "MS101" in proc.stdout

    def test_rules_flag_prints_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        assert "MS101" in proc.stdout and "MSD204" in proc.stdout
        assert "MS109" in proc.stdout

    def test_json_snapshot_written_and_stable(self, tmp_path):
        """``--json`` emits the machine-readable contract CI consumes:
        same tree, two runs, byte-identical snapshots."""
        import json
        outs = []
        for name in ("a.json", "b.json"):
            out = tmp_path / name
            proc = subprocess.run(
                [sys.executable, "-m", "repro.sanitize",
                 "src/repro/apps", "--json", str(out)],
                cwd=ROOT, env=_env(), capture_output=True, text=True,
                timeout=120)
            assert proc.returncode == 0, proc.stdout + proc.stderr
            outs.append(out.read_text())
        assert outs[0] == outs[1]
        snapshot = json.loads(outs[0])
        assert snapshot["findings"]["count"] == 0
        assert snapshot["files_checked"] > 0


class TestRuff:
    """Ruff gate — skipped when the binary is not installed."""

    def test_ruff_clean_on_sanitize_package(self):
        try:
            proc = subprocess.run(
                ["ruff", "check", "src/repro/sanitize"],
                cwd=ROOT, capture_output=True, text=True, timeout=120)
        except FileNotFoundError:
            pytest.skip("ruff not installed in this environment")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestAuditCLI:
    """``python -m repro.audit`` as the CI fast-path gate runs it."""

    def test_tree_audits_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "src/repro"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_purity_violation_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def fastpath(func):\n"
                       "    return func\n"
                       "\n"
                       "@fastpath\n"
                       "def hot(xs):\n"
                       "    return [x for x in xs]\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "FP201" in proc.stdout

    def test_rules_flag_prints_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        for rule_id in ("FP101", "FP104", "FP201", "FP205", "FP301",
                        "FP302", "FP303", "FP304", "FP305", "FP306",
                        "FP307"):
            assert rule_id in proc.stdout

    def test_json_snapshot_matches_committed(self, tmp_path):
        out = tmp_path / "AUDIT.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "src/repro",
             "--json", str(out)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        import json
        assert json.loads(out.read_text()) \
            == json.loads((ROOT / "AUDIT.json").read_text())


class TestVCICalibrationGuard:
    """Multi-VCI neutrality gate: a ``num_vcis=1`` build must charge
    byte-for-byte what the committed Figure 2 / Table 1 numbers say —
    the VCI plumbing is real-Python lock granularity only and may not
    move a single charged instruction."""

    #: Committed Figure 2 bars: build label -> (isend, put).
    FIGURE2 = {
        "mpich/original": (253, 1342),
        "mpich/ch4 (default)": (221, 215),
        "mpich/ch4 (no-err)": (147, 143),
        "mpich/ch4 (no-err-single)": (141, 129),
        "mpich/ch4 (no-err-single-ipo)": (59, 44),
    }
    #: Committed Table 1 per-category decomposition of the defaults.
    TABLE1 = {
        "isend": {"ERROR_CHECKING": 74, "THREAD_SAFETY": 6,
                  "FUNCTION_CALL": 23, "REDUNDANT_CHECKS": 59,
                  "MANDATORY": 59},
        "put": {"ERROR_CHECKING": 72, "THREAD_SAFETY": 14,
                "FUNCTION_CALL": 25, "REDUNDANT_CHECKS": 60,
                "MANDATORY": 44},
    }

    def test_figure2_totals_unchanged_with_explicit_num_vcis_1(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for label, (isend, put) in self.FIGURE2.items():
            config = dataclasses.replace(named_builds()[label],
                                         num_vcis=1)
            assert measure_instructions(config, "isend") == isend, label
            assert measure_instructions(config, "put") == put, label

    def test_table1_charge_trace_byte_identical(self):
        """The full per-category charge trace of the default
        (``num_vcis=1``) build serializes to exactly the committed
        decomposition — not just the same total."""
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for op, committed in self.TABLE1.items():
            rec = measure_call_record(BuildConfig(num_vcis=1), op)
            trace = {cat.name: n for cat, n in
                     sorted(rec.by_category.items(),
                            key=lambda kv: kv[0].name) if n}
            assert json.dumps(trace, sort_keys=True) \
                == json.dumps(committed, sort_keys=True), op


class TestFaultCalibrationGuard:
    """Fault-tolerance neutrality gate: a ``fault_plan=None`` build must
    charge byte-for-byte what the committed Figure 2 / Table 1 numbers
    say, and a fault build must add *only* the ``RELIABILITY``
    attribution on top of the untouched calibrated trace."""

    #: Per-path RELIABILITY overhead of a lossless fault build.
    RELIABILITY = {"isend": 43, "put": 34}

    def test_fault_plan_none_keeps_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for label, (isend, put) in \
                TestVCICalibrationGuard.FIGURE2.items():
            config = dataclasses.replace(named_builds()[label],
                                         fault_plan=None)
            assert measure_instructions(config, "isend") == isend, label
            assert measure_instructions(config, "put") == put, label

    def test_fault_plan_none_keeps_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for op, committed in TestVCICalibrationGuard.TABLE1.items():
            rec = measure_call_record(BuildConfig(fault_plan=None), op)
            trace = {cat.name: n for cat, n in
                     sorted(rec.by_category.items(),
                            key=lambda kv: kv[0].name) if n}
            assert json.dumps(trace, sort_keys=True) \
                == json.dumps(committed, sort_keys=True), op

    def test_fault_build_adds_only_reliability(self):
        """A lossless fault build charges the calibrated trace plus
        exactly the RELIABILITY protocol overhead — category by
        category, not just in total."""
        from repro.core.config import BuildConfig
        from repro.ft import FaultPlan
        from repro.perf.msgrate import measure_call_record
        for op, committed in TestVCICalibrationGuard.TABLE1.items():
            expected = dict(committed,
                            RELIABILITY=self.RELIABILITY[op])
            rec = measure_call_record(
                BuildConfig(fault_plan=FaultPlan()), op)
            trace = {cat.name: n for cat, n in rec.by_category.items()
                     if n}
            assert trace == expected, op
            assert rec.total == sum(expected.values()), op


class TestProgressCalibrationGuard:
    """Progress-engine neutrality gate: a ``progress=None`` build must
    charge byte-for-byte what the committed Figure 2 / Table 1 numbers
    say — the engine's hooks are None-guarded everywhere (FP305) and
    may not move a single charged instruction when disabled."""

    def test_progress_none_keeps_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for label, (isend, put) in \
                TestVCICalibrationGuard.FIGURE2.items():
            config = dataclasses.replace(named_builds()[label],
                                         progress=None)
            assert measure_instructions(config, "isend") == isend, label
            assert measure_instructions(config, "put") == put, label

    def test_progress_none_keeps_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for op, committed in TestVCICalibrationGuard.TABLE1.items():
            rec = measure_call_record(BuildConfig(progress=None), op)
            trace = {cat.name: n for cat, n in
                     sorted(rec.by_category.items(),
                            key=lambda kv: kv[0].name) if n}
            assert json.dumps(trace, sort_keys=True) \
                == json.dumps(committed, sort_keys=True), op


class TestProgressBenchSmoke:
    """``benchmarks/bench_progress.py --quick`` as a CI smoke: runs,
    shows the overlap collapse, and retires requests with zero polls."""

    def test_quick_mode_overlaps_and_completes(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_progress.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        for mode, row in result["overlap"]["modes"].items():
            assert row["ratio"] >= 3.0, mode
        for zp in result["zero_poll"]:
            assert all(zp["complete_before_wait"]), zp["mode"]
        assert (ROOT / "BENCH_progress.json").exists()


class TestFaultBenchSmoke:
    """``benchmarks/bench_fault.py --quick`` as a CI smoke: runs,
    reports the standing tax, and delivers intact on the lossy wire."""

    def test_quick_mode_runs_and_delivers(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_fault.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        assert result["standing_tax"]["isend"]["reliability"] == 43
        assert result["standing_tax"]["put"]["reliability"] == 34
        sweep = result["retransmit_sweep"]
        assert all(row["delivered_intact"] for row in sweep)
        assert sweep[-1]["n_retransmits"] > 0


class TestVCIBenchSmoke:
    """``benchmarks/bench_vci.py --quick`` as a CI smoke: runs, writes
    the artifact, and shows the sharded build scaling."""

    def test_quick_mode_runs_and_scales(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_vci.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        assert result["speedup_t4"]["ratio"] >= 2.0
        assert result["validation"]["drained"]
        assert (ROOT / "BENCH_vci.json").exists()


class TestTsanCalibrationGuard:
    """Race-detector neutrality gate: a ``tsan=False`` build must
    charge byte-for-byte what the committed Figure 2 / Table 1 numbers
    say — every detector hook outside ``repro.tsan`` is None-guarded
    (FP306) and may not move a single charged instruction when the
    detector is off."""

    def test_tsan_false_keeps_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for label, (isend, put) in \
                TestVCICalibrationGuard.FIGURE2.items():
            config = dataclasses.replace(named_builds()[label],
                                         tsan=False)
            assert measure_instructions(config, "isend") == isend, label
            assert measure_instructions(config, "put") == put, label

    def test_tsan_false_keeps_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for op, committed in TestVCICalibrationGuard.TABLE1.items():
            rec = measure_call_record(BuildConfig(tsan=False), op)
            trace = {cat.name: n for cat, n in
                     sorted(rec.by_category.items(),
                            key=lambda kv: kv[0].name) if n}
            assert json.dumps(trace, sort_keys=True) \
                == json.dumps(committed, sort_keys=True), op

    def test_tsan_true_is_charge_invisible_too(self):
        """Stronger: even *enabled*, the detector lives in host Python
        outside the ledger — Figure 2 counts do not move."""
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        label = "mpich/ch4 (default)"
        isend, put = TestVCICalibrationGuard.FIGURE2[label]
        config = dataclasses.replace(named_builds()[label], tsan=True)
        assert measure_instructions(config, "isend") == isend
        assert measure_instructions(config, "put") == put


class TestServiceCalibrationGuard:
    """Failure-detector neutrality gate: a ``detector=None`` build must
    charge byte-for-byte what the committed Figure 2 / Table 1 numbers
    say — every detector hook outside ``repro/ft/`` is None-guarded
    (FP307) and may not move a single charged instruction when the
    heartbeat detector is off."""

    def test_detector_none_keeps_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for label, (isend, put) in \
                TestVCICalibrationGuard.FIGURE2.items():
            config = dataclasses.replace(named_builds()[label],
                                         detector=None)
            assert measure_instructions(config, "isend") == isend, label
            assert measure_instructions(config, "put") == put, label

    def test_detector_none_keeps_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for op, committed in TestVCICalibrationGuard.TABLE1.items():
            rec = measure_call_record(BuildConfig(detector=None), op)
            trace = {cat.name: n for cat, n in
                     sorted(rec.by_category.items(),
                            key=lambda kv: kv[0].name) if n}
            assert json.dumps(trace, sort_keys=True) \
                == json.dumps(committed, sort_keys=True), op

    def test_detector_on_is_charge_invisible_on_fault_build(self):
        """Stronger: even *enabled*, heartbeats live in host Python
        outside the ledger — a fault build with the detector armed
        charges exactly what the bare fault build charges."""
        from repro.core.config import BuildConfig
        from repro.ft import FaultPlan
        from repro.ft.detector import DetectorConfig
        from repro.perf.msgrate import measure_call_record
        for op in TestVCICalibrationGuard.TABLE1:
            bare = measure_call_record(
                BuildConfig(fault_plan=FaultPlan()), op)
            armed = measure_call_record(
                BuildConfig(fault_plan=FaultPlan(),
                            detector=DetectorConfig()), op)
            assert armed.total == bare.total, op
            assert dict(armed.by_category) == dict(bare.by_category), op


class TestServiceBenchSmoke:
    """``benchmarks/bench_service.py --quick`` as a CI smoke: the
    measured churn run leaks nothing and the occupancy projection
    reaches a million simulated clients."""

    def test_quick_mode_serves_and_projects(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_service.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=600)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        measured = result["measured"]
        assert measured["requests_leaked"] == 0
        assert measured["requests_completed"] > 0
        sweep = result["projection"]["sweep"]
        assert max(row["num_clients"] for row in sweep) >= 1_000_000
        assert all(row["rate_requests_per_s"] > 0 for row in sweep)
        assert (ROOT / "BENCH_service.json").exists()


class TestTsanBenchSmoke:
    """``benchmarks/bench_tsan.py --quick`` as a CI smoke: charged
    counts identical, threaded flood clean under the detector."""

    def test_quick_mode_runs_clean(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_tsan.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        assert result["charged_instructions"]["identical"]
        enabled = result["threaded_flood"]["enabled"]
        assert enabled["findings"] == 0
        assert enabled["lock_events"] > 0
        assert (ROOT / "BENCH_tsan.json").exists()


class TestBufcheckCLI:
    """``python -m repro.bufcheck`` as the CI copy-census gate runs it."""

    def test_tree_checks_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bufcheck"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_needless_copy_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def send(sendbuf):\n"
                       "    return sendbuf.tobytes()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bufcheck", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "BC504" in proc.stdout

    def test_rules_flag_prints_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bufcheck", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        for rule_id in ("BC501", "BC502", "BC503", "BC504", "BC505"):
            assert rule_id in proc.stdout

    def test_json_snapshot_matches_committed(self, tmp_path):
        out = tmp_path / "COPYMAP.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.bufcheck",
             "--json", str(out)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        import json
        assert json.loads(out.read_text()) \
            == json.loads((ROOT / "COPYMAP.json").read_text())


class TestBufcheckCalibrationGuard:
    """Zero-copy neutrality gate: carrying payloads as views (or
    forcing the legacy copies with ``zero_copy=False``) moves memory
    traffic only — the charged Figure 2 / Table 1 instruction counts
    may not move by a single instruction in either direction."""

    def test_both_modes_keep_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for zero_copy in (True, False):
            for label, (isend, put) in \
                    TestVCICalibrationGuard.FIGURE2.items():
                config = dataclasses.replace(named_builds()[label],
                                             zero_copy=zero_copy)
                assert measure_instructions(config, "isend") == isend, \
                    (label, zero_copy)
                assert measure_instructions(config, "put") == put, \
                    (label, zero_copy)

    def test_both_modes_keep_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for zero_copy in (True, False):
            for op, committed in TestVCICalibrationGuard.TABLE1.items():
                rec = measure_call_record(
                    BuildConfig(zero_copy=zero_copy), op)
                trace = {cat.name: n for cat, n in
                         sorted(rec.by_category.items(),
                                key=lambda kv: kv[0].name) if n}
                assert json.dumps(trace, sort_keys=True) \
                    == json.dumps(committed, sort_keys=True), \
                    (op, zero_copy)


class TestBufcheckBenchSmoke:
    """``benchmarks/bench_bufcheck.py --quick`` as a CI smoke: exactly
    one runtime copy per transfer after the conversion, two before."""

    def test_quick_mode_counts_copies(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_bufcheck.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        stream = result["stream"]
        assert stream["zero_copy"]["copies_per_transfer"] == 1.0
        assert stream["legacy"]["copies_per_transfer"] == 2.0
        assert result["census"]["findings"] == 0
        assert (ROOT / "BENCH_bufcheck.json").exists()


class TestCollectivesCalibrationGuard:
    """Collective-selector neutrality gate: the algorithm subsystem
    lives entirely above the device send path, so neither the default
    (``flat``) selector nor the ``hierarchical`` strategy may move a
    single charged Figure 2 / Table 1 instruction on the calibrated
    point-to-point paths."""

    def test_strategies_keep_figure2_exact(self):
        import dataclasses
        from repro.core.config import named_builds
        from repro.perf.msgrate import measure_instructions
        for strategy in ("flat", "hierarchical"):
            for label, (isend, put) in \
                    TestVCICalibrationGuard.FIGURE2.items():
                config = dataclasses.replace(
                    named_builds()[label], communicator_name=strategy)
                assert measure_instructions(config, "isend") == isend, \
                    (label, strategy)
                assert measure_instructions(config, "put") == put, \
                    (label, strategy)

    def test_strategies_keep_table1_trace(self):
        import json
        from repro.core.config import BuildConfig
        from repro.perf.msgrate import measure_call_record
        for strategy in ("flat", "hierarchical"):
            for op, committed in TestVCICalibrationGuard.TABLE1.items():
                rec = measure_call_record(
                    BuildConfig(communicator_name=strategy), op)
                trace = {cat.name: n for cat, n in
                         sorted(rec.by_category.items(),
                                key=lambda kv: kv[0].name) if n}
                assert json.dumps(trace, sort_keys=True) \
                    == json.dumps(committed, sort_keys=True), \
                    (op, strategy)


class TestCollectivesBenchSmoke:
    """``benchmarks/bench_collectives.py --quick`` as a CI smoke: the
    sweep runs, the hierarchical composition wins at the largest
    point, and the training replicas stay bit-identical."""

    def test_quick_mode_runs_and_wins(self):
        import json
        proc = subprocess.run(
            [sys.executable, "benchmarks/bench_collectives.py",
             "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=600)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        result = json.loads(proc.stdout)
        assert result["hierarchical_vs_flat"]["speedup"] > 1.0
        for strat, row in result["training"].items():
            assert row["replicas_identical"], strat
            assert row["final_loss"] < row["first_loss"], strat


class TestCheckCLI:
    """``python -m repro.check`` — the one-command analysis gate."""

    def test_tree_checks_clean_with_merged_snapshot(self, tmp_path):
        import json
        out = tmp_path / "check.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "--json", str(out)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=600)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        for tool in ("sanitize:", "audit:", "bufcheck:"):
            assert tool in proc.stdout
        merged = json.loads(out.read_text())
        assert merged["exit"] == 0
        assert merged["sanitize"]["findings"]["count"] == 0
        assert merged["audit"]["findings"]["count"] == 0
        assert merged["bufcheck"]["findings"]["count"] == 0

    def test_findings_propagate_to_exit_code(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def send(sendbuf):\n"
                       "    return sendbuf.tobytes()\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 1
        assert "BC504" in proc.stdout

    def test_rules_flag_prints_every_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.check", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        for rule_id in ("MS101", "FP201", "BC504"):
            assert rule_id in proc.stdout


class TestUnifiedLintGate:
    """The single CI lint entry point: ruff (when installed), the MPI
    linter, the fast-path audit, the buffer-ownership census, and a
    quick stress pass under the race detector — one test, every
    analysis, all green or the gate fails."""

    def test_all_analyses_green(self):
        # 1. ruff over the shipped analysis packages (optional tool).
        try:
            ruff = subprocess.run(
                ["ruff", "check", "src/repro/sanitize",
                 "src/repro/audit", "src/repro/tsan",
                 "src/repro/bufcheck", "src/repro/check"],
                cwd=ROOT, capture_output=True, text=True, timeout=120)
            assert ruff.returncode == 0, ruff.stdout + ruff.stderr
        except FileNotFoundError:
            pass   # optional tooling; the dedicated test skips loudly
        # 2. Static MPI-correctness lint over every shipped program.
        lint = subprocess.run(
            [sys.executable, "-m", "repro.sanitize",
             "examples", "src/repro/apps"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert lint.returncode == 0, lint.stdout + lint.stderr
        # 3. Fast-path purity / guard-discipline audit over the tree.
        audit = subprocess.run(
            [sys.executable, "-m", "repro.audit", "src/repro"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert audit.returncode == 0, audit.stdout + audit.stderr
        # 4. Buffer-ownership & copy-census gate over the tree.
        bufcheck = subprocess.run(
            [sys.executable, "-m", "repro.bufcheck"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert bufcheck.returncode == 0, \
            bufcheck.stdout + bufcheck.stderr
        # 5. Quick threaded stress pass under the race detector.
        import json
        stress = subprocess.run(
            [sys.executable, "benchmarks/bench_tsan.py", "--quick"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert stress.returncode == 0, stress.stdout + stress.stderr
        assert json.loads(
            stress.stdout)["threaded_flood"]["enabled"]["findings"] == 0
