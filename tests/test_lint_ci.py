"""CI lint gate: the MPI-correctness linter and (if present) ruff.

The MPI linter runs over every shipped program (``examples/`` and the
mini-apps) exactly as the CI job would:
``python -m repro.sanitize examples src/repro/apps``.  Ruff is optional
tooling — the job skips cleanly when the binary is not installed.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(ROOT / "src")
    return env


class TestSanitizeCLI:
    """``python -m repro.sanitize`` as CI runs it."""

    def test_tree_lints_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize",
             "examples", "src/repro/apps"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_findings_fail_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(comm, buf):\n"
                       "    comm.isend(buf, dest=1, tag=0)\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "MS101" in proc.stdout

    def test_rules_flag_prints_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.sanitize", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        assert "MS101" in proc.stdout and "MSD204" in proc.stdout


class TestRuff:
    """Ruff gate — skipped when the binary is not installed."""

    def test_ruff_clean_on_sanitize_package(self):
        try:
            proc = subprocess.run(
                ["ruff", "check", "src/repro/sanitize"],
                cwd=ROOT, capture_output=True, text=True, timeout=120)
        except FileNotFoundError:
            pytest.skip("ruff not installed in this environment")
        assert proc.returncode == 0, proc.stdout + proc.stderr


class TestAuditCLI:
    """``python -m repro.audit`` as the CI fast-path gate runs it."""

    def test_tree_audits_clean(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "src/repro"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        assert "0 finding(s)" in proc.stdout

    def test_purity_violation_fails_the_gate(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def fastpath(func):\n"
                       "    return func\n"
                       "\n"
                       "@fastpath\n"
                       "def hot(xs):\n"
                       "    return [x for x in xs]\n")
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", str(bad)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 1
        assert "FP201" in proc.stdout

    def test_rules_flag_prints_catalog(self):
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "--rules"],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=120)
        assert proc.returncode == 0
        for rule_id in ("FP101", "FP104", "FP201", "FP205", "FP301",
                        "FP302"):
            assert rule_id in proc.stdout

    def test_json_snapshot_matches_committed(self, tmp_path):
        out = tmp_path / "AUDIT.json"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.audit", "src/repro",
             "--json", str(out)],
            cwd=ROOT, env=_env(), capture_output=True, text=True,
            timeout=300)
        assert proc.returncode == 0, proc.stdout + proc.stderr
        import json
        assert json.loads(out.read_text()) \
            == json.loads((ROOT / "AUDIT.json").read_text())
