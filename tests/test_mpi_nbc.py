"""Nonblocking collectives and neighborhood collectives."""

import numpy as np
import pytest

from repro.consts import PROC_NULL
from repro.errors import MPIErrArg
from repro.mpi import reduceops
from tests.conftest import run_world


class TestIBarrier:
    def test_wait_completes(self):
        def main(comm):
            req = comm.ibarrier()
            req.wait()
            return req.is_complete()

        assert all(run_world(4, main))

    def test_overlap_with_local_work(self):
        def main(comm):
            req = comm.ibarrier()
            work = sum(range(1000))       # overlapped computation
            req.wait()
            return work

        assert run_world(3, main) == [499500] * 3

    def test_test_driven_completion(self):
        """Polling test() must eventually complete the barrier without
        any call to wait()."""
        def main(comm):
            req = comm.ibarrier()
            spins = 0
            while not req.test():
                spins += 1
                if spins > 10_000_000:   # pragma: no cover
                    raise RuntimeError("ibarrier never completed")
            return True

        assert all(run_world(4, main))


class TestIBcast:
    @pytest.mark.parametrize("size", [1, 2, 3, 5, 8])
    def test_matches_blocking_bcast(self, size):
        def main(comm):
            req = comm.ibcast({"k": 1} if comm.rank == 0 else None,
                              root=0)
            req.wait()
            return req.result

        assert run_world(size, main) == [{"k": 1}] * size

    def test_two_outstanding_ibcasts_do_not_cross(self):
        """Concurrent NBCs on one communicator stay isolated via the
        sequence-numbered tags."""
        def main(comm):
            a = comm.ibcast("first" if comm.rank == 0 else None, root=0)
            b = comm.ibcast("second" if comm.rank == 0 else None, root=0)
            b.wait()
            a.wait()
            return a.result, b.result

        assert run_world(4, main) == [("first", "second")] * 4


class TestIAllreduce:
    @pytest.mark.parametrize("size", [1, 2, 4, 6])
    def test_sum(self, size):
        def main(comm):
            req = comm.iallreduce(comm.rank + 1, op=reduceops.SUM)
            req.wait()
            return req.result

        expected = size * (size + 1) // 2
        assert run_world(size, main) == [expected] * size

    def test_max_with_overlap(self):
        def main(comm):
            req = comm.iallreduce(comm.rank * 5, op=reduceops.MAX)
            local = np.arange(64).sum()     # overlap
            req.wait()
            return req.result + 0 * local

        assert run_world(5, main) == [20] * 5

    def test_matches_blocking_variant(self):
        def main(comm):
            nb = comm.iallreduce(comm.rank ** 2)
            blocking = None
            nb.wait()
            blocking = comm.allreduce(comm.rank ** 2)
            return nb.result == blocking

        assert all(run_world(4, main))


class TestIAllgather:
    @pytest.mark.parametrize("size", [1, 2, 3, 4])
    def test_matches_blocking(self, size):
        def main(comm):
            req = comm.iallgather(("r", comm.rank))
            req.wait()
            return req.result

        expected = [("r", i) for i in range(size)]
        assert run_world(size, main) == [expected] * size


class TestIGatherIScatter:
    @pytest.mark.parametrize("size", [1, 2, 4])
    def test_igather(self, size):
        def main(comm):
            req = comm.igather(("r", comm.rank), root=0)
            req.wait()
            return req.result

        results = run_world(size, main)
        assert results[0] == [("r", i) for i in range(size)]
        assert all(r is None for r in results[1:])

    @pytest.mark.parametrize("size", [1, 3, 5])
    def test_iscatter(self, size):
        def main(comm):
            objs = [f"piece{i}" for i in range(size)] \
                if comm.rank == 0 else None
            req = comm.iscatter(objs, root=0)
            req.wait()
            return req.result

        assert run_world(size, main) == [f"piece{i}"
                                         for i in range(size)]

    def test_iscatter_root_validates(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.iscatter([1, 2, 3], root=comm.rank)   # wrong count
            with pytest.raises(MPIErrArg):
                comm.iscatter(None, root=comm.rank)
            return "ok"

        run_world(1, main)

    def test_nonzero_root_gather(self):
        def main(comm):
            req = comm.igather(comm.rank * 2, root=2)
            req.wait()
            return req.result

        results = run_world(3, main)
        assert results[2] == [0, 2, 4]
        assert results[0] is None


class TestNeighborCollectives:
    def test_neighbor_allgather_interior_ring(self):
        def main(comm):
            cart = comm.create_cart((comm.size,), (True,))
            return cart.neighbor_allgather(cart.rank)

        results = run_world(4, main)
        # Order: (minus neighbor, plus neighbor) values.
        assert results[1] == [0, 2]
        assert results[0] == [3, 1]

    def test_neighbor_allgather_boundary_none(self):
        def main(comm):
            cart = comm.create_cart((comm.size,), (False,))
            return cart.neighbor_allgather(cart.rank)

        results = run_world(3, main)
        assert results[0] == [None, 1]
        assert results[2] == [1, None]

    def test_neighbor_alltoall_personalized(self):
        def main(comm):
            cart = comm.create_cart((comm.size,), (True,))
            src, dest = cart.shift(0, 1)
            # Send "(me, to_minus)" to the minus neighbor, etc.
            out = cart.neighbor_alltoall(
                [(cart.rank, "minus"), (cart.rank, "plus")])
            return out

        results = run_world(3, main)
        # Rank 1: from minus neighbor 0 we get 0's "plus" message.
        assert results[1] == [(0, "plus"), (2, "minus")]

    def test_neighbor_alltoall_count_checked(self):
        def main(comm):
            cart = comm.create_cart((comm.size,), (True,))
            with pytest.raises(MPIErrArg):
                cart.neighbor_alltoall([1, 2, 3])
            return "ok"

        run_world(2, main)

    def test_2d_neighbor_count(self):
        def main(comm):
            cart = comm.create_cart((2, 2), (True, True))
            got = cart.neighbor_allgather(cart.rank)
            return len(got)

        assert run_world(4, main) == [4] * 4


class TestAriesFabric:
    def test_registered(self):
        from repro.fabric.model import CRAY_ARIES, fabric_by_name
        assert fabric_by_name("aries") is CRAY_ARIES

    def test_runtime_runs_on_aries(self):
        from repro.core.config import BuildConfig

        def main(comm):
            return comm.allreduce(1)

        assert run_world(2, main, BuildConfig(fabric="aries")) == [2, 2]
