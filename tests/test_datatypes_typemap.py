"""Typemap flattening: segments, coalescing, replication."""

import pytest
from hypothesis import given, strategies as st

from repro.datatypes.typemap import TypeSegment, Typemap


class TestTypeSegment:
    def test_basic_fields(self):
        seg = TypeSegment(4, 8)
        assert seg.end == 12
        assert seg.shifted(10) == TypeSegment(14, 8)

    def test_rejects_nonpositive_length(self):
        with pytest.raises(ValueError):
            TypeSegment(0, 0)
        with pytest.raises(ValueError):
            TypeSegment(0, -3)

    def test_rejects_negative_offset(self):
        with pytest.raises(ValueError):
            TypeSegment(-1, 4)


class TestTypemap:
    def test_single_segment(self):
        tm = Typemap((TypeSegment(0, 8),))
        assert tm.size == 8
        assert tm.lb == 0
        assert tm.ub == 8
        assert tm.span == 8
        assert tm.is_contiguous()

    def test_sorting_and_coalescing(self):
        tm = Typemap((TypeSegment(8, 4), TypeSegment(0, 4),
                      TypeSegment(4, 4)))
        assert len(tm) == 1
        assert tm.segments[0] == TypeSegment(0, 12)

    def test_gap_not_coalesced(self):
        tm = Typemap((TypeSegment(0, 4), TypeSegment(8, 4)))
        assert len(tm) == 2
        assert tm.size == 8
        assert tm.span == 12
        assert not tm.is_contiguous()

    def test_offset_start_not_contiguous(self):
        tm = Typemap((TypeSegment(4, 8),))
        assert not tm.is_contiguous()

    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Typemap((TypeSegment(0, 8), TypeSegment(4, 8)))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Typemap(())

    def test_replicate_dense(self):
        base = Typemap((TypeSegment(0, 4),))
        tm = base.replicate(3, 4)
        assert len(tm) == 1
        assert tm.size == 12

    def test_replicate_strided(self):
        base = Typemap((TypeSegment(0, 4),))
        tm = base.replicate(3, 8)
        assert len(tm) == 3
        assert tm.size == 12
        assert tm.ub == 20

    def test_replicate_rejects_bad_count(self):
        base = Typemap((TypeSegment(0, 4),))
        with pytest.raises(ValueError):
            base.replicate(0, 8)

    def test_byte_offsets(self):
        tm = Typemap((TypeSegment(0, 2), TypeSegment(6, 2)))
        assert list(tm.byte_offsets()) == [0, 1, 6, 7]

    def test_merged(self):
        a = Typemap((TypeSegment(0, 4),))
        b = Typemap((TypeSegment(8, 4),))
        assert a.merged(b).size == 8

    def test_equality_and_hash(self):
        a = Typemap((TypeSegment(0, 4), TypeSegment(8, 4)))
        b = Typemap((TypeSegment(8, 4), TypeSegment(0, 4)))
        assert a == b
        assert hash(a) == hash(b)


@given(st.lists(
    st.tuples(st.integers(0, 50), st.integers(1, 8)),
    min_size=1, max_size=8))
def test_typemap_invariants_hold_for_any_disjoint_input(pairs):
    """size == len(byte_offsets), segments sorted and disjoint."""
    # Space the segments out so they never overlap: place each at
    # offset_i = running position + requested gap.
    segs = []
    pos = 0
    for gap, length in pairs:
        segs.append(TypeSegment(pos + gap, length))
        pos += gap + length
    tm = Typemap(segs)
    offs = tm.byte_offsets()
    assert len(offs) == tm.size
    assert list(offs) == sorted(offs)
    assert tm.lb == offs[0]
    assert tm.ub == offs[-1] + 1
    for earlier, later in zip(tm.segments, tm.segments[1:]):
        assert earlier.end < later.offset or earlier.end <= later.offset
