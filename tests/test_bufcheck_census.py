"""The copy census: COPYMAP.json snapshot discipline and its runtime
ground truth.

Static side: the committed ``COPYMAP.json`` is byte-equivalent to a
fresh census over the shipped tree, covers all 12 published paths, and
shows the zero-copy conversion (fastpath strictly cheaper than the
legacy copy mode on every converted path).

Dynamic side: one eager contiguous transfer performs *exactly* the
number of payload copies the census predicts — with ``zero_copy=True``
one copy end-to-end (the receive-side scatter), with
``zero_copy=False`` two (pack materialization + scatter) — measured by
the :mod:`repro.instrument.copies` counters the pack layer and the
matching engine report into.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.bufcheck.cli import default_paths, run_bufcheck
from repro.core.config import BuildConfig
from repro.instrument import copies
from tests.conftest import run_world

ROOT = pathlib.Path(__file__).resolve().parent.parent

PATH_NAMES = {
    "ch3_isend", "ch3_put",
    "ch4_isend_default", "ch4_isend_noerr", "ch4_isend_nothread",
    "ch4_isend_ipo", "isend_all_opts",
    "ch4_put_default", "ch4_put_noerr", "ch4_put_nothread",
    "ch4_put_ipo", "put_all_opts",
}


@pytest.fixture(scope="module")
def snapshot() -> dict:
    """One fresh census over the shipped tree (the expensive part)."""
    _report, snap = run_bufcheck(default_paths())
    return snap


@pytest.fixture(scope="module")
def committed() -> dict:
    return json.loads((ROOT / "COPYMAP.json").read_text())


class TestCopymapSnapshot:
    def test_matches_committed(self, snapshot, committed):
        """Regenerating the census reproduces the committed artifact —
        the AUDIT.json diff discipline for data movement."""
        assert snapshot == committed

    def test_all_published_paths_covered(self, committed):
        assert set(committed["paths"]) == PATH_NAMES

    def test_tree_is_finding_free(self, committed):
        assert committed["findings"]["count"] == 0
        assert committed["findings"]["by_rule"] == {}

    def test_isend_rows_have_both_sides(self, committed):
        for name, row in committed["paths"].items():
            assert row["send"], name
            if row["op"] == "isend":
                assert row["recv"], name


class TestZeroCopyConversion:
    """The conversion's contract, as frozen in the committed census."""

    def test_fastpath_never_costlier_than_copy_mode(self, committed):
        for name, row in committed["paths"].items():
            for side in ("send", "recv"):
                variant = row.get(side)
                if not variant:
                    continue
                assert variant["fastpath"]["copies"] \
                    <= variant["copy_mode"]["copies"], (name, side)

    def test_isend_send_side_is_zero_copy(self, committed):
        """The converted eager contiguous send path carries a view the
        whole way: no copy site on any published isend path."""
        for name, row in committed["paths"].items():
            if row["op"] != "isend":
                continue
            assert row["send"]["fastpath"]["copies"] == 0, name
            assert row["send"]["copy_mode"]["copies"] == 1, name

    def test_recv_side_keeps_the_one_scatter(self, committed):
        """Landing into the user's receive buffer is the one copy MPI
        semantics require; the census sees exactly it."""
        for name, row in committed["paths"].items():
            if row["op"] != "isend":
                continue
            sites = row["recv"]["fastpath"]["copy_sites"]
            assert len(sites) == 1, name
            assert "unpack" in sites[0] and "scatter" in sites[0], name

    def test_put_paths_dropped_the_origin_copy(self, committed):
        for name, row in committed["paths"].items():
            if row["op"] != "put":
                continue
            assert row["send"]["fastpath"]["copies"] \
                < row["send"]["copy_mode"]["copies"], name

    def test_send_path_pins_a_keepalive_transfer(self, committed):
        """The view-carrying send paths own a sanctioned transfer point
        (``Message.own_data``) — the census proves the keepalive
        discipline is on the path, not just in the rulebook."""
        for name, row in committed["paths"].items():
            if row["op"] != "isend":
                continue
            assert row["send"]["fastpath"]["transfers"] >= 1, name


def _one_transfer(comm, n):
    """Rank 0 sends *n* contiguous doubles, rank 1 lands them."""
    if comm.rank == 0:
        src = np.arange(n, dtype=np.float64)
        comm.Send(src, dest=1, tag=7)
        return None
    dst = np.zeros(n, dtype=np.float64)
    comm.Recv(dst, source=0, tag=7)
    return dst.sum()


class TestRuntimeCrossCheck:
    """The static census against the live counters, per build mode."""

    N = 64          #: doubles per transfer (well under eager cutoff)
    NBYTES = N * 8

    def _measure(self, config) -> copies.CopySnapshot:
        with copies.track() as delta:
            results = run_world(2, _one_transfer, config=config,
                                args=(self.N,))
        assert results[1] == sum(range(self.N))
        return delta()

    def test_zero_copy_build_matches_census(self, committed):
        row = committed["paths"]["ch4_isend_default"]
        expected = (row["send"]["fastpath"]["copies"]
                    + row["recv"]["fastpath"]["copies"])
        moved = self._measure(BuildConfig())
        assert moved.n_copies == expected == 1
        assert moved.bytes_copied == self.NBYTES
        # The payload travelled as a view at least once.
        assert moved.n_views >= 1

    def test_copy_mode_build_matches_census(self, committed):
        row = committed["paths"]["ch4_isend_default"]
        expected = (row["send"]["copy_mode"]["copies"]
                    + row["recv"]["copy_mode"]["copies"])
        moved = self._measure(BuildConfig(zero_copy=False))
        assert moved.n_copies == expected == 2
        assert moved.bytes_copied == 2 * self.NBYTES
        # Owned bytes never need the ownership-transfer escape hatch.
        assert moved.n_transfers == 0

    def test_conversion_halves_runtime_copies(self):
        fast = self._measure(BuildConfig())
        legacy = self._measure(BuildConfig(zero_copy=False))
        assert fast.n_copies < legacy.n_copies
        assert fast.bytes_copied * 2 == legacy.bytes_copied
