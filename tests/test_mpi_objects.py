"""Groups, Info, Status, reduction operators."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.consts import UNDEFINED
from repro.datatypes.predefined import DOUBLE, INT
from repro.errors import (MPIErrGroup, MPIErrInfo, MPIErrOp, MPIErrRank,
                          MPIErrTruncate)
from repro.mpi import reduceops
from repro.mpi.group import IDENT, SIMILAR, UNEQUAL, Group
from repro.mpi.info import MAX_INFO_KEY, MAX_INFO_VAL, Info
from repro.mpi.status import Status
from repro.runtime.request import Request, RequestKind


class TestGroup:
    def test_basic_queries(self):
        g = Group([3, 1, 4])
        assert g.size == 3
        assert g.world_rank(0) == 3
        assert g.rank_of_world(4) == 2
        assert g.rank_of_world(9) == UNDEFINED
        assert 1 in g and 9 not in g

    def test_duplicates_rejected(self):
        with pytest.raises(MPIErrGroup):
            Group([0, 0])

    def test_negative_rank_rejected(self):
        with pytest.raises(MPIErrRank):
            Group([-1])

    def test_set_operations_preserve_order(self):
        a = Group([0, 1, 2, 3])
        b = Group([2, 3, 4, 5])
        assert a.union(b).world_ranks == (0, 1, 2, 3, 4, 5)
        assert a.intersection(b).world_ranks == (2, 3)
        assert a.difference(b).world_ranks == (0, 1)

    def test_incl_excl(self):
        g = Group([10, 20, 30, 40])
        assert g.incl([2, 0]).world_ranks == (30, 10)
        assert g.excl([1, 3]).world_ranks == (10, 30)
        with pytest.raises(MPIErrRank):
            g.incl([4])

    def test_range_incl(self):
        g = Group(list(range(10)))
        assert g.range_incl([(0, 6, 2)]).world_ranks == (0, 2, 4, 6)
        assert g.range_incl([(3, 1, -1)]).world_ranks == (3, 2, 1)
        with pytest.raises(MPIErrGroup):
            g.range_incl([(0, 3, 0)])

    def test_compare(self):
        assert Group([0, 1]).compare(Group([0, 1])) == IDENT
        assert Group([0, 1]).compare(Group([1, 0])) == SIMILAR
        assert Group([0, 1]).compare(Group([0, 2])) == UNEQUAL

    def test_translate_ranks(self):
        """The §3.1 recipe: comm ranks -> world ranks."""
        sub = Group([5, 7, 9])
        world = Group(range(12))
        assert sub.translate_ranks([0, 1, 2], world) == [5, 7, 9]
        assert world.translate_ranks([7, 0], sub) == [1, UNDEFINED]

    @given(st.lists(st.integers(0, 63), min_size=1, max_size=16,
                    unique=True),
           st.lists(st.integers(0, 63), min_size=1, max_size=16,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_set_identities(self, xs, ys):
        a, b = Group(xs), Group(ys)
        union = a.union(b)
        inter = a.intersection(b)
        diff = a.difference(b)
        assert union.size == a.size + b.size - inter.size
        assert diff.size == a.size - inter.size
        for wr in inter.world_ranks:
            assert wr in a and wr in b
        for wr in a.world_ranks:
            assert wr in union


class TestInfo:
    def test_set_get_delete(self):
        info = Info()
        info.set("no_locks", "true")
        assert info.get("no_locks") == "true"
        assert info.get("missing", "d") == "d"
        assert "no_locks" in info
        info.delete("no_locks")
        assert info.nkeys == 0

    def test_delete_missing_rejected(self):
        with pytest.raises(MPIErrInfo):
            Info().delete("nope")

    def test_length_limits(self):
        info = Info()
        with pytest.raises(MPIErrInfo):
            info.set("k" * (MAX_INFO_KEY + 1), "v")
        with pytest.raises(MPIErrInfo):
            info.set("k", "v" * (MAX_INFO_VAL + 1))
        with pytest.raises(MPIErrInfo):
            info.set("", "v")

    def test_dup_is_independent(self):
        a = Info({"x": "1"})
        b = a.dup()
        b.set("x", "2")
        assert a.get("x") == "1"
        assert a == Info({"x": "1"})

    def test_key_order(self):
        info = Info()
        info.set("b", "1")
        info.set("a", "2")
        assert list(info.keys()) == ["b", "a"]


class TestStatus:
    def test_from_request(self):
        req = Request(RequestKind.RECV)
        req.complete(0.0, source=3, tag=9, count_bytes=16)
        status = Status.from_request(req)
        assert (status.source, status.tag) == (3, 9)
        assert status.get_count(DOUBLE) == 2
        assert status.get_elements(INT) == 4

    def test_partial_element_rejected(self):
        status = Status(source=0, tag=0, count_bytes=10)
        with pytest.raises(MPIErrTruncate):
            status.get_count(DOUBLE)


class TestReduceOps:
    def test_arithmetic_ops(self):
        a = np.array([1.0, 5.0])
        b = np.array([3.0, 2.0])
        assert reduceops.SUM.combine_arrays(a, b).tolist() == [4.0, 7.0]
        assert reduceops.PROD.combine_arrays(a, b).tolist() == [3.0, 10.0]
        assert reduceops.MAX.combine_arrays(a, b).tolist() == [3.0, 5.0]
        assert reduceops.MIN.combine_arrays(a, b).tolist() == [1.0, 2.0]

    def test_logical_ops_normalize(self):
        a = np.array([0, 2, 0, 5], dtype=np.int32)
        b = np.array([1, 0, 0, 7], dtype=np.int32)
        assert reduceops.LAND.combine_arrays(a, b).tolist() == [0, 0, 0, 1]
        assert reduceops.LOR.combine_arrays(a, b).tolist() == [1, 1, 0, 1]

    def test_bitwise_ops(self):
        a = np.array([0b1100], dtype=np.uint8)
        b = np.array([0b1010], dtype=np.uint8)
        assert reduceops.BAND.combine_arrays(a, b)[0] == 0b1000
        assert reduceops.BOR.combine_arrays(a, b)[0] == 0b1110
        assert reduceops.BXOR.combine_arrays(a, b)[0] == 0b0110

    def test_apply_numpy_in_place(self):
        target = np.array([1.0, 2.0])
        reduceops.SUM.apply_numpy(np.array([10.0, 20.0]), target)
        assert target.tolist() == [11.0, 22.0]

    def test_replace_and_noop(self):
        target = np.array([1.0])
        reduceops.REPLACE.apply_numpy(np.array([9.0]), target)
        assert target[0] == 9.0
        reduceops.NO_OP.apply_numpy(np.array([5.0]), target)
        assert target[0] == 9.0

    def test_shape_mismatch_rejected(self):
        with pytest.raises(MPIErrOp):
            reduceops.SUM.combine_arrays(np.zeros(2), np.zeros(3))
        with pytest.raises(MPIErrOp):
            reduceops.SUM.apply_numpy(np.zeros(2), np.zeros(3))

    def test_python_object_face(self):
        assert reduceops.SUM.combine_py(2, 3) == 5
        assert reduceops.MAX.combine_py("a", "b") == "b"
        assert reduceops.LAND.combine_py(1, 0) is False

    def test_registry(self):
        assert reduceops.BY_NAME["MPI_SUM"] is reduceops.SUM
        assert len(reduceops.BY_NAME) == 11

    @given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=20))
    @settings(max_examples=40, deadline=None)
    def test_sum_commutative_associative(self, values):
        arr = np.asarray(values)
        rev = arr[::-1].copy()
        forward = reduceops.SUM.combine_arrays(arr, np.zeros_like(arr))
        backward = reduceops.SUM.combine_arrays(rev, np.zeros_like(rev))
        assert float(forward.sum()) == pytest.approx(float(backward.sum()))
