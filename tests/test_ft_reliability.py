"""Fault-tolerant transport: injection, reliability, and recovery.

Property tests for :mod:`repro.ft`: seeded lossy fabrics must deliver
exactly-once in posted order per (source, tag) stream; a fault-plan
rank kill must surface ``MPI_ERR_PROC_FAILED`` on pending receives
under ``MPI_ERRORS_RETURN``; and the ``MPIX_Comm_*`` recovery
collectives must yield a working communicator over the survivors.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.errors import MPIErrArg, MPIErrProcFailed, MPIErrRevoked
from repro.ft import ERRORS_RETURN, FaultPlan
from repro.ft.injection import FaultyNetmod
from repro.runtime.world import World

#: A plan lossy enough to exercise drop/dup/reorder on a 50-message run.
LOSSY = dict(drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.15)

N_MSGS = 40


def _lossy_plan(seed: int) -> FaultPlan:
    return FaultPlan(seed=seed, **LOSSY)


class TestFaultPlan:
    """The plan is a pure, seeded function of the packet coordinates."""

    def test_fates_deterministic(self):
        plan = _lossy_plan(7)
        fates = [plan.fate(0, 1, seq, 0) for seq in range(100)]
        again = [_lossy_plan(7).fate(0, 1, seq, 0) for seq in range(100)]
        assert fates == again

    def test_seed_changes_fates(self):
        a = [_lossy_plan(1).fate(0, 1, s, 0) for s in range(100)]
        b = [_lossy_plan(2).fate(0, 1, s, 0) for s in range(100)]
        assert a != b

    def test_zero_plan_is_lossless(self):
        plan = FaultPlan()
        assert not plan.lossy
        for seq in range(50):
            fate = plan.fate(0, 1, seq, 0)
            assert not (fate.drop or fate.corrupt or fate.duplicate
                        or fate.reorder or fate.delay)

    def test_retry_backoff_monotone(self):
        plan = FaultPlan()
        delays = [plan.backoff_s(a) for a in range(1, 10)]
        assert delays == sorted(delays)


class TestExactlyOnceDelivery:
    """Lossy wire, intact semantics: every payload arrives once, in
    posted order per (source, tag) stream."""

    @pytest.mark.parametrize("seed", [1, 7, 13])
    @pytest.mark.parametrize("num_vcis", [1, 4])
    def test_stream_exactly_once_in_order(self, seed, num_vcis):
        config = BuildConfig(fault_plan=_lossy_plan(seed),
                             num_vcis=num_vcis)

        def fn(comm):
            if comm.rank == 0:
                for i in range(N_MSGS):
                    comm.send(("payload", i), dest=1)
                return None
            return [comm.recv(source=0) for _ in range(N_MSGS)]

        world = World(2, config)
        results = world.run(fn)
        assert results[1] == [("payload", i) for i in range(N_MSGS)]

    @pytest.mark.parametrize("seed", [3, 11])
    def test_bidirectional_streams_intact(self, seed):
        config = BuildConfig(fault_plan=_lossy_plan(seed))

        def fn(comm):
            me, peer = comm.rank, 1 - comm.rank
            reqs = [comm.isend((me, i), dest=peer) for i in range(N_MSGS)]
            got = [comm.recv(source=peer) for _ in range(N_MSGS)]
            for req in reqs:
                req.wait()
            return got

        world = World(2, config)
        results = world.run(fn)
        for me in (0, 1):
            assert results[me] == [(1 - me, i) for i in range(N_MSGS)]

    def test_faults_were_actually_injected(self):
        config = BuildConfig(fault_plan=_lossy_plan(7))
        stats = {}

        def fn(comm):
            if comm.rank == 0:
                for i in range(50):
                    comm.send(i, dest=1)
            else:
                for _ in range(50):
                    comm.recv(source=0)
            comm.barrier()
            proc = comm.proc
            netmod = proc.device.netmod
            assert isinstance(netmod, FaultyNetmod)
            stats[comm.rank] = (proc.faults.stats(), netmod.n_dropped,
                                netmod.n_duplicated, netmod.n_reordered)
            return None

        World(2, config).run(fn)
        sender, n_drop, n_dup, n_reorder = stats[0]
        assert sender["n_retransmits"] > 0
        assert n_drop > 0 and n_dup > 0 and n_reorder > 0
        receiver = stats[1][0]
        assert receiver["n_dup_dropped"] > 0
        assert receiver["n_ooo_buffered"] > 0

    def test_lossless_fault_build_charges_reliability(self):
        """A fault build on a perfect wire still pays the protocol's
        per-message overhead — the paper's point that reliability is a
        standing tax, not a failure-time one."""
        from repro.perf.msgrate import measure_call_record
        rec = measure_call_record(BuildConfig(fault_plan=FaultPlan()),
                                  "isend")
        by_cat = {cat.name: n for cat, n in rec.by_category.items()}
        assert by_cat["RELIABILITY"] == 43
        rec = measure_call_record(BuildConfig(fault_plan=None), "isend")
        by_cat = {cat.name: n for cat, n in rec.by_category.items() if n}
        assert "RELIABILITY" not in by_cat


class TestProcFailure:
    """A killed rank surfaces MPI_ERR_PROC_FAILED, not a hang."""

    def test_pending_recv_fails_with_proc_failed(self):
        plan = FaultPlan(kill_rank=2, kill_after_sends=3)

        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 2:
                for i in range(10):
                    comm.send(i, dest=0)
                return "never reached"
            if comm.rank == 1:
                return "idle"
            got = []
            for _ in range(10):
                try:
                    got.append(comm.recv(source=2))
                except MPIErrProcFailed as exc:
                    return got, exc.rank, exc.op, exc.error_class
            return got, None, None, None

        results = World(3, BuildConfig(fault_plan=plan)).run(fn)
        got, failed_rank, op, err_class = results[0]
        assert got == list(range(3))     # messages before the kill land
        assert failed_rank == 2
        assert op == "MPI_Irecv"
        assert err_class == "MPI_ERR_PROC_FAILED"
        assert results[2] is None        # the killed rank returns nothing

    def test_send_to_dead_rank_fails(self):
        plan = FaultPlan(kill_rank=1, kill_after_sends=0, max_retries=2)

        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 1:
                while True:         # killed at the first MPI entry
                    comm.recv(source=0)
            for _ in range(100):
                if comm.proc.world.ft.is_dead(1):
                    break
                import time
                time.sleep(0.01)
            try:
                comm.send("hello", dest=1)
                return "sent"
            except MPIErrProcFailed as exc:
                return exc.rank

        results = World(2, BuildConfig(fault_plan=plan)).run(fn)
        assert results[0] == 1

    def test_errhandler_callback_invoked(self):
        plan = FaultPlan(kill_rank=1, kill_after_sends=0)
        seen = []

        def fn(comm):
            if comm.rank == 1:
                comm.recv(source=0)   # killed at this MPI entry
                return None
            comm.set_errhandler(
                lambda c, exc: seen.append(type(exc).__name__))
            try:
                for _ in range(10):
                    comm.recv(source=1)
            except MPIErrProcFailed:
                return "handled"
            return "no error"

        results = World(2, BuildConfig(fault_plan=plan)).run(fn)
        assert results[0] == "handled"
        assert seen == ["MPIErrProcFailed"]


class TestUlfmRecovery:
    """Revoke / shrink / agree rebuild a working communicator."""

    def test_revoke_raises_on_next_op(self):
        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 0:
                ext.MPIX_Comm_revoke(comm)
            try:
                comm.send(1, dest=(comm.rank + 1) % comm.size)
                return "no error"
            except MPIErrRevoked as exc:
                return exc.error_class

        results = World(2, BuildConfig(fault_plan=FaultPlan())).run(fn)
        assert results == ["MPI_ERR_REVOKED"] * 2

    def test_shrink_after_kill_yields_working_subcomm(self):
        plan = FaultPlan(kill_rank=3, kill_after_sends=0)

        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 3:
                comm.recv(source=0)   # killed at this MPI entry
                return None
            new = ext.MPIX_Comm_shrink(comm)
            assert new.get_errhandler() == ERRORS_RETURN
            total = new.allreduce(comm.rank)
            arr = np.full(4, float(new.rank))
            out = np.empty(4)
            new.Allreduce(arr, out)
            return new.size, total, out[0]

        results = World(4, BuildConfig(fault_plan=plan)).run(fn)
        for rank in (0, 1, 2):
            size, total, reduced = results[rank]
            assert size == 3
            assert total == 0 + 1 + 2
            assert reduced == 0.0 + 1.0 + 2.0
        assert results[3] is None

    def test_agree_is_fault_aware_and(self):
        def fn(comm):
            flag = comm.rank != 1   # rank 1 votes False
            return ext.MPIX_Comm_agree(comm, flag)

        results = World(3, BuildConfig(fault_plan=FaultPlan())).run(fn)
        assert results == [False, False, False]

        def fn_all(comm):
            return ext.MPIX_Comm_agree(comm, True)

        results = World(3, BuildConfig(fault_plan=FaultPlan())).run(fn_all)
        assert results == [True, True, True]

    def test_mpix_requires_fault_build(self):
        def fn(comm):
            with pytest.raises(MPIErrArg):
                ext.MPIX_Comm_revoke(comm)
            return "ok"

        assert World(1, BuildConfig()).run(fn) == ["ok"]

    def test_plain_build_has_no_fault_state(self):
        def fn(comm):
            return comm.proc.faults is None, comm.proc.world.ft is None

        assert World(1, BuildConfig()).run(fn) == [(True, True)]
