"""Timeline tracer and application profile report."""

import numpy as np

from repro.analysis.appreport import profile_world, render_profile
from repro.analysis.timeline import (TimelineEvent, disable_timeline,
                                     enable_timeline, mark, render_gantt,
                                     render_summary, summarize)
from repro.core.config import BuildConfig
from repro.instrument.categories import Category
from repro.runtime.world import World


def _pingpong(comm):
    buf = np.zeros(4, dtype=np.float64)
    if comm.rank == 0:
        with mark(comm.proc, "compute"):
            comm.proc.charge_compute(1e-6)
        comm.Isend(buf, dest=1, tag=0).wait()
        comm.Recv(buf, source=1, tag=0)
    else:
        comm.Recv(buf, source=0, tag=0)
        comm.Isend(buf, dest=0, tag=0).wait()


class TestTimeline:
    def test_events_recorded_per_rank(self):
        world = World(2, BuildConfig())
        enable_timeline(world)
        world.run(_pingpong)
        names0 = [e.name for e in world.proc(0).timeline]
        assert "MPI_Isend" in names0
        assert "MPI_Irecv" in names0
        assert "compute" in names0
        assert all(isinstance(e, TimelineEvent)
                   for e in world.proc(0).timeline)

    def test_events_have_positive_spans_in_order(self):
        world = World(2, BuildConfig())
        enable_timeline(world)
        world.run(_pingpong)
        for proc in world.procs:
            for event in proc.timeline:
                assert event.t1 >= event.t0 >= 0.0
            starts = [e.t0 for e in proc.timeline]
            assert starts == sorted(starts)

    def test_disable_stops_recording(self):
        world = World(2, BuildConfig())
        enable_timeline(world)
        disable_timeline(world)
        world.run(_pingpong)
        assert world.proc(0).timeline is None

    def test_mark_noop_when_disabled(self):
        world = World(1, BuildConfig())
        with mark(world.proc(0), "anything"):
            pass   # must not raise

    def test_summary_and_renderers(self):
        world = World(2, BuildConfig())
        enable_timeline(world)
        world.run(_pingpong)
        rows = summarize(world)
        by_name = {r["name"]: r for r in rows}
        assert by_name["MPI_Isend"]["count"] == 2
        assert by_name["MPI_Isend"]["total_us"] > 0
        text = render_summary(world)
        assert "MPI_Isend" in text
        gantt = render_gantt(world, width=40)
        assert "rank   0" in gantt
        assert "legend:" in gantt

    def test_gantt_empty(self):
        world = World(1, BuildConfig())
        enable_timeline(world)
        assert render_gantt(world) == "(empty timeline)"

    def test_rma_events_named(self):
        def main(comm):
            from repro.mpi.rma import Window
            win, _ = Window.allocate(comm, nbytes=8, disp_unit=8)
            win.fence()
            win.put(np.zeros(1), target_rank=(comm.rank + 1) % comm.size)
            win.fence()

        world = World(2, BuildConfig())
        enable_timeline(world)
        world.run(main)
        assert any(e.name == "MPI_Put" for e in world.proc(0).timeline)


class TestAppProfile:
    def test_profile_totals_match_counters(self):
        world = World(2, BuildConfig())
        world.run(_pingpong)
        profile = profile_world(world)
        assert profile.total == world.total_instructions()
        assert profile.nranks == 2
        assert profile.by_category[Category.ERROR_CHECKING] > 0
        assert 0 < profile.mandatory_fraction < 1
        assert profile.removable_fraction + profile.mandatory_fraction \
            == 1.0

    def test_ipo_build_profile_is_all_mandatory(self):
        world = World(2, BuildConfig.ipo_build())
        world.run(_pingpong)
        profile = profile_world(world)
        assert profile.removable_fraction == 0.0
        assert profile.mandatory_fraction == 1.0

    def test_render(self):
        world = World(2, BuildConfig())
        world.run(_pingpong)
        text = render_profile(profile_world(world))
        assert "Error checking" in text
        assert "mandated by MPI-3.1" in text
