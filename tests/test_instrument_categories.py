"""Category/subsystem metadata and cost-registry round-trips."""

from __future__ import annotations

from repro.instrument.categories import (Category, Subsystem,
                                         category_metadata,
                                         subsystem_metadata)
from repro.instrument.costs import COSTS, CostEntry, cost_model_entries


class TestMetadata:
    """Every enum member carries one line of documentation."""

    def test_category_metadata_total(self):
        meta = category_metadata()
        assert set(meta) == set(Category)
        assert all(isinstance(text, str) and text for text in meta.values())

    def test_subsystem_metadata_total(self):
        meta = subsystem_metadata()
        assert set(meta) == set(Subsystem)
        assert all(isinstance(text, str) and text for text in meta.values())

    def test_metadata_mappings_read_only(self):
        import pytest
        with pytest.raises(TypeError):
            category_metadata()[Category.MANDATORY] = "x"
        with pytest.raises(TypeError):
            subsystem_metadata()[Subsystem.DESCRIPTOR] = "x"


class TestRegistryRoundTrip:
    """cost_model_entries() is a lossless flat view of COSTS."""

    def test_every_entry_well_formed(self):
        for key, entry in cost_model_entries().items():
            assert isinstance(entry, CostEntry)
            assert entry.key == key
            assert entry.category in category_metadata()
            # Subsystem attribution only exists for subsystem-charged
            # work (mandatory decomposition, CH3 step tables).
            assert entry.subsystem is None \
                or entry.subsystem in subsystem_metadata()
            assert entry.cost >= 0

    def test_group_totals_survive_flattening(self):
        registry = cost_model_entries()
        for group, obj in (("isend_error", COSTS.isend_error),
                           ("put_error", COSTS.put_error),
                           ("isend_redundant", COSTS.isend_redundant),
                           ("put_redundant", COSTS.put_redundant),
                           ("isend_mandatory", COSTS.isend_mandatory),
                           ("put_mandatory", COSTS.put_mandatory)):
            flat = sum(e.cost for k, e in registry.items()
                       if k.startswith(group + "."))
            assert flat == obj.total, group

    def test_ch3_step_tables_survive_flattening(self):
        registry = cost_model_entries()
        for table_name, table in (("ch3_isend_steps", COSTS.ch3_isend_steps),
                                  ("ch3_put_steps", COSTS.ch3_put_steps)):
            for step, (_category, _subsystem, cost) in table.items():
                entry = registry[f"{table_name}.{step}"]
                assert entry.cost == cost, (table_name, step)

    def test_mandatory_subsystem_attribution(self):
        registry = cost_model_entries()
        assert registry["isend_mandatory.request_mgmt"].subsystem \
            is Subsystem.REQUEST_MGMT
        assert registry["put_mandatory.descriptor"].subsystem \
            is Subsystem.DESCRIPTOR
        assert registry["global_rank_lookup"].subsystem \
            is Subsystem.RANK_TRANSLATION

    def test_scalar_categories(self):
        registry = cost_model_entries()
        assert registry["isend_thread_check"].category \
            is Category.THREAD_SAFETY
        assert registry["put_function_call"].category \
            is Category.FUNCTION_CALL
        assert registry["noreq_counter_inc"].category is Category.MANDATORY

    def test_every_category_used_by_some_entry(self):
        used = {e.category for e in cost_model_entries().values()}
        assert used == set(Category)

    def test_registry_read_only_and_stable(self):
        import pytest
        registry = cost_model_entries()
        with pytest.raises(TypeError):
            registry["isend_thread_check"] = None
        assert cost_model_entries().keys() == registry.keys()
