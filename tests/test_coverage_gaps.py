"""Targeted tests for corners not covered elsewhere."""

import numpy as np
import pytest

from repro.consts import (ANY_SOURCE, ANY_TAG, PROC_NULL,
                          is_wildcard_source, is_wildcard_tag)
from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from repro.mpi.rma import Window
from repro.perf.scaling import strong_scaling_sweep
from tests.conftest import run_world


class TestConstsHelpers:
    def test_wildcards(self):
        assert is_wildcard_source(ANY_SOURCE)
        assert not is_wildcard_source(0)
        assert not is_wildcard_source(PROC_NULL)
        assert is_wildcard_tag(ANY_TAG)
        assert not is_wildcard_tag(0)


class TestRMAGlobalRank:
    def test_put_with_global_rank_flag(self):
        """§3.1 applied to RMA: target addressed by world rank."""
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)   # reversed
            mem = np.zeros(2, dtype=np.float64)
            win = Window.create(sub, mem, disp_unit=8)
            win.fence()
            # sub rank 0 is world rank (size-1); address it globally.
            target_world = sub.world_rank_of(0)
            if sub.rank == 1:
                win.put(np.array([4.5]), target_rank=target_world,
                        target_disp=0, flags=ext.GLOBAL_RANK)
            win.fence()
            return comm.rank, mem[0]

        results = dict(run_world(3, main))
        assert results[2] == 4.5          # world rank 2 = sub rank 0
        assert results[0] == 0.0

    def test_put_all_opts_entry_point(self):
        def main(comm):
            mem = np.zeros(2, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                vaddr = win.remote_addr(1, disp=1)
                win.put_all_opts(np.array([6.5]), target_world=1,
                                 vaddr=vaddr)
            win.fence()
            return mem.tolist()

        assert run_world(2, main)[1] == [0.0, 6.5]


class TestGetAccumulate:
    def test_accumulate_to_proc_null_noop(self):
        def main(comm):
            mem = np.ones(1, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            win.accumulate(np.array([5.0]), target_rank=PROC_NULL)
            win.get(np.zeros(1), target_rank=PROC_NULL)
            win.fence()
            return mem[0]

        assert run_world(2, main) == [1.0, 1.0]

    def test_derived_accumulate_target_rejected(self):
        from repro.datatypes import vector
        from repro.datatypes.predefined import DOUBLE
        from repro.errors import MPIErrDatatype

        def main(comm):
            mem = np.zeros(8, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            dt = vector(2, 1, 2, DOUBLE).commit()
            with pytest.raises(MPIErrDatatype):
                win.accumulate((np.ones(2), 2, DOUBLE), target_rank=0,
                               target_disp=0, target=(1, dt))
            win.fence()
            return "ok"

        run_world(2, main)


class TestScalingHarness:
    def test_empty_rank_counts_rejected(self):
        with pytest.raises(ValueError):
            strong_scaling_sweep(lambda comm: None, [])

    def test_single_point(self):
        points = strong_scaling_sweep(
            lambda comm: comm.allreduce(1), [2], BuildConfig())
        assert len(points) == 1
        assert points[0].speedup == 1.0
        assert points[0].efficiency == 1.0


class TestExtensionMisuse:
    def test_nomatch_message_requires_nomatch_recv(self):
        """A nomatch message never satisfies a normal posted receive —
        the streams are disjoint by construction."""
        def main(comm):
            if comm.rank == 0:
                comm.isend_nomatch(np.ones(1), 1, tag=5).wait()
                comm.Isend(np.full(1, 2.0), 1, tag=5).wait()
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, tag=5)   # gets the NORMAL message
            normal = buf[0]
            comm.recv_nomatch(buf)
            return normal, buf[0]

        assert run_world(2, main)[1] == (2.0, 1.0)

    def test_isend_global_bad_world_rank_unchecked_build(self):
        """Without error checking, an out-of-range world rank surfaces
        as a runtime failure (the no-err build trade-off)."""
        def main(comm):
            with pytest.raises(Exception):
                comm.isend_global(np.zeros(1), 99, tag=0)
            return "ok"

        run_world(2, main, BuildConfig.no_errors())


class TestWaitallNoreqEdge:
    def test_waitall_with_nothing_pending(self):
        def main(comm):
            return comm.waitall_noreq()

        assert run_world(2, main) == [0, 0]

    def test_mixed_noreq_and_requested_sends(self):
        def main(comm):
            if comm.rank == 0:
                req = comm.Isend(np.ones(1), dest=1, tag=0)
                comm.isend_noreq(np.full(1, 2.0), 1, tag=1)
                req.wait()
                done = comm.waitall_noreq()
                return done
            a, b = np.zeros(1), np.zeros(1)
            comm.Recv(a, source=0, tag=0)
            comm.Recv(b, source=0, tag=1)
            return (a[0], b[0])

        results = run_world(2, main)
        assert results[0] == 1
        assert results[1] == (1.0, 2.0)


class TestVersionMetadata:
    def test_version_string(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_top_level_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert hasattr(repro, name), name   # COMM_NULL is None
