"""Hybrid race/deadlock detector (``repro.tsan``): unit algebra,
seeded true-positive fixtures for TS401-TS404, and the runtime stress
suite that must come back clean under ``tsan=True``."""

from __future__ import annotations

import threading
from dataclasses import replace

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.ft import FaultPlan
from repro.runtime.world import World
from repro.tsan import TS_RULES, WorldTsan, render_ts_catalog
from repro.tsan.vectorclock import Epoch, VectorClock


def _in_thread(fn):
    """Run *fn* to completion on a fresh thread (its own detector tid)."""
    err = []

    def body():
        try:
            fn()
        except BaseException as exc:   # pragma: no cover - surfacing
            err.append(exc)

    t = threading.Thread(target=body)
    t.start()
    t.join()
    if err:
        raise err[0]


def _rule_ids(tsan: WorldTsan) -> list[str]:
    return [f.rule_id for f in tsan.findings]


class TestVectorClockAlgebra:
    """The FastTrack clock/epoch primitives."""

    def test_join_is_componentwise_max(self):
        a, b = VectorClock({0: 3, 1: 1}), VectorClock({1: 5, 2: 2})
        a.join(b)
        assert (a.get(0), a.get(1), a.get(2)) == (3, 5, 2)

    def test_leq_detects_ordering(self):
        a = VectorClock({0: 2})
        b = VectorClock({0: 3, 1: 1})
        assert a.leq(b) and not b.leq(a)

    def test_epoch_happens_before_is_one_lookup(self):
        e = Epoch(1, 4)
        assert e.happens_before(VectorClock({1: 4}))
        assert not e.happens_before(VectorClock({1: 3}))
        assert not e.happens_before(VectorClock({0: 9}))


class TestSeededRaces:
    """Each TS rule fires on its minimal seeded-racy fixture."""

    def test_ts401_unordered_unlocked_writes(self):
        tsan = WorldTsan()
        _in_thread(lambda: tsan.note_access("field", what="the field"))
        _in_thread(lambda: tsan.note_access("field", what="the field"))
        assert _rule_ids(tsan) == ["TS401"]
        assert "the field" in tsan.report()[0]

    def test_ts401_read_write_race(self):
        tsan = WorldTsan()
        _in_thread(lambda: tsan.note_access("f", write=False))
        _in_thread(lambda: tsan.note_access("f", write=True))
        assert _rule_ids(tsan) == ["TS401"]

    def test_ts401_suppressed_by_common_lock(self):
        tsan = WorldTsan()
        lock = tsan.make_lock("engine", "mq")

        def access():
            with lock:
                tsan.note_access("field")

        _in_thread(access)
        _in_thread(access)
        assert _rule_ids(tsan) == []

    def test_ts401_suppressed_by_message_edge(self):
        tsan = WorldTsan()

        def publisher():
            tsan.note_access("field")
            tsan.hb_publish("handoff")

        def consumer():
            tsan.hb_consume("handoff")
            tsan.note_access("field")

        _in_thread(publisher)
        _in_thread(consumer)
        assert _rule_ids(tsan) == []

    def test_ts401_suppressed_by_fork_edge(self):
        tsan = WorldTsan()

        def parent():
            tsan.note_access("field")
            tsan.thread_fork("child")

        def child():
            tsan.thread_begin("child")
            tsan.note_access("field")

        _in_thread(parent)
        _in_thread(child)
        assert _rule_ids(tsan) == []

    def test_ts401_lock_edges_order_alternating_holders(self):
        # Classic FastTrack: same lock, alternating writers — the
        # release/acquire chain orders them, lockset never empty.
        tsan = WorldTsan()
        lock = tsan.make_lock("request", "req")

        def access():
            with lock:
                tsan.note_access("state")

        for _ in range(3):
            _in_thread(access)
        assert _rule_ids(tsan) == []

    def test_ts402_lock_order_inversion(self):
        tsan = WorldTsan()
        a = tsan.make_lock("engine", "A")
        b = tsan.make_lock("engine", "B")

        def inverted():
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass

        _in_thread(inverted)
        assert _rule_ids(tsan) == ["TS402"]
        assert "A" in tsan.report()[0] and "B" in tsan.report()[0]

    def test_ts402_consistent_order_clean(self):
        tsan = WorldTsan()
        a = tsan.make_lock("engine", "A")
        b = tsan.make_lock("engine", "B")

        def consistent():
            for _ in range(2):
                with a:
                    with b:
                        pass

        _in_thread(consistent)
        assert _rule_ids(tsan) == []

    def test_ts403_lock_held_across_blocking_wait(self):
        tsan = WorldTsan()
        lock = tsan.make_lock("engine", "mq")

        def blocker():
            with lock:
                tsan.check_blocking_wait("recv request")

        _in_thread(blocker)
        assert _rule_ids(tsan) == ["TS403"]

    def test_ts403_sched_lock_exempt(self):
        # The NBC schedule lock deliberately spans inner waits.
        tsan = WorldTsan()
        lock = tsan.make_lock("sched", "nbc")

        def blocker():
            with lock:
                tsan.check_blocking_wait("recv request")

        _in_thread(blocker)
        assert _rule_ids(tsan) == []

    def test_ts404_continuation_under_engine_lock(self):
        tsan = WorldTsan()
        lock = tsan.make_lock("shard", "mq0")

        def dispatch():
            with lock:
                tsan.check_continuation("continuation")

        _in_thread(dispatch)
        assert _rule_ids(tsan) == ["TS404"]

    def test_ts404_cs_lock_dispatch_allowed(self):
        # Continuations run under the rank's reentrant VCI lock by
        # documented engine design.
        tsan = WorldTsan()
        lock = tsan.make_lock("vci", "vci0")

        def dispatch():
            with lock:
                tsan.check_continuation("continuation")

        _in_thread(dispatch)
        assert _rule_ids(tsan) == []

    def test_findings_deduplicate(self):
        tsan = WorldTsan()
        _in_thread(lambda: tsan.note_access("f"))
        for _ in range(3):
            _in_thread(lambda: tsan.note_access("f"))
        assert _rule_ids(tsan) == ["TS401"]

    def test_assert_clean_raises_with_findings(self):
        tsan = WorldTsan()
        _in_thread(lambda: tsan.note_access("f"))
        _in_thread(lambda: tsan.note_access("f"))
        with pytest.raises(AssertionError, match="TS401"):
            tsan.assert_clean()


class TestConditionIntegration:
    """TsanLock under threading.Condition: waiters hold nothing."""

    def test_waiter_does_not_hold_lock_during_wait(self):
        tsan = WorldTsan()
        cv = threading.Condition(tsan.make_lock("progress_cv", "cv"))
        started = threading.Event()

        def waiter():
            with cv:
                started.set()
                cv.wait(timeout=10.0)
                # Woken and reacquired: a blocking check *here* should
                # fire (we hold the cv lock again)...

        def waker():
            started.wait(timeout=10.0)
            with cv:
                # ...but the parked waiter holds nothing right now:
                tsan.check_blocking_wait("probe while waiter parked")
                cv.notify_all()

        threads = [threading.Thread(target=waiter),
                   threading.Thread(target=waker)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Exactly one finding: the waker's own held cv lock (TS403) —
        # nothing from the parked waiter's released lock.
        assert _rule_ids(tsan) == ["TS403"]
        assert "progress_cv" in tsan.report()[0]


_STRESS_MATRIX = [
    BuildConfig(thread_safety=True, tsan=True),
    BuildConfig(thread_safety=True, tsan=True, num_vcis=4),
    BuildConfig(thread_safety=True, tsan=True, num_vcis=2,
                progress="thread"),
    BuildConfig(thread_safety=True, tsan=True, num_vcis=4,
                progress="per-vci"),
]

_FT_MATRIX = [
    BuildConfig(thread_safety=True, tsan=True, num_vcis=2,
                fault_plan=FaultPlan(seed=7, drop_rate=0.08,
                                     reorder_rate=0.15,
                                     duplicate_rate=0.08)),
    BuildConfig(thread_safety=True, tsan=True, num_vcis=2,
                progress="thread",
                fault_plan=FaultPlan(seed=7, drop_rate=0.08,
                                     reorder_rate=0.15,
                                     duplicate_rate=0.08)),
]


def _run_clean(nranks, fn, config, timeout=120.0):
    """Run and assert the detector saw nothing."""
    world = World(nranks, config)
    results = world.run(fn, timeout=timeout)
    assert world.tsan is not None
    world.tsan.assert_clean()
    assert world.tsan.n_lock_events > 0
    return results


class TestStressSuiteClean:
    """The real runtime under the detector: zero findings.

    These are the seeded stress scenarios from
    ``test_stress_concurrency.py`` re-run with ``tsan=True`` across the
    progress/VCI matrix — the acceptance gate that the instrumented
    runtime is free of TS401-TS404 defects the detector can observe."""

    @pytest.mark.parametrize("config", _STRESS_MATRIX,
                             ids=lambda c: f"vcis{c.num_vcis}-"
                                           f"{c.progress or 'inline'}")
    def test_threaded_flood_clean(self, config):
        nthreads, n = 3, 12

        def main(comm):
            peer = 1 - comm.rank
            out = [None] * nthreads

            def worker(tid):
                sreqs = [comm.Isend(
                    np.full(1, comm.rank * 1000.0 + tid * 100 + i),
                    dest=peer, tag=tid) for i in range(n)]
                buf = np.zeros(1)
                got = []
                for _ in range(n):
                    comm.Recv(buf, source=peer, tag=tid)
                    got.append(float(buf[0]))
                for r in sreqs:
                    r.wait()
                out[tid] = got

            workers = [threading.Thread(target=worker, args=(t,))
                       for t in range(nthreads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            comm.barrier()
            return out

        results = _run_clean(2, main, config)
        for rank, out in enumerate(results):
            src = 1 - rank
            for tid, got in enumerate(out):
                assert got == [src * 1000.0 + tid * 100 + i
                               for i in range(n)]

    @pytest.mark.parametrize("config", _STRESS_MATRIX,
                             ids=lambda c: f"vcis{c.num_vcis}-"
                                           f"{c.progress or 'inline'}")
    def test_cancel_storm_clean(self, config):
        nthreads, n = 2, 16

        def main(comm):
            if comm.rank == 0:
                def sender(tid):
                    reqs = [comm.Isend(np.full(2, float(i)), dest=1,
                                       tag=tid) for i in range(n)]
                    for r in reqs:
                        r.wait()

                workers = [threading.Thread(target=sender, args=(t,))
                           for t in range(nthreads)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                comm.barrier()
                return None

            out = [None] * nthreads

            def receiver(tid):
                buf = np.zeros(2)
                values, cancelled = [], 0
                for i in range(n):
                    req = comm.Irecv(buf, source=0, tag=tid)
                    if i % 2 and comm.proc.engine.cancel_posted(req):
                        cancelled += 1
                        continue
                    req.wait()
                    values.append(float(buf[0]))
                out[tid] = (values, cancelled)

            workers = [threading.Thread(target=receiver, args=(t,))
                       for t in range(nthreads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            comm.barrier()
            buf = np.zeros(2)
            for tid, (values, cancelled) in enumerate(out):
                for _ in range(cancelled):
                    comm.Recv(buf, source=0, tag=tid)
                    values.append(float(buf[0]))
            return [values for values, _ in out]

        values_by_tag = _run_clean(2, main, config)[1]
        for values in values_by_tag:
            assert values == [float(i) for i in range(n)]

    @pytest.mark.parametrize("config", _STRESS_MATRIX,
                             ids=lambda c: f"vcis{c.num_vcis}-"
                                           f"{c.progress or 'inline'}")
    def test_wildcard_drain_clean(self, config):
        nthreads, n = 2, 10

        def main(comm):
            from repro.consts import ANY_SOURCE, ANY_TAG
            if comm.rank == 0:
                def sender(tid):
                    for i in range(n):
                        comm.Isend(np.full(1, tid * 100.0 + i),
                                   dest=1, tag=tid).wait()

                workers = [threading.Thread(target=sender, args=(t,))
                           for t in range(nthreads)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                return None

            got = []
            buf = np.zeros(1)
            for _ in range(nthreads * n):
                comm.Recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                got.append(float(buf[0]))
            return got

        got = _run_clean(2, main, config)[1]
        expected = sorted(t * 100.0 + i
                          for t in range(nthreads) for i in range(n))
        assert sorted(got) == expected

    @pytest.mark.parametrize("config", _FT_MATRIX,
                             ids=["ft-inline", "ft-progress"])
    def test_fault_injection_clean(self, config):
        def main(comm):
            rank = comm.rank
            reqs = []
            for i in range(12):
                reqs.append(comm.isend((rank, i),
                                       (rank + 1) % comm.size, tag=i))
                reqs.append(comm.irecv((rank - 1) % comm.size, tag=i))
            for r in reqs:
                r.wait()
            return comm.allreduce(1)

        assert _run_clean(3, main, config) == [3, 3, 3]

    def test_nbc_under_progress_clean(self):
        config = BuildConfig(thread_safety=True, tsan=True, num_vcis=2,
                             progress="thread")

        def main(comm):
            r1 = comm.iallreduce(comm.rank)
            r2 = comm.ibarrier()
            r1.wait()
            r2.wait()
            return r1.result

        assert _run_clean(4, main, config) == [6, 6, 6, 6]


class TestZeroOverheadWhenDisabled:
    """tsan=False builds carry no detector objects at all."""

    def test_no_detector_objects_on_plain_build(self):
        world = World(2, BuildConfig())
        assert world.tsan is None
        for proc in world.procs:
            assert proc.tsan is None

    def test_results_identical_with_and_without(self):
        def main(comm):
            return comm.allreduce(comm.rank + 1)

        base = BuildConfig(thread_safety=True, num_vcis=2)
        plain = World(3, base).run(main)
        checked = World(3, replace(base, tsan=True)).run(main)
        assert plain == checked


class TestCatalog:
    """TS401-TS404 are catalogued and renderable."""

    def test_all_rules_present(self):
        assert set(TS_RULES) == {"TS401", "TS402", "TS403", "TS404"}
        assert all(rule.dynamic for rule in TS_RULES.values())

    def test_catalog_renders_every_rule(self):
        text = render_ts_catalog()
        for rule_id in TS_RULES:
            assert rule_id in text
