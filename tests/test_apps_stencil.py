"""Five-point stencil: mode equivalence and physics vs a numpy reference."""

import numpy as np
import pytest

from repro.apps.stencil import MODES, StencilGrid
from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from tests.conftest import run_world


def numpy_jacobi(py, px, ny, nx, iterations, top=1.0):
    """Serial reference of the same global problem."""
    u = np.zeros((py * ny + 2, px * nx + 2))
    u[0, :] = top
    for _ in range(iterations):
        u[1:-1, 1:-1] = 0.25 * (u[:-2, 1:-1] + u[2:, 1:-1]
                                + u[1:-1, :-2] + u[1:-1, 2:])
    return u[1:-1, 1:-1]


def run_stencil(nranks, rank_dims, mode, iterations=40,
                local_shape=(8, 8)):
    def main(comm):
        grid = StencilGrid(comm, rank_dims, local_shape, mode=mode)
        grid.set_dirichlet(top=1.0)
        for _ in range(iterations):
            grid.jacobi_step()
        return grid.gather_global()

    return run_world(nranks, main, BuildConfig.ipo_build())[0]


class TestPhysics:
    @pytest.mark.parametrize("rank_dims", [(1, 1), (2, 1), (2, 2)])
    def test_matches_numpy_reference(self, rank_dims):
        px, py = rank_dims
        got = run_stencil(px * py, rank_dims, "standard")
        ref = numpy_jacobi(py, px, 8, 8, 40)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-14)

    @pytest.mark.parametrize("mode", MODES)
    def test_all_modes_agree(self, mode):
        got = run_stencil(4, (2, 2), mode)
        ref = run_stencil(4, (2, 2), "standard")
        np.testing.assert_array_equal(got, ref)

    def test_heat_diffuses_from_top(self):
        got = run_stencil(4, (2, 2), "standard", iterations=100)
        assert got[0].mean() > got[-1].mean() > 0.0

    def test_solve_with_tolerance_stops_early(self):
        def main(comm):
            grid = StencilGrid(comm, (2, 2), (6, 6), mode="standard")
            grid.set_dirichlet(top=1.0)
            iters, delta = grid.solve(iterations=5000, tol=1e-9)
            return iters, delta

        iters, delta = run_world(4, main)[0]
        assert iters < 5000
        assert delta < 1e-9


class TestConfigurationErrors:
    def test_rank_grid_must_match_comm(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                StencilGrid(comm, (3, 3))
            return "ok"

        run_world(4, main)

    def test_bad_mode_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                StencilGrid(comm, (1, 1), mode="telepathy")
            return "ok"

        run_world(1, main)


class TestInstructionOrdering:
    def test_extension_modes_spend_fewer_instructions(self):
        """§3.1/§3.4: npn beats standard, global beats npn."""
        def main(comm, mode):
            grid = StencilGrid(comm, (2, 2), (6, 6), mode=mode)
            grid.set_dirichlet(top=1.0)
            for _ in range(10):
                grid.jacobi_step()
            return comm.proc.counter.total

        cfg = BuildConfig.ipo_build()
        totals = {mode: sum(run_world(4, main, cfg, args=(mode,)))
                  for mode in MODES}
        assert totals["npn"] < totals["standard"]
        assert totals["global"] < totals["npn"]
