"""Calibration identities of the cost model (paper-published aggregates)."""

import dataclasses

import pytest

from repro.instrument import costs
from repro.instrument.categories import Category, Subsystem


class TestPaperAggregates:
    def test_default_model_validates(self):
        costs.validate(costs.COSTS)

    def test_isend_table1_rows(self):
        m = costs.COSTS
        assert m.isend_error.total == 74
        assert m.isend_thread_check == 6
        assert m.isend_function_call == 23
        assert m.isend_redundant.total == 59
        assert m.isend_mandatory.total == 59

    def test_put_table1_rows_resolved_to_fig2(self):
        m = costs.COSTS
        assert m.put_error.total == 72
        assert m.put_thread_check == 14
        assert m.put_function_call == 25
        # Table 1 prints 62 but then the column sums to 217, not the
        # published 215; we resolve to Figure 2 (see EXPERIMENTS.md).
        assert m.put_redundant.total == 60
        assert m.put_mandatory.total == 44

    def test_figure2_build_totals(self):
        m = costs.COSTS
        assert m.expected_ch4_default("isend") == 221
        assert m.expected_ch4_default("put") == 215
        assert m.expected_ch4_noerr("isend") == 147
        assert m.expected_ch4_noerr("put") == 143
        assert m.expected_ch4_nothread("isend") == 141
        assert m.expected_ch4_nothread("put") == 129
        assert m.expected_ch4_ipo("isend") == 59
        assert m.expected_ch4_ipo("put") == 44
        assert m.expected_ch3("isend") == 253
        assert m.expected_ch3("put") == 1342

    def test_section37_all_opts(self):
        assert costs.COSTS.expected_all_opts("isend") == 16

    def test_section3_savings(self):
        m = costs.COSTS
        assert m.isend_mandatory.rank_translation - m.global_rank_lookup == 10
        assert m.put_mandatory.vm_addressing - m.virtual_addr_lookup == 4
        assert m.isend_mandatory.object_lookup \
            - m.predefined_object_lookup == 8
        assert m.isend_mandatory.proc_null - m.npn_proc_null == 3
        assert m.isend_mandatory.request_mgmt - m.noreq_counter_inc == 10
        assert m.isend_mandatory.match_bits - m.nomatch_bits == 5

    def test_ch3_step_sums(self):
        m = costs.COSTS
        assert sum(c for _, _, c in m.ch3_isend_steps.values()) == 150
        assert sum(c for _, _, c in m.ch3_put_steps.values()) == 1231


class TestModelStructure:
    def test_mandatory_mapping_covers_all_subsystems(self):
        mapping = costs.ISEND_MANDATORY.as_mapping()
        assert set(mapping) == set(Subsystem) - {Subsystem.CH3_PROTOCOL}
        assert sum(mapping.values()) == costs.ISEND_MANDATORY.total

    def test_put_has_no_request_or_match_costs(self):
        assert costs.PUT_MANDATORY.request_mgmt == 0
        assert costs.PUT_MANDATORY.match_bits == 0
        assert costs.PUT_MANDATORY.vm_addressing > 0

    def test_isend_has_no_vm_addressing(self):
        assert costs.ISEND_MANDATORY.vm_addressing == 0

    def test_ch3_steps_are_categorized(self):
        for steps in (costs.CH3_ISEND_STEPS, costs.CH3_PUT_STEPS):
            for name, (category, subsystem, cost) in steps.items():
                assert isinstance(category, Category), name
                assert cost > 0, name
                if category is Category.MANDATORY:
                    assert isinstance(subsystem, Subsystem), name

    def test_validate_catches_drift(self):
        broken = dataclasses.replace(costs.COSTS, isend_thread_check=7)
        with pytest.raises(AssertionError):
            costs.validate(broken)

    def test_validate_catches_all_opts_drift(self):
        broken = dataclasses.replace(costs.COSTS, fused_descriptor_isend=11)
        with pytest.raises(AssertionError):
            costs.validate(broken)
