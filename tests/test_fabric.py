"""Fabric cost models and topology."""

import math

import pytest

from repro.fabric.model import (CPI, FABRICS, INFINITE, OFI_PSM2, UCX_EDR,
                                fabric_by_name)
from repro.fabric.topology import Topology, TorusTopology, balanced_dims


class TestCalibration:
    def test_cpi_pins_the_132_8M_peak(self):
        """Section 3.7 / Figure 6: 16 instructions at 2.2 GHz must give
        exactly 132.8 million messages per second."""
        rate = INFINITE.message_rate(16)
        assert rate == pytest.approx(132.8e6, rel=1e-12)
        assert CPI == pytest.approx(2.2e9 / (16 * 132.8e6))

    def test_ofi_isend_gain_is_fifty_percent(self):
        """Figure 3: Original (253) -> ipo (59) is ~1.5x on OFI."""
        gain = OFI_PSM2.message_rate(59) / OFI_PSM2.message_rate(253)
        assert gain == pytest.approx(1.5, abs=0.02)

    def test_ofi_put_gain_is_about_fourfold(self):
        """Figure 3: Original put (1342) -> ipo put (44) ~ 4x."""
        gain = OFI_PSM2.message_rate(44) / OFI_PSM2.message_rate(1342)
        assert 4.0 < gain < 5.0

    def test_infinite_fabric_is_software_limited(self):
        assert INFINITE.inject_cycles == 0
        assert INFINITE.latency_s == 0
        assert INFINITE.transfer_seconds(10**6) == 0


class TestFabricSpec:
    def test_conversions_are_inverse(self):
        for spec in FABRICS.values():
            assert spec.cycles_to_seconds(
                spec.seconds_to_cycles(1e-6)) == pytest.approx(1e-6)

    def test_issue_cycles_includes_payload_on_finite_bw(self):
        small = OFI_PSM2.issue_cycles(100, 0)
        large = OFI_PSM2.issue_cycles(100, 10**6)
        assert large > small

    def test_pt2pt_rendezvous_adds_round_trip(self):
        eager = OFI_PSM2.pt2pt_seconds(100, 1024, rendezvous=False)
        rndv = OFI_PSM2.pt2pt_seconds(100, 1024, rendezvous=True)
        assert rndv == pytest.approx(eager + 2 * OFI_PSM2.latency_s)

    def test_rate_monotone_in_instructions(self):
        rates = [UCX_EDR.message_rate(n) for n in (44, 129, 253, 1342)]
        assert rates == sorted(rates, reverse=True)

    def test_lookup(self):
        assert fabric_by_name("ofi") is OFI_PSM2
        with pytest.raises(KeyError):
            fabric_by_name("myrinet")


class TestTopology:
    def test_block_placement(self):
        topo = Topology(nranks=40, cores_per_node=16)
        assert topo.nnodes == 3
        assert topo.node_of(0) == 0
        assert topo.node_of(15) == 0
        assert topo.node_of(16) == 1
        assert topo.core_of(17) == 1
        assert topo.same_node(0, 15)
        assert not topo.same_node(15, 16)

    def test_ranks_on_node_partial_last(self):
        topo = Topology(nranks=20, cores_per_node=16)
        assert list(topo.ranks_on_node(1)) == list(range(16, 20))
        with pytest.raises(ValueError):
            topo.ranks_on_node(2)

    def test_rank_bounds_checked(self):
        topo = Topology(nranks=4)
        with pytest.raises(ValueError):
            topo.node_of(4)
        with pytest.raises(ValueError):
            topo.core_of(-1)

    def test_invalid_construction(self):
        with pytest.raises(ValueError):
            Topology(nranks=0)
        with pytest.raises(ValueError):
            Topology(nranks=4, cores_per_node=0)


class TestTorus:
    def test_balanced_dims_cover(self):
        for n in (1, 7, 64, 100, 512):
            dims = balanced_dims(n, 5)
            assert math.prod(dims) >= n
            assert len(dims) == 5

    def test_hops_symmetric_and_wrapping(self):
        topo = TorusTopology(nranks=64, cores_per_node=1, dims=(4, 4, 4))
        assert topo.hops(0, 0) == 0
        assert topo.hops(0, 1) == topo.hops(1, 0)
        # coordinate (0,0,0) to (0,0,3): wraps to 1 hop on a size-4 ring.
        assert topo.hops(0, 3) == 1

    def test_torus_rejects_too_small_dims(self):
        with pytest.raises(ValueError):
            TorusTopology(nranks=64, cores_per_node=1, dims=(2, 2, 2))

    def test_mean_neighbor_hops_small(self):
        topo = TorusTopology(nranks=64, cores_per_node=1, dims=(4, 4, 4))
        assert 0 < topo.mean_neighbor_hops() <= 4

    def test_networkx_graph_matches_hops(self):
        nx = pytest.importorskip("networkx")
        topo = TorusTopology(nranks=16, cores_per_node=1, dims=(4, 4))
        graph = topo.to_networkx()
        for a, b in ((0, 1), (0, 5), (2, 14)):
            nx_dist = nx.shortest_path_length(graph, a, b)
            assert nx_dist == topo.hops(a, b)
