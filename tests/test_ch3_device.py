"""The CH3 ("MPICH/Original") device: functional parity, its heavier
critical path, protocol selection, and extension rejection."""

import numpy as np
import pytest

from repro.ch3.protocol import Protocol, choose_protocol, wire_overhead_s
from repro.core.config import BuildConfig
from repro.datatypes.predefined import DOUBLE
from repro.errors import MPIErrArg
from repro.fabric.model import BGQ_TORUS, OFI_PSM2
from tests.conftest import run_world

CH3 = BuildConfig.original


class TestFunctionalParity:
    """Everything that works on CH4 must work identically on CH3."""

    def test_pt2pt(self):
        def main(comm):
            if comm.rank == 0:
                comm.send([1, 2, 3], dest=1, tag=0)
                return None
            return comm.recv(source=0, tag=0)

        assert run_world(2, main, CH3())[1] == [1, 2, 3]

    def test_collectives(self):
        def main(comm):
            return comm.allreduce(comm.rank), comm.allgather(comm.rank)

        results = run_world(4, main, CH3())
        assert all(r == (6, [0, 1, 2, 3]) for r in results)

    def test_rma(self):
        def main(comm):
            mem = np.zeros(2, dtype=np.float64)
            from repro.mpi.rma import Window
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                win.put(np.array([1.5, 2.5]), target_rank=1)
            win.fence()
            out = np.zeros(2)
            if comm.rank == 0:
                win.get(out, target_rank=1)
                win.flush(1)
            win.fence()
            return mem.tolist(), out.tolist()

        results = run_world(2, main, CH3())
        assert results[1][0] == [1.5, 2.5]
        assert results[0][1] == [1.5, 2.5]

    def test_ssend(self):
        def main(comm):
            if comm.rank == 0:
                comm.ssend("sync", dest=1, tag=0)
                return "done"
            return comm.recv(source=0, tag=0)

        assert run_world(2, main, CH3()) == ["done", "sync"]

    def test_proc_null(self):
        from repro.consts import PROC_NULL

        def main(comm):
            comm.send("x", dest=PROC_NULL)
            return comm.recv(source=PROC_NULL)

        assert run_world(1, main, CH3()) == [None]


class TestCriticalPath:
    def test_isend_253_instructions(self):
        from repro.perf.msgrate import measure_instructions
        assert measure_instructions(CH3(), "isend") == 253

    def test_put_1342_instructions(self):
        from repro.perf.msgrate import measure_instructions
        assert measure_instructions(CH3(), "put") == 1342

    def test_no_error_build_drops_error_charges(self):
        from repro.perf.msgrate import measure_instructions
        cfg = BuildConfig.original(error_checking=False)
        assert measure_instructions(cfg, "isend") == 253 - 74

    def test_extensions_rejected(self):
        from repro.core import extensions as ext

        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.isend_global(np.zeros(1), 0)
            with pytest.raises(MPIErrArg):
                comm.isend_noreq(np.zeros(1), 0)
            with pytest.raises(MPIErrArg):
                comm.isend_nomatch(np.zeros(1), 0)
            return "ok"

        run_world(1, main, CH3())


class TestProtocol:
    def test_threshold_selection(self):
        assert choose_protocol(100, OFI_PSM2) is Protocol.EAGER
        assert choose_protocol(OFI_PSM2.rendezvous_threshold,
                               OFI_PSM2) is Protocol.EAGER
        assert choose_protocol(OFI_PSM2.rendezvous_threshold + 1,
                               OFI_PSM2) is Protocol.RENDEZVOUS

    def test_override(self):
        assert choose_protocol(100, OFI_PSM2,
                               threshold_override=50) \
            is Protocol.RENDEZVOUS

    def test_wire_overhead(self):
        assert wire_overhead_s(Protocol.EAGER, OFI_PSM2) == 0.0
        assert wire_overhead_s(Protocol.RENDEZVOUS, OFI_PSM2) == \
            pytest.approx(2 * OFI_PSM2.latency_s)

    def test_device_counts_protocols(self):
        cfg = CH3(fabric="bgq", eager_threshold=1024)

        def main(comm):
            small = np.zeros(64, dtype=np.float64)     # 512 B: eager
            large = np.zeros(1024, dtype=np.float64)   # 8 KiB: rndv
            if comm.rank == 0:
                comm.Isend(small, dest=1, tag=0).wait()
                comm.Isend(large, dest=1, tag=1).wait()
                dev = comm.proc.device
                return dev.n_eager, dev.n_rendezvous
            comm.Recv(np.zeros(64, dtype=np.float64), source=0, tag=0)
            comm.Recv(np.zeros(1024, dtype=np.float64), source=0, tag=1)
            return None

        # Use distinct nodes so traffic crosses the "network", where
        # the BGQ threshold applies.
        from repro.fabric.topology import Topology
        from repro.runtime.world import World
        world = World(2, cfg, topology=Topology(nranks=2,
                                                cores_per_node=1))
        assert world.run(main)[0] == (1, 1)

    def test_rendezvous_costs_extra_latency(self):
        from repro.fabric.topology import Topology
        from repro.runtime.world import World

        def main(comm, nbytes):
            data = np.zeros(nbytes // 8, dtype=np.float64)
            if comm.rank == 0:
                t0 = comm.proc.vclock.now
                comm.Isend(data, dest=1, tag=0).wait()
                return comm.proc.vclock.now - t0
            comm.Recv(np.zeros(nbytes // 8, dtype=np.float64),
                      source=0, tag=0)
            return None

        def elapsed(nbytes):
            world = World(2, CH3(fabric="bgq"),
                          topology=Topology(nranks=2, cores_per_node=1))
            return world.run(main, args=(nbytes,))[0]

        just_under = elapsed(BGQ_TORUS.rendezvous_threshold - 8)
        just_over = elapsed(BGQ_TORUS.rendezvous_threshold + 8)
        # The sender's completion jumps by the RTS/CTS round trip
        # (minus the small payload-size difference in injection cost).
        assert just_over - just_under >= 1.8 * BGQ_TORUS.latency_s
