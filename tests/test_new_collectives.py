"""Buffer Gather/Scatter/Reduce_scatter_block/Scan and object
reduce_scatter, plus waitsome/testany/testsome."""

import numpy as np
import pytest

from repro.errors import MPIErrArg, MPIErrRequest
from repro.mpi import reduceops
from repro.runtime.request import Request, RequestKind, waitsome
from repro.runtime.request import testany as req_testany
from repro.runtime.request import testsome as req_testsome
from tests.conftest import run_world


class TestGatherScatterBuf:
    def test_Gather(self):
        def main(comm):
            send = np.full(3, float(comm.rank))
            recv = np.zeros(3 * comm.size) if comm.rank == 1 else None
            comm.Gather(send, recv, root=1)
            return recv.tolist() if comm.rank == 1 else None

        out = run_world(3, main)[1]
        assert out == [0.0] * 3 + [1.0] * 3 + [2.0] * 3

    def test_Scatter(self):
        def main(comm):
            send = np.arange(2 * comm.size, dtype=np.float64) \
                if comm.rank == 0 else None
            recv = np.zeros(2)
            comm.Scatter(send, recv, root=0)
            return recv.tolist()

        assert run_world(3, main) == [[0.0, 1.0], [2.0, 3.0],
                                      [4.0, 5.0]]

    def test_Gather_missing_recvbuf_rejected(self):
        def main(comm):
            if comm.rank == 0:
                with pytest.raises(MPIErrArg):
                    comm.Gather(np.zeros(1), None, root=0)
            else:
                comm.Gather(np.zeros(1), None, root=0)
            return "ok"

        # Root raises before communicating, so non-roots would hang —
        # use a single-rank world for the validation check.
        run_world(1, lambda comm: pytest.raises(
            MPIErrArg, comm.Gather, np.zeros(1), None, 0) and "ok")

    def test_Scatter_size_mismatch_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.Scatter(np.zeros(5), np.zeros(2), root=0)
            return "ok"

        run_world(1, main)


class TestReduceScatter:
    def test_buffer_variant(self):
        def main(comm):
            send = np.arange(2 * comm.size, dtype=np.float64) \
                + 100.0 * comm.rank
            recv = np.zeros(2)
            comm.Reduce_scatter_block(send, recv, op=reduceops.SUM)
            return recv.tolist()

        results = run_world(4, main)
        # Column sums: sum over ranks of (100*rank + offset).
        base = 100.0 * (0 + 1 + 2 + 3)
        for rank, got in enumerate(results):
            assert got == [base + 4 * (2 * rank),
                           base + 4 * (2 * rank + 1)]

    def test_object_variant(self):
        def main(comm):
            objs = [(comm.rank, dest) for dest in range(comm.size)]
            return comm.reduce_scatter_block(
                [o[0] + o[1] for o in objs], op=reduceops.SUM)

        results = run_world(3, main)
        # rank d receives sum over src of (src + d).
        assert results == [0 + 1 + 2 + 0 * 3,
                           0 + 1 + 2 + 1 * 3,
                           0 + 1 + 2 + 2 * 3]

    def test_object_wrong_count_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.reduce_scatter_block([1], op=reduceops.SUM)
            return "ok"

        run_world(2, lambda comm: (pytest.raises(
            MPIErrArg, comm.reduce_scatter_block, [1] * (comm.size + 1))
            and "ok"))


class TestScanBuf:
    def test_prefix_sums(self):
        def main(comm):
            send = np.full(2, float(comm.rank + 1))
            recv = np.zeros(2)
            comm.Scan(send, recv, op=reduceops.SUM)
            return recv.tolist()

        results = run_world(4, main)
        assert results == [[1.0, 1.0], [3.0, 3.0], [6.0, 6.0],
                           [10.0, 10.0]]

    def test_size_mismatch_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.Scan(np.zeros(2), np.zeros(3))
            return "ok"

        run_world(1, main)


class TestRequestSets:
    def _mixed(self, n_done, n_pending):
        reqs = [Request(RequestKind.SEND) for _ in range(n_done +
                                                         n_pending)]
        for req in reqs[:n_done]:
            req.complete(0.0)
        return reqs

    def test_testany(self):
        reqs = self._mixed(0, 3)
        assert req_testany(reqs) is None
        reqs[1].complete(0.0)
        assert req_testany(reqs) == 1

    def test_testsome(self):
        reqs = self._mixed(2, 2)
        assert req_testsome(reqs) == [0, 1]
        assert req_testsome([]) == []

    def test_waitsome_blocks_then_returns_all_done(self):
        import threading
        reqs = self._mixed(0, 3)
        threading.Timer(0.05, lambda: (reqs[0].complete(0.0),
                                       reqs[2].complete(0.0))).start()
        done = waitsome(reqs)
        assert 0 in done
        with pytest.raises(MPIErrRequest):
            waitsome([])

    def test_integration_with_runtime(self):
        def main(comm):
            if comm.rank == 0:
                bufs = [np.zeros(1) for _ in range(3)]
                reqs = [comm.Irecv(bufs[i], source=1, tag=i)
                        for i in range(3)]
                done = waitsome(reqs)
                rest = [i for i in range(3) if i not in done]
                for i in rest:
                    reqs[i].wait()
                return sorted(b[0] for b in bufs)
            for i in range(3):
                comm.Isend(np.full(1, float(i + 10)), dest=0,
                           tag=i).wait()
            return None

        assert run_world(2, main)[0] == [10.0, 11.0, 12.0]


class TestDatatypeGS:
    def test_datatype_gs_matches_copy_gs(self):
        """The Class-1 (derived datatypes, built in setup) gather-
        scatter produces identical sums to the explicit-copy version."""
        def main(comm, use_dt):
            import numpy as np
            from repro.apps.nek.gs import GatherScatter
            from repro.apps.nek.mesh import BoxDecomposition, RankPatch
            d = BoxDecomposition.balanced(8, comm.size, 3)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch, use_datatypes=use_dt)
            u = np.zeros(patch.shape)
            for i in range(patch.shape[0]):
                for j in range(patch.shape[1]):
                    for k in range(patch.shape[2]):
                        gx, gy, gz = patch.global_coords((i, j, k))
                        u[i, j, k] = gx + 7 * gy + 31 * gz
            return gs(u).sum()

        copies = run_world(8, main, args=(False,))
        dtypes = run_world(8, main, args=(True,))
        assert copies == dtypes

    def test_datatype_gs_charges_class1_redundant_checks(self):
        """Derived-datatype sends keep their redundant checks even in
        whole-program-ipo builds (they are genuine work)."""
        from repro.core.config import BuildConfig, IpoScope
        from repro.instrument.categories import Category

        def main(comm, use_dt):
            import numpy as np
            from repro.apps.nek.gs import GatherScatter
            from repro.apps.nek.mesh import BoxDecomposition, RankPatch
            d = BoxDecomposition.balanced(8, comm.size, 2)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch, use_datatypes=use_dt)
            gs(np.ones(patch.shape))
            return comm.proc.counter.by_category[
                Category.REDUNDANT_CHECKS]

        cfg = BuildConfig.ipo_build(scope=IpoScope.WHOLE_PROGRAM)
        with_dt = run_world(8, main, cfg, args=(True,))
        without = run_world(8, main, cfg, args=(False,))
        assert sum(with_dt) > 0
        assert sum(without) == 0
