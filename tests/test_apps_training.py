"""The data-parallel SGD mini-app (:mod:`repro.apps.training`)."""

import numpy as np
import pytest

from repro.apps.training import train
from repro.core.config import BuildConfig
from repro.fabric.topology import Topology
from repro.runtime.world import World

NPARAMS = 10_000
STEPS = 4


def _run(nranks, cpn, strategy="flat", **kw):
    topo = Topology(nranks=nranks, cores_per_node=cpn)
    config = BuildConfig(communicator_name=strategy)
    world = World(nranks, config, topology=topo)
    return world.run(
        lambda comm: train(comm, nparams=NPARAMS, steps=STEPS, **kw),
        timeout=300)


class TestTraining:
    def test_loss_decreases_monotonically(self):
        res = _run(4, 2)[0]
        assert len(res.losses) == STEPS
        assert all(b < a for a, b in zip(res.losses, res.losses[1:]))

    def test_replicas_bit_identical(self):
        results = _run(5, 2)
        assert len({r.params_crc for r in results}) == 1

    @pytest.mark.parametrize("strategy",
                             ("naive", "hierarchical",
                              "two_dimensional"))
    def test_strategies_match_flat(self, strategy):
        flat = _run(6, 2)[0]
        results = _run(6, 2, strategy=strategy)
        # Within a strategy the replicas are always bit-identical; the
        # topology-aware compositions re-associate the float32 sum, so
        # across strategies the guarantee is numerical, not bitwise.
        assert len({r.params_crc for r in results}) == 1
        np.testing.assert_allclose(results[0].losses, flat.losses,
                                   rtol=1e-5)
        if strategy == "naive":   # same rank-ordered reduction
            assert results[0].params_crc == flat.params_crc

    def test_unfused_matches_fused(self):
        # Per-layer allreduces traverse the same gradients in the same
        # order, so the result is bit-identical to the fused bucket.
        fused = _run(4, 2, fused=True)[0]
        unfused = _run(4, 2, fused=False)[0]
        assert unfused.params_crc == fused.params_crc
        assert unfused.allreduce_calls > fused.allreduce_calls

    def test_accounting(self):
        res = _run(3, 3)[0]
        # One fused gradient allreduce per step over float32 params.
        assert res.allreduce_calls == STEPS
        assert res.bytes_reduced == STEPS * NPARAMS * 4
        assert res.steps == STEPS

    def test_explicit_algorithm_passthrough(self):
        base = _run(4, 2)[0]
        results = _run(4, 2, algorithm="ring")
        # Ring combines in arrival order (re-associated float32): the
        # replicas stay bit-identical and the optimization trajectory
        # matches flat numerically.
        assert len({r.params_crc for r in results}) == 1
        np.testing.assert_allclose(results[0].losses, base.losses,
                                   rtol=1e-5)
