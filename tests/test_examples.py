"""Smoke tests: every shipped example must run clean."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples")
    .glob("*.py"))


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)], capture_output=True, text=True,
        timeout=600)
    assert result.returncode == 0, \
        f"{script.name} failed:\n{result.stdout}\n{result.stderr}"
    assert result.stdout.strip(), f"{script.name} printed nothing"
