"""Tier-1 audit gate: tree is clean, AUDIT.json matches the paper."""

from __future__ import annotations

import json
import pathlib

import numpy as np
import pytest

from repro.audit import default_manifest, run_audit
from repro.audit.callgraph import CodeIndex
from repro.audit.lockset import scan_lockset
from repro.consts import PROC_NULL
from repro.instrument.categories import Subsystem
from repro.instrument.costs import COSTS
from tests.conftest import run_world

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src" / "repro"

#: Table 1 and Figure 2 critical-path instruction counts, by audit path.
EXPECTED_TOTALS = {
    "ch4_isend_default": 221,
    "ch4_put_default": 215,
    "ch4_isend_noerr": 147,
    "ch4_put_noerr": 143,
    "ch4_isend_nothread": 141,
    "ch4_put_nothread": 129,
    "ch4_isend_ipo": 59,
    "ch4_put_ipo": 44,
    "isend_all_opts": 16,
    "put_all_opts": 14,
    "ch3_isend": 253,
    "ch3_put": 1342,
}


@pytest.fixture(scope="module")
def audit():
    """One audit of the shipped tree, shared across this module."""
    report, snapshot = run_audit([str(SRC)])
    return report, snapshot


class TestTreeAudit:
    """``python -m repro.audit src/repro`` is clean, structurally."""

    def test_zero_findings(self, audit):
        report, _ = audit
        assert [f.render() for f in report.diagnostics] == []

    def test_path_totals_match_paper(self, audit):
        _, snapshot = audit
        totals = {name: p["total"] for name, p in snapshot["paths"].items()}
        assert totals == EXPECTED_TOTALS

    def test_default_isend_category_split(self, audit):
        # Table 1's removable/mandatory decomposition of the 221.
        _, snapshot = audit
        split = snapshot["paths"]["ch4_isend_default"]["by_category"]
        assert split == {"error_checking": 74, "thread_safety": 6,
                        "function_call": 23, "redundant_checks": 59,
                        "mandatory": 59}

    def test_default_put_category_split(self, audit):
        _, snapshot = audit
        split = snapshot["paths"]["ch4_put_default"]["by_category"]
        assert split == {"error_checking": 72, "thread_safety": 14,
                        "function_call": 25, "redundant_checks": 60,
                        "mandatory": 44}

    def test_every_nonzero_entry_has_provenance(self, audit):
        _, snapshot = audit
        registry = default_manifest().registry
        zero = set(snapshot["registry"]["zero_cost_keys"])
        for key, entry in registry.items():
            if entry.cost != 0:
                assert snapshot["provenance"].get(key), \
                    f"no reachable charge site for {key}"
        assert zero == {k for k, e in registry.items() if e.cost == 0}

    def test_committed_snapshot_up_to_date(self, audit):
        # AUDIT.json is a build artifact under version control; it must
        # be regenerated (``python -m repro.audit src/repro --json
        # AUDIT.json``) whenever charge sites move.
        _, snapshot = audit
        committed = json.loads((ROOT / "AUDIT.json").read_text())
        assert committed == snapshot


class TestManifest:
    """The registry/path manifest is internally consistent."""

    def test_registry_covers_all_path_keys(self):
        manifest = default_manifest()
        for spec in manifest.paths:
            for key in spec.keys:
                assert key in manifest.registry, (spec.name, key)

    def test_path_totals_precomputed_consistently(self):
        manifest = default_manifest()
        for spec in manifest.paths:
            total = sum(manifest.registry[k].cost for k in spec.keys)
            assert total == spec.expected_total, spec.name

    def test_entry_points_exist_in_tree(self):
        index = CodeIndex.build([str(SRC)])
        for cls, method in default_manifest().entry_points:
            assert index.find_method(cls, method) is not None, \
                f"missing entry point {cls}.{method}"


class TestAuditDrivenFixes:
    """Regressions for the true positives the audit flagged."""

    def test_proc_null_isend_charges_request_mgmt(self):
        # FP104: _null_send acquired and completed a pooled request
        # without charging request management.
        def main(comm):
            before = dict(comm.proc.counter.by_subsystem)
            comm.Isend(np.zeros(1), dest=PROC_NULL, tag=0).wait()
            after = dict(comm.proc.counter.by_subsystem)
            return (after.get(Subsystem.REQUEST_MGMT, 0)
                    - before.get(Subsystem.REQUEST_MGMT, 0))

        delta = run_world(1, main)[0]
        assert delta == COSTS.isend_mandatory.request_mgmt

    def test_proc_null_irecv_charges_request_mgmt(self):
        def main(comm):
            before = dict(comm.proc.counter.by_subsystem)
            comm.Irecv(np.zeros(1), source=PROC_NULL, tag=0).wait()
            after = dict(comm.proc.counter.by_subsystem)
            return (after.get(Subsystem.REQUEST_MGMT, 0)
                    - before.get(Subsystem.REQUEST_MGMT, 0))

        delta = run_world(1, main)[0]
        assert delta == COSTS.isend_mandatory.request_mgmt

    def test_request_reset_holds_state_lock(self):
        # FP301: Request._reset reinitialized shared completion state
        # without the per-request lock every other transition takes.
        index = CodeIndex.build([str(SRC / "runtime" / "request.py")])
        findings = scan_lockset(index, path_filter="")
        assert [f.render() for f in findings] == []

    def test_recycled_request_state_is_reset(self):
        def main(comm):
            req = comm.Isend(np.zeros(1), dest=PROC_NULL, tag=0)
            req.wait()
            pool = comm.proc.request_pool
            pool.release(req)
            again = comm.Isend(np.zeros(1), dest=PROC_NULL, tag=0)
            fresh_before_wait = not again.cancelled and again.error is None
            again.wait()
            return fresh_before_wait

        assert run_world(1, main) == [True]
