"""Concurrency stress: atomic RMA under contention, NBC edge cases."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrRequest
from repro.mpi import reduceops
from repro.mpi.rma import LOCK_EXCLUSIVE, LOCK_SHARED, Window
from tests.conftest import run_world


class TestAtomicContention:
    def test_concurrent_fetch_and_add_is_linearizable(self):
        """8 ranks each perform 10 exclusive-locked fetch-and-adds on
        one counter: the fetched values must be a permutation of
        0..79 and the final count exact."""
        def main(comm):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            got = []
            one = np.ones(1, dtype=np.int64)
            out = np.zeros(1, dtype=np.int64)
            for _ in range(10):
                win.lock(0, LOCK_EXCLUSIVE)
                win.fetch_and_op(one, out, target_rank=0,
                                 op=reduceops.SUM)
                win.unlock(0)
                got.append(int(out[0]))
            win.fence()
            return got, int(mem[0])

        results = run_world(8, main)
        fetched = sorted(v for got, _ in results for v in got)
        assert fetched == list(range(80))
        assert results[0][1] == 80

    def test_concurrent_accumulates_sum_exactly(self):
        """Shared-lock accumulates from all ranks must all land (the
        AM handler serializes on the data lock)."""
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            win.lock(0, LOCK_SHARED)
            for k in range(5):
                win.accumulate(np.full(4, 1.0 + k), target_rank=0,
                               op=reduceops.SUM)
            win.unlock(0)
            win.fence()
            return mem.tolist()

        results = run_world(6, main)
        expected = 6 * sum(1.0 + k for k in range(5))
        assert results[0] == [expected] * 4

    def test_cas_exactly_one_winner_repeated(self):
        def main(comm, round_no):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            old = np.zeros(1, dtype=np.int64)
            win.lock(0, LOCK_EXCLUSIVE)
            win.compare_and_swap(
                origin=np.full(1, comm.rank + 100, dtype=np.int64),
                compare=np.zeros(1, dtype=np.int64),
                result=old, target_rank=0)
            win.unlock(0)
            win.fence()
            return int(old[0])

        for round_no in range(3):
            results = run_world(6, main, args=(round_no,))
            winners = [r for r in results if r == 0]
            assert len(winners) == 1, results


class TestManyMessagesStress:
    def test_thousand_small_messages_all_delivered(self):
        def main(comm):
            n = 250
            if comm.rank == 0:
                reqs = [comm.Isend(np.full(1, float(i)), dest=1,
                                   tag=i % 7) for i in range(n)]
                for r in reqs:
                    r.wait()
                return None
            got = []
            buf = np.zeros(1)
            for i in range(n):
                comm.Recv(buf, source=0, tag=i % 7)
                got.append(buf[0])
            return got

        got = run_world(2, main)[1]
        assert got == [float(i) for i in range(250)]

    def test_bidirectional_flood_no_deadlock(self):
        def main(comm):
            partner = 1 - comm.rank
            n = 100
            rreqs = [comm.Irecv(np.zeros(8), source=partner, tag=0)
                     for _ in range(n)]
            for i in range(n):
                comm.Isend(np.full(8, float(i)), dest=partner,
                           tag=0).wait()
            for r in rreqs:
                r.wait()
            return "done"

        assert run_world(2, main) == ["done", "done"]


class TestCancelUnderFlood:
    def test_cancel_races_flood_of_matching_sends(self):
        """Rank 1 posts receives and cancels every other one while rank
        0's matching sends flood in concurrently.  MPI's non-overtaking
        rule must survive: successful receives see the payload sequence
        in order, cancelled receives leave exactly their messages in
        the unexpected queue, and a final drain recovers the tail."""
        n = 80

        def main(comm):
            if comm.rank == 0:
                reqs = [comm.Isend(np.full(2, float(i)), dest=1, tag=5)
                        for i in range(n)]
                for r in reqs:
                    r.wait()
                comm.barrier()
                return None
            buf = np.zeros(2)
            values, cancelled = [], 0
            for i in range(n):
                req = comm.Irecv(buf, source=0, tag=5)
                if i % 2 and comm.proc.engine.cancel_posted(req):
                    assert req.cancelled
                    cancelled += 1
                    continue
                req.wait()
                values.append(buf[0])
            comm.barrier()   # all sends deposited beyond this point
            assert comm.proc.engine.pending_counts()[1] == cancelled
            for _ in range(cancelled):
                comm.Recv(buf, source=0, tag=5)
                values.append(buf[0])
            return values

        values = run_world(2, main)[1]
        assert values == [float(i) for i in range(n)]


class TestNBCEdgeCases:
    def test_result_none_before_completion(self):
        def main(comm):
            req = comm.ibcast("x" if comm.rank == 0 else None, root=0)
            req.wait()
            return req.result

        assert run_world(2, main) == ["x", "x"]

    def test_wait_idempotent(self):
        def main(comm):
            req = comm.ibarrier()
            req.wait()
            req.wait()          # second wait must be harmless
            assert req.test()   # and test after completion is True
            return "ok"

        assert run_world(3, main) == ["ok"] * 3

    def test_many_interleaved_nbcs(self):
        def main(comm):
            reqs = [comm.iallreduce(comm.rank + k) for k in range(8)]
            # Complete in reverse order to stress tag isolation.
            for req in reversed(reqs):
                req.wait()
            return [req.result for req in reqs]

        size = 4
        base = sum(range(size))
        expected = [base + k * size for k in range(8)]
        assert run_world(size, main) == [expected] * size

    def test_nbc_with_single_rank(self):
        def main(comm):
            a = comm.ibarrier()
            b = comm.iallreduce(41)
            c = comm.iallgather("solo")
            for req in (a, b, c):
                req.wait()
            return b.result, c.result

        assert run_world(1, main) == [(41, ["solo"])]
