"""Concurrency stress: atomic RMA under contention, NBC edge cases,
MPI_THREAD_MULTIPLE floods on VCI-sharded builds."""

import threading

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrRequest
from repro.mpi import reduceops
from repro.mpi.rma import LOCK_EXCLUSIVE, LOCK_SHARED, Window
from tests.conftest import run_world


class TestAtomicContention:
    def test_concurrent_fetch_and_add_is_linearizable(self):
        """8 ranks each perform 10 exclusive-locked fetch-and-adds on
        one counter: the fetched values must be a permutation of
        0..79 and the final count exact."""
        def main(comm):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            got = []
            one = np.ones(1, dtype=np.int64)
            out = np.zeros(1, dtype=np.int64)
            for _ in range(10):
                win.lock(0, LOCK_EXCLUSIVE)
                win.fetch_and_op(one, out, target_rank=0,
                                 op=reduceops.SUM)
                win.unlock(0)
                got.append(int(out[0]))
            win.fence()
            return got, int(mem[0])

        results = run_world(8, main)
        fetched = sorted(v for got, _ in results for v in got)
        assert fetched == list(range(80))
        assert results[0][1] == 80

    def test_concurrent_accumulates_sum_exactly(self):
        """Shared-lock accumulates from all ranks must all land (the
        AM handler serializes on the data lock)."""
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            win.lock(0, LOCK_SHARED)
            for k in range(5):
                win.accumulate(np.full(4, 1.0 + k), target_rank=0,
                               op=reduceops.SUM)
            win.unlock(0)
            win.fence()
            return mem.tolist()

        results = run_world(6, main)
        expected = 6 * sum(1.0 + k for k in range(5))
        assert results[0] == [expected] * 4

    def test_cas_exactly_one_winner_repeated(self):
        def main(comm, round_no):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            old = np.zeros(1, dtype=np.int64)
            win.lock(0, LOCK_EXCLUSIVE)
            win.compare_and_swap(
                origin=np.full(1, comm.rank + 100, dtype=np.int64),
                compare=np.zeros(1, dtype=np.int64),
                result=old, target_rank=0)
            win.unlock(0)
            win.fence()
            return int(old[0])

        for round_no in range(3):
            results = run_world(6, main, args=(round_no,))
            winners = [r for r in results if r == 0]
            assert len(winners) == 1, results


class TestManyMessagesStress:
    def test_thousand_small_messages_all_delivered(self):
        def main(comm):
            n = 250
            if comm.rank == 0:
                reqs = [comm.Isend(np.full(1, float(i)), dest=1,
                                   tag=i % 7) for i in range(n)]
                for r in reqs:
                    r.wait()
                return None
            got = []
            buf = np.zeros(1)
            for i in range(n):
                comm.Recv(buf, source=0, tag=i % 7)
                got.append(buf[0])
            return got

        got = run_world(2, main)[1]
        assert got == [float(i) for i in range(250)]

    def test_bidirectional_flood_no_deadlock(self):
        def main(comm):
            partner = 1 - comm.rank
            n = 100
            rreqs = [comm.Irecv(np.zeros(8), source=partner, tag=0)
                     for _ in range(n)]
            for i in range(n):
                comm.Isend(np.full(8, float(i)), dest=partner,
                           tag=0).wait()
            for r in rreqs:
                r.wait()
            return "done"

        assert run_world(2, main) == ["done", "done"]


class TestCancelUnderFlood:
    def test_cancel_races_flood_of_matching_sends(self):
        """Rank 1 posts receives and cancels every other one while rank
        0's matching sends flood in concurrently.  MPI's non-overtaking
        rule must survive: successful receives see the payload sequence
        in order, cancelled receives leave exactly their messages in
        the unexpected queue, and a final drain recovers the tail."""
        n = 80

        def main(comm):
            if comm.rank == 0:
                reqs = [comm.Isend(np.full(2, float(i)), dest=1, tag=5)
                        for i in range(n)]
                for r in reqs:
                    r.wait()
                comm.barrier()
                return None
            buf = np.zeros(2)
            values, cancelled = [], 0
            for i in range(n):
                req = comm.Irecv(buf, source=0, tag=5)
                if i % 2 and comm.proc.engine.cancel_posted(req):
                    assert req.cancelled
                    cancelled += 1
                    continue
                req.wait()
                values.append(buf[0])
            comm.barrier()   # all sends deposited beyond this point
            assert comm.proc.engine.pending_counts()[1] == cancelled
            for _ in range(cancelled):
                comm.Recv(buf, source=0, tag=5)
                values.append(buf[0])
            return values

        values = run_world(2, main)[1]
        assert values == [float(i) for i in range(n)]


class TestMultiVCIThreadedFlood:
    """MPI_THREAD_MULTIPLE floods on sharded (``num_vcis > 1``) builds.

    A double-completion anywhere raises ``MPIErrRequest("request
    completed twice")`` inside :meth:`Request.complete` and fails the
    run, so these tests detect double-matches structurally; the
    payload and drain assertions catch lost matches."""

    @staticmethod
    def _config(num_vcis=4):
        return BuildConfig(thread_safety=True, num_vcis=num_vcis)

    @pytest.mark.parametrize("num_vcis", [2, 4])
    def test_threaded_injectors_per_tag_streams_in_order(self, num_vcis):
        """4 injector threads on BOTH ranks, each driving its own tag
        stream in both directions: every stream arrives complete and
        in non-overtaking order, and both shards drain."""
        nthreads, n = 4, 30

        def main(comm):
            peer = 1 - comm.rank
            out = [None] * nthreads

            def worker(tid):
                sreqs = [comm.Isend(
                    np.full(1, comm.rank * 100000.0 + tid * 1000 + i),
                    dest=peer, tag=tid) for i in range(n)]
                buf = np.zeros(1)
                got = []
                for _ in range(n):
                    comm.Recv(buf, source=peer, tag=tid)
                    got.append(float(buf[0]))
                for r in sreqs:
                    r.wait()
                out[tid] = got

            workers = [threading.Thread(target=worker, args=(t,))
                       for t in range(nthreads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            comm.barrier()
            return out, comm.proc.engine.pending_counts()

        results = run_world(2, main, config=self._config(num_vcis))
        for rank, (out, pending) in enumerate(results):
            src = 1 - rank
            assert pending == (0, 0)
            for tid, got in enumerate(out):
                assert got == [src * 100000.0 + tid * 1000 + i
                               for i in range(n)], (rank, tid)

    def test_cancel_storm_under_threaded_flood(self):
        """Per-thread cancel storms racing matching floods on a sharded
        build: each tag stream keeps MPI's non-overtaking order,
        cancelled receives leave exactly their messages queued, and
        the drain recovers every tail in order."""
        nthreads, n = 3, 40

        def main(comm):
            if comm.rank == 0:
                def sender(tid):
                    reqs = [comm.Isend(np.full(2, float(i)), dest=1,
                                       tag=tid) for i in range(n)]
                    for r in reqs:
                        r.wait()

                workers = [threading.Thread(target=sender, args=(t,))
                           for t in range(nthreads)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                comm.barrier()
                return None

            out = [None] * nthreads

            def receiver(tid):
                buf = np.zeros(2)
                values, cancelled = [], 0
                for i in range(n):
                    req = comm.Irecv(buf, source=0, tag=tid)
                    if i % 2 and comm.proc.engine.cancel_posted(req):
                        assert req.cancelled
                        cancelled += 1
                        continue
                    req.wait()
                    values.append(float(buf[0]))
                out[tid] = (values, cancelled)

            workers = [threading.Thread(target=receiver, args=(t,))
                       for t in range(nthreads)]
            for w in workers:
                w.start()
            for w in workers:
                w.join()
            comm.barrier()   # all sends deposited beyond this point
            total_cancelled = sum(c for _, c in out)
            assert comm.proc.engine.pending_counts()[1] == total_cancelled
            buf = np.zeros(2)
            for tid, (values, cancelled) in enumerate(out):
                for _ in range(cancelled):
                    comm.Recv(buf, source=0, tag=tid)
                    values.append(float(buf[0]))
            return [values for values, _ in out]

        values_by_tag = run_world(2, main, config=self._config())[1]
        for values in values_by_tag:
            assert values == [float(i) for i in range(n)]

    def test_threaded_wildcard_drain_against_concrete_floods(self):
        """One wildcard-draining thread racing concrete injector
        threads on a sharded build: the all-VCI wildcard discipline
        must deliver every message exactly once."""
        nthreads, n = 3, 25

        def main(comm):
            from repro.consts import ANY_SOURCE, ANY_TAG
            if comm.rank == 0:
                def sender(tid):
                    for i in range(n):
                        comm.Isend(np.full(1, tid * 1000.0 + i),
                                   dest=1, tag=tid).wait()

                workers = [threading.Thread(target=sender, args=(t,))
                           for t in range(nthreads)]
                for w in workers:
                    w.start()
                for w in workers:
                    w.join()
                return None

            got = []
            buf = np.zeros(1)
            for _ in range(nthreads * n):
                comm.Recv(buf, source=ANY_SOURCE, tag=ANY_TAG)
                got.append(float(buf[0]))
            return got

        got = run_world(2, main, config=self._config())[1]
        expected = sorted(t * 1000.0 + i
                          for t in range(nthreads) for i in range(n))
        assert sorted(got) == expected
        # Per-stream non-overtaking survives the wildcard path.
        for t in range(nthreads):
            stream = [v for v in got if t * 1000.0 <= v < (t + 1) * 1000.0]
            assert stream == [t * 1000.0 + i for i in range(n)]


class TestNBCEdgeCases:
    def test_result_none_before_completion(self):
        def main(comm):
            req = comm.ibcast("x" if comm.rank == 0 else None, root=0)
            req.wait()
            return req.result

        assert run_world(2, main) == ["x", "x"]

    def test_wait_idempotent(self):
        def main(comm):
            req = comm.ibarrier()
            req.wait()
            req.wait()          # second wait must be harmless
            assert req.test()   # and test after completion is True
            return "ok"

        assert run_world(3, main) == ["ok"] * 3

    def test_many_interleaved_nbcs(self):
        def main(comm):
            reqs = [comm.iallreduce(comm.rank + k) for k in range(8)]
            # Complete in reverse order to stress tag isolation.
            for req in reversed(reqs):
                req.wait()
            return [req.result for req in reqs]

        size = 4
        base = sum(range(size))
        expected = [base + k * size for k in range(8)]
        assert run_world(size, main) == [expected] * size

    def test_nbc_with_single_rank(self):
        def main(comm):
            a = comm.ibarrier()
            b = comm.iallreduce(41)
            c = comm.iallgather("solo")
            for req in (a, b, c):
                req.wait()
            return b.result, c.result

        assert run_world(1, main) == [(41, ["solo"])]
