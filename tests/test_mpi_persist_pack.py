"""Persistent requests and the explicit pack API."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.datatypes import vector
from repro.datatypes.predefined import DOUBLE, INT
from repro.errors import MPIErrArg, MPIErrBuffer, MPIErrRank, MPIErrRequest
from repro.mpi.packapi import mpi_pack, mpi_unpack, pack_size
from repro.mpi.persist import startall
from tests.conftest import run_world


class TestPersistent:
    def test_repeated_start_wait(self):
        def main(comm):
            buf = np.zeros(4, dtype=np.float64)
            if comm.rank == 0:
                sreq = comm.Send_init(buf, dest=1, tag=0)
                for i in range(5):
                    buf[:] = float(i)
                    sreq.start()
                    sreq.wait()
                return None
            out = np.zeros(4, dtype=np.float64)
            rreq = comm.Recv_init(out, source=0, tag=0)
            got = []
            for _ in range(5):
                rreq.start()
                rreq.wait()
                got.append(out[0])
            return got

        assert run_world(2, main)[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_ch4_start_is_much_cheaper_than_isend(self):
        """The amortization: a started persistent send costs only
        request reuse + descriptor (19 instructions on the ipo build)
        vs 59 for a fresh isend."""
        def main(comm):
            buf = np.zeros(1, dtype=np.float64)
            if comm.rank == 0:
                sreq = comm.Send_init(buf, dest=1, tag=0)
                with comm.proc.tracer.call("start"):
                    sreq.start()
                sreq.wait()
                return comm.proc.tracer.last("start").total
            out = np.zeros(1, dtype=np.float64)
            comm.Recv(out, source=0, tag=0)
            return None

        cost = run_world(2, main, BuildConfig.ipo_build())[0]
        assert cost == 19   # noreq counter (3) + descriptor (16)

    def test_ch3_has_no_fast_persistent_path(self):
        def main(comm):
            buf = np.zeros(1, dtype=np.float64)
            if comm.rank == 0:
                sreq = comm.Send_init(buf, dest=1, tag=0)
                with comm.proc.tracer.call("start"):
                    sreq.start()
                sreq.wait()
                return comm.proc.tracer.last("start").total
            comm.Recv(np.zeros(1, dtype=np.float64), source=0, tag=0)
            return None

        cost = run_world(2, main, BuildConfig.original())[0]
        assert cost >= 150   # full CH3 device path re-runs

    def test_start_while_active_rejected(self):
        def main(comm):
            out = np.zeros(1, dtype=np.float64)
            rreq = comm.Recv_init(out, source=0, tag=0)
            rreq.start()
            with pytest.raises(MPIErrRequest):
                rreq.start()
            if comm.rank == 0:
                comm.Isend(np.zeros(1, dtype=np.float64), dest=comm.rank,
                           tag=0).wait()
            else:
                comm.proc.engine.cancel_posted(rreq.active)
            return "ok"

        run_world(1, main)

    def test_wait_without_start_rejected(self):
        def main(comm):
            sreq = comm.Send_init(np.zeros(1), dest=0, tag=0)
            with pytest.raises(MPIErrRequest):
                sreq.wait()
            sreq.free()
            with pytest.raises(MPIErrRequest):
                sreq.start()
            return "ok"

        run_world(1, main)

    def test_init_validates_arguments(self):
        def main(comm):
            with pytest.raises(MPIErrRank):
                comm.Send_init(np.zeros(1), dest=42, tag=0)
            return "ok"

        run_world(2, main)

    def test_startall(self):
        def main(comm):
            if comm.rank == 0:
                reqs = [comm.Send_init(np.full(1, float(i)), dest=1,
                                       tag=i) for i in range(3)]
                for active in startall(reqs):
                    active.wait()
                return None
            out = np.zeros(1)
            vals = []
            for i in range(3):
                comm.Recv(out, source=0, tag=i)
                vals.append(out[0])
            return vals

        assert run_world(2, main)[1] == [0.0, 1.0, 2.0]

    def test_persistent_to_proc_null(self):
        from repro.consts import PROC_NULL

        def main(comm):
            sreq = comm.Send_init(np.zeros(1), dest=PROC_NULL, tag=0)
            sreq.start()
            sreq.wait()
            rreq = comm.Recv_init(np.zeros(1), source=PROC_NULL, tag=0)
            rreq.start()
            rreq.wait()
            return rreq.active.source

        assert run_world(1, main)[0] == PROC_NULL


class TestPackAPI:
    def test_pack_size(self):
        assert pack_size(4, DOUBLE) == 32
        dt = vector(2, 1, 3, DOUBLE).commit()
        assert pack_size(2, dt) == 32

    def test_incremental_pack_unpack(self):
        ints = np.array([1, 2, 3], dtype=np.int32)
        doubles = np.array([1.5, 2.5], dtype=np.float64)
        buf = bytearray(64)
        pos = mpi_pack(ints, 3, INT, buf, 0)
        pos = mpi_pack(doubles, 2, DOUBLE, buf, pos)
        assert pos == 12 + 16

        out_i = np.zeros(3, dtype=np.int32)
        out_d = np.zeros(2, dtype=np.float64)
        pos2 = mpi_unpack(buf, 0, out_i, 3, INT)
        pos2 = mpi_unpack(buf, pos2, out_d, 2, DOUBLE)
        assert pos2 == pos
        assert out_i.tolist() == [1, 2, 3]
        assert out_d.tolist() == [1.5, 2.5]

    def test_pack_overflow_rejected(self):
        with pytest.raises(MPIErrBuffer):
            mpi_pack(np.zeros(4, dtype=np.float64), 4, DOUBLE,
                     bytearray(16), 0)

    def test_unpack_overrun_rejected(self):
        with pytest.raises(MPIErrBuffer):
            mpi_unpack(bytearray(8), 0, np.zeros(4), 4, DOUBLE)

    def test_negative_position_rejected(self):
        with pytest.raises(MPIErrArg):
            mpi_pack(np.zeros(1), 1, DOUBLE, bytearray(8), -1)
        with pytest.raises(MPIErrArg):
            mpi_unpack(bytearray(8), -1, np.zeros(1), 1, DOUBLE)

    def test_packed_bytes_travel_as_bytes(self):
        """The classic MPI_PACK use: heterogeneous payload as BYTE."""
        def main(comm):
            from repro.datatypes.predefined import BYTE
            if comm.rank == 0:
                buf = bytearray(24)
                pos = mpi_pack(np.array([7], dtype=np.int32), 1, INT,
                               buf, 0)
                pos = mpi_pack(np.array([3.25]), 1, DOUBLE, buf, pos)
                comm.Send((np.frombuffer(buf, np.uint8)[:pos], pos, BYTE),
                          dest=1, tag=0)
                return None
            raw = np.zeros(24, dtype=np.uint8)
            status = comm.Recv((raw, 24, BYTE), source=0, tag=0)
            i = np.zeros(1, dtype=np.int32)
            d = np.zeros(1, dtype=np.float64)
            pos = mpi_unpack(raw, 0, i, 1, INT)
            mpi_unpack(raw, pos, d, 1, DOUBLE)
            return int(i[0]), float(d[0]), status.count_bytes

        assert run_world(2, main)[1] == (7, 3.25, 12)


class TestPSCW:
    def test_post_start_complete_wait(self):
        def main(comm):
            from repro.mpi.rma import Window
            win, mem = Window.allocate(comm, nbytes=8, disp_unit=8)
            view = mem.view(np.float64)
            if comm.rank == 0:
                # Target: expose to rank 1, wait for completion.
                win.post([1])
                win.wait_sync()
                return view[0]
            # Origin: access rank 0's window.
            win.start([0])
            win.put(np.array([2.25]), target_rank=0)
            win.complete()
            return None

        assert run_world(2, main)[0] == 2.25

    def test_pairing_errors(self):
        def main(comm):
            from repro.errors import MPIErrRMASync
            from repro.mpi.rma import Window
            win, _ = Window.allocate(comm, nbytes=8)
            with pytest.raises(MPIErrRMASync):
                win.complete()
            with pytest.raises(MPIErrRMASync):
                win.wait_sync()
            win.fence()
            return "ok"

        run_world(2, main)

    def test_multiple_origins(self):
        def main(comm):
            from repro.mpi.rma import Window
            win, mem = Window.allocate(comm, nbytes=8 * comm.size,
                                       disp_unit=8)
            view = mem.view(np.float64)
            if comm.rank == 0:
                win.post([1, 2])
                win.wait_sync()
                return view.tolist()
            win.start([0])
            win.put(np.array([float(comm.rank)]), target_rank=0,
                    target_disp=comm.rank)
            win.complete()
            return None

        assert run_world(3, main)[0] == [0.0, 1.0, 2.0]
