"""Bufcheck rule fixtures: each BC5xx fires as a true positive on a
minimal source file, pragmas suppress, clean buffer handling passes."""

from __future__ import annotations

import textwrap

from repro.audit.callgraph import CodeIndex
from repro.bufcheck.dataflow import (Analyzer, Taint, branch_quals,
                                     name_seeds, scan_tree)
from repro.bufcheck.rules import MARKER, RULES, render_bc_catalog


def _scan(tmp_path, source: str, name: str = "mod.py"):
    path = tmp_path / name
    path.write_text(textwrap.dedent(source))
    index = CodeIndex.build([str(path)])
    analyzer = Analyzer(index)
    return scan_tree(analyzer)


def _rule_ids(tmp_path, source: str) -> list[str]:
    return [f.rule_id for f in _scan(tmp_path, source)]


class TestBC501RedundantCopy:
    """A second materialization of a payload already copied upstream."""

    def test_double_copy_fires(self, tmp_path):
        src = """\
            def send(sendbuf):
                staged = sendbuf.T.tobytes()
                wire = bytes(staged)
                return wire
            """
        assert "BC501" in _rule_ids(tmp_path, src)

    def test_single_copy_of_strided_data_clean(self, tmp_path):
        src = """\
            def send(sendbuf):
                return sendbuf.T.tobytes()
            """
        assert "BC501" not in _rule_ids(tmp_path, src)

    def test_copy_through_helper_fires(self, tmp_path):
        """The second copy is interprocedural: staged in the caller,
        recopied inside a callee."""
        src = """\
            def frame(data):
                return bytes(data)

            def send(sendbuf):
                staged = sendbuf.T.tobytes()
                return frame(staged)
            """
        assert "BC501" in _rule_ids(tmp_path, src)


class TestBC502MutatedBorrow:
    """Stores into a borrowed send buffer the application still owns."""

    def test_subscript_store_fires(self, tmp_path):
        src = """\
            def scramble(sendbuf):
                sendbuf[0] = 0
            """
        assert _rule_ids(tmp_path, src) == ["BC502"]

    def test_store_into_recv_buffer_clean(self, tmp_path):
        """Receive buffers are *meant* to be written."""
        src = """\
            def land(recvbuf, payload):
                recvbuf[0:4] = payload
            """
        assert "BC502" not in _rule_ids(tmp_path, src)


class TestBC503MissingKeepalive:
    """A borrowed view escaping to storage that outlives the call."""

    def test_attribute_store_fires(self, tmp_path):
        src = """\
            class Stash:
                def hold(self, sendbuf):
                    view = memoryview(sendbuf)
                    self.held = view
            """
        assert _rule_ids(tmp_path, src) == ["BC503"]

    def test_container_append_fires(self, tmp_path):
        src = """\
            def enqueue(queue, sendbuf):
                view = memoryview(sendbuf)
                queue.append(view)
            """
        assert _rule_ids(tmp_path, src) == ["BC503"]

    def test_keepalive_attr_is_sanctioned(self, tmp_path):
        """Pinning the view on the owning request IS the fix."""
        src = """\
            class Req:
                def pin(self, sendbuf):
                    view = memoryview(sendbuf)
                    self._keepalive = view
            """
        assert _rule_ids(tmp_path, src) == []

    def test_owned_bytes_store_clean(self, tmp_path):
        src = """\
            class Stash:
                def hold(self, sendbuf):
                    self.held = sendbuf.T.tobytes()
            """
        assert "BC503" not in _rule_ids(tmp_path, src)


class TestBC504NeedlessMaterialization:
    """bytes()/tobytes() where the data is already contiguous."""

    def test_tobytes_of_contiguous_send_buffer_fires(self, tmp_path):
        src = """\
            def send(sendbuf):
                return sendbuf.tobytes()
            """
        assert _rule_ids(tmp_path, src) == ["BC504"]

    def test_bytes_of_dense_payload_fires(self, tmp_path):
        src = """\
            def forward(data):
                return bytes(data)
            """
        assert _rule_ids(tmp_path, src) == ["BC504"]

    def test_view_instead_is_clean(self, tmp_path):
        src = """\
            def send(sendbuf):
                return memoryview(sendbuf)
            """
        assert _rule_ids(tmp_path, src) == []

    def test_copy_mode_branch_exempt(self, tmp_path):
        """The legacy always-copy branch copies by design."""
        src = """\
            def pack(sendbuf, copy):
                if copy:
                    return sendbuf.tobytes()
                return memoryview(sendbuf)
            """
        assert _rule_ids(tmp_path, src) == []

    def test_strided_fallthrough_exempt(self, tmp_path):
        """Early-return contig fast path: the fall-through gather copy
        is on the strided branch, not a needless materialization."""
        src = """\
            def pack(sendbuf, datatype):
                if datatype.contig:
                    return memoryview(sendbuf)
                return sendbuf.tobytes()
            """
        assert _rule_ids(tmp_path, src) == []


class TestBC505AliasedBuffers:
    """The same buffer in both slots of a two-buffer API."""

    def test_sendrecv_same_name_fires(self, tmp_path):
        src = """\
            def relay(comm, buf):
                comm.Sendrecv(buf, 1, 0, buf, 1, 0)
            """
        assert "BC505" in _rule_ids(tmp_path, src)

    def test_distinct_buffers_clean(self, tmp_path):
        src = """\
            def relay(comm, sendbuf, recvbuf):
                comm.Sendrecv(sendbuf, 1, 0, recvbuf, 1, 0)
            """
        assert "BC505" not in _rule_ids(tmp_path, src)


class TestPragmas:
    """``# bufcheck: ignore[BCxxx]`` suppresses exactly that line."""

    def test_pragma_suppresses(self, tmp_path):
        src = """\
            def send(sendbuf):
                return sendbuf.tobytes()  # bufcheck: ignore[BC504]
            """
        assert _rule_ids(tmp_path, src) == []

    def test_bare_pragma_suppresses_all_rules(self, tmp_path):
        src = """\
            def scramble(sendbuf):
                sendbuf[0] = 0  # bufcheck: ignore
            """
        assert _rule_ids(tmp_path, src) == []

    def test_wrong_rule_id_does_not_suppress(self, tmp_path):
        src = """\
            def send(sendbuf):
                return sendbuf.tobytes()  # bufcheck: ignore[BC501]
            """
        assert _rule_ids(tmp_path, src) == ["BC504"]


class TestDataflowInternals:
    """The pieces the rules sit on."""

    def test_branch_quals_contig(self):
        import ast
        test = ast.parse("dt.contig", mode="eval").body
        body, orelse = branch_quals(test)
        assert body == frozenset() and orelse == {"strided"}

    def test_branch_quals_copy_flag(self):
        import ast
        test = ast.parse("copy", mode="eval").body
        assert branch_quals(test) == ({"copy_mode"}, {"view_mode"})

    def test_branch_quals_negation_swaps(self):
        import ast
        test = ast.parse("not dt.contig", mode="eval").body
        body, orelse = branch_quals(test)
        assert body == {"strided"} and orelse == frozenset()

    def test_name_seeds_by_convention(self, tmp_path):
        path = tmp_path / "m.py"
        path.write_text("def f(sendbuf, recvbuf, data, buf, n):\n"
                        "    pass\n")
        index = CodeIndex.build([str(path)])
        func = next(iter(index.functions.values()))
        seeds = name_seeds(func)
        assert seeds["sendbuf"] == Taint("src", borrowed=True)
        assert seeds["recvbuf"] == Taint("dest", borrowed=True)
        assert seeds["data"] == Taint("src", dense=True)
        assert seeds["buf"] == Taint("inout", borrowed=True)
        assert "n" not in seeds

    def test_catalog_lists_every_rule(self):
        catalog = render_bc_catalog()
        for rule_id in RULES:
            assert rule_id in catalog
        assert MARKER == "# bufcheck: ignore"
