"""Event-driven completion: the complete/cancel race, prompt wakeups,
abort interruption, and the request free-pool.

These are the regression tests for the polling-era bugs: ``complete``
on a concurrently-cancelled request used to raise MPIErrRequest (the
seed treated cancelled as completed-twice), ``waitany`` used to notice
a completion of the *last* listed request only at the next 50 ms poll
slice, and a blocked probe or window lock saw a world abort only after
its current slice expired.
"""

import threading
import time

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrRequest
from repro.mpi.rma import LOCK_EXCLUSIVE, RWLock
from repro.runtime.completion import CompletionQueue, NotifyingEvent
from repro.runtime.matching import BucketMatchingEngine, LinearMatchingEngine
from repro.runtime.request import (Request, RequestKind, RequestPool,
                                   waitany, waitsome)
from repro.runtime.world import World, WorldAborted
from tests.conftest import run_world

#: Wakeups must beat the seed's 50 ms poll slice by a clear margin.
_PROMPT_S = 0.045


def _later(delay_s, fn):
    """Run *fn* on a daemon thread after *delay_s* seconds."""
    t = threading.Timer(delay_s, fn)
    t.daemon = True
    t.start()
    return t


class TestCompleteCancelRace:
    def test_complete_after_cancel_is_noop(self):
        """The race, serialized: a sender completing a receive the
        receiver already cancelled must be discarded, not an error
        (the seed raised 'request completed twice' here)."""
        req = Request(RequestKind.RECV)
        req.cancel()
        req.complete(1.0, source=0, tag=0, count_bytes=8)   # discarded
        assert req.cancelled
        assert req.is_complete()
        assert req.count_bytes == 0

    def test_cancel_after_complete_is_noop(self):
        req = Request(RequestKind.RECV)
        req.complete(1.0)
        req.cancel()
        assert not req.cancelled
        assert req.complete_s == 1.0

    def test_double_complete_still_raises(self):
        req = Request(RequestKind.SEND)
        req.complete(1.0)
        with pytest.raises(MPIErrRequest):
            req.complete(2.0)

    def test_threaded_complete_vs_cancel_stress(self):
        """Two threads race complete against cancel on a barrier: no
        iteration may raise, and the loser's transition must always be
        the discarded one."""
        errors = []
        for _ in range(300):
            req = Request(RequestKind.RECV)
            barrier = threading.Barrier(2)

            def runner(fn):
                barrier.wait()
                try:
                    fn()
                except BaseException as exc:  # noqa: BLE001 - recorded
                    errors.append(exc)

            threads = [
                threading.Thread(target=runner,
                                 args=(lambda: req.complete(1.0),)),
                threading.Thread(target=runner, args=(req.cancel,)),
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            assert not errors, errors
            assert req.is_complete()
            # Exactly one transition won.
            assert req.cancelled == (req.complete_s == 0.0)

    def test_irecv_cancel_races_matching_send(self):
        """Full-runtime race: rank 1 posts receives and cancels them
        while rank 0's matching sends arrive.  Every message must be
        either received or left unexpected — never lost, never doubly
        delivered, and never an engine error."""
        n = 60

        def main(comm):
            if comm.rank == 0:
                for i in range(n):
                    comm.isend(("payload", i), dest=1, tag=i)
                return None
            got, cancelled = 0, 0
            for i in range(n):
                req = comm.irecv(source=0, tag=i)
                if i % 3 == 0:
                    if comm.proc.engine.cancel_posted(req):
                        cancelled += 1
                        continue
                req.wait()
                got += 1
            return got, cancelled

        got, cancelled = run_world(2, main)[1]
        assert got + cancelled == n
        # Cancelled receives leave their message in the unexpected
        # queue; everything else was delivered.


class TestPromptWakeups:
    def test_waitany_wakes_on_last_listed_request(self):
        """Head-of-line regression: when only the *last* request in the
        list completes, waitany must return promptly — the seed blocked
        on the first request and noticed after a full 50 ms slice."""
        requests = [Request(RequestKind.RECV) for _ in range(8)]
        _later(0.01, lambda: requests[-1].complete(1.0))
        start = time.monotonic()
        idx = waitany(requests)
        elapsed = time.monotonic() - start
        assert idx == len(requests) - 1
        assert elapsed < _PROMPT_S, \
            f"waitany took {elapsed * 1e3:.1f} ms (polling-era latency)"

    def test_waitsome_returns_exactly_the_completed_set(self):
        requests = [Request(RequestKind.RECV) for _ in range(5)]
        _later(0.01, lambda: requests[3].complete(1.0))
        _later(0.01, lambda: requests[1].complete(1.0))
        done = waitsome(requests)
        assert set(done) <= {1, 3} and done

    def test_wait_wakes_immediately_on_completion(self):
        abort = NotifyingEvent()
        req = Request(RequestKind.RECV, abort_event=abort)
        _later(0.01, lambda: req.complete(2.5))
        start = time.monotonic()
        req.wait()
        assert time.monotonic() - start < _PROMPT_S
        assert req.complete_s == 2.5

    def test_completion_queue_pushes_already_complete_watch(self):
        queue = CompletionQueue()
        done = Request(RequestKind.SEND)
        done.complete(1.0)
        queue.watch("early", done)       # already complete: pushed now
        assert queue.wait_one() == "early"
        assert queue.pop_ready() is None


class TestAbortInterruption:
    def test_wait_interrupted_by_abort_immediately(self):
        abort = NotifyingEvent()
        req = Request(RequestKind.RECV, abort_event=abort)
        _later(0.01, abort.set)
        start = time.monotonic()
        with pytest.raises(WorldAborted):
            req.wait()
        assert time.monotonic() - start < _PROMPT_S

    @pytest.mark.parametrize("engine_cls",
                             [LinearMatchingEngine, BucketMatchingEngine])
    def test_probe_interrupted_by_abort_immediately(self, engine_cls):
        """The seed's blocking probe checked the abort flag only after
        each 50 ms wait timed out; the listener hook must interrupt the
        wait the instant the abort fires."""
        engine = engine_cls(0)
        abort = NotifyingEvent()
        _later(0.01, abort.set)
        start = time.monotonic()
        with pytest.raises(WorldAborted):
            engine.probe(ctx=0, src=0, tag=0, abort_event=abort)
        assert time.monotonic() - start < _PROMPT_S

    def test_window_lock_interrupted_by_abort_immediately(self):
        lock = RWLock()
        lock.acquire(LOCK_EXCLUSIVE)
        abort = NotifyingEvent()
        result = {}

        def contender():
            start = time.monotonic()
            try:
                lock.acquire(LOCK_EXCLUSIVE, abort_event=abort)
            except WorldAborted:
                result["elapsed"] = time.monotonic() - start

        t = threading.Thread(target=contender)
        t.start()
        time.sleep(0.01)
        abort.set()
        t.join(timeout=5.0)
        assert result["elapsed"] < _PROMPT_S

    def test_notifying_event_fires_late_listener_immediately(self):
        event = NotifyingEvent()
        event.set()
        fired = []
        event.add_listener(lambda: fired.append(True))
        assert fired == [True]


class TestRequestPool:
    def test_pool_recycles_handles(self):
        pool = RequestPool()
        first = pool.acquire(RequestKind.SEND)
        first.complete(1.0)
        pool.release(first)
        second = pool.acquire(RequestKind.RECV)
        assert second is first
        assert second.kind is RequestKind.RECV
        assert not second.is_complete()
        assert pool.n_reuse == 1 and pool.n_alloc == 1

    def test_pool_disabled_never_reuses(self):
        pool = RequestPool(enabled=False)
        req = pool.acquire(RequestKind.SEND)
        pool.release(req)
        assert pool.acquire(RequestKind.SEND) is not req
        assert pool.n_reuse == 0

    def test_pool_rejects_subclasses_and_caps(self):
        pool = RequestPool()

        class Sub(Request):
            pass

        pool.release(Sub(RequestKind.SEND))
        assert pool.acquire(RequestKind.SEND).__class__ is Request
        for _ in range(2 * RequestPool.MAX_POOLED):
            pool.release(Request(RequestKind.SEND))
        assert len(pool._free) == RequestPool.MAX_POOLED

    def test_blocking_traffic_reuses_pool(self):
        """A ping-pong loop's blocking wrappers must actually recycle:
        the pool sees reuse, and results stay correct."""
        def main(comm):
            peer = 1 - comm.rank
            buf = np.zeros(4)
            for i in range(30):
                if comm.rank == 0:
                    comm.Send(np.full(4, float(i)), dest=peer)
                    comm.Recv(buf, source=peer)
                else:
                    comm.Recv(buf, source=peer)
                    comm.Send(buf, dest=peer)
            pool = comm.proc.request_pool
            return float(buf[0]), pool.n_reuse, pool.n_alloc

        for rank_result in run_world(2, main):
            value, n_reuse, n_alloc = rank_result
            assert value == 29.0
            assert n_reuse > n_alloc

    def test_pool_can_be_disabled_by_config(self):
        def main(comm):
            peer = 1 - comm.rank
            comm.sendrecv(comm.rank, dest=peer, source=peer)
            return comm.proc.request_pool.n_reuse

        config = BuildConfig(request_pool=False)
        assert run_world(2, main, config=config) == [0, 0]

    def test_linear_engine_config_still_correct(self):
        """The reference engine stays selectable and functional."""
        def main(comm):
            peer = 1 - comm.rank
            got = comm.sendrecv(("hi", comm.rank), dest=peer, source=peer)
            assert comm.proc.engine.name == "linear"
            return got

        config = BuildConfig(matching_engine="linear")
        assert run_world(2, main, config=config) == [("hi", 1), ("hi", 0)]


class TestWorldAbortLatency:
    def test_raising_rank_unblocks_blocked_recv_promptly(self):
        """End-to-end: rank 0 raises; rank 1 is parked in a blocking
        recv and must be torn down through the notification path."""
        class Boom(RuntimeError):
            pass

        def main(comm):
            if comm.rank == 0:
                time.sleep(0.01)
                raise Boom("rank 0 failed")
            comm.recv(source=0)   # never satisfied

        world = World(2, BuildConfig())
        start = time.monotonic()
        with pytest.raises(Boom):
            world.run(main, timeout=30.0)
        # Generous bound: thread join + teardown, but nowhere near the
        # seed's poll-slice stacking.
        assert time.monotonic() - start < 1.0
