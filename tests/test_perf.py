"""Message-rate harness and analytic model helpers."""

import pytest

from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.fabric.model import BGQ_TORUS, INFINITE, OFI_PSM2
from repro.perf.models import (PROGRESS_INSTRUCTIONS, AmdahlModel,
                               efficiency, per_message_overhead_s)
from repro.perf.msgrate import (measure_instructions, modeled_rate,
                                pump_messages, rate_sweep)
from repro.runtime.world import World


class TestMeasureInstructions:
    def test_rejects_unknown_op(self):
        with pytest.raises(ValueError):
            measure_instructions(BuildConfig(), "bcast")

    def test_stable_across_repeats(self):
        cfg = BuildConfig.default()
        a = measure_instructions(cfg, "isend")
        b = measure_instructions(cfg, "isend")
        assert a == b == 221


class TestModeledRate:
    def test_uses_config_fabric_by_default(self):
        res = modeled_rate(BuildConfig.ipo_build(fabric="ofi"), "isend")
        expected = OFI_PSM2.message_rate(59, 1)
        assert res.rate_msgs_per_s == pytest.approx(expected)

    def test_label_override(self):
        res = modeled_rate(BuildConfig(), "isend", label="custom")
        assert res.label == "custom"

    def test_rate_sweep_orders_and_sizes(self):
        results = rate_sweep("infinite")
        assert len(results) == 10      # 5 builds x 2 ops
        no_ipo = rate_sweep("ucx", include_ipo=False)
        assert len(no_ipo) == 8
        assert all("ipo" not in r.label for r in no_ipo)


class TestPump:
    def test_pump_virtual_time_scales_with_messages(self):
        w1 = World(2, BuildConfig.ipo_build())
        t_small = pump_messages(w1, 10)
        w2 = World(2, BuildConfig.ipo_build())
        t_large = pump_messages(w2, 100)
        assert t_large == pytest.approx(10 * t_small, rel=0.05)

    def test_pump_all_opts_faster_than_plain(self):
        plain = pump_messages(World(2, BuildConfig.ipo_build()), 50)
        fast = pump_messages(World(2, BuildConfig.ipo_build()), 50,
                             flags=ext.ALL_OPTS_PT2PT)
        assert fast < plain


class TestAmdahl:
    def test_time_and_efficiency(self):
        m = AmdahlModel(overhead_s=1.0, work_core_s=100.0)
        assert m.time(10) == pytest.approx(11.0)
        assert m.efficiency(10) == pytest.approx(10.0 / 11.0)

    def test_energy_is_p_o_plus_w(self):
        m = AmdahlModel(overhead_s=2.0, work_core_s=50.0)
        assert m.energy(10) == pytest.approx(10 * 2.0 + 50.0)

    def test_fixed_cost_speedup_argument(self):
        """§4.3: halving O doubles P at fixed cost and halves time.

        E_P = c(PO + W); with O' = O/2 and P' = 2P the energy matches
        and T' = O' + W/(2P) = (O + W/P)/2."""
        m = AmdahlModel(overhead_s=4.0, work_core_s=64.0)
        p = 8
        half = AmdahlModel(overhead_s=2.0, work_core_s=64.0)
        assert half.energy(2 * p) == pytest.approx(m.energy(p))
        assert half.time(2 * p) == pytest.approx(m.time(p) / 2)

    def test_validation(self):
        m = AmdahlModel(1.0, 1.0)
        with pytest.raises(ValueError):
            m.time(0)
        with pytest.raises(ValueError):
            m.fixed_cost_speedup(0)
        with pytest.raises(ValueError):
            efficiency(0.0, 0.0)


class TestPerMessageOverhead:
    def test_receive_defaults_to_issue(self):
        o_explicit = per_message_overhead_s(221, BGQ_TORUS,
                                            recv_instructions=221)
        o_default = per_message_overhead_s(221, BGQ_TORUS)
        assert o_explicit == o_default

    def test_ch3_progress_dominates(self):
        o_ch4 = per_message_overhead_s(
            221, BGQ_TORUS,
            progress_instructions=PROGRESS_INSTRUCTIONS["ch4"])
        o_ch3 = per_message_overhead_s(
            253, BGQ_TORUS,
            progress_instructions=PROGRESS_INSTRUCTIONS["ch3"])
        assert o_ch3 > 1.3 * o_ch4

    def test_zero_on_free_fabric_software_only(self):
        o = per_message_overhead_s(100, INFINITE)
        assert o == pytest.approx(
            INFINITE.cycles_to_seconds(INFINITE.sw_cycles(200)))
