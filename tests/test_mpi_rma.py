"""One-sided communication: windows, sync, atomics, dynamic windows."""

import numpy as np
import pytest

from repro.consts import PROC_NULL
from repro.core.config import BuildConfig
from repro.datatypes import subarray, vector
from repro.datatypes.predefined import DOUBLE, INT64
from repro.errors import (MPIErrArg, MPIErrRank, MPIErrRMARange,
                          MPIErrRMASync, MPIErrWin)
from repro.mpi import reduceops
from repro.mpi.rma import (LOCK_EXCLUSIVE, LOCK_SHARED, RWLock, Window,
                           WindowState)
from tests.conftest import run_world


class TestWindowState:
    def test_static_view_bounds(self):
        state = WindowState(np.zeros(16, dtype=np.uint8), disp_unit=1)
        assert state.nbytes == 16
        view = state.view(4, 8)
        view[:] = 7
        with pytest.raises(MPIErrRMARange):
            state.view(10, 8)
        with pytest.raises(MPIErrRMARange):
            state.view(-1, 4)

    def test_dynamic_attach_detach(self):
        state = WindowState(None, disp_unit=1, dynamic=True)
        arr = np.zeros(100, dtype=np.uint8)
        base = state.attach(arr)
        assert base >= WindowState.PAGE
        view = state.view(base + 10, 5)
        view[:] = 3
        assert arr[10] == 3
        state.detach(base)
        with pytest.raises(MPIErrRMARange):
            state.view(base, 1)
        with pytest.raises(MPIErrWin):
            state.detach(base)

    def test_dynamic_rejects_initial_buffer(self):
        with pytest.raises(MPIErrWin):
            WindowState(np.zeros(4, dtype=np.uint8), 1, dynamic=True)

    def test_bad_disp_unit(self):
        with pytest.raises(MPIErrArg):
            WindowState(np.zeros(4, dtype=np.uint8), 0)


class TestRWLock:
    def test_shared_readers_coexist(self):
        lock = RWLock()
        lock.acquire(LOCK_SHARED)
        lock.acquire(LOCK_SHARED)
        lock.release(LOCK_SHARED)
        lock.release(LOCK_SHARED)

    def test_unbalanced_release_rejected(self):
        lock = RWLock()
        with pytest.raises(MPIErrRMASync):
            lock.release(LOCK_SHARED)
        with pytest.raises(MPIErrRMASync):
            lock.release(LOCK_EXCLUSIVE)


class TestPutGet:
    def test_put_with_fence(self):
        def main(comm):
            win, mem = Window.allocate(comm, nbytes=8 * comm.size,
                                       disp_unit=8)
            view = mem.view(np.float64)
            win.fence()
            src = np.array([float(comm.rank)], dtype=np.float64)
            win.put(src, target_rank=(comm.rank + 1) % comm.size,
                    target_disp=comm.rank)
            win.fence()
            left = (comm.rank - 1) % comm.size
            return view[left]

        assert run_world(4, main) == [3.0, 0.0, 1.0, 2.0]

    def test_get(self):
        def main(comm):
            local = np.full(4, float(comm.rank * 100))
            win = Window.create(comm, local, disp_unit=8)
            win.fence()
            out = np.zeros(4)
            win.get(out, target_rank=(comm.rank + 1) % comm.size)
            win.flush((comm.rank + 1) % comm.size)
            win.fence()
            return out[0]

        assert run_world(3, main) == [100.0, 200.0, 0.0]

    def test_put_derived_target_layout(self):
        """Non-contiguous target layout exercises the AM fallback."""
        def main(comm):
            mem = np.zeros(12, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                dt = vector(count=3, blocklength=1, stride=2,
                            base=DOUBLE).commit()
                src = np.array([1.0, 2.0, 3.0])
                win.put((src, 3, DOUBLE), target_rank=1, target_disp=0,
                        target=(1, dt))
            win.fence()
            return mem.tolist()

        results = run_world(2, main)
        assert results[1][:6] == [1.0, 0.0, 2.0, 0.0, 3.0, 0.0]

    def test_put_size_mismatch_rejected(self):
        def main(comm):
            mem = np.zeros(8, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            with pytest.raises(MPIErrArg):
                win.put((np.zeros(2), 2, DOUBLE), target_rank=0,
                        target_disp=0, target=(3, DOUBLE))
            win.fence()
            return "ok"

        run_world(2, main)

    def test_put_out_of_window_rejected(self):
        def main(comm):
            mem = np.zeros(2, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            with pytest.raises(MPIErrRMARange):
                win.put(np.zeros(4), target_rank=0, target_disp=0)
            win.fence()
            return "ok"

        run_world(2, main)

    def test_put_to_proc_null_is_noop(self):
        def main(comm):
            mem = np.ones(2, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            win.put(np.zeros(2), target_rank=PROC_NULL)
            win.fence()
            return mem.tolist()

        assert run_world(2, main) == [[1.0, 1.0]] * 2

    def test_bad_target_rank_rejected(self):
        def main(comm):
            win, _ = Window.allocate(comm, nbytes=8)
            win.fence()
            with pytest.raises(MPIErrRank):
                win.put(np.zeros(1), target_rank=7)
            win.fence()
            return "ok"

        run_world(2, main)

    def test_disp_unit_scaling(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                win.put(np.array([5.0]), target_rank=1, target_disp=2)
            win.fence()
            return mem.tolist()

        assert run_world(2, main)[1] == [0.0, 0.0, 5.0, 0.0]


class TestAtomics:
    def test_accumulate_sum(self):
        def main(comm):
            mem = np.zeros(2, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            win.accumulate(np.array([1.0, 2.0]), target_rank=0,
                           op=reduceops.SUM)
            win.fence()
            return mem.tolist()

        results = run_world(4, main)
        assert results[0] == [4.0, 8.0]

    def test_accumulate_replace(self):
        def main(comm):
            mem = np.full(1, -1.0)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 1:
                win.accumulate(np.array([9.0]), target_rank=0,
                               op=reduceops.REPLACE)
            win.fence()
            return mem[0]

        assert run_world(2, main)[0] == 9.0

    def test_fetch_and_op_counter(self):
        """All ranks atomically increment rank 0's counter; the fetched
        pre-values must be a permutation of 0..size-1."""
        def main(comm):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            got = np.zeros(1, dtype=np.int64)
            win.lock(0, LOCK_EXCLUSIVE)
            win.fetch_and_op(np.ones(1, dtype=np.int64), got,
                             target_rank=0, op=reduceops.SUM)
            win.unlock(0)
            win.fence()
            return int(got[0]), int(mem[0])

        results = run_world(4, main)
        fetched = sorted(r[0] for r in results)
        assert fetched == [0, 1, 2, 3]
        assert results[0][1] == 4

    def test_get_accumulate_no_op_reads_atomically(self):
        def main(comm):
            mem = np.full(1, 42.0)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            out = np.zeros(1)
            win.get_accumulate(np.zeros(1), out, target_rank=0,
                               op=reduceops.NO_OP)
            win.fence()
            return out[0]

        assert run_world(3, main) == [42.0] * 3

    def test_compare_and_swap(self):
        def main(comm):
            mem = np.zeros(1, dtype=np.int64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            old = np.full(1, -1, dtype=np.int64)
            win.lock(0, LOCK_EXCLUSIVE)
            win.compare_and_swap(
                origin=np.full(1, comm.rank + 1, dtype=np.int64),
                compare=np.zeros(1, dtype=np.int64),
                result=old, target_rank=0)
            win.unlock(0)
            win.fence()
            return int(old[0]), int(mem[0])

        results = run_world(3, main)
        winners = [r for r in results if r[0] == 0]
        assert len(winners) == 1                 # exactly one CAS won
        assert results[0][1] in (1, 2, 3)


class TestSync:
    def test_lock_unlock_require_pairing(self):
        def main(comm):
            win, _ = Window.allocate(comm, nbytes=8)
            with pytest.raises(MPIErrRMASync):
                win.unlock(0)
            win.lock(0, LOCK_SHARED)
            with pytest.raises(MPIErrRMASync):
                win.lock(0, LOCK_SHARED)
            win.unlock(0)
            win.fence()
            return "ok"

        run_world(2, main)

    def test_lock_all_unlock_all(self):
        def main(comm):
            win, mem = Window.allocate(comm, nbytes=8, disp_unit=8)
            view = mem.view(np.float64)
            win.fence()
            win.lock_all()
            win.put(np.array([float(comm.rank)]),
                    target_rank=(comm.rank + 1) % comm.size)
            win.flush_all()
            win.unlock_all()
            win.fence()
            return view[0]

        assert run_world(3, main) == [2.0, 0.0, 1.0]

    def test_freed_window_rejected(self):
        def main(comm):
            win, _ = Window.allocate(comm, nbytes=8)
            win.fence()
            win.free()
            with pytest.raises(MPIErrWin):
                win.put(np.zeros(1), target_rank=0)
            return "ok"

        run_world(2, main)


class TestDynamicWindow:
    def test_put_by_virtual_address(self):
        def main(comm):
            win = Window.create_dynamic(comm)
            region = np.zeros(4, dtype=np.float64)
            base = win.local_state.attach(region)
            bases = comm.allgather(base)
            win.fence()
            if comm.rank == 0:
                win.put_virtual_addr(np.array([3.14]), target_rank=1,
                                     vaddr=bases[1] + 8)
            win.fence()
            return region.tolist()

        results = run_world(2, main)
        assert results[1] == [0.0, 3.14, 0.0, 0.0]

    def test_unattached_address_rejected(self):
        def main(comm):
            win = Window.create_dynamic(comm)
            win.fence()
            with pytest.raises(MPIErrRMARange):
                win.put_virtual_addr(np.zeros(1), target_rank=0, vaddr=64)
            win.fence()
            return "ok"

        run_world(2, main)


class TestVirtualAddrExtension:
    def test_matches_offset_put(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                vaddr = win.remote_addr(1, disp=2)
                win.put_virtual_addr(np.array([7.0]), 1, vaddr)
            win.fence()
            return mem.tolist()

        assert run_world(2, main)[1] == [0.0, 0.0, 7.0, 0.0]

    def test_saves_four_instructions(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            result = None
            if comm.rank == 0:
                src = np.array([1.0])
                with comm.proc.tracer.call("offset"):
                    win.put(src, target_rank=1, target_disp=0)
                vaddr = win.remote_addr(1, disp=0)
                with comm.proc.tracer.call("vaddr"):
                    win.put_virtual_addr(src, 1, vaddr)
                result = (comm.proc.tracer.last("offset").total,
                          comm.proc.tracer.last("vaddr").total)
            win.fence()
            return result

        offset, vaddr = run_world(2, main, BuildConfig.ipo_build())[0]
        assert offset == 44                       # Figure 2 ipo PUT
        assert offset - vaddr == 4                # §3.2 saving
