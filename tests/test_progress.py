"""Background progress engine: continuations, wait-path fixes, overlap.

Covers the PR's tentpole and its satellite bug fixes:

* foreign plain-Event abort flags wake blocked waiters immediately
  (the old slice-polling fallback could oversleep an abort);
* ``Request.subscribe`` exactly-once semantics under a concurrent
  ``complete``/``cancel``/``fail`` (the subscribe/flush handoff);
* ``ft`` retransmit timers fire off the virtual clock, not off how
  often the application calls into MPI;
* wait families under fault injection with the engine on and off, and
  the overlap property itself: with ``progress`` enabled a rendezvous
  exchange and an NBC allreduce complete with zero user polls and the
  blocking-wait share collapses.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.ft import FaultPlan
from repro.mpi import reduceops
from repro.runtime.completion import CompletionQueue, add_abort_listener
from repro.runtime.request import Request, RequestKind, waitall, waitany
from repro.runtime.world import World, WorldAborted

#: Lossy enough to exercise drop/dup/reorder on a 40-message stream.
LOSSY = dict(drop_rate=0.1, duplicate_rate=0.1, reorder_rate=0.15)

N_MSGS = 40


class TestForeignEventAbort:
    """Satellite 1: plain-Event abort flags wake waiters at once."""

    def test_add_abort_listener_accepts_plain_event(self):
        event = threading.Event()
        fired = threading.Event()
        assert add_abort_listener(event, fired.set) is True
        event.set()
        assert fired.wait(2.0)

    def test_listener_on_already_set_plain_event_fires_immediately(self):
        event = threading.Event()
        event.set()
        fired = []
        assert add_abort_listener(event, lambda: fired.append(1)) is True
        assert fired == [1]

    def test_cleared_and_reused_plain_event_gets_a_fresh_bridge(self):
        event = threading.Event()
        first, second = threading.Event(), threading.Event()
        add_abort_listener(event, first.set)
        event.set()
        assert first.wait(2.0)
        event.clear()
        add_abort_listener(event, second.set)
        assert not second.is_set()
        event.set()
        assert second.wait(2.0)

    def test_request_wait_wakes_on_plain_event_abort(self):
        abort = threading.Event()
        req = Request(RequestKind.RECV, abort_event=abort)
        outcome: list = []

        def block():
            t0 = time.monotonic()
            try:
                req.wait()
            except WorldAborted:
                outcome.append(time.monotonic() - t0)

        thread = threading.Thread(target=block)
        thread.start()
        time.sleep(0.05)
        abort.set()
        thread.join(5.0)
        assert outcome, "wait neither aborted nor returned"
        assert outcome[0] < 2.0

    def test_completion_queue_wait_one_wakes_on_plain_event_abort(self):
        abort = threading.Event()
        queue = CompletionQueue(abort_event=abort)
        queue.watch(0, Request(RequestKind.RECV))
        outcome: list = []

        def block():
            try:
                queue.wait_one()
            except WorldAborted:
                outcome.append("aborted")

        thread = threading.Thread(target=block)
        thread.start()
        time.sleep(0.05)
        abort.set()
        thread.join(5.0)
        assert outcome == ["aborted"]


class TestSubscribeFlushHandoff:
    """Satellite 2: exactly-once callbacks under transition races."""

    def _blocked_flush(self, transition):
        """A request mid-flush: *transition* runs on a thread, its
        first callback parked on a gate.  Returns (req, gate, thread)."""
        req = Request(RequestKind.SEND)
        gate = threading.Event()
        entered = threading.Event()

        def first(_req):
            entered.set()
            gate.wait(5.0)

        req.subscribe(first)
        thread = threading.Thread(target=transition, args=(req,))
        thread.start()
        assert entered.wait(5.0)
        return req, gate, thread

    def test_subscribe_during_flush_fires_exactly_once_on_flusher(self):
        req, gate, thread = self._blocked_flush(
            lambda r: r.complete(1.0))
        fired: list = []
        req.subscribe(lambda _req: fired.append(threading.current_thread()))
        # The subscriber must not run it inline: the flush owns it.
        assert fired == []
        gate.set()
        thread.join(5.0)
        assert len(fired) == 1
        assert fired[0] is thread

    def test_subscribe_during_cancel_flush_fires_exactly_once(self):
        req, gate, thread = self._blocked_flush(lambda r: r.cancel())
        fired: list = []
        req.subscribe(lambda _req: fired.append(1))
        assert fired == []
        gate.set()
        thread.join(5.0)
        assert fired == [1]

    def test_subscribe_during_fail_flush_fires_exactly_once(self):
        req, gate, thread = self._blocked_flush(
            lambda r: r.fail(1.0, RuntimeError("boom")))
        fired: list = []
        req.subscribe(lambda _req: fired.append(1))
        assert fired == []
        gate.set()
        thread.join(5.0)
        assert fired == [1]

    def test_reset_mid_flush_kills_stale_waiters(self):
        req, gate, thread = self._blocked_flush(
            lambda r: r.complete(1.0))
        stale: list = []
        req.subscribe(lambda _req: stale.append(1))
        req._reset(RequestKind.SEND)   # pool recycle during the flush
        gate.set()
        thread.join(5.0)
        # The recycled handle's new life owns _waiters; the old flush
        # observed the epoch bump and stopped.
        assert stale == []

    def test_late_subscribe_after_flush_runs_inline(self):
        req = Request(RequestKind.SEND)
        req.complete(1.0)
        fired: list = []
        req.subscribe(lambda _req: fired.append(threading.current_thread()))
        assert fired == [threading.current_thread()]

    def test_subscribe_vs_complete_race_is_exactly_once(self):
        for _ in range(200):
            req = Request(RequestKind.SEND)
            count = [0]
            start = threading.Barrier(2)

            def complete():
                start.wait()
                req.complete(1.0)

            def subscribe():
                start.wait()
                req.subscribe(lambda _req: count.__setitem__(
                    0, count[0] + 1))

            threads = [threading.Thread(target=complete),
                       threading.Thread(target=subscribe)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(5.0)
            assert count[0] == 1

    def test_callbacks_fire_in_registration_order(self):
        req = Request(RequestKind.SEND)
        order: list = []
        for i in range(5):
            req.subscribe(lambda _req, i=i: order.append(i))
        req.complete(1.0)
        assert order == [0, 1, 2, 3, 4]


class TestVirtualClockRetransmit:
    """Satellite 3: retransmit timers run off the virtual clock."""

    #: Every packet draws the reorder fate, so a single send stashes.
    REORDER_ONLY = dict(reorder_rate=1.0)

    def test_drain_with_now_respects_the_deadline(self):
        config = BuildConfig(fault_plan=FaultPlan(seed=5,
                                                  **self.REORDER_ONLY))

        def fn(comm):
            if comm.rank == 0:
                comm.send("held", dest=1)
                faults = comm.proc.faults
                assert faults.stashed_count() == 1
                before = faults.n_retransmits
                # Deadline is in the virtual future: nothing fires.
                assert faults.drain(now=comm.proc.vclock.now) == 0
                assert faults.stashed_count() == 1
                # Advance the virtual clock past the deadline.
                comm.proc.charge_compute(1.0)
                assert faults.drain(now=comm.proc.vclock.now) == 1
                assert faults.stashed_count() == 0
                return faults.n_retransmits - before
            return comm.recv(source=0)

        results = World(2, config).run(fn)
        assert results[0] == 1          # the release was a retransmission
        assert results[1] == "held"     # and it arrived intact

    def test_legacy_drain_flushes_unconditionally_without_charges(self):
        config = BuildConfig(fault_plan=FaultPlan(seed=5,
                                                  **self.REORDER_ONLY))

        def fn(comm):
            if comm.rank == 0:
                comm.send("held", dest=1)
                faults = comm.proc.faults
                before = faults.n_retransmits
                assert faults.drain() == 1   # quiescence flush: no timer
                return faults.n_retransmits - before
            return comm.recv(source=0)

        results = World(2, config).run(fn)
        assert results[0] == 0
        assert results[1] == "held"

    def test_engine_fires_timer_without_any_mpi_call(self):
        """A rank that stops calling into MPI still retransmits: the
        engine's virtual-clock scan releases the stash while the rank
        sleeps in pure compute."""
        config = BuildConfig(fault_plan=FaultPlan(seed=5,
                                                  **self.REORDER_ONLY),
                             progress="thread")

        def fn(comm):
            if comm.rank == 0:
                comm.send("held", dest=1)
                # Pure compute: the virtual clock passes the retransmit
                # deadline, the wall clock gives the engine time to scan.
                comm.proc.charge_compute(1.0)
                time.sleep(0.3)
                stats = comm.proc.progress.stats()
                return (comm.proc.faults.stashed_count(),
                        stats["n_timer_fires"])
            return comm.recv(source=0)

        results = World(2, config).run(fn)
        stashed, timer_fires = results[0]
        assert stashed == 0, "engine never released the stash"
        assert timer_fires >= 1
        assert results[1] == "held"


class TestProgressEngineConfig:
    """Mode validation and the is-None default."""

    def test_default_build_has_no_engine(self):
        world = World(1, BuildConfig())
        assert world.progress is None
        assert world.proc(0).progress is None

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError, match="progress mode"):
            World(1, BuildConfig(progress="bogus"))

    def test_requires_thread_safety(self):
        with pytest.raises(ValueError, match="thread_safety"):
            World(1, BuildConfig(progress="thread", thread_safety=False))

    def test_continuation_error_aborts_the_world(self):
        world = World(1, BuildConfig(progress="thread"))
        engine = world.proc(0).progress
        engine.post_continuation(lambda _req: 1 / 0, None)
        deadline = time.monotonic() + 5.0
        while not engine.errors and time.monotonic() < deadline:
            time.sleep(0.01)
        assert engine.errors
        assert world.abort_event.is_set()


class TestContinuations:
    """on_complete / attach_continuation chaining semantics."""

    def test_on_complete_without_engine_runs_on_completing_thread(self):
        req = Request(RequestKind.SEND)
        seen: list = []
        req.on_complete(lambda r: seen.append(threading.current_thread()))
        thread = threading.Thread(target=lambda: req.complete(1.0))
        thread.start()
        thread.join(5.0)
        assert seen == [thread]

    def test_attach_continuation_is_the_mpix_spelling(self):
        assert Request.attach_continuation is Request.on_complete

    def test_on_complete_with_engine_runs_on_progress_thread(self):
        config = BuildConfig(progress="thread")

        def fn(comm):
            peer = 1 - comm.rank
            req = comm.Irecv(np.empty(4), source=peer, tag=3)
            names: list = []
            done = threading.Event()

            def continuation(_req):
                names.append(threading.current_thread().name)
                done.set()

            req.on_complete(continuation)
            comm.Isend(np.zeros(4), dest=peer, tag=3).wait()
            assert done.wait(5.0)
            req.wait()
            return names[0]

        results = World(2, config).run(fn)
        for name in results:
            assert name.startswith("mpi-progress-")


@pytest.mark.parametrize("progress", [None, "thread"])
@pytest.mark.parametrize("num_vcis", [1, 4])
@pytest.mark.parametrize("seed", [1, 7])
class TestWaitFamiliesUnderFaults:
    """Satellite 4: waitall/waitany under injection, engine on and off."""

    def _config(self, seed, num_vcis, progress):
        return BuildConfig(fault_plan=FaultPlan(seed=seed, **LOSSY),
                           num_vcis=num_vcis, progress=progress)

    def test_waitall_streams_exactly_once_in_order(self, seed, num_vcis,
                                                   progress):
        config = self._config(seed, num_vcis, progress)

        def fn(comm):
            me, peer = comm.rank, 1 - comm.rank
            reqs = [comm.isend((me, i), dest=peer) for i in range(N_MSGS)]
            got = [comm.recv(source=peer) for _ in range(N_MSGS)]
            waitall(reqs)
            return got

        results = World(2, config).run(fn)
        for me in (0, 1):
            assert results[me] == [(1 - me, i) for i in range(N_MSGS)]

    def test_waitany_consumes_every_receive(self, seed, num_vcis, progress):
        config = self._config(seed, num_vcis, progress)
        n = 12

        def fn(comm):
            me, peer = comm.rank, 1 - comm.rank
            sends = [comm.isend(("m", i), dest=peer) for i in range(n)]
            recvs = [comm.irecv(source=peer) for _ in range(n)]
            pending = list(range(n))
            got = {}
            while pending:
                i = waitany([recvs[j] for j in pending])
                idx = pending.pop(i)
                got[idx] = recvs[idx].payload
            waitall(sends)
            return len(got)

        results = World(2, config).run(fn)
        assert results == [n, n]


class TestOverlap:
    """The acceptance property: zero user polls, shrinking waits."""

    SLEEP_S = 0.25

    def _run(self, progress):
        config = BuildConfig(progress=progress)

        def fn(comm):
            if comm.rank == 0:
                # Post, then go compute: with an engine the schedule
                # advances itself; without one it stalls until wait.
                req = comm.iallreduce(1.0, op=reduceops.SUM)
                time.sleep(self.SLEEP_S)
                req.wait()
                return 0.0
            req = comm.iallreduce(2.0, op=reduceops.SUM)
            t0 = time.monotonic()
            req.wait()
            elapsed = time.monotonic() - t0
            assert req.result == 3.0
            return elapsed

        return World(2, config).run(fn)[1]

    def test_blocking_wait_time_shrinks_with_progress(self):
        blocked = self._run(None)
        overlapped = self._run("thread")
        # Without an engine rank 1 waits out rank 0's compute; with one
        # the collective completes in the background.
        assert blocked > 0.6 * self.SLEEP_S
        assert overlapped < blocked / 2.0

    def test_zero_polls_between_post_and_wait(self):
        config = BuildConfig(progress="thread")

        def fn(comm):
            peer = 1 - comm.rank
            nbc = comm.iallreduce(float(comm.rank), op=reduceops.SUM)
            big = np.zeros(1 << 17)   # rendezvous-sized (1 MiB)
            sreq = comm.Isend(big, dest=peer, tag=9)
            rreq = comm.Irecv(np.empty(1 << 17), source=peer, tag=9)
            time.sleep(0.3)
            # No MPI call happened since the posts; everything is done.
            polled_complete = (nbc.is_complete(), sreq.is_complete(),
                               rreq.is_complete())
            nbc.wait(), sreq.wait(), rreq.wait()
            stats = comm.proc.progress.stats()
            return polled_complete, stats

        results = World(2, config).run(fn)
        for polled_complete, stats in results:
            assert polled_complete == (True, True, True)
            assert stats["n_lane_drained"] >= 1   # parked rendezvous
            assert stats["n_continuations"] >= 1  # NBC chained itself
