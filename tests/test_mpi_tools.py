"""MPI_T performance-variable interface and CH4 rendezvous."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from repro.fabric.model import OFI_PSM2
from repro.fabric.topology import Topology
from repro.mpi import reduceops
from repro.mpi.collectives import allreduce_recursive_doubling
from repro.mpi.tools import (PvarClass, PvarSession, pvar_get_info,
                             pvar_get_num, pvar_names)
from repro.runtime.world import World
from tests.conftest import run_world


class TestPvarRegistry:
    def test_enumeration(self):
        assert pvar_get_num() == len(pvar_names())
        assert pvar_get_num() > 20
        assert "unexpected_queue_length" in pvar_names()

    def test_get_info(self):
        info = pvar_get_info("instructions_total")
        assert info.pvar_class is PvarClass.COUNTER
        assert info.description
        with pytest.raises(MPIErrArg):
            pvar_get_info("no_such_pvar")

    def test_every_category_and_subsystem_exposed(self):
        names = set(pvar_names())
        assert "instructions_error_checking" in names
        assert "mandatory_rank_translation" in names
        assert "mandatory_match_bits" in names


class TestPvarSession:
    def test_unexpected_queue_visible(self):
        def main(comm):
            session = PvarSession(comm.proc)
            if comm.rank == 0:
                comm.send("early", dest=1, tag=0)
                comm.barrier()
                return None
            comm.barrier()   # message now waiting, unreceived
            depth = session.read("unexpected_queue_length")
            payload = comm.recv(source=0, tag=0)
            after = session.read("unexpected_queue_length")
            return depth, after, payload

        depth, after, payload = run_world(2, main)[1]
        assert depth == 1.0
        assert after == 0.0
        assert payload == "early"

    def test_delta_attributes_one_call(self):
        """The tools interface reproduces the Table-1 measurement."""
        def main(comm):
            session = PvarSession(comm.proc)
            buf = np.zeros(1, dtype=np.uint8)
            from repro.datatypes.predefined import BYTE
            if comm.rank == 0:
                delta = session.delta(
                    lambda: comm.Isend((buf, 1, BYTE), dest=1,
                                       tag=0).wait())
                return delta
            comm.Recv((buf, 1, BYTE), source=0, tag=0)
            return None

        delta = run_world(2, main)[0]
        assert delta["instructions_total"] == 221
        assert delta["instructions_error_checking"] == 74
        assert delta["mandatory_rank_translation"] == 11
        assert delta["messages_deposited"] == 0   # we were the sender
        assert delta["virtual_time_seconds"] > 0

    def test_match_counters(self):
        def main(comm):
            session = PvarSession(comm.proc)
            if comm.rank == 0:
                comm.send("a", dest=1, tag=0)      # unexpected at 1
                comm.barrier()
                comm.send("b", dest=1, tag=1)      # matched posted at 1
                return None
            comm.barrier()
            comm.recv(source=0, tag=0)
            comm.recv(source=0, tag=1)
            return (session.read("matches_on_unexpected_queue") >= 1,
                    session.read("messages_deposited") >= 2)

        assert run_world(2, main)[1] == (True, True)

    def test_read_all_complete(self):
        def main(comm):
            return PvarSession(comm.proc).read_all()

        snapshot = run_world(1, main)[0]
        assert set(snapshot) == set(pvar_names())


class TestCH4Rendezvous:
    def _sender_time(self, nbytes):
        world = World(2, BuildConfig(fabric="ofi"),
                      topology=Topology(nranks=2, cores_per_node=1))

        def main(comm):
            data = np.zeros(nbytes, dtype=np.uint8)
            from repro.datatypes.predefined import BYTE
            if comm.rank == 0:
                t0 = comm.proc.vclock.now
                comm.Isend((data, nbytes, BYTE), dest=1, tag=0).wait()
                dev = comm.proc.device
                return (comm.proc.vclock.now - t0, dev.n_eager,
                        dev.n_rendezvous)
            comm.Recv((np.zeros(nbytes, dtype=np.uint8), nbytes, BYTE),
                      source=0, tag=0)
            return None

        return world.run(main)[0]

    def test_protocol_switch_at_threshold(self):
        threshold = OFI_PSM2.rendezvous_threshold
        _, eager, rndv = self._sender_time(threshold)
        assert (eager, rndv) == (1, 0)
        _, eager, rndv = self._sender_time(threshold + 1)
        assert (eager, rndv) == (0, 1)

    def test_rendezvous_adds_round_trip(self):
        threshold = OFI_PSM2.rendezvous_threshold
        t_eager, _, _ = self._sender_time(threshold)
        t_rndv, _, _ = self._sender_time(threshold + 1)
        assert t_rndv - t_eager >= 1.8 * OFI_PSM2.latency_s

    def test_small_messages_unaffected(self):
        """The 1-byte microbenchmark path must stay rendezvous-free —
        the calibrated Figure 2/6 numbers depend on it."""
        from repro.perf.msgrate import measure_instructions
        assert measure_instructions(BuildConfig.default(), "isend") == 221


class TestRecursiveDoubling:
    @pytest.mark.parametrize("size", [1, 2, 3, 4, 5, 6, 7, 8])
    def test_any_rank_count(self, size):
        def main(comm):
            def combine(a, b):
                return bytes([(x + y) % 256 for x, y in zip(a, b)])

            return allreduce_recursive_doubling(
                comm, bytes([comm.rank + 1, 0]), combine)

        expected = bytes([size * (size + 1) // 2 % 256, 0])
        assert run_world(size, main) == [expected] * size

    def test_buffer_variant_matches_reference(self):
        def main(comm):
            rng = np.random.default_rng(comm.rank)
            send = rng.normal(size=16)
            rd = np.zeros(16)
            rb = np.zeros(16)
            comm.Allreduce(send, rd, op=reduceops.SUM,
                           algorithm="recursive_doubling")
            comm.Allreduce(send, rb, op=reduceops.SUM,
                           algorithm="reduce_bcast")
            np.testing.assert_allclose(rd, rb, rtol=1e-12)
            return True

        assert all(run_world(6, main))

    def test_unknown_algorithm_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.Allreduce(np.zeros(2), np.zeros(2),
                               algorithm="quantum")
            return "ok"

        run_world(1, main)

    def test_large_payload_uses_reduce_bcast_path(self):
        """Default selection: > 64 KiB goes through reduce+bcast (we
        verify via result correctness at a size over the threshold)."""
        def main(comm):
            send = np.full(10_000, float(comm.rank))   # 80 KB
            recv = np.zeros(10_000)
            comm.Allreduce(send, recv, op=reduceops.SUM)
            return recv[0], recv[-1]

        results = run_world(3, main)
        assert all(r == (3.0, 3.0) for r in results)
