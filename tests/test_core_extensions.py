"""Section 3 extension semantics and their exact instruction savings."""

import numpy as np
import pytest

from repro.consts import PROC_NULL
from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.datatypes.predefined import BYTE, DOUBLE
from repro.errors import MPIErrArg, MPIErrRank
from repro.perf.msgrate import EXTENSION_CHAIN, measure_instructions
from tests.conftest import run_world


class TestExtFlags:
    def test_or_combines(self):
        combined = ext.NOREQ | ext.NOMATCH
        assert combined.noreq and combined.nomatch
        assert not combined.global_rank

    def test_fused_requires_all_pt2pt_flags(self):
        assert ext.ALL_OPTS_PT2PT.fused_pt2pt
        assert not (ext.NOREQ | ext.NOMATCH).fused_pt2pt
        assert ext.ALL_OPTS_RMA.fused_rma
        assert not ext.VIRTUAL_ADDR.fused_rma

    def test_any(self):
        assert not ext.NONE.any
        assert ext.GLOBAL_RANK.any

    def test_with_(self):
        f = ext.ALL_OPTS_PT2PT.with_(noreq=False)
        assert not f.noreq and f.global_rank


class TestGlobalRank:
    def test_functional_roundtrip(self):
        """§3.1: translate on a subcomm, send with world ranks."""
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)  # reversed order
            buf = np.full(1, float(comm.rank))
            out = np.zeros(1)
            # sub-rank of my neighbor in reversed ordering:
            nbr = (sub.rank + 1) % sub.size
            nbr_world = sub.world_rank_of(nbr)
            req = sub.Irecv(out, source=(sub.rank - 1) % sub.size, tag=0)
            sub.isend_global(buf, nbr_world, tag=0).wait()
            req.wait()
            return out[0]

        results = run_world(3, main)
        # reversed ring: sub ranks (0,1,2) = world (2,1,0)
        assert results == [1.0, 2.0, 0.0]

    def test_world_range_validated(self):
        def main(comm):
            with pytest.raises(MPIErrRank):
                comm.isend_global(np.zeros(1), comm.world_size, tag=0)
            return "ok"

        run_world(2, main)

    def test_saves_ten_instructions(self):
        cfg = BuildConfig.ipo_build()
        base = measure_instructions(cfg, "isend")
        glob = measure_instructions(cfg, "isend", ext.GLOBAL_RANK)
        assert base - glob == 10


class TestNPN:
    def test_rejects_proc_null_in_checked_build(self):
        def main(comm):
            with pytest.raises(MPIErrRank):
                comm.isend_npn(np.zeros(1), PROC_NULL, tag=0)
            return "ok"

        run_world(2, main)

    def test_functional(self):
        def main(comm):
            buf = np.full(2, float(comm.rank))
            out = np.zeros(2)
            if comm.rank == 0:
                comm.isend_npn(buf, 1, tag=3).wait()
                return None
            comm.Recv(out, source=0, tag=3)
            return out.tolist()

        assert run_world(2, main)[1] == [0.0, 0.0]

    def test_saves_three_instructions(self):
        cfg = BuildConfig.ipo_build()
        assert (measure_instructions(cfg, "isend")
                - measure_instructions(cfg, "isend", ext.NO_PROC_NULL)) == 3


class TestNoReq:
    def test_bulk_completion(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(10):
                    comm.isend_noreq(np.full(1, float(i)), 1, tag=i)
                assert comm.noreq_pending == 10
                done = comm.waitall_noreq()
                assert comm.noreq_pending == 0
                return done
            out = np.zeros(1)
            return [int(comm.Recv(out, source=0, tag=i).count_bytes)
                    for i in range(10)]

        results = run_world(2, main)
        assert results[0] == 10
        assert results[1] == [8] * 10

    def test_noreq_returns_none(self):
        def main(comm):
            if comm.rank == 0:
                assert comm.isend_noreq(np.zeros(1), 1, tag=0) is None
                comm.waitall_noreq()
                return None
            comm.Recv(np.zeros(1), source=0, tag=0)
            return None

        run_world(2, main)

    def test_ssend_noreq_combination_rejected(self):
        from repro.core.ops import SendOp
        from repro.mpi.pt2pt import BYTE_REF

        def main(comm):
            op = SendOp(buf=np.zeros(1, np.uint8), count=1, dtref=BYTE_REF,
                        dest=0, tag=0, comm=comm, flags=ext.NOREQ,
                        sync=True)
            with pytest.raises(MPIErrArg):
                comm.proc.device.isend(op)
            return "ok"

        run_world(1, main)

    def test_saves_ten_instructions(self):
        cfg = BuildConfig.ipo_build()
        assert (measure_instructions(cfg, "isend")
                - measure_instructions(cfg, "isend", ext.NOREQ)) == 10


class TestNoMatch:
    def test_arrival_order_matching(self):
        """§3.6: messages from different sources and tags match a
        nomatch receive strictly in arrival order."""
        def main(comm):
            if comm.rank == 0:
                got = []
                buf = np.zeros(1)
                for _ in range(2):
                    status = comm.recv_nomatch(buf)
                    got.append((status.source, buf[0]))
                return sorted(got)
            comm.isend_nomatch(np.full(1, float(comm.rank)), 0,
                               tag=comm.rank * 11).wait()
            return None

        assert run_world(3, main)[0] == [(1, 1.0), (2, 2.0)]

    def test_retains_communicator_isolation(self):
        def main(comm):
            dup = comm.dup()
            if comm.rank == 0:
                comm.isend_nomatch(np.full(1, 1.0), 1, tag=0).wait()
                dup.isend_nomatch(np.full(1, 2.0), 1, tag=0).wait()
                return None
            buf = np.zeros(1)
            dup.recv_nomatch(buf)
            first = buf[0]
            comm.recv_nomatch(buf)
            return (first, buf[0])

        assert run_world(2, main)[1] == (2.0, 1.0)

    def test_nomatch_invisible_to_normal_recv(self):
        def main(comm):
            if comm.rank == 0:
                comm.isend_nomatch(np.full(1, 5.0), 1, tag=7).wait()
                comm.Isend(np.full(1, 6.0), 1, tag=7).wait()
                return None
            buf = np.zeros(1)
            comm.Recv(buf, source=0, tag=7)
            normal = buf[0]
            comm.recv_nomatch(buf)
            return (normal, buf[0])

        assert run_world(2, main)[1] == (6.0, 5.0)

    def test_saves_five_instructions(self):
        cfg = BuildConfig.ipo_build()
        assert (measure_instructions(cfg, "isend")
                - measure_instructions(cfg, "isend", ext.NOMATCH)) == 5


class TestStaticComm:
    def test_saves_eight_instructions(self):
        cfg = BuildConfig.ipo_build()
        assert (measure_instructions(cfg, "isend")
                - measure_instructions(cfg, "isend", ext.STATIC_COMM)) == 8


class TestAllOpts:
    def test_sixteen_instructions(self):
        """§3.7: the combined path costs exactly 16 instructions."""
        cfg = BuildConfig.ipo_build()
        assert measure_instructions(cfg, "isend", ext.ALL_OPTS_PT2PT) == 16

    def test_put_all_opts_fourteen(self):
        cfg = BuildConfig.ipo_build()
        assert measure_instructions(cfg, "put", ext.ALL_OPTS_RMA) == 14

    def test_functional_stream(self):
        def main(comm):
            if comm.rank == 0:
                for i in range(5):
                    comm.isend_all_opts(np.full(1, float(i)), 1, tag=0)
                comm.waitall_noreq()
                return None
            buf = np.zeros(1)
            return [comm.irecv_all_opts(buf).wait() and float(buf[0])
                    for _ in range(5)]

        assert run_world(2, main)[1] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_figure6_cumulative_chain(self):
        """The Figure 6 chain: 59 -> 49 -> 44 -> 25 -> 16."""
        cfg = BuildConfig.ipo_build()
        counts = [measure_instructions(cfg, "isend", flags)
                  for _, flags in EXTENSION_CHAIN]
        assert counts == [59, 49, 44, 25, 16]
