"""Property tests for the contiguity predicate and the zero-copy pack.

Two contracts the zero-copy datapath rests on:

* ``Typemap.is_contiguous`` agrees with the brute-force oracle (the
  element's true-data bytes are exactly ``range(0, size)``) over
  randomly generated typemaps, and ``Datatype.contig`` composes it
  with the extent/lb conditions correctly;
* packing a contiguous ``(buffer, count, datatype)`` triple really
  borrows — the result is a ``memoryview`` aliasing the caller's
  storage — while ``copy=True`` and non-contiguous layouts really
  materialize owned ``bytes``.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datatypes import contiguous, hvector, indexed, vector
from repro.datatypes.pack import pack, unpack
from repro.datatypes.predefined import BYTE, DOUBLE, INT
from repro.datatypes.typemap import TypeSegment, Typemap
from repro.instrument import copies

N_CASES = 200


def random_typemap(rng) -> Typemap:
    """A random valid typemap: sorted non-overlapping segments with
    random gaps (gap 0 exercises coalescing, a leading gap breaks
    contiguity from the front)."""
    n_segs = int(rng.integers(1, 6))
    segments = []
    offset = int(rng.integers(0, 3))      # sometimes lb > 0
    for _ in range(n_segs):
        length = int(rng.integers(1, 9))
        segments.append(TypeSegment(offset, length))
        offset += length + int(rng.integers(0, 4))   # gap 0..3
    return Typemap(segments)


def oracle_contiguous(tm: Typemap) -> bool:
    """Brute force: the element's bytes are exactly 0..size-1."""
    return list(tm.byte_offsets()) == list(range(tm.size))


class TestContiguityOracle:
    def test_is_contiguous_matches_oracle(self, rng):
        seen = {True: 0, False: 0}
        for _ in range(N_CASES):
            tm = random_typemap(rng)
            verdict = tm.is_contiguous()
            assert verdict == oracle_contiguous(tm), tm
            seen[verdict] += 1
        # The generator must exercise both verdicts to prove anything.
        assert seen[True] > 0 and seen[False] > 0

    def test_adjacent_segments_coalesce_to_contiguous(self):
        tm = Typemap([TypeSegment(0, 4), TypeSegment(4, 4),
                      TypeSegment(8, 2)])
        assert len(tm) == 1
        assert tm.is_contiguous() and oracle_contiguous(tm)

    def test_datatype_contig_needs_dense_extent(self):
        """A dense typemap with padding in the extent is NOT contig
        (packing must skip the padding between elements)."""
        padded = hvector(1, 3, 3, BYTE)
        from repro.datatypes import resized
        stretched = resized(padded, 0, 4).commit()
        assert stretched.typemap.is_contiguous()
        assert not stretched.contig
        assert contiguous(3, BYTE).contig

    def test_derived_contig_matches_oracle_over_constructors(self, rng):
        for _ in range(N_CASES // 4):
            count = int(rng.integers(1, 5))
            blocklen = int(rng.integers(1, 4))
            stride = blocklen + int(rng.integers(0, 3))
            dt = vector(count, blocklen, stride, DOUBLE)
            dense = oracle_contiguous(dt.typemap) \
                and dt.extent == dt.size and dt.lb == 0
            assert dt.contig == dense, dt.name


class TestPackBorrowsContiguous:
    def test_contig_pack_is_a_view(self, rng):
        arr = rng.standard_normal(32)
        packed = pack(arr, 32, DOUBLE)
        assert isinstance(packed, memoryview)
        assert bytes(packed) == arr.tobytes()

    def test_view_aliases_caller_storage(self, rng):
        """Read-through: mutating the array after pack is visible in
        the packed view — proof no bytes were copied."""
        arr = np.zeros(8, dtype=np.float64)
        packed = pack(arr, 8, DOUBLE)
        arr[0] = 1234.5
        assert np.frombuffer(packed, dtype=np.float64)[0] == 1234.5

    def test_copy_true_materializes(self, rng):
        arr = rng.standard_normal(8)
        packed = pack(arr, 8, DOUBLE, copy=True)
        assert isinstance(packed, bytes)
        arr[0] = -1.0
        assert np.frombuffer(packed, dtype=np.float64)[0] != -1.0

    def test_noncontig_pack_materializes(self, rng):
        arr = rng.standard_normal(16)
        dt = vector(4, 1, 2, DOUBLE).commit()
        packed = pack(arr, 1, dt)
        assert isinstance(packed, bytes)
        assert packed == arr[[0, 2, 4, 6]].tobytes()

    def test_counters_agree_with_the_types(self, rng):
        """One contig pack notes exactly one view and zero copies; one
        copy-mode or strided pack notes exactly one copy."""
        arr = rng.standard_normal(16)
        strided = vector(4, 1, 2, DOUBLE).commit()
        with copies.track() as delta:
            pack(arr, 16, DOUBLE)
        assert (delta().n_views, delta().n_copies) == (1, 0)
        with copies.track() as delta:
            pack(arr, 16, DOUBLE, copy=True)
        assert (delta().n_views, delta().n_copies) == (0, 1)
        with copies.track() as delta:
            pack(arr, 2, strided)
        assert (delta().n_views, delta().n_copies) == (0, 1)

    def test_random_roundtrip_under_both_modes(self, rng):
        """pack→unpack restores the element bytes for random datatypes
        regardless of mode — the conversion changed ownership, never
        values."""
        for _ in range(N_CASES // 8):
            base = (BYTE, INT, DOUBLE)[int(rng.integers(0, 3))]
            kind = int(rng.integers(0, 3))
            if kind == 0:
                dt = contiguous(int(rng.integers(1, 5)), base).commit()
            elif kind == 1:
                blocklen = int(rng.integers(1, 4))
                dt = vector(int(rng.integers(1, 4)), blocklen,
                            blocklen + int(rng.integers(0, 3)),
                            base).commit()
            else:
                dt = indexed([1, 2], [0, int(rng.integers(2, 5))],
                             base).commit()
            count = int(rng.integers(1, 4))
            span = (count - 1) * dt.extent + dt.typemap.ub
            src = np.frombuffer(rng.bytes(span), dtype=np.uint8).copy()
            for copy in (False, True):
                packed = pack(src, count, dt, copy=copy)
                dst = np.zeros(span, dtype=np.uint8)
                wrote = unpack(packed, dst, count, dt)
                assert wrote == count
                idx = np.asarray(
                    [(k * dt.extent) + off for k in range(count)
                     for off in dt.typemap.byte_offsets()])
                assert np.array_equal(dst[idx], src[idx]), dt.name

    def test_overlapping_typemap_rejected(self):
        with pytest.raises(ValueError):
            Typemap([TypeSegment(0, 4), TypeSegment(2, 4)])
