"""Property tests for the collective-algorithm subsystem (PR 9).

Every new allreduce/bcast variant is checked against the flat binomial
oracle across message sizes (including counts that don't divide by the
rank count), non-power-of-two rank counts, multiple reduce ops, and
``num_vcis`` 1 and 4; the topology-aware strategies are checked with
partial last nodes; multi-round schedules must drain under the
background progress engine; ``create_communicator`` overrides the
build selector per communicator; and ``sanitize=True`` exercises the
MSD203 memoryview-checksum path the staging views introduced.
"""

import dataclasses

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from repro.fabric.topology import Topology
from repro.mpi import reduceops
from repro.mpi.hier import create_communicator
from repro.runtime.world import World
from tests.conftest import run_world

ALLREDUCE_ALGOS = ("reduce_bcast", "recursive_doubling", "ring",
                   "reduce_scatter_allgather")
BCAST_ALGOS = ("binomial", "ring")
STRATEGIES = ("naive", "flat", "hierarchical", "two_dimensional")


def _run_topo(nranks, cores_per_node, fn, config=None, timeout=180.0):
    """run_world with an explicit node layout (partial last node when
    cores_per_node doesn't divide nranks)."""
    topo = Topology(nranks=nranks, cores_per_node=cores_per_node)
    world = World(nranks, config if config is not None else BuildConfig(),
                  topology=topo)
    return world.run(fn, timeout=timeout)


def _allreduce_job(algorithm, count, op):
    def job(comm):
        send = (np.arange(count, dtype=np.int64)
                * (comm.rank + 1) - comm.rank)
        recv = np.empty_like(send)
        comm.Allreduce(send, recv, op, algorithm=algorithm)
        return recv
    return job


def _oracle(nranks, count, op):
    ranks = [np.arange(count, dtype=np.int64) * (r + 1) - r
             for r in range(nranks)]
    fold = {reduceops.SUM: np.add, reduceops.MAX: np.maximum,
            reduceops.MIN: np.minimum}[op]
    out = ranks[0]
    for arr in ranks[1:]:
        out = fold(out, arr)
    return out


class TestAllreduceVariantsVsOracle:
    """Every variant must be bit-identical to the rank-ordered numpy
    fold (int64, so the comparison is exact)."""

    @pytest.mark.parametrize("algorithm", ALLREDUCE_ALGOS)
    @pytest.mark.parametrize("nranks", (2, 3, 5, 8))
    @pytest.mark.parametrize("count", (1, 7, 64, 1000))
    def test_sum_matches_oracle(self, algorithm, nranks, count):
        # count=7 on 5 ranks: chunks are ragged and smaller than the
        # rank count's power-of-two core — the boundary cases.
        out = run_world(nranks, _allreduce_job(algorithm, count,
                                               reduceops.SUM))
        expect = _oracle(nranks, count, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    @pytest.mark.parametrize("algorithm", ALLREDUCE_ALGOS)
    @pytest.mark.parametrize("op", (reduceops.MAX, reduceops.MIN))
    def test_other_ops_match_oracle(self, algorithm, op):
        out = run_world(3, _allreduce_job(algorithm, 33, op))
        expect = _oracle(3, 33, op)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    @pytest.mark.parametrize("algorithm", ("ring",
                                           "reduce_scatter_allgather"))
    def test_fewer_elements_than_ranks(self, algorithm):
        # count=2 on 5 ranks: some ring chunks are empty.
        out = run_world(5, _allreduce_job(algorithm, 2, reduceops.SUM))
        expect = _oracle(5, 2, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    @pytest.mark.parametrize("algorithm", ALLREDUCE_ALGOS)
    def test_single_rank_degenerates(self, algorithm):
        out = run_world(1, _allreduce_job(algorithm, 16, reduceops.SUM))
        np.testing.assert_array_equal(
            out[0], _oracle(1, 16, reduceops.SUM))

    @pytest.mark.parametrize("num_vcis", (1, 4))
    @pytest.mark.parametrize("algorithm", ("ring",
                                           "reduce_scatter_allgather"))
    def test_vci_sharded_builds(self, algorithm, num_vcis):
        config = BuildConfig(num_vcis=num_vcis)
        out = run_world(4, _allreduce_job(algorithm, 257, reduceops.SUM),
                        config=config)
        expect = _oracle(4, 257, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    def test_unknown_algorithm_rejected(self):
        def job(comm):
            with pytest.raises(MPIErrArg):
                comm.Allreduce(np.zeros(4), np.zeros(4), reduceops.SUM,
                               algorithm="bogus")
            return "ok"
        assert run_world(1, job) == ["ok"]


class TestBcastVariants:
    @pytest.mark.parametrize("algorithm", BCAST_ALGOS)
    @pytest.mark.parametrize("nranks", (2, 3, 7))
    @pytest.mark.parametrize("count", (5, 9000, 100_000))
    def test_matches_root_payload(self, algorithm, nranks, count):
        # 100k floats crosses several ring segments; 9000 is one
        # partial segment.
        def job(comm):
            arr = (np.arange(count, dtype=np.float64)
                   if comm.rank == 2 % comm.size
                   else np.zeros(count))
            comm.Bcast(arr, root=2 % comm.size, algorithm=algorithm)
            return arr
        for arr in run_world(nranks, job):
            np.testing.assert_array_equal(
                arr, np.arange(count, dtype=np.float64))


class TestTopologyStrategies:
    """Hierarchical / two-dimensional compositions on layouts with a
    partial last node (cores_per_node not dividing nranks)."""

    GRIDS = ((7, 3), (8, 4), (5, 4), (9, 3), (6, 2))

    @pytest.mark.parametrize("strategy",
                             ("hierarchical", "two_dimensional"))
    @pytest.mark.parametrize("nranks,cpn", GRIDS)
    def test_allreduce(self, strategy, nranks, cpn):
        config = BuildConfig(communicator_name=strategy)
        out = _run_topo(nranks, cpn,
                        _allreduce_job(None, 101, reduceops.SUM),
                        config=config)
        expect = _oracle(nranks, 101, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    @pytest.mark.parametrize("strategy",
                             ("hierarchical", "two_dimensional"))
    @pytest.mark.parametrize("root", (0, 4, 6))
    def test_bcast_and_reduce_any_root(self, strategy, root):
        config = BuildConfig(communicator_name=strategy)

        def job(comm):
            arr = (np.arange(50, dtype=np.int64) + 3
                   if comm.rank == root else np.zeros(50, np.int64))
            comm.Bcast(arr, root=root)
            send = np.full(20, comm.rank + 1, np.int64)
            recv = np.empty(20, np.int64) if comm.rank == root else None
            comm.Reduce(send, recv, reduceops.SUM, root=root)
            return arr, recv

        out = _run_topo(7, 3, job, config=config)
        total = sum(r + 1 for r in range(7))
        for rank, (arr, recv) in enumerate(out):
            np.testing.assert_array_equal(
                arr, np.arange(50, dtype=np.int64) + 3)
            if rank == root:
                np.testing.assert_array_equal(
                    recv, np.full(20, total, np.int64))
            else:
                assert recv is None

    def test_large_payload_forces_rabenseifner_phase(self):
        # >ALLREDUCE_RECDOUBLE_MAX_BYTES: the leaders phase switches
        # to reduce-scatter+allgather; results must stay exact.
        config = BuildConfig(communicator_name="hierarchical")
        count = 40_000            # 320 KB of int64
        out = _run_topo(6, 2, _allreduce_job(None, count,
                                             reduceops.SUM),
                        config=config)
        expect = _oracle(6, count, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    def test_single_node_falls_back_to_flat(self):
        # All ranks on one node: routes_hier is False, flat selection
        # must serve the call unchanged.
        config = BuildConfig(communicator_name="hierarchical")
        out = _run_topo(4, 8, _allreduce_job(None, 32, reduceops.SUM),
                        config=config)
        expect = _oracle(4, 32, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)


class TestCreateCommunicator:
    def test_override_beats_build_selector(self):
        # Build says naive; the dup'd communicator routes hierarchical
        # while comm-world keeps the build's behavior. Results agree.
        config = BuildConfig(communicator_name="naive")

        def job(comm):
            hier = create_communicator("hierarchical", comm)
            assert hier.collective_strategy() == "hierarchical"
            assert comm.collective_strategy() == "naive"
            send = np.arange(64, dtype=np.int64) * (comm.rank + 1)
            a, b = np.empty_like(send), np.empty_like(send)
            comm.Allreduce(send, a, reduceops.SUM)
            hier.Allreduce(send, b, reduceops.SUM)
            return a, b

        for a, b in _run_topo(6, 2, job, config=config):
            np.testing.assert_array_equal(a, b)

    def test_unknown_strategy_rejected(self):
        def job(comm):
            with pytest.raises(MPIErrArg):
                create_communicator("bogus", comm)
            return "ok"
        assert run_world(1, job) == ["ok"]


class TestProgressEngineDrains:
    """Multi-round schedules (ring, Rabenseifner, hierarchical) must
    complete under the background progress engine."""

    @pytest.mark.parametrize("algorithm", ("ring",
                                           "reduce_scatter_allgather"))
    def test_flat_variants_under_thread_progress(self, algorithm):
        config = BuildConfig(progress="thread")
        out = run_world(5, _allreduce_job(algorithm, 600,
                                          reduceops.SUM),
                        config=config)
        expect = _oracle(5, 600, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    def test_hierarchical_under_thread_progress(self):
        config = BuildConfig(progress="thread",
                             communicator_name="hierarchical")
        out = _run_topo(6, 2, _allreduce_job(None, 300, reduceops.SUM),
                        config=config)
        expect = _oracle(6, 300, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)


class TestSanitizerSeesViewPayloads:
    """sanitize=True must accept the staging memoryviews (MSD203 now
    checksums the view in place instead of materializing it) and still
    catch a genuinely mutated in-flight buffer."""

    @pytest.mark.parametrize("algorithm", ("ring",
                                           "reduce_scatter_allgather"))
    def test_clean_run_under_sanitizer(self, algorithm):
        config = BuildConfig(sanitize=True)
        out = run_world(4, _allreduce_job(algorithm, 128,
                                          reduceops.SUM),
                        config=config)
        expect = _oracle(4, 128, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)

    def test_hierarchical_clean_under_sanitizer(self):
        config = dataclasses.replace(
            BuildConfig(sanitize=True), communicator_name="hierarchical")
        out = _run_topo(5, 2, _allreduce_job(None, 64, reduceops.SUM),
                        config=config)
        expect = _oracle(5, 64, reduceops.SUM)
        for recv in out:
            np.testing.assert_array_equal(recv, expect)


class TestStrategiesAgree:
    """All four strategies compute the same allreduce (int64-exact
    despite the hierarchical re-association)."""

    def test_all_strategies_identical(self):
        results = {}
        for strategy in STRATEGIES:
            config = BuildConfig(communicator_name=strategy)
            out = _run_topo(7, 3,
                            _allreduce_job(None, 200, reduceops.SUM),
                            config=config)
            results[strategy] = out[0]
            for recv in out[1:]:
                np.testing.assert_array_equal(recv, out[0])
        base = results["flat"]
        for strategy, recv in results.items():
            np.testing.assert_array_equal(recv, base)
