"""LAMMPS newton-on reverse communication, bcast algorithm selection,
JSON export, and model sensitivity sweeps."""

import json

import numpy as np
import pytest

from repro.analysis.export import collect_all, export_all
from repro.analysis.sensitivity import (nek_band, sweep_lammps_match_penalty,
                                        sweep_nek_progress)
from repro.apps.lammps.md import LJSimulation
from repro.apps.nek.model import NekModel
from repro.core.config import BuildConfig
from repro.errors import MPIErrArg
from tests.conftest import run_world


class TestNewtonOn:
    @pytest.mark.parametrize("nranks", [1, 2, 8])
    def test_matches_newton_off_physics(self, nranks):
        def main(comm, newton):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002,
                               newton=newton)
            return [sim.step().total_energy for _ in range(3)]

        off = run_world(nranks, main, args=(False,))[0]
        on = run_world(nranks, main, args=(True,))[0]
        np.testing.assert_allclose(on, off, rtol=1e-9)

    def test_forces_match_directly(self):
        def main(comm, newton):
            sim = LJSimulation(comm, cells=(3, 3, 3), newton=newton)
            sim.exchange_ghosts()
            sim.compute_forces()
            # Return owned forces keyed by position for comparison.
            return {tuple(np.round(p, 9)): tuple(np.round(f, 7))
                    for p, f in zip(sim.pos, sim.forces)}

        off_maps = run_world(8, main, args=(False,))
        on_maps = run_world(8, main, args=(True,))
        off_all = {k: v for m in off_maps for k, v in m.items()}
        on_all = {k: v for m in on_maps for k, v in m.items()}
        assert off_all == on_all

    def test_newton_charges_less_compute(self):
        """Each pair computed once: half the modeled pair flops."""
        def main(comm, newton):
            sim = LJSimulation(comm, cells=(3, 3, 3), newton=newton)
            sim.exchange_ghosts()
            sim.compute_forces()
            return comm.proc.compute_seconds

        off = sum(run_world(8, main, args=(False,)))
        on = sum(run_world(8, main, args=(True,)))
        assert on == pytest.approx(off / 2)

    def test_newton_sends_more_messages(self):
        """The trade: reverse communication doubles the exchanges."""
        def main(comm, newton):
            sim = LJSimulation(comm, cells=(3, 3, 3), newton=newton)
            before = comm.proc.engine.n_deposited
            sim.step()
            # Count messages deposited to THIS rank during the step.
            return comm.proc.engine.n_deposited - before

        off = sum(run_world(8, main, args=(False,)))
        on = sum(run_world(8, main, args=(True,)))
        assert on > off


class TestBcastAlgorithms:
    @pytest.mark.parametrize("algorithm", ["binomial",
                                           "scatter_allgather"])
    @pytest.mark.parametrize("size", [1, 2, 3, 5])
    def test_both_algorithms_correct(self, algorithm, size):
        def main(comm):
            buf = (np.arange(50, dtype=np.float64) if comm.rank == 0
                   else np.zeros(50))
            comm.Bcast(buf, root=0, algorithm=algorithm)
            return buf.sum()

        expected = float(np.arange(50).sum())
        assert run_world(size, main) == [expected] * size

    def test_nonzero_root_scatter_allgather(self):
        def main(comm):
            buf = (np.full(33, 7.0) if comm.rank == 2
                   else np.zeros(33))
            comm.Bcast(buf, root=2, algorithm="scatter_allgather")
            return buf.sum()

        assert run_world(4, main) == [231.0] * 4

    def test_large_payload_auto_selects_scatter(self):
        """> 128 KiB payloads take the van de Geijn path; correctness
        is the observable."""
        def main(comm):
            n = 20_000   # 160 KB
            buf = (np.arange(n, dtype=np.float64) if comm.rank == 0
                   else np.zeros(n))
            comm.Bcast(buf, root=0)
            return float(buf[-1])

        assert run_world(3, main) == [19_999.0] * 3

    def test_unknown_algorithm_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.Bcast(np.zeros(4), algorithm="smoke-signals")
            return "ok"

        run_world(1, main)

    def test_scatter_allgather_fewer_root_bytes(self):
        """The bandwidth argument: the root injects ~1/P of the payload
        per link instead of the whole payload log P times."""
        def main(comm, algorithm):
            n = 100_000   # 800 KB: bandwidth-dominated
            buf = (np.ones(n) if comm.rank == 0 else np.zeros(n))
            t0 = comm.proc.vclock.now
            comm.Bcast(buf, root=0, algorithm=algorithm)
            comm.barrier()
            return comm.proc.vclock.now - t0

        # On a bandwidth-constrained fabric the van de Geijn path wins.
        cfg = BuildConfig(fabric="bgq")
        binomial = max(run_world(8, main, cfg, args=("binomial",)))
        vdg = max(run_world(8, main, cfg,
                            args=("scatter_allgather",)))
        assert vdg < binomial


class TestExport:
    def test_collect_all_is_json_serializable(self):
        data = collect_all()
        text = json.dumps(data)
        assert "table1" in data and "fig8" in data
        assert json.loads(text)["table1"]["MPI_ISEND"]["total"] == 221

    def test_export_writes_file(self, tmp_path):
        path = tmp_path / "artifacts.json"
        data = export_all(str(path))
        on_disk = json.loads(path.read_text())
        assert on_disk["fig2"]["mpich/original"]["put"] == 1342
        assert on_disk == json.loads(json.dumps(data))


class TestSensitivity:
    def test_nek_band_holds_at_calibration(self):
        peak, never_loses, converges = nek_band(NekModel())
        assert 1.18 <= peak <= 1.30
        assert never_loses and converges

    def test_qualitative_claims_robust_quantitative_band_not(self):
        """CH4-never-loses survives every progress scaling; the exact
        1.2-1.25 band is calibration-dependent (EXPERIMENTS.md)."""
        checks = sweep_nek_progress()
        assert all(c.ch4_never_loses for c in checks)
        at_calibration = next(c for c in checks if c.scale == 1.0)
        assert at_calibration.in_paper_band
        assert not all(c.in_paper_band for c in checks)

    def test_lammps_stall_robust_to_penalty_scaling(self):
        checks = sweep_lammps_match_penalty()
        assert all(c.speedup_monotone for c in checks)
        stalls = [c for c in checks if 0.75 <= c.scale <= 2.0]
        assert all(c.ch3_stops_scaling for c in stalls)
