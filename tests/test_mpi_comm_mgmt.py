"""Communicator management: dup, split, create, free, predefined handles."""

import pytest

from repro.consts import MAX_PREDEFINED_COMMS, UNDEFINED
from repro.errors import MPIErrArg, MPIErrComm
from repro.mpi.group import Group
from tests.conftest import run_world


class TestDup:
    def test_dup_isolates_contexts(self):
        """A message sent on the dup must not match a receive on the
        parent — the communicator isolation of §3.3/§3.6."""
        def main(comm):
            dup = comm.dup()
            assert dup.ctx != comm.ctx
            if comm.rank == 0:
                comm.send("parent", dest=1, tag=1)
                dup.send("child", dest=1, tag=1)
                return None
            on_dup = dup.recv(source=0, tag=1)
            on_parent = comm.recv(source=0, tag=1)
            return on_parent, on_dup

        assert run_world(2, main)[1] == ("parent", "child")

    def test_dup_preserves_group(self):
        def main(comm):
            dup = comm.dup()
            return dup.rank, dup.size

        assert run_world(3, main) == [(0, 3), (1, 3), (2, 3)]

    def test_contexts_unique_across_many_dups(self):
        def main(comm):
            ctxs = [comm.dup().ctx for _ in range(5)]
            return ctxs

        results = run_world(2, main)
        assert results[0] == results[1]           # collectively agreed
        assert len(set(results[0])) == 5          # all distinct


class TestSplit:
    def test_split_by_parity(self):
        def main(comm):
            sub = comm.split(color=comm.rank % 2, key=comm.rank)
            return sub.rank, sub.size, sorted(
                sub.group.world_ranks)

        results = run_world(4, main)
        assert results[0] == (0, 2, [0, 2])
        assert results[1] == (0, 2, [1, 3])
        assert results[2] == (1, 2, [0, 2])
        assert results[3] == (1, 2, [1, 3])

    def test_split_key_reorders(self):
        def main(comm):
            # Reverse ordering within one color.
            sub = comm.split(color=0, key=-comm.rank)
            return sub.rank

        assert run_world(3, main) == [2, 1, 0]

    def test_split_undefined_returns_none(self):
        def main(comm):
            sub = comm.split(color=UNDEFINED if comm.rank == 0 else 1)
            return None if sub is None else sub.size

        assert run_world(3, main) == [None, 2, 2]

    def test_split_subcomm_isolated(self):
        def main(comm):
            sub = comm.split(color=comm.rank // 2)
            partner = 1 - sub.rank
            return sub.sendrecv(comm.rank, dest=partner, source=partner,
                                sendtag=0, recvtag=0)

        assert run_world(4, main) == [1, 0, 3, 2]


class TestCreate:
    def test_create_subset(self):
        def main(comm):
            group = Group([0, 2])
            sub = comm.create(group)
            if sub is None:
                return None
            return sub.rank, sub.size

        assert run_world(3, main) == [(0, 2), None, (1, 2)]


class TestPredefinedHandles:
    def test_dup_predefined_flags_handle(self):
        def main(comm):
            pre = comm.dup_predefined(0)
            assert pre.is_predefined_handle
            assert pre.name == "MPI_COMM_1"
            total = pre.allreduce(comm.rank)
            return total

        assert run_world(3, main) == [3, 3, 3]

    def test_handle_range_checked(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.dup_predefined(MAX_PREDEFINED_COMMS)
            with pytest.raises(MPIErrArg):
                comm.dup_predefined(-1)
            return "ok"

        run_world(2, main)

    def test_static_lookup_saves_instructions(self):
        """§3.3: object lookup on a predefined handle is a static load
        (9 -> 1 instructions on the send path)."""
        import numpy as np
        from repro.core.config import BuildConfig
        from repro.datatypes.predefined import BYTE

        def main(comm):
            pre = comm.dup_predefined(1)
            buf = np.zeros(1, dtype=np.uint8)
            if comm.rank == 0:
                with comm.proc.tracer.call("dynamic"):
                    comm.Isend((buf, 1, BYTE), dest=1, tag=0).wait()
                with comm.proc.tracer.call("static"):
                    pre.Isend((buf, 1, BYTE), dest=1, tag=0).wait()
                return (comm.proc.tracer.last("dynamic").total,
                        comm.proc.tracer.last("static").total)
            comm.Recv((buf, 1, BYTE), source=0, tag=0)
            pre.Recv((buf, 1, BYTE), source=0, tag=0)
            return None

        dynamic, static = run_world(
            2, main, BuildConfig.ipo_build())[0]
        assert dynamic - static == 8


class TestFree:
    def test_freed_comm_rejected(self):
        def main(comm):
            dup = comm.dup()
            dup.free()
            with pytest.raises(MPIErrComm):
                dup.send("x", dest=0, tag=0)
            return "ok"

        run_world(2, main)

    def test_world_cannot_be_freed(self):
        def main(comm):
            with pytest.raises(MPIErrComm):
                comm.free()
            return "ok"

        run_world(1, main)

    def test_world_rank_of(self):
        def main(comm):
            sub = comm.split(color=0, key=-comm.rank)   # reversed
            return [sub.world_rank_of(i) for i in range(sub.size)]

        results = run_world(3, main)
        assert results[0] == [2, 1, 0]
