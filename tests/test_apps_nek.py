"""Nek5000 proxy: GLL quadrature, mesh, gather-scatter, CG, model."""

import numpy as np
import pytest

from repro.apps.nek.cg import MassMatrixProblem, cg_solve, run_nek_cg
from repro.apps.nek.mesh import BoxDecomposition, RankPatch, factor3
from repro.apps.nek.model import NekModel, figure7_series
from repro.apps.nek.sem import (element_flops_per_point, element_mass_diag,
                                gll_points_weights)
from repro.core.config import BuildConfig
from tests.conftest import run_world


class TestGLL:
    @pytest.mark.parametrize("order", [1, 2, 3, 5, 7, 10])
    def test_weights_sum_to_two(self, order):
        _, w = gll_points_weights(order)
        assert w.sum() == pytest.approx(2.0)

    @pytest.mark.parametrize("order", [3, 5, 7])
    def test_endpoints_included_and_sorted(self, order):
        x, _ = gll_points_weights(order)
        assert x[0] == -1.0 and x[-1] == 1.0
        assert np.all(np.diff(x) > 0)
        assert len(x) == order + 1

    @pytest.mark.parametrize("degree", range(8))
    def test_quadrature_exact_for_low_degree(self, degree):
        """GLL with N+1 points integrates degree <= 2N-1 exactly."""
        order = 5
        x, w = gll_points_weights(order)
        numeric = float(np.sum(w * x ** degree))
        exact = 0.0 if degree % 2 else 2.0 / (degree + 1)
        assert numeric == pytest.approx(exact, abs=1e-12)

    def test_symmetry(self):
        x, w = gll_points_weights(6)
        np.testing.assert_allclose(x, -x[::-1], atol=1e-13)
        np.testing.assert_allclose(w, w[::-1], atol=1e-13)

    def test_mass_diag_volume(self):
        """Sum of the element mass diagonal = element volume."""
        diag = element_mass_diag(4, h=0.5)
        assert diag.sum() == pytest.approx(0.5 ** 3)

    def test_flops_per_point_penalizes_small_n(self):
        assert element_flops_per_point(3) > element_flops_per_point(7)

    def test_order_validation(self):
        with pytest.raises(ValueError):
            gll_points_weights(0)


class TestMesh:
    def test_factor3(self):
        for n in (1, 8, 12, 64, 100, 16384):
            a, b, c = factor3(n)
            assert a * b * c == n
            assert a >= b >= c

    def test_decomposition_counts(self):
        d = BoxDecomposition.balanced(64, 8, 3)
        assert d.nelems == 64
        assert d.nranks == 8
        assert d.npoints_global == (4 * 3 + 1) ** 3

    def test_patch_shapes_tile_the_grid(self):
        d = BoxDecomposition.balanced(27, 8, 2)
        total_elems = sum(RankPatch(d, r).nelems for r in range(8))
        assert total_elems == 27

    def test_patch_point_ranges(self):
        d = BoxDecomposition((2, 2, 2), (2, 1, 1), order=3)
        p0, p1 = RankPatch(d, 0), RankPatch(d, 1)
        assert p0.point_lo == (0, 0, 0)
        assert p0.point_hi == (3, 6, 6)
        assert p1.point_lo == (3, 0, 0)      # shared boundary plane
        assert p1.point_hi == (6, 6, 6)

    def test_shared_region_is_symmetric_plane(self):
        d = BoxDecomposition((2, 2, 2), (2, 1, 1), order=3)
        p0, p1 = RankPatch(d, 0), RankPatch(d, 1)
        r01 = p0.shared_region(1)
        r10 = p1.shared_region(0)
        assert r01 == (slice(3, 4), slice(0, 7), slice(0, 7))
        assert r10 == (slice(0, 1), slice(0, 7), slice(0, 7))
        assert p0.shared_region(0) is not None   # self overlaps fully

    def test_neighbors_complete(self):
        d = BoxDecomposition((4, 4, 4), (2, 2, 2), order=2)
        corner = RankPatch(d, 0)
        assert len(corner.neighbor_ranks()) == 7   # 2x2x2 grid corner

    def test_element_slices_cover_patch(self):
        d = BoxDecomposition((2, 2, 2), (1, 1, 1), order=2)
        patch = RankPatch(d, 0)
        field = patch.alloc()
        for slices in patch.element_slices():
            field[slices] += 1.0
        assert field.min() >= 1.0   # every point covered
        assert field.max() == 8.0   # center point shared by 8 elements

    def test_invalid_decomposition_rejected(self):
        with pytest.raises(ValueError):
            BoxDecomposition((1, 1, 1), (2, 1, 1), order=2)
        with pytest.raises(ValueError):
            BoxDecomposition((2, 2, 2), (1, 1, 1), order=0)


class TestGatherScatter:
    @pytest.mark.parametrize("nranks", [1, 2, 4, 8])
    def test_multiplicity_counts_sharing_ranks(self, nranks):
        def main(comm):
            from repro.apps.nek.gs import GatherScatter
            d = BoxDecomposition.balanced(8, comm.size, 2)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch)
            mult = gs.multiplicity()
            return float(mult.min()), float(mult.max())

        results = run_world(nranks, main)
        for lo, hi in results:
            assert lo == 1.0
            assert hi == float(min(nranks, 8))

    def test_gs_sums_match_serial(self):
        """Distributed gs(u) must equal the serial assembly of the same
        global field."""
        def main(comm):
            from repro.apps.nek.gs import GatherScatter
            d = BoxDecomposition.balanced(8, comm.size, 3)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch)
            # A field whose value is a function of the GLOBAL point
            # coordinates, so every copy starts identical.
            u = patch.alloc()
            for i in range(patch.shape[0]):
                for j in range(patch.shape[1]):
                    for k in range(patch.shape[2]):
                        gx, gy, gz = patch.global_coords((i, j, k))
                        u[i, j, k] = gx + 10 * gy + 100 * gz
            summed = gs(u.copy())
            mult = gs.multiplicity()
            np.testing.assert_allclose(summed, u * mult, rtol=1e-12)
            return True

        assert all(run_world(8, main))

    def test_global_ranks_mode_identical_result(self):
        def main(comm, use_global):
            from repro.apps.nek.gs import GatherScatter
            d = BoxDecomposition.balanced(8, comm.size, 2)
            patch = RankPatch(d, comm.rank)
            gs = GatherScatter(comm, patch, use_global_ranks=use_global)
            u = np.ones(patch.shape)
            return gs(u).sum()

        cfg = BuildConfig.ipo_build()
        standard = run_world(4, main, cfg, args=(False,))
        glob = run_world(4, main, cfg, args=(True,))
        assert standard == glob


class TestCG:
    @pytest.mark.parametrize("nranks,nelems,order",
                             [(1, 8, 3), (2, 8, 2), (4, 16, 3), (8, 27, 2)])
    def test_solution_matches_exact_diagonal_solve(self, nranks, nelems,
                                                   order):
        def main(comm):
            d = BoxDecomposition.balanced(nelems, comm.size, order)
            problem = MassMatrixProblem(comm, d)
            f = problem.mass_diag * 3.0
            result = cg_solve(problem, f, tol=1e-13)
            exact = problem.exact_solution(f)
            return (result.converged,
                    float(np.max(np.abs(result.solution - exact))))

        for converged, err in run_world(nranks, main):
            assert converged
            assert err < 1e-10

    def test_matvec_equals_assembled_diagonal(self):
        def main(comm):
            d = BoxDecomposition.balanced(8, comm.size, 3)
            problem = MassMatrixProblem(comm, d)
            u = np.full(problem.patch.shape, 2.0)
            w = problem.matvec(u)
            np.testing.assert_allclose(w, problem.mass_diag * 2.0,
                                       rtol=1e-12)
            return True

        assert all(run_world(4, main))

    def test_driver_converges(self):
        def main(comm):
            res = run_nek_cg(comm, nelems=8, order=3, tol=1e-11)
            return res.converged, res.iterations

        for converged, iters in run_world(2, main):
            assert converged
            assert 1 <= iters <= 60

    def test_dot_is_globally_consistent(self):
        def main(comm):
            d = BoxDecomposition.balanced(8, comm.size, 2)
            problem = MassMatrixProblem(comm, d)
            ones = np.ones(problem.patch.shape)
            return problem.dot(ones, ones)

        results = run_world(8, main)
        d = BoxDecomposition.balanced(8, 8, 2)
        assert all(r == pytest.approx(d.npoints_global) for r in results)

    def test_serial_equals_parallel(self):
        def main(comm):
            res = run_nek_cg(comm, nelems=8, order=3, tol=1e-12)
            return res.iterations, res.residual_norm

        serial = run_world(1, main)[0]
        parallel = run_world(8, main)[0]
        assert serial[0] == parallel[0]
        assert serial[1] == pytest.approx(parallel[1], rel=1e-6)


class TestModel:
    def test_n_over_p_span_matches_paper(self):
        m = NekModel()
        assert m.n_over_p(2 ** 14, 3) == pytest.approx(27, rel=0.01)
        assert m.n_over_p(2 ** 21, 7) == pytest.approx(43904, rel=0.01)

    def test_ratio_band_at_operating_point(self):
        """§4.3: 1.2-1.25 gain for n/P ~ 100-1000 (checked at the
        sampled element counts that land in the band)."""
        m = NekModel()
        for order in (3, 5, 7):
            in_band = [m.ratio(e, order)
                       for e in (2 ** k for k in range(14, 22))
                       if 100 <= m.n_over_p(e, order) <= 1000]
            assert in_band, f"no sample in band for N={order}"
            assert max(in_band) <= 1.30
            assert max(in_band) >= 1.18

    def test_ratio_converges_at_large_n_over_p(self):
        m = NekModel()
        assert m.ratio(2 ** 21, 7) < 1.05

    def test_ep1_downturn(self):
        """§4.3: the ratio drops moving from E/P = 2 to E/P = 1."""
        m = NekModel()
        for order in (3, 5, 7):
            assert m.ratio(2 ** 14, order) < m.ratio(2 ** 15, order)

    def test_ch4_always_at_least_as_fast(self):
        m = NekModel()
        for order in (3, 5, 7):
            for k in range(14, 22):
                assert m.ratio(2 ** k, order) >= 1.0

    def test_efficiency_monotone_in_n_over_p(self):
        m = NekModel()
        effs = [m.efficiency(2 ** k, 5, "ch4") for k in range(14, 22)]
        assert effs == sorted(effs)
        assert 0 < effs[0] < effs[-1] <= 1.0

    def test_small_n_perf_penalty(self):
        """The N=3 curves sit below N=7 at matched n/P (caching +
        interpolation overhead)."""
        m = NekModel()
        # E chosen so n/P ~ 432 for N=3 and ~343 for N=7.
        perf3 = m.performance(2 ** 18, 3, "ch4") / m.n_over_p(2 ** 18, 3)
        perf7 = m.performance(2 ** 14, 7, "ch4") / m.n_over_p(2 ** 14, 7)
        assert perf3 < perf7

    def test_figure7_series_structure(self):
        data = figure7_series()
        assert set(data) == {"left", "center", "right"}
        assert (3, "ch4") in data["left"]
        assert 5 in data["center"]
        assert (5, "ch7") not in data["right"]
        assert (3, "ch4") not in data["right"]    # right panel: N=5,7 only
        assert len(data["center"][3]) == 8
