"""Intercommunicators and MPI_COMM_SPLIT_TYPE."""

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.errors import MPIErrArg, MPIErrComm, MPIErrRank
from repro.fabric.topology import Topology
from repro.runtime.world import World
from tests.conftest import run_world


def _make_inter(comm):
    """Split world into even/odd halves and bridge them."""
    color = comm.rank % 2
    local = comm.split(color=color, key=comm.rank)
    # Leaders: world rank 0 (even side) and world rank 1 (odd side).
    inter = local.create_intercomm(
        local_leader=0, peer_comm=comm,
        remote_leader=1 if color == 0 else 0)
    return local, inter


class TestIntercommCreate:
    def test_groups_and_sizes(self):
        def main(comm):
            local, inter = _make_inter(comm)
            return (inter.is_inter, inter.size, inter.remote_size,
                    sorted(inter.remote_group.world_ranks))

        results = run_world(4, main)
        assert results[0] == (True, 2, 2, [1, 3])
        assert results[1] == (True, 2, 2, [0, 2])
        assert not run_world(2, lambda comm: comm.is_inter)[0]

    def test_pt2pt_addresses_remote_group(self):
        def main(comm):
            local, inter = _make_inter(comm)
            # Pair local rank i on each side.
            if comm.rank % 2 == 0:
                inter.send(("from even", comm.rank), dest=local.rank,
                           tag=3)
                return None
            return inter.recv(source=local.rank, tag=3)

        results = run_world(4, main)
        assert results[1] == ("from even", 0)
        assert results[3] == ("from even", 2)

    def test_buffer_pt2pt(self):
        def main(comm):
            local, inter = _make_inter(comm)
            if comm.rank % 2 == 0:
                inter.Isend(np.full(2, float(comm.rank)),
                            dest=local.rank, tag=0).wait()
                return None
            buf = np.zeros(2)
            status = inter.Recv(buf, source=local.rank, tag=0)
            return buf[0], status.source

        results = run_world(4, main)
        assert results[1] == (0.0, 0)
        assert results[3] == (2.0, 1)

    def test_rank_range_validated_against_remote_size(self):
        def main(comm):
            local, inter = _make_inter(comm)
            with pytest.raises(MPIErrRank):
                inter.send("x", dest=inter.remote_size, tag=0)
            return "ok"

        assert run_world(4, main) == ["ok"] * 4

    def test_bad_leader_rejected(self):
        def main(comm):
            local = comm.split(color=comm.rank % 2, key=comm.rank)
            with pytest.raises(MPIErrRank):
                local.create_intercomm(local_leader=9, peer_comm=comm,
                                       remote_leader=0)
            return "ok"

        run_world(4, main)


class TestPaperRestriction:
    def test_isend_global_rejected_on_intercomm(self):
        """§3.1: 'one could not use this function for communicating
        across processes that belong to different MPI_COMM_WORLD
        communicators' — the extension refuses intercomms."""
        def main(comm):
            local, inter = _make_inter(comm)
            with pytest.raises(MPIErrArg):
                inter.isend_global(np.zeros(1), 0, tag=0)
            with pytest.raises(MPIErrArg):
                inter.isend_all_opts(np.zeros(1), 0, tag=0)
            return "ok"

        assert run_world(4, main) == ["ok"] * 4

    def test_collectives_unsupported(self):
        def main(comm):
            local, inter = _make_inter(comm)
            with pytest.raises(MPIErrComm):
                inter.barrier()
            with pytest.raises(MPIErrComm):
                inter.bcast("x")
            with pytest.raises(MPIErrComm):
                inter.dup()
            return "ok"

        run_world(4, main)


class TestSplitTypeShared:
    def test_groups_by_node(self):
        def main(comm):
            node_comm = comm.split_type_shared()
            return (node_comm.size,
                    sorted(node_comm.group.world_ranks))

        world = World(6, BuildConfig(),
                      topology=Topology(nranks=6, cores_per_node=2))
        results = world.run(main)
        assert results[0] == (2, [0, 1])
        assert results[2] == (2, [2, 3])
        assert results[5] == (2, [4, 5])

    def test_intra_node_traffic_on_node_comm_uses_shmmod(self):
        def main(comm):
            node_comm = comm.split_type_shared()
            dev = comm.proc.device
            # The split itself talks across nodes; count only the
            # node-communicator traffic that follows.
            before = dev.netmod.n_native + dev.netmod.n_am_fallback
            partner = 1 - node_comm.rank
            node_comm.sendrecv("hi", dest=partner, source=partner,
                               sendtag=0, recvtag=0)
            after = dev.netmod.n_native + dev.netmod.n_am_fallback
            return after - before

        world = World(4, BuildConfig(fabric="ofi"),
                      topology=Topology(nranks=4, cores_per_node=2))
        assert world.run(main) == [0, 0, 0, 0]
