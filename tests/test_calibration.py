"""End-to-end calibration: the paper's published numbers, measured by
executing the runtime (Table 1, Figure 2, Figure 6, Section 3 savings,
and the 132.8 Mmsg/s peak)."""

import pytest

from repro.core.config import BuildConfig, named_builds
from repro.analysis.table1 import render_table1, table1_records
from repro.instrument.categories import Category, Subsystem
from repro.perf.msgrate import (extension_chain_rates,
                                measure_instructions, modeled_rate)

#: Figure 2 bars: build label -> (isend, put).
FIGURE2 = {
    "mpich/original": (253, 1342),
    "mpich/ch4 (default)": (221, 215),
    "mpich/ch4 (no-err)": (147, 143),
    "mpich/ch4 (no-err-single)": (141, 129),
    "mpich/ch4 (no-err-single-ipo)": (59, 44),
}


class TestFigure2:
    @pytest.mark.parametrize("label,expected", FIGURE2.items())
    def test_build_counts(self, label, expected):
        config = named_builds()[label]
        isend, put = expected
        assert measure_instructions(config, "isend") == isend
        assert measure_instructions(config, "put") == put


class TestTable1:
    def test_isend_column(self):
        rec = table1_records()["MPI_ISEND"]
        assert rec.category(Category.ERROR_CHECKING) == 74
        assert rec.category(Category.THREAD_SAFETY) == 6
        assert rec.category(Category.FUNCTION_CALL) == 23
        assert rec.category(Category.REDUNDANT_CHECKS) == 59
        assert rec.category(Category.MANDATORY) == 59
        assert rec.total == 221

    def test_put_column(self):
        rec = table1_records()["MPI_PUT"]
        assert rec.category(Category.ERROR_CHECKING) == 72
        assert rec.category(Category.THREAD_SAFETY) == 14
        assert rec.category(Category.FUNCTION_CALL) == 25
        assert rec.category(Category.REDUNDANT_CHECKS) == 60
        assert rec.category(Category.MANDATORY) == 44
        assert rec.total == 215

    def test_isend_mandatory_subsystems(self):
        rec = table1_records()["MPI_ISEND"]
        assert rec.subsystem(Subsystem.RANK_TRANSLATION) == 11
        assert rec.subsystem(Subsystem.OBJECT_LOOKUP) == 9
        assert rec.subsystem(Subsystem.PROC_NULL) == 3
        assert rec.subsystem(Subsystem.REQUEST_MGMT) == 13
        assert rec.subsystem(Subsystem.MATCH_BITS) == 7
        assert rec.subsystem(Subsystem.DESCRIPTOR) == 16

    def test_put_mandatory_subsystems(self):
        rec = table1_records()["MPI_PUT"]
        assert rec.subsystem(Subsystem.VM_ADDRESSING) == 4
        assert rec.subsystem(Subsystem.REQUEST_MGMT) == 0
        assert rec.subsystem(Subsystem.MATCH_BITS) == 0

    def test_render_contains_totals(self):
        text = render_table1()
        assert "221" in text and "215" in text


class TestFigure6:
    def test_chain_instruction_counts(self):
        results = extension_chain_rates()
        assert [r.instructions for r in results] == [59, 49, 44, 25, 16]

    def test_peak_is_132_8_million(self):
        results = extension_chain_rates()
        assert results[-1].rate_millions == pytest.approx(132.8, rel=1e-9)

    def test_rates_monotone_increasing(self):
        rates = [r.rate_msgs_per_s for r in extension_chain_rates()]
        assert rates == sorted(rates)


class TestHeadlineReductions:
    def test_isend_reduction_77_percent(self):
        """§2.3: 59 vs the 253 of MPICH/Original default: 77%."""
        assert 1 - 59 / 253 == pytest.approx(0.77, abs=0.01)

    def test_put_reduction_97_percent(self):
        assert 1 - 44 / 1342 == pytest.approx(0.97, abs=0.01)

    def test_ch3_put_to_ch4_default_84_percent(self):
        """§2.1: CH4 default put is an 84% reduction from CH3."""
        assert 1 - 215 / 1342 == pytest.approx(0.84, abs=0.01)

    def test_all_opts_94_percent_vs_original(self):
        """§3.7: 16 vs 253 is a 94% reduction."""
        assert 1 - 16 / 253 == pytest.approx(0.94, abs=0.01)

    def test_all_opts_73_percent_vs_ch4_ipo(self):
        """§3.7: 16 vs 59 is a 73% reduction."""
        assert 1 - 16 / 59 == pytest.approx(0.73, abs=0.01)


class TestRateFigures:
    def test_fig3_isend_gain_about_50_percent(self):
        ipo = modeled_rate(BuildConfig.ipo_build(fabric="ofi"), "isend")
        orig = modeled_rate(BuildConfig.original(fabric="ofi"), "isend")
        assert ipo.rate_msgs_per_s / orig.rate_msgs_per_s == \
            pytest.approx(1.5, abs=0.05)

    def test_fig3_put_gain_about_fourfold(self):
        ipo = modeled_rate(BuildConfig.ipo_build(fabric="ofi"), "put")
        orig = modeled_rate(BuildConfig.original(fabric="ofi"), "put")
        assert 4.0 < ipo.rate_msgs_per_s / orig.rate_msgs_per_s < 5.0

    def test_fig5_spread_is_much_larger_than_real_networks(self):
        """On the infinite network the software limit dominates: the
        put spread (original vs ipo) is an order of magnitude larger
        than on OFI."""
        inf_gain = (modeled_rate(BuildConfig.ipo_build(), "put").rate_msgs_per_s
                    / modeled_rate(BuildConfig.original(), "put").rate_msgs_per_s)
        ofi_gain = (modeled_rate(BuildConfig.ipo_build(fabric="ofi"), "put").rate_msgs_per_s
                    / modeled_rate(BuildConfig.original(fabric="ofi"), "put").rate_msgs_per_s)
        assert inf_gain > 5 * ofi_gain
