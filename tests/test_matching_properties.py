"""Property-based tests of the matching engine against a reference
matcher, plus randomized whole-runtime traffic (chaos) tests."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.consts import ANY_SOURCE, ANY_TAG
from repro.mpi import reduceops
from repro.runtime.matching import (BucketMatchingEngine,
                                    LinearMatchingEngine, PostedRecv)
from repro.runtime.message import Envelope, Message
from repro.runtime.request import Request, RequestKind
from tests.conftest import run_world

#: Both engine implementations must satisfy every matching property.
ENGINES = [LinearMatchingEngine, BucketMatchingEngine]


class ReferenceMatcher:
    """Straight-line reimplementation of MPI matching semantics used as
    the oracle: posted list and unexpected list, first-match-in-order."""

    def __init__(self):
        self.posted = []       # (id, src, tag)
        self.unexpected = []   # (id, src, tag)
        self.pairs = []        # (posted_id, message_id)

    @staticmethod
    def _match(recv, msg):
        rsrc, rtag = recv
        msrc, mtag = msg
        return ((rsrc == ANY_SOURCE or rsrc == msrc)
                and (rtag == ANY_TAG or rtag == mtag))

    def post(self, rid, src, tag):
        for i, (mid, msrc, mtag) in enumerate(self.unexpected):
            if self._match((src, tag), (msrc, mtag)):
                del self.unexpected[i]
                self.pairs.append((rid, mid))
                return
        self.posted.append((rid, src, tag))

    def deposit(self, mid, src, tag):
        for i, (rid, rsrc, rtag) in enumerate(self.posted):
            if self._match((rsrc, rtag), (src, tag)):
                del self.posted[i]
                self.pairs.append((rid, mid))
                return
        self.unexpected.append((mid, src, tag))


# Events: (kind, src, tag) where kind 0 = post recv, 1 = deposit msg.
_event = st.tuples(st.integers(0, 1),
                   st.sampled_from([ANY_SOURCE, 0, 1, 2]),
                   st.sampled_from([ANY_TAG, 0, 1, 2]))


@pytest.mark.parametrize("engine_cls", ENGINES)
@given(st.lists(_event, max_size=40))
@settings(max_examples=120, deadline=None)
def test_engine_matches_reference_for_any_sequence(engine_cls, events):
    """For any single-threaded post/deposit interleaving, the engine
    pairs exactly the same (receive, message) couples as the reference
    matcher, in the same order."""
    engine = engine_cls(0)
    ref = ReferenceMatcher()
    engine_pairs = []

    for i, (kind, src, tag) in enumerate(events):
        if kind == 0:
            # Posted receives cannot use wildcards... they can; but a
            # deposited message's envelope must be concrete.
            req = Request(RequestKind.RECV)

            def on_match(msg, rid=i):
                engine_pairs.append((rid, msg.seq))

            engine.post(PostedRecv(ctx=0, src=src, tag=tag, nomatch=False,
                                   request=req, on_match=on_match))
            ref.post(i, src, tag)
        else:
            msrc = 0 if src == ANY_SOURCE else src
            mtag = 0 if tag == ANY_TAG else tag
            msg = Message(env=Envelope(ctx=0, src=msrc, tag=mtag),
                          data=b"", arrive_s=0.0, seq=i)
            engine.deposit(msg)
            ref.deposit(i, msrc, mtag)

    assert engine_pairs == ref.pairs
    posted_n, unexpected_n = engine.pending_counts()
    assert posted_n == len(ref.posted)
    assert unexpected_n == len(ref.unexpected)


# Events with cancels: kind 0 = post, 1 = deposit, 2 = cancel the
# oldest still-pending posted receive (src/tag reused for 0/1).
_event_with_cancel = st.tuples(st.integers(0, 2),
                               st.sampled_from([ANY_SOURCE, 0, 1, 2]),
                               st.sampled_from([ANY_TAG, 0, 1, 2]))


@given(st.lists(_event_with_cancel, max_size=40))
@settings(max_examples=120, deadline=None)
def test_bucket_engine_equivalent_to_linear_with_cancels(events):
    """Linear and bucketed engines are observationally equivalent under
    any post/deposit/cancel interleaving: same match pairs in the same
    order, same cancel outcomes, same queue depths."""
    pairs = {"linear": [], "bucket": []}
    cancels = {}

    for label, engine in (("linear", LinearMatchingEngine(0)),
                          ("bucket", BucketMatchingEngine(0))):
        requests = []      # (event_id, request) of posts, oldest first
        outcomes = []
        for i, (kind, src, tag) in enumerate(events):
            if kind == 0:
                req = Request(RequestKind.RECV)

                def on_match(msg, rid=i, out=pairs[label]):
                    out.append((rid, msg.seq))

                engine.post(PostedRecv(ctx=0, src=src, tag=tag,
                                       nomatch=False, request=req,
                                       on_match=on_match))
                requests.append((i, req))
            elif kind == 1:
                msrc = 0 if src == ANY_SOURCE else src
                mtag = 0 if tag == ANY_TAG else tag
                engine.deposit(Message(
                    env=Envelope(ctx=0, src=msrc, tag=mtag),
                    data=b"", arrive_s=0.0, seq=i))
            elif requests:
                rid, req = requests.pop(0)
                outcomes.append((rid, engine.cancel_posted(req),
                                 req.cancelled))
        outcomes.append(engine.pending_counts())
        cancels[label] = outcomes

    assert pairs["bucket"] == pairs["linear"]
    assert cancels["bucket"] == cancels["linear"]


# ---------------------------------------------------------------------------
# VCI-sharded engine: same oracle, plus wildcard/concrete races
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("num_vcis", [2, 4])
@given(st.lists(_event, max_size=40))
@settings(max_examples=60, deadline=None)
def test_sharded_engine_matches_reference_for_any_sequence(num_vcis,
                                                           events):
    """The VCI-sharded engine pairs exactly like the reference matcher
    for any single-threaded interleaving: concrete streams meet their
    shard in FIFO order and wildcards arbitrate on the global sequence,
    so sharding must not change a single pairing."""
    from repro.runtime.vci import VCIShardedEngine
    engine = VCIShardedEngine(0, num_vcis)
    ref = ReferenceMatcher()
    engine_pairs = []

    for i, (kind, src, tag) in enumerate(events):
        if kind == 0:
            req = Request(RequestKind.RECV)

            def on_match(msg, rid=i):
                engine_pairs.append((rid, msg.seq))

            engine.post(PostedRecv(ctx=0, src=src, tag=tag, nomatch=False,
                                   request=req, on_match=on_match))
            ref.post(i, src, tag)
        else:
            msrc = 0 if src == ANY_SOURCE else src
            mtag = 0 if tag == ANY_TAG else tag
            msg = Message(env=Envelope(ctx=0, src=msrc, tag=mtag),
                          data=b"", arrive_s=0.0, seq=i)
            engine.deposit(msg)
            ref.deposit(i, msrc, mtag)

    assert engine_pairs == ref.pairs
    posted_n, unexpected_n = engine.pending_counts()
    assert posted_n == len(ref.posted)
    assert unexpected_n == len(ref.unexpected)
    per_vci = engine.per_vci_counts()
    assert sum(po for po, _ in per_vci) <= posted_n  # wildcards aside
    assert sum(ux for _, ux in per_vci) == unexpected_n


@pytest.mark.parametrize("num_vcis", [2, 4])
@given(st.lists(_event_with_cancel, max_size=40))
@settings(max_examples=60, deadline=None)
def test_sharded_engine_equivalent_to_linear_with_cancels(num_vcis,
                                                          events):
    """Linear and VCI-sharded engines agree under any single-threaded
    post/deposit/cancel interleaving (cancels hit both the shard fast
    path and the wildcard registry)."""
    from repro.runtime.vci import VCIShardedEngine
    pairs = {"linear": [], "sharded": []}
    cancels = {}

    for label, engine in (("linear", LinearMatchingEngine(0)),
                          ("sharded", VCIShardedEngine(0, num_vcis))):
        requests = []
        outcomes = []
        for i, (kind, src, tag) in enumerate(events):
            if kind == 0:
                req = Request(RequestKind.RECV)

                def on_match(msg, rid=i, out=pairs[label]):
                    out.append((rid, msg.seq))

                engine.post(PostedRecv(ctx=0, src=src, tag=tag,
                                       nomatch=False, request=req,
                                       on_match=on_match))
                requests.append((i, req))
            elif kind == 1:
                msrc = 0 if src == ANY_SOURCE else src
                mtag = 0 if tag == ANY_TAG else tag
                engine.deposit(Message(
                    env=Envelope(ctx=0, src=msrc, tag=mtag),
                    data=b"", arrive_s=0.0, seq=i))
            elif requests:
                rid, req = requests.pop(0)
                outcomes.append((rid, engine.cancel_posted(req),
                                 req.cancelled))
        outcomes.append(engine.pending_counts())
        cancels[label] = outcomes

    assert pairs["sharded"] == pairs["linear"]
    assert cancels["sharded"] == cancels["linear"]


@pytest.mark.parametrize("num_vcis", [2, 4])
def test_wildcard_receives_racing_concrete_sends(num_vcis):
    """Wildcard posts racing concrete deposits from several threads:
    nothing is lost, nothing matches twice.  Exercises the REGISTERED
    -> scan -> ARMED discipline against deposits landing on every
    shard concurrently."""
    import threading
    from repro.runtime.vci import VCIShardedEngine

    engine = VCIShardedEngine(0, num_vcis)
    n_depositors, msgs_each, n_wild = 3, 60, 40
    matched = []            # (wildcard id, message seq)
    matched_lock = threading.Lock()

    def poster():
        for w in range(n_wild):
            req = Request(RequestKind.RECV)

            def on_match(msg, rid=w):
                with matched_lock:
                    matched.append((rid, msg.seq))

            engine.post(PostedRecv(ctx=0, src=ANY_SOURCE, tag=ANY_TAG,
                                   nomatch=False, request=req,
                                   on_match=on_match))

    def depositor(tid):
        for i in range(msgs_each):
            seq = tid * msgs_each + i
            engine.deposit(Message(
                env=Envelope(ctx=0, src=tid, tag=i % 5),
                data=b"", arrive_s=0.0, seq=seq))

    threads = [threading.Thread(target=poster)] + [
        threading.Thread(target=depositor, args=(t,))
        for t in range(n_depositors)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    total_sent = n_depositors * msgs_each
    # Every wildcard matched exactly once (enough messages for all).
    assert len(matched) == n_wild
    assert len({rid for rid, _ in matched}) == n_wild
    # No message delivered to two receives.
    assert len({seq for _, seq in matched}) == n_wild
    # Conservation: every deposit either matched or is still queued.
    posted_n, unexpected_n = engine.pending_counts()
    assert posted_n == 0
    assert unexpected_n == total_sent - n_wild
    assert engine.n_deposited == total_sent
    assert (engine.n_matched_posted
            + engine.n_matched_unexpected) == n_wild


class TestChaosTraffic:
    """Randomized all-pairs traffic through the full runtime: every
    sent payload must arrive exactly once, regardless of interleaving."""

    def _run(self, seed, nranks=4, nmsgs=30):
        def main(comm):
            rng = np.random.default_rng(seed + comm.rank)
            plan = [(int(rng.integers(0, comm.size)),
                     int(rng.integers(0, 4)), i)
                    for i in range(nmsgs)]
            # Tell every rank how many messages to expect from me & tag.
            sends_per_dest = [[p for p in plan if p[0] == d]
                              for d in range(comm.size)]
            counts = comm.alltoall([len(s) for s in sends_per_dest])

            reqs = [comm.isend((comm.rank, tag, idx), dest, tag=tag)
                    for dest, tag, idx in plan]
            received = []
            for _ in range(sum(counts)):
                received.append(comm.recv(source=ANY_SOURCE, tag=ANY_TAG))
            for r in reqs:
                r.wait()
            return sorted(received), plan

        results = run_world(4, main)
        # Build the global multiset of sent vs received messages.
        sent = sorted(
            (src_rank, tag, idx)
            for src_rank, (_, plan) in enumerate(results)
            for (_dest, tag, idx) in plan)
        got = sorted(msg for recvd, _ in results for msg in recvd)
        assert got == sent

    def test_seed_1(self):
        self._run(1)

    def test_seed_2(self):
        self._run(20260707)

    def test_seed_3(self):
        self._run(999)


class TestChaosCollectives:
    """Random mixtures of collectives agree with serial references."""

    def _run(self, seed):
        def main(comm):
            rng = np.random.default_rng(seed)   # SAME seed: same plan
            out = []
            for _ in range(12):
                kind = rng.integers(0, 5)
                if kind == 0:
                    out.append(comm.allreduce(comm.rank + 1,
                                              op=reduceops.SUM))
                elif kind == 1:
                    out.append(tuple(comm.allgather(comm.rank * 3)))
                elif kind == 2:
                    root = int(rng.integers(0, comm.size))
                    out.append(comm.bcast(
                        ("payload", root) if comm.rank == root else None,
                        root=root))
                elif kind == 3:
                    out.append(comm.scan(comm.rank, op=reduceops.MAX))
                else:
                    comm.barrier()
                    out.append("barrier")
            return out

        results = run_world(5, main)
        size = 5
        # Verify against per-kind references on each rank.
        for rank, out in enumerate(results):
            rng = np.random.default_rng(seed)
            for value in out:
                kind = rng.integers(0, 5)
                if kind == 0:
                    assert value == size * (size + 1) // 2
                elif kind == 1:
                    assert value == tuple(3 * i for i in range(size))
                elif kind == 2:
                    root = int(rng.integers(0, size))
                    assert value == ("payload", root)
                elif kind == 3:
                    assert value == rank   # max of 0..rank
                else:
                    assert value == "barrier"

    def test_seed_a(self):
        self._run(7)

    def test_seed_b(self):
        self._run(4242)
