"""LAMMPS proxy: lattice, LJ kernels, distributed MD, scaling model."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.apps.lammps.lattice import (LJ_DENSITY, fcc_cell_size,
                                       fcc_lattice, initial_velocities)
from repro.apps.lammps.lj import (lj_forces_bruteforce, lj_forces_celllist,
                                  lj_potential_energy, pair_count_estimate)
from repro.apps.lammps.md import LJSimulation
from repro.apps.lammps.model import (NODE_COUNTS, LammpsModel,
                                     figure8_series)
from repro.core.config import BuildConfig
from tests.conftest import run_world


class TestLattice:
    def test_atom_count(self):
        pos, box = fcc_lattice((3, 4, 5))
        assert len(pos) == 4 * 3 * 4 * 5

    def test_density(self):
        pos, box = fcc_lattice((4, 4, 4))
        assert len(pos) / np.prod(box) == pytest.approx(LJ_DENSITY)

    def test_atoms_inside_box(self):
        pos, box = fcc_lattice((3, 3, 3))
        assert np.all(pos >= 0)
        assert np.all(pos < box)

    def test_no_duplicate_positions(self):
        pos, _ = fcc_lattice((3, 3, 3))
        rounded = {tuple(np.round(p, 9)) for p in pos}
        assert len(rounded) == len(pos)

    def test_cell_size_positive_and_validated(self):
        assert fcc_cell_size() > 0
        with pytest.raises(ValueError):
            fcc_cell_size(0)
        with pytest.raises(ValueError):
            fcc_lattice((0, 1, 1))

    def test_velocities_zero_momentum(self):
        vel = initial_velocities(500, temperature=1.44)
        np.testing.assert_allclose(vel.mean(axis=0), 0.0, atol=1e-12)

    def test_velocities_temperature(self):
        vel = initial_velocities(20000, temperature=1.44)
        measured = np.mean(vel ** 2)   # per-component variance ~ T
        assert measured == pytest.approx(1.44, rel=0.05)


class TestLJKernels:
    def test_celllist_matches_bruteforce(self, rng):
        pos = rng.uniform(0, 10, size=(200, 3))
        ref = lj_forces_bruteforce(pos, pos)
        fast = lj_forces_celllist(pos, pos)
        np.testing.assert_allclose(fast, ref, rtol=1e-10, atol=1e-9)

    def test_ghost_separation(self, rng):
        """Forces on a local subset from local + ghost atoms."""
        pos = rng.uniform(0, 8, size=(100, 3))
        local, ghosts = pos[:60], pos[60:]
        allpos = np.concatenate([local, ghosts])
        ref = lj_forces_bruteforce(local, allpos)
        fast = lj_forces_celllist(local, allpos)
        np.testing.assert_allclose(fast, ref, rtol=1e-10, atol=1e-9)

    def test_newton_third_law(self, rng):
        """Total force on an isolated system is zero."""
        pos = rng.uniform(0, 6, size=(50, 3))
        forces = lj_forces_bruteforce(pos, pos)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)

    def test_two_atoms_at_minimum(self):
        """At r = 2^(1/6) sigma the LJ force vanishes."""
        r_min = 2.0 ** (1.0 / 6.0)
        pos = np.array([[0.0, 0.0, 0.0], [r_min, 0.0, 0.0]])
        forces = lj_forces_bruteforce(pos, pos)
        np.testing.assert_allclose(forces, 0.0, atol=1e-12)

    def test_repulsive_inside_minimum(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        forces = lj_forces_bruteforce(pos, pos)
        assert forces[0, 0] < 0 < forces[1, 0]

    def test_cutoff_respected(self):
        pos = np.array([[0.0, 0.0, 0.0], [3.0, 0.0, 0.0]])
        forces = lj_forces_bruteforce(pos, pos, cutoff=2.5)
        np.testing.assert_allclose(forces, 0.0)

    def test_potential_energy_pair(self):
        pos = np.array([[0.0, 0.0, 0.0], [1.0, 0.0, 0.0]])
        # U(1) = 4(1 - 1) = 0; both halves sum to the pair energy.
        assert lj_potential_energy(pos, pos) == pytest.approx(0.0)
        pos2 = np.array([[0.0, 0.0, 0.0], [2.0 ** (1 / 6), 0.0, 0.0]])
        assert lj_potential_energy(pos2, pos2) == pytest.approx(-1.0)

    def test_empty_local(self):
        out = lj_forces_celllist(np.zeros((0, 3)), np.zeros((5, 3)))
        assert out.shape == (0, 3)

    def test_pair_count_estimate_scales_with_density(self):
        assert pair_count_estimate(10, 0.8) > pair_count_estimate(10, 0.4)

    @given(st.integers(10, 60), st.integers(0, 2 ** 31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_celllist_equals_bruteforce_random(self, n, seed):
        rng = np.random.default_rng(seed)
        pos = rng.uniform(0, 7, size=(n, 3))
        np.testing.assert_allclose(
            lj_forces_celllist(pos, pos),
            lj_forces_bruteforce(pos, pos), rtol=1e-9, atol=1e-8)


class TestDistributedMD:
    def test_decompositions_agree(self):
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002)
            return [sim.step().total_energy for _ in range(4)]

        serial = run_world(1, main)[0]
        parallel = run_world(8, main)[0]
        np.testing.assert_allclose(parallel, serial, rtol=1e-10)

    def test_energy_conservation(self):
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.001)
            energies = [sim.step().total_energy for _ in range(20)]
            return energies

        energies = run_world(8, main)[0]
        drift = abs(energies[-1] - energies[0]) / abs(energies[0])
        assert drift < 1e-4

    def test_atom_conservation_under_migration(self):
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.005,
                               temperature=3.0)   # hot: lots of motion
            n0 = sim.natoms_global()
            for _ in range(10):
                sim.step()
            return n0, sim.natoms_global()

        for n0, n1 in run_world(8, main):
            assert n0 == n1 == 4 * 27

    def test_temperature_positive_and_equilibrating(self):
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002)
            stats = [sim.step() for _ in range(5)]
            return [s.temperature for s in stats]

        temps = run_world(4, main)[0]
        assert all(t > 0 for t in temps)

    def test_too_many_ranks_rejected(self):
        def main(comm):
            with pytest.raises(ValueError):
                LJSimulation(comm, cells=(2, 2, 2))
            return "ok"

        # 2x2x2 cells -> box edge ~3.36 sigma; 8 ranks -> 1.68 < rc.
        assert run_world(8, main) == ["ok"] * 8

    def test_thermo_identical_on_all_ranks(self):
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002)
            s = sim.step()
            return (s.kinetic, s.potential, s.temperature)

        results = run_world(4, main)
        assert all(r == results[0] for r in results)


class TestScalingModel:
    def test_atoms_per_core_matches_figure8_axis(self):
        m = LammpsModel()
        expected = {512: 368, 1024: 184, 2048: 92, 4096: 46, 8192: 23}
        for nodes, apc in expected.items():
            assert m.atoms_per_core(nodes) == pytest.approx(apc, rel=0.01)

    def test_ch4_faster_everywhere(self):
        m = LammpsModel()
        for nodes in NODE_COUNTS:
            assert m.timesteps_per_second(nodes, "ch4") > \
                m.timesteps_per_second(nodes, "ch3")

    def test_speedup_grows_with_scale(self):
        m = LammpsModel()
        speedups = [m.speedup_percent(n) for n in NODE_COUNTS]
        assert speedups == sorted(speedups)
        assert speedups[0] < 5
        assert speedups[-1] > 50

    def test_original_stops_scaling_at_8192(self):
        """The paper's headline: Original's step rate barely moves from
        4096 to 8192 nodes while CH4 keeps scaling."""
        m = LammpsModel()
        ch3_gain = (m.timesteps_per_second(8192, "ch3")
                    / m.timesteps_per_second(4096, "ch3"))
        ch4_gain = (m.timesteps_per_second(8192, "ch4")
                    / m.timesteps_per_second(4096, "ch4"))
        assert ch3_gain < 1.10      # "completely stops scaling"
        assert ch4_gain > 1.25

    def test_ch4_keeps_scaling_monotonically(self):
        m = LammpsModel()
        rates = [m.timesteps_per_second(n, "ch4") for n in NODE_COUNTS]
        assert rates == sorted(rates)

    def test_ghost_pressure_grows_at_strong_scaling_limit(self):
        m = LammpsModel()
        pressures = [m.ghost_pressure(n) for n in NODE_COUNTS]
        assert pressures == sorted(pressures)
        assert pressures[-1] > 4 * pressures[0]

    def test_efficiency_reference_point(self):
        m = LammpsModel()
        assert m.efficiency(512, "ch4") == pytest.approx(1.0)
        assert m.efficiency(8192, "ch3") < m.efficiency(8192, "ch4")

    def test_figure8_series_rows(self):
        rows = figure8_series()["rows"]
        assert [r["nodes"] for r in rows] == list(NODE_COUNTS)
        assert all(r["speedup_percent"] > 0 for r in rows)
