"""Counter, tracer, and report machinery."""

import threading

import pytest

from repro.instrument.categories import Category, Subsystem
from repro.instrument.counter import (InstructionCounter, charge,
                                      current_counter, install_counter,
                                      scoped_counter, uninstall_counter)
from repro.instrument.report import (breakdown_lines, category_table,
                                     format_table)
from repro.instrument.trace import CallTracer


class TestCounter:
    def test_charge_accumulates(self):
        c = InstructionCounter("t")
        c.charge(Category.ERROR_CHECKING, 10)
        c.charge(Category.ERROR_CHECKING, 5)
        c.charge(Category.MANDATORY, 7, Subsystem.PROC_NULL)
        assert c.total == 22
        assert c.by_category[Category.ERROR_CHECKING] == 15
        assert c.by_category[Category.MANDATORY] == 7
        assert c.by_subsystem[Subsystem.PROC_NULL] == 7

    def test_reset(self):
        c = InstructionCounter()
        c.charge(Category.MANDATORY, 3, Subsystem.MATCH_BITS)
        c.reset()
        assert c.total == 0
        assert all(v == 0 for v in c.by_category.values())
        assert all(v == 0 for v in c.by_subsystem.values())

    def test_snapshot_delta(self):
        c = InstructionCounter()
        c.charge(Category.FUNCTION_CALL, 23)
        before = c.snapshot()
        c.charge(Category.FUNCTION_CALL, 23)
        c.charge(Category.MANDATORY, 16, Subsystem.DESCRIPTOR)
        delta = before.delta(c.snapshot())
        assert delta.total == 39
        assert delta.by_category[Category.FUNCTION_CALL] == 23
        assert delta.by_subsystem[Subsystem.DESCRIPTOR] == 16

    def test_snapshot_is_independent(self):
        c = InstructionCounter()
        snap = c.snapshot()
        c.charge(Category.MANDATORY, 5)
        assert snap.total == 0


class TestThreadLocalInstallation:
    def test_install_and_charge(self):
        c = InstructionCounter()
        install_counter(c)
        try:
            charge(Category.THREAD_SAFETY, 6)
            assert c.total == 6
            assert current_counter() is c
        finally:
            uninstall_counter()
        assert current_counter() is None

    def test_charge_without_counter_is_noop(self):
        uninstall_counter()
        charge(Category.MANDATORY, 100)   # must not raise

    def test_scoped_counter_restores_previous(self):
        outer = InstructionCounter("outer")
        install_counter(outer)
        try:
            with scoped_counter() as inner:
                charge(Category.MANDATORY, 4)
            assert inner.total == 4
            assert outer.total == 0
            assert current_counter() is outer
        finally:
            uninstall_counter()

    def test_counters_are_per_thread(self):
        main_counter = InstructionCounter("main")
        install_counter(main_counter)
        seen = {}

        def other():
            seen["before"] = current_counter()
            c = InstructionCounter("other")
            install_counter(c)
            charge(Category.MANDATORY, 9)
            seen["count"] = c.total
            uninstall_counter()

        t = threading.Thread(target=other)
        t.start()
        t.join()
        uninstall_counter()
        assert seen["before"] is None
        assert seen["count"] == 9
        assert main_counter.total == 0


class TestTracer:
    def test_call_records_delta(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        with tracer.call("op"):
            c.charge(Category.ERROR_CHECKING, 74)
            c.charge(Category.MANDATORY, 59, Subsystem.DESCRIPTOR)
        rec = tracer.last("op")
        assert rec.total == 133
        assert rec.category(Category.ERROR_CHECKING) == 74
        assert rec.subsystem(Subsystem.DESCRIPTOR) == 59

    def test_last_filters_by_name(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        with tracer.call("a"):
            c.charge(Category.MANDATORY, 1)
        with tracer.call("b"):
            c.charge(Category.MANDATORY, 2)
        assert tracer.last("a").total == 1
        assert tracer.last().total == 2
        with pytest.raises(KeyError):
            tracer.last("missing")

    def test_mean_total(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        for n in (10, 20):
            with tracer.call("op"):
                c.charge(Category.MANDATORY, n)
        assert tracer.mean_total("op") == 15.0

    def test_records_even_on_exception(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        with pytest.raises(ValueError):
            with tracer.call("boom"):
                c.charge(Category.MANDATORY, 5)
                raise ValueError("x")
        assert tracer.last("boom").total == 5


class TestReport:
    def test_format_table_alignment(self):
        out = format_table(["Name", "Count"],
                           [["alpha", 1234], ["b", 7]], title="T")
        lines = out.splitlines()
        assert lines[0] == "T"
        assert "1,234" in out
        assert "alpha" in out

    def test_category_table_has_all_rows(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        with tracer.call("X"):
            c.charge(Category.ERROR_CHECKING, 74)
        out = category_table({"X": tracer.last("X")})
        assert "Error checking" in out
        assert "MPI mandatory overheads" in out
        assert "Total" in out

    def test_breakdown_lines_skip_zero_subsystems(self):
        c = InstructionCounter()
        tracer = CallTracer(c)
        with tracer.call("Y"):
            c.charge(Category.MANDATORY, 3, Subsystem.PROC_NULL)
        lines = breakdown_lines(tracer.last("Y"))
        assert any("PROC_NULL" in ln for ln in lines)
        assert not any("Match-bit" in ln for ln in lines)
