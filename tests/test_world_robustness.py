"""World-level robustness: deadlock detection, aborts, reuse, timing."""

import threading
import time

import numpy as np
import pytest

from repro.core.config import BuildConfig
from repro.runtime.world import World, WorldAborted
from tests.conftest import run_world


class TestDeadlockDetection:
    def test_hung_rank_raises_timeout(self):
        """A receive that can never match must surface as TimeoutError
        with the hung ranks named, not hang the test suite."""
        def main(comm):
            if comm.rank == 0:
                comm.recv(source=1, tag=999)   # never sent
            return "done"

        world = World(2, BuildConfig())
        with pytest.raises(TimeoutError, match="mpi-rank-0"):
            world.run(main, timeout=1.0)

    def test_exception_unblocks_waiting_peer(self):
        """When rank 1 dies, rank 0's blocking recv must abort quickly
        rather than spin forever."""
        def main(comm):
            if comm.rank == 1:
                raise ValueError("rank 1 exploded")
            comm.recv(source=1, tag=0)

        world = World(2, BuildConfig())
        start = time.monotonic()
        with pytest.raises(ValueError, match="exploded"):
            world.run(main, timeout=30.0)
        assert time.monotonic() - start < 10.0

    def test_exception_note_names_rank(self):
        def main(comm):
            if comm.rank == 2:
                raise RuntimeError("boom")
            comm.barrier()

        try:
            run_world(4, main)
        except RuntimeError as exc:
            assert any("rank 2" in note
                       for note in getattr(exc, "__notes__", []))
        else:  # pragma: no cover
            pytest.fail("expected RuntimeError")

    def test_worldaborted_not_masked_as_primary(self):
        """Peers killed by the abort report the real failure, not
        WorldAborted."""
        def main(comm):
            if comm.rank == 0:
                raise KeyError("primary")
            comm.recv(source=0, tag=0)

        with pytest.raises(KeyError):
            run_world(3, main)


class TestWorldLifecycle:
    def test_rerun_continues_clocks_monotonically(self):
        world = World(2, BuildConfig())

        def main(comm):
            comm.barrier()
            return comm.proc.vclock.now

        first = world.run(main)
        second = world.run(main)
        for t0, t1 in zip(first, second):
            assert t1 > t0

    def test_reset_accounting_preserves_clocks(self):
        world = World(2, BuildConfig())
        world.run(lambda comm: comm.barrier())
        t = world.max_vtime()
        world.reset_accounting()
        assert world.total_instructions() == 0
        assert world.max_vtime() == t

    def test_concurrent_worlds_are_isolated(self):
        """Two worlds running simultaneously must not cross-deliver."""
        results = {}

        def drive(name, payload):
            def main(comm):
                if comm.rank == 0:
                    comm.send(payload, dest=1, tag=1)
                    return None
                return comm.recv(source=0, tag=1)

            results[name] = World(2, BuildConfig()).run(main)[1]

        t1 = threading.Thread(target=drive, args=("a", "from-a"))
        t2 = threading.Thread(target=drive, args=("b", "from-b"))
        t1.start()
        t2.start()
        t1.join()
        t2.join()
        assert results == {"a": "from-a", "b": "from-b"}

    def test_invalid_world_sizes(self):
        with pytest.raises(ValueError):
            World(0)
        from repro.fabric.topology import Topology
        with pytest.raises(ValueError):
            World(4, topology=Topology(nranks=2))


class TestVirtualTimeSanity:
    def test_clocks_monotone_within_run(self):
        def main(comm):
            samples = [comm.proc.vclock.now]
            for _ in range(5):
                comm.allreduce(comm.rank)
                samples.append(comm.proc.vclock.now)
            return samples

        for samples in run_world(4, main):
            assert samples == sorted(samples)

    def test_barrier_synchronizes_clocks(self):
        """After a barrier, no rank's clock may precede the latest
        pre-barrier clock (the max-merge property)."""
        def main(comm):
            # Skew the clocks deliberately.
            comm.proc.charge_compute(comm.rank * 1e-6)
            before = comm.proc.vclock.now
            comm.barrier()
            return before, comm.proc.vclock.now

        results = run_world(4, main)
        latest_before = max(b for b, _ in results)
        for _, after in results:
            assert after >= latest_before

    def test_message_never_arrives_before_send(self):
        def main(comm):
            if comm.rank == 0:
                comm.proc.charge_compute(5e-6)   # sender is "late"
                t_send = comm.proc.vclock.now
                comm.send(t_send, dest=1, tag=0)
                return None
            t_send = comm.recv(source=0, tag=0)
            return comm.proc.vclock.now >= t_send

        assert run_world(2, main)[1]
