"""Dynamic processes & failure detection (PR 10).

Covers the churn-resilience layer end to end: named ports with
connect/accept (exactly-once claim semantics, timeouts, closed-port
errors), ``MPI_Comm_spawn`` + ``MPI_Comm_get_parent``, MPI-4 sessions
joining and leaving a *running* world, the heartbeat failure detector
(clean departure vs. unannounced death, no false positives under a
lossy-but-alive wire), and the two fault-hardening regressions: a rank
killed mid-hierarchical-allreduce surfaces ``MPI_ERR_PROC_FAILED`` /
``MPI_ERR_REVOKED`` instead of hanging (and ``MPIX_Comm_shrink``
invalidates the stale hierarchy cache), and ``MPIX_Comm_agree``
completes when a member's plan kill becomes due *during* the round.
"""

import threading
import time

import numpy as np
import pytest

from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.errors import (MPIErrComm, MPIErrPort, MPIErrProcFailed,
                          MPIErrRevoked, MPIErrSpawn)
from repro.fabric.topology import Topology
from repro.ft import (ERRORS_RETURN, DetectorConfig, FaultPlan, RankKilled,
                      WorldDetector)
from repro.ft import detector as ftdet
from repro.mpi import reduceops
from repro.mpi.intercomm import (close_port, comm_accept, comm_connect,
                                 comm_spawn, get_parent, open_port)
from repro.mpi.session import Session
from repro.runtime.world import World

#: Fast-converging detector for tests (confirm within ~0.2 s silence).
FAST_DETECTOR = DetectorConfig(period_s=0.005, suspect_s=0.05,
                               confirm_s=0.2)


def _ft_config(**kw):
    """A fault-tolerant build (lossless wire unless a plan says so)."""
    kw.setdefault("fault_plan", FaultPlan())
    return BuildConfig(**kw)


def _echo_server(comm, port, n_clients):
    """Accept *n_clients* sequentially; echo until bye or death.

    Returns (outcomes, leaked) where each outcome is
    ``("bye" | "died", n_served)`` and *leaked* is the matching
    engine's pending posted+unexpected count at close.
    """
    comm.set_errhandler(ERRORS_RETURN)
    outcomes = []
    for _ in range(n_clients):
        inter = comm_accept(port, comm, timeout=30.0)
        inter.set_errhandler(ERRORS_RETURN)
        served = 0
        while True:
            try:
                message = inter.recv(source=0, tag=0)
                if message == "bye":
                    outcomes.append(("bye", served))
                    break
                served += 1
                # The reply can fail too: a client that dies right
                # after sending never acks the echo.
                inter.send(message * 2, dest=0, tag=0)
            except (MPIErrProcFailed, MPIErrRevoked):
                ext.MPIX_Comm_revoke(inter)
                outcomes.append(("died", served))
                break
    close_port(comm, port)
    posted, unexpected = comm.proc.engine.pending_counts()
    return outcomes, posted + unexpected


def _session_client(world, port, n_requests):
    """One well-behaved session client; returns the echoed replies."""
    with Session(world, name="t-client") as session:
        inter = session.connect(port)
        inter.set_errhandler(ERRORS_RETURN)
        got = []
        for i in range(n_requests):
            inter.send(i + 1, dest=0, tag=0)
            got.append(inter.recv(source=0, tag=0))
        inter.send("bye", dest=0, tag=0)
        return got


class TestPorts:
    """open_port / close_port / comm_accept / comm_connect."""

    def test_open_close_and_closed_port_raises(self):
        def fn(comm):
            a = open_port(comm)
            b = open_port(comm)
            assert a != b and a.startswith("port#")
            close_port(comm, a)
            with pytest.raises(MPIErrPort):
                comm_connect(a, comm, retries=2, backoff_s=0.01)
            close_port(comm, b)
            return a

        World(1, BuildConfig()).run(fn)

    def test_connect_unknown_port_raises(self):
        def fn(comm):
            with pytest.raises(MPIErrPort):
                comm_connect("port#4096", comm, retries=2,
                             backoff_s=0.01)

        World(1, BuildConfig()).run(fn)

    def test_accept_times_out_without_client(self):
        def fn(comm):
            port = open_port(comm)
            t0 = time.monotonic()
            with pytest.raises(MPIErrPort):
                comm_accept(port, comm, timeout=0.2)
            assert time.monotonic() - t0 < 10.0
            close_port(comm, port)

        World(1, BuildConfig()).run(fn)

    def test_connect_exhausts_retries_without_server(self):
        def fn(comm):
            port = open_port(comm)
            # Nobody ever accepts: the retry-with-backoff loop must
            # give up with MPI_ERR_PORT, not spin forever.
            with pytest.raises(MPIErrPort):
                comm_connect(port, comm, retries=3, backoff_s=0.005)
            close_port(comm, port)

        World(1, BuildConfig()).run(fn)

    def test_racing_clients_each_claim_exactly_one_accept(self):
        """N clients race one port; every accept pairs with exactly
        one connect and every client is served exactly once."""
        n_clients = 4
        world = World(1, BuildConfig())
        port = world.ports.open_port()
        replies = [None] * n_clients

        def client(idx):
            replies[idx] = _session_client(world, port, n_requests=2)

        threads = [threading.Thread(target=client, args=(i,), daemon=True)
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        outcomes, leaked = world.run(
            _echo_server, args=(port, n_clients))[0]
        for t in threads:
            t.join(timeout=60.0)

        assert outcomes == [("bye", 2)] * n_clients
        assert leaked == 0
        assert replies == [[2, 4]] * n_clients
        stats = world.ports.stats()
        assert stats["n_accepts"] == n_clients
        assert stats["n_connects"] == n_clients


class TestSpawn:
    """MPI_Comm_spawn / MPI_Comm_get_parent / join_dynamic."""

    def test_spawn_children_report_to_parent(self):
        nprocs = 2

        def child(comm):
            # Children share their own world: allreduce among
            # themselves, then report to parent rank 0 over the
            # parent intercommunicator.
            assert comm.size == nprocs
            total = comm.allreduce(comm.rank + 1, op=reduceops.SUM)
            parent = get_parent(comm)
            parent.send((comm.rank, total), dest=0, tag=1)
            return total

        def fn(comm):
            if comm.rank == 0:
                inter = comm_spawn(comm, child, nprocs)
                reports = sorted(inter.recv(source=r, tag=1)
                                 for r in range(nprocs))
                return reports
            return None

        world = World(2, BuildConfig())
        results = world.run(fn)
        expected_total = nprocs * (nprocs + 1) // 2
        assert results[0] == [(r, expected_total) for r in range(nprocs)]
        dynamic = world.join_dynamic()
        assert sorted(dynamic.values()) == [expected_total] * nprocs
        assert world.nranks == 2 + nprocs   # the world really grew

    def test_spawn_rejects_nonpositive_nprocs(self):
        def fn(comm):
            with pytest.raises(MPIErrSpawn):
                comm_spawn(comm, lambda c: None, 0)

        World(1, BuildConfig()).run(fn)

    def test_get_parent_on_non_spawned_rank_raises(self):
        def fn(comm):
            with pytest.raises(MPIErrComm):
                get_parent(comm)

        World(1, BuildConfig()).run(fn)


class TestSession:
    """MPI-4 sessions: join a running world, talk, leave."""

    def test_lifecycle_grow_finalize_idempotent(self):
        world = World(1, BuildConfig())
        base = world.nranks
        session = Session(world, name="t-life")
        assert world.nranks == base + 1
        assert session.comm.size == 1
        assert not session.finalized
        session.finalize()
        assert session.finalized
        session.finalize()   # idempotent by contract
        with pytest.raises(MPIErrComm):
            session.connect("port#0")

    def test_context_manager_finalizes(self):
        world = World(1, BuildConfig())
        with Session(world, name="t-ctx") as session:
            assert not session.finalized
        assert session.finalized

    def test_session_roundtrip_through_accept(self):
        world = World(1, BuildConfig())
        port = world.ports.open_port()
        replies = []
        thread = threading.Thread(
            target=lambda: replies.append(
                _session_client(world, port, n_requests=3)),
            daemon=True)
        thread.start()
        outcomes, leaked = world.run(_echo_server, args=(port, 1))[0]
        thread.join(timeout=60.0)
        assert outcomes == [("bye", 3)]
        assert leaked == 0
        assert replies == [[2, 4, 6]]


class TestDetector:
    """Heartbeat failure detector: config, escalation, departures."""

    def test_config_validation(self):
        with pytest.raises(ValueError):
            DetectorConfig(period_s=0.0)
        with pytest.raises(ValueError):
            DetectorConfig(suspect_s=1.0, confirm_s=0.5)

    def test_detector_requires_fault_build(self):
        # The detector's confirmation path *is* WorldFaults.mark_dead:
        # without the ULFM substrate there is nothing to escalate to.
        with pytest.raises(ValueError):
            World(1, BuildConfig(detector=FAST_DETECTOR))

    def test_plain_build_has_no_detector(self):
        world = World(1, BuildConfig())
        assert world.detector is None
        assert isinstance(
            World(1, _ft_config(detector=FAST_DETECTOR)).detector,
            WorldDetector)

    def test_clean_departure_is_not_a_death(self):
        world = World(1, _ft_config(detector=FAST_DETECTOR))
        session = Session(world, name="t-departs")
        rank = session.comm.proc.world_rank
        session.finalize()
        time.sleep(FAST_DETECTOR.confirm_s * 1.5)
        world.detector.tick()
        stats = world.detector.stats()
        assert stats["n_departed"] == 1
        assert stats["n_confirmed"] == 0
        assert world.detector.state_of(rank) == ftdet.DEPARTED
        assert not world.ft.is_dead(rank)

    def test_unannounced_silence_escalates_to_dead(self):
        world = World(1, _ft_config(detector=FAST_DETECTOR))
        session = Session(world, name="t-vanishes")
        rank = session.comm.proc.world_rank
        # The session goes silent without finalize: suspect first...
        time.sleep(FAST_DETECTOR.suspect_s * 1.5)
        world.detector.tick()
        assert world.detector.state_of(rank) == ftdet.SUSPECT
        # ...then confirmed dead once the silence crosses confirm_s.
        deadline = time.monotonic() + 10.0
        while (world.detector.stats()["n_confirmed"] == 0
               and time.monotonic() < deadline):
            world.detector.tick()
            time.sleep(0.01)
        stats = world.detector.stats()
        assert stats["n_confirmed"] == 1
        assert world.detector.state_of(rank) == ftdet.DEAD
        assert world.ft.is_dead(rank)

    def test_beat_clears_suspicion(self):
        world = World(1, _ft_config(detector=FAST_DETECTOR))
        session = Session(world, name="t-slow")
        det = session.comm.proc.detector
        rank = session.comm.proc.world_rank
        time.sleep(FAST_DETECTOR.suspect_s * 1.5)
        world.detector.tick()
        assert world.detector.state_of(rank) == ftdet.SUSPECT
        det.beat()
        world.detector.tick()
        assert world.detector.state_of(rank) == ftdet.ALIVE
        assert world.detector.stats()["n_cleared"] >= 1
        session.finalize()


class TestChurnProperties:
    """Satellite 3: connect/accept + detector under a misbehaving
    wire, across seeds, VCI counts, and progress modes."""

    @pytest.mark.parametrize("seed", (1, 2))
    @pytest.mark.parametrize("num_vcis", (1, 4))
    @pytest.mark.parametrize("progress", (None, "thread"))
    def test_lossy_wire_no_hangs_no_false_kills(self, seed, num_vcis,
                                                progress):
        """Drop/delay-only plans: every client completes, accepts are
        exactly-once, and the detector never kills a live rank."""
        plan = FaultPlan(seed=seed, drop_rate=0.05, delay_rate=0.2,
                         delay_s=5e-4)
        config = BuildConfig(fault_plan=plan, detector=FAST_DETECTOR,
                             num_vcis=num_vcis, progress=progress)
        n_clients, n_requests = 3, 3
        world = World(1, config)
        port = world.ports.open_port()
        replies = [None] * n_clients

        def client(idx):
            replies[idx] = _session_client(world, port, n_requests)

        threads = [threading.Thread(target=client, args=(i,),
                                    daemon=True)
                   for i in range(n_clients)]
        for t in threads:
            t.start()
        outcomes, leaked = world.run(
            _echo_server, args=(port, n_clients), timeout=120.0)[0]
        for t in threads:
            t.join(timeout=60.0)

        assert outcomes == [("bye", n_requests)] * n_clients
        assert leaked == 0
        assert replies == [[2, 4, 6]] * n_clients
        stats = world.ports.stats()
        assert stats["n_accepts"] == n_clients
        assert stats["n_connects"] == n_clients
        det = world.detector.stats()
        assert det["n_confirmed"] == 0, \
            f"false kill under a delay-only plan: {det}"
        assert det["n_departed"] == n_clients

    @pytest.mark.parametrize("num_vcis", (1, 4))
    def test_plan_killed_client_fails_cleanly(self, num_vcis):
        """A session client whose plan kill fires mid-conversation:
        the server surfaces the failure and leaks nothing."""
        # Session clients take world ranks 1.. in creation order; the
        # crasher connects first, so kill_rank=1 is deterministic.
        plan = FaultPlan(seed=3, kill_rank=1, kill_after_sends=1)
        config = BuildConfig(fault_plan=plan, detector=FAST_DETECTOR,
                             num_vcis=num_vcis)
        world = World(1, config)
        port = world.ports.open_port()
        done = threading.Event()
        tail = []

        def churn():
            session = Session(world, name="t-crasher")
            inter = session.connect(port)
            inter.set_errhandler(ERRORS_RETURN)
            try:
                inter.send("boom", dest=0, tag=0)
                inter.recv(source=0, tag=0)   # check_self kills here
            except RankKilled:
                pass
            done.set()
            # A healthy client after the crash proves the server and
            # the port survived the death.
            tail.append(_session_client(world, port, n_requests=2))

        thread = threading.Thread(target=churn, daemon=True)
        thread.start()
        outcomes, leaked = world.run(
            _echo_server, args=(port, 2), timeout=120.0)[0]
        thread.join(timeout=60.0)

        assert done.is_set()
        assert outcomes[0][0] == "died"
        assert outcomes[1] == ("bye", 2)
        assert leaked == 0
        assert tail == [[2, 4]]
        assert world.ft.is_dead(1)


class TestHierarchicalFaultHardening:
    """Satellite 1: a rank killed inside a topology-aware collective
    must surface an MPI error on the survivors, and recovery must not
    reuse the stale hierarchy."""

    def test_kill_mid_hierarchical_allreduce_then_recover(self):
        # kill_after_sends=0: rank 3 dies at its first MPI call — the
        # Allreduce entry — so every survivor is inside the staged
        # collective when the death lands.
        plan = FaultPlan(seed=11, kill_rank=3, kill_after_sends=0)
        config = BuildConfig(fault_plan=plan,
                             communicator_name="hierarchical")
        topo = Topology(nranks=4, cores_per_node=2)
        world = World(4, config, topology=topo)

        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            send = np.full(64, comm.rank + 1, dtype=np.int64)
            recv = np.empty_like(send)
            try:
                comm.Allreduce(send, recv, reduceops.SUM)
            except (MPIErrProcFailed, MPIErrRevoked):
                ext.MPIX_Comm_revoke(comm)
                shrunk = ext.MPIX_Comm_shrink(comm)
                # Satellite 1: shrink must drop the cached hierarchy —
                # its subcommunicators snapshot the dead roster.
                assert comm._hier_ctx is None
                assert ext.MPIX_Comm_agree(shrunk, True)
                send2 = np.full(16, comm.rank + 1, dtype=np.int64)
                recv2 = np.empty_like(send2)
                shrunk.Allreduce(send2, recv2, reduceops.SUM)
                expected = sum(r + 1
                               for r in shrunk.group.world_ranks)
                assert (recv2 == expected).all()
                return "recovered"
            return "clean"

        results = world.run(fn, timeout=120.0)
        assert results[3] is None               # the killed rank
        assert all(r == "recovered" for r in results[:3]), results


class TestAgreeUnderFailure:
    """Satellite 2: MPIX_Comm_agree tolerates a member dying during
    the agreement round (seeded regression)."""

    def test_rank_dies_inside_the_round(self):
        # Rank 1 crosses its kill threshold right before entering the
        # agreement: the rendezvous's in-loop kill_pending poll — not
        # a per-call entry check — is what must catch it, i.e. the
        # rank dies *during* the round with its deposit withdrawn.
        plan = FaultPlan(seed=7, kill_rank=1, kill_after_sends=2)

        def fn(comm):
            comm.set_errhandler(ERRORS_RETURN)
            if comm.rank == 1:
                comm.send("x", dest=0, tag=9)
                comm.send("y", dest=0, tag=9)
                ext.MPIX_Comm_agree(comm, True)
                return "unreachable"
            if comm.rank == 0:
                assert comm.recv(source=1, tag=9) == "x"
                assert comm.recv(source=1, tag=9) == "y"
            # Arrive late so rank 1 is already parked inside the
            # rendezvous when its kill becomes due.
            time.sleep(0.3)
            return ext.MPIX_Comm_agree(comm, True)

        results = World(3, BuildConfig(fault_plan=plan)).run(
            fn, timeout=60.0)
        assert results[1] is None
        assert results[0] is True and results[2] is True

    def test_agree_is_a_fault_aware_and(self):
        def fn(comm):
            return ext.MPIX_Comm_agree(comm, comm.rank != 1)

        results = World(3, _ft_config()).run(fn)
        assert results == [False, False, False]
