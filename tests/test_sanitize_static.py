"""Static MPI-correctness linter: rule fixtures, pragmas, zero FPs."""

from __future__ import annotations

import pathlib

from repro.sanitize import RULES, lint_paths, lint_source, render_rule_catalog

ROOT = pathlib.Path(__file__).resolve().parent.parent


def _ids(source: str) -> list[str]:
    return [d.rule_id for d in lint_source(source, "fixture.py")]


class TestRuleFixtures:
    """Each rule fires on its minimal fixture, with the exact ID."""

    def test_ms101_request_discarded(self):
        src = (
            "def f(comm, buf):\n"
            "    comm.isend(buf, dest=1, tag=0)\n"
        )
        assert _ids(src) == ["MS101"]

    def test_ms101_request_assigned_never_waited(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Isend(buf, dest=1, tag=0)\n"
        )
        assert _ids(src) == ["MS101"]

    def test_ms101_list_never_drained(self):
        src = (
            "def f(comm, bufs):\n"
            "    reqs = []\n"
            "    for i, b in enumerate(bufs):\n"
            "        reqs.append(comm.Isend(b, dest=i, tag=0))\n"
        )
        assert _ids(src) == ["MS101"]

    def test_ms101_clean_when_waited(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Isend(buf, dest=1, tag=0)\n"
            "    req.wait()\n"
        )
        assert _ids(src) == []

    def test_ms102_buffer_mutated_before_wait(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Isend(buf, dest=1, tag=0)\n"
            "    buf[0] = 5\n"
            "    req.wait()\n"
        )
        assert "MS102" in _ids(src)

    def test_ms102_clean_when_mutation_after_wait(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Isend(buf, dest=1, tag=0)\n"
            "    req.wait()\n"
            "    buf[0] = 5\n"
        )
        assert _ids(src) == []

    def test_ms103_two_wildcard_receives_race(self):
        src = (
            "from repro.consts import ANY_SOURCE\n"
            "def f(comm, a, b):\n"
            "    r1 = comm.Irecv(a, source=ANY_SOURCE, tag=3)\n"
            "    r2 = comm.Irecv(b, source=ANY_SOURCE, tag=3)\n"
            "    r1.wait()\n"
            "    r2.wait()\n"
        )
        assert "MS103" in _ids(src)

    def test_ms103_distinct_tags_clean(self):
        src = (
            "from repro.consts import ANY_SOURCE\n"
            "def f(comm, a, b):\n"
            "    r1 = comm.Irecv(a, source=ANY_SOURCE, tag=3)\n"
            "    r2 = comm.Irecv(b, source=ANY_SOURCE, tag=4)\n"
            "    r1.wait()\n"
            "    r2.wait()\n"
        )
        assert _ids(src) == []

    def test_ms104_literal_tag_mismatch(self):
        src = (
            "def f(comm, buf):\n"
            "    comm.Send(buf, dest=1, tag=5)\n"
            "    comm.Recv(buf, source=1, tag=6)\n"
        )
        assert "MS104" in _ids(src)

    def test_ms104_rank_dependent_code_exempt(self):
        src = (
            "def f(comm, buf):\n"
            "    if comm.rank == 0:\n"
            "        comm.Send(buf, dest=1, tag=5)\n"
            "    else:\n"
            "        comm.Recv(buf, source=0, tag=5)\n"
        )
        assert _ids(src) == []

    def test_ms105_rma_before_epoch(self):
        src = (
            "from repro.mpi.rma import Window\n"
            "def f(comm, buf, data):\n"
            "    win = Window.create(comm, buf)\n"
            "    win.put(data, target_rank=1)\n"
            "    win.fence()\n"
        )
        assert "MS105" in _ids(src)

    def test_ms105_fence_first_clean(self):
        src = (
            "from repro.mpi.rma import Window\n"
            "def f(comm, buf, data):\n"
            "    win = Window.create(comm, buf)\n"
            "    win.fence()\n"
            "    win.put(data, target_rank=1)\n"
            "    win.fence()\n"
        )
        assert _ids(src) == []

    def test_ms106_nomatch_send_with_wildcard_recv(self):
        src = (
            "from repro.consts import ANY_SOURCE\n"
            "def f(comm, buf, data):\n"
            "    req = comm.isend_nomatch(data, dest=1, tag=0)\n"
            "    req.wait()\n"
            "    return comm.recv(source=ANY_SOURCE, tag=0)\n"
        )
        assert "MS106" in _ids(src)

    def test_ms107_persistent_double_start(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Send_init(buf, dest=1, tag=0)\n"
            "    req.start()\n"
            "    req.start()\n"
            "    req.wait()\n"
        )
        assert "MS107" in _ids(src)

    def test_ms107_clean_with_intervening_wait(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Recv_init(buf, source=0, tag=0)\n"
            "    req.start()\n"
            "    req.wait()\n"
            "    req.start()\n"
            "    req.wait()\n"
        )
        assert _ids(src) == []

    def test_ms107_loop_body_stays_quiet(self):
        src = (
            "def f(comm, buf):\n"
            "    req = comm.Send_init(buf, dest=1, tag=0)\n"
            "    for _ in range(4):\n"
            "        req.start()\n"
            "        req.wait()\n"
        )
        assert _ids(src) == []

    def test_ms107_sibling_branches_exempt(self):
        src = (
            "def f(comm, buf, fast):\n"
            "    req = comm.Send_init(buf, dest=1, tag=0)\n"
            "    if fast:\n"
            "        req.start()\n"
            "    else:\n"
            "        req.start()\n"
            "    req.wait()\n"
        )
        assert _ids(src) == []

    def test_ms107_module_level_waitall_clears(self):
        src = (
            "from repro.mpi import waitall\n"
            "def f(comm, buf):\n"
            "    req = comm.Send_init(buf, dest=1, tag=0)\n"
            "    req.start()\n"
            "    waitall([req])\n"
            "    req.start()\n"
            "    req.wait()\n"
        )
        assert _ids(src) == []

    def test_ms108_use_after_revoke(self):
        src = (
            "from repro.core.extensions import MPIX_Comm_revoke\n"
            "def f(comm, obj):\n"
            "    MPIX_Comm_revoke(comm)\n"
            "    comm.send(obj, 1)\n"
        )
        assert _ids(src) == ["MS108"]

    def test_ms108_stale_handle_after_shrink(self):
        src = (
            "from repro.core import extensions as ext\n"
            "def f(comm, obj):\n"
            "    new = ext.MPIX_Comm_shrink(comm)\n"
            "    comm.allreduce(obj)\n"
        )
        assert _ids(src) == ["MS108"]

    def test_ms108_rebound_handle_clean(self):
        src = (
            "from repro.core.extensions import (MPIX_Comm_revoke,\n"
            "                                   MPIX_Comm_shrink)\n"
            "def f(comm, obj):\n"
            "    MPIX_Comm_revoke(comm)\n"
            "    comm = MPIX_Comm_shrink(comm)\n"
            "    comm.send(obj, 1)\n"
        )
        assert _ids(src) == []

    def test_ms108_errhandler_and_free_allowed(self):
        src = (
            "from repro.core import extensions as ext\n"
            "def f(comm):\n"
            "    ext.MPIX_Comm_revoke(comm)\n"
            "    comm.set_errhandler('MPI_ERRORS_RETURN')\n"
            "    comm.free()\n"
        )
        assert _ids(src) == []

    def test_ms108_sibling_branches_exempt(self):
        src = (
            "from repro.core import extensions as ext\n"
            "def f(comm, obj, broken):\n"
            "    if broken:\n"
            "        ext.MPIX_Comm_revoke(comm)\n"
            "    else:\n"
            "        comm.barrier()\n"
        )
        assert _ids(src) == []

    def test_ms109_on_complete_after_wait(self):
        src = (
            "def f(comm, fn):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    r.wait()\n"
            "    r.on_complete(fn)\n"
        )
        assert _ids(src) == ["MS109"]

    def test_ms109_attach_continuation_alias_flagged(self):
        src = (
            "def f(comm, fn):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    r.wait()\n"
            "    r.attach_continuation(fn)\n"
        )
        assert _ids(src) == ["MS109"]

    def test_ms109_attach_before_wait_clean(self):
        src = (
            "def f(comm, fn):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    r.on_complete(fn)\n"
            "    r.wait()\n"
        )
        assert _ids(src) == []

    def test_ms109_rebound_handle_clean(self):
        src = (
            "def f(comm, fn):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    r.wait()\n"
            "    r = comm.irecv(0, tag=2)\n"
            "    r.on_complete(fn)\n"
            "    r.wait()\n"
        )
        assert _ids(src) == []

    def test_ms109_sibling_branches_exempt(self):
        src = (
            "def f(comm, fn, done):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    if done:\n"
            "        r.wait()\n"
            "    else:\n"
            "        r.on_complete(fn)\n"
            "        r.wait()\n"
        )
        assert _ids(src) == []

    def test_ms109_loop_bodies_exempt(self):
        src = (
            "def f(comm, fn, reqs):\n"
            "    for r in reqs:\n"
            "        r.wait()\n"
            "        r.on_complete(fn)\n"
        )
        assert _ids(src) == []

    def test_ms109_test_does_not_close_lifetime(self):
        src = (
            "def f(comm, fn):\n"
            "    r = comm.irecv(0, tag=1)\n"
            "    r.test()\n"
            "    r.on_complete(fn)\n"
            "    r.wait()\n"
        )
        assert _ids(src) == []


class TestPragmas:
    """``# sanitize: ignore`` suppresses findings on that line."""

    def test_blanket_ignore(self):
        src = (
            "def f(comm, buf):\n"
            "    comm.isend(buf, dest=1, tag=0)  # sanitize: ignore\n"
        )
        assert _ids(src) == []

    def test_rule_scoped_ignore(self):
        src = (
            "def f(comm, buf):\n"
            "    comm.isend(buf, dest=1, tag=0)  # sanitize: ignore[MS101]\n"
        )
        assert _ids(src) == []

    def test_other_rule_not_suppressed(self):
        src = (
            "def f(comm, buf):\n"
            "    comm.isend(buf, dest=1, tag=0)  # sanitize: ignore[MS102]\n"
        )
        assert _ids(src) == ["MS101"]


class TestZeroFalsePositives:
    """The shipped examples and mini-apps lint clean."""

    def test_examples_clean(self):
        report = lint_paths([str(ROOT / "examples")])
        assert report.files_checked > 0
        assert report.clean, report.render()

    def test_apps_clean(self):
        report = lint_paths([str(ROOT / "src" / "repro" / "apps")])
        assert report.files_checked > 0
        assert report.clean, report.render()


class TestCatalog:
    """The rule catalog lists every rule with its documentation."""

    def test_all_rules_present(self):
        text = render_rule_catalog()
        for rule_id in RULES:
            assert rule_id in text
        assert {"MS101", "MS102", "MS103", "MS104", "MS105", "MS106",
                "MS107", "MS108", "MS109", "MSD201", "MSD202", "MSD203",
                "MSD204"} <= set(RULES)
