"""Cartesian topologies: dims_create, coords, shift, sub-grids."""

import pytest

from repro.consts import PROC_NULL
from repro.errors import MPIErrArg
from repro.mpi.cart import CartComm, dims_create
from tests.conftest import run_world


class TestDimsCreate:
    def test_balanced_factorization(self):
        assert sorted(dims_create(12, 2)) == [3, 4]
        assert sorted(dims_create(8, 3)) == [2, 2, 2]
        assert dims_create(7, 1) == [7]

    def test_respects_fixed_dims(self):
        out = dims_create(12, 2, dims=[3, 0])
        assert out == [3, 4]

    def test_indivisible_fixed_rejected(self):
        with pytest.raises(MPIErrArg):
            dims_create(12, 2, dims=[5, 0])

    def test_bad_args(self):
        with pytest.raises(MPIErrArg):
            dims_create(0, 2)
        with pytest.raises(MPIErrArg):
            dims_create(4, 0)
        with pytest.raises(MPIErrArg):
            dims_create(4, 2, dims=[0])


class TestCartesian:
    def test_coords_roundtrip(self):
        def main(comm):
            cart = comm.create_cart((2, 3), (False, False))
            coords = cart.coords()
            return coords, cart.cart_rank(coords)

        results = run_world(6, main)
        for rank, (coords, back) in enumerate(results):
            assert back == rank
        assert results[0][0] == (0, 0)
        assert results[5][0] == (1, 2)

    def test_shift_nonperiodic_gives_proc_null(self):
        def main(comm):
            cart = comm.create_cart((4,), (False,))
            return cart.shift(0, 1)

        results = run_world(4, main)
        assert results[0] == (PROC_NULL, 1)
        assert results[3] == (2, PROC_NULL)
        assert results[1] == (0, 2)

    def test_shift_periodic_wraps(self):
        def main(comm):
            cart = comm.create_cart((4,), (True,))
            return cart.shift(0, 1)

        results = run_world(4, main)
        assert results[0] == (3, 1)
        assert results[3] == (2, 0)

    def test_shift_global_pretranslates(self):
        """§3.1: shift_global returns world ranks ready for
        isend_global, preserving PROC_NULL."""
        def main(comm):
            cart = comm.create_cart((2, 2), (False, True))
            src_w, dest_w = cart.shift_global(1, 1)
            src_c, dest_c = cart.shift(1, 1)
            expect = (PROC_NULL if src_c == PROC_NULL
                      else cart.world_rank_of(src_c),
                      PROC_NULL if dest_c == PROC_NULL
                      else cart.world_rank_of(dest_c))
            return (src_w, dest_w) == expect

        assert all(run_world(4, main))

    def test_halo_over_cart_shift(self):
        """A 1-D periodic ring exchange through shift results."""
        def main(comm):
            cart = comm.create_cart((comm.size,), (True,))
            src, dest = cart.shift(0, 1)
            return cart.sendrecv(cart.rank, dest=dest, source=src,
                                 sendtag=1, recvtag=1)

        assert run_world(5, main) == [4, 0, 1, 2, 3]

    def test_excess_ranks_get_none(self):
        def main(comm):
            cart = comm.create_cart((2,), (False,))
            return None if cart is None else cart.size

        assert run_world(3, main) == [2, 2, None]

    def test_grid_too_large_rejected(self):
        def main(comm):
            with pytest.raises(MPIErrArg):
                comm.create_cart((5,), (False,))
            return "ok"

        run_world(2, main)

    def test_dims_size_mismatch_rejected(self):
        def main(comm):
            from repro.mpi.group import Group
            with pytest.raises(MPIErrArg):
                CartComm(comm.proc, Group(range(comm.size)), 99,
                         dims=(3,), periods=(False,))
            return "ok"

        run_world(2, main)

    def test_cart_sub_rows_and_columns(self):
        def main(comm):
            cart = comm.create_cart((2, 3), (False, False))
            row = cart.sub([False, True])     # keep the length-3 dim
            col = cart.sub([True, False])     # keep the length-2 dim
            return (row.size, row.dims, col.size, col.dims,
                    row.allreduce(comm.rank))

        results = run_world(6, main)
        for rank, (rsize, rdims, csize, cdims, rowsum) in \
                enumerate(results):
            assert rsize == 3 and rdims == (3,)
            assert csize == 2 and cdims == (2,)
        # Row sums: ranks (0,1,2) and (3,4,5).
        assert results[0][4] == 3
        assert results[3][4] == 12

    def test_neighbors_list(self):
        def main(comm):
            cart = comm.create_cart((2, 2), (True, True))
            return cart.neighbors()

        results = run_world(4, main)
        assert len(results[0]) == 2
