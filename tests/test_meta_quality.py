"""Meta checks: documentation coverage and packaging hygiene."""

import ast
import pathlib

import pytest

SRC = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"


def _modules():
    return sorted(SRC.rglob("*.py"))


class TestDocumentation:
    def test_every_module_has_a_docstring(self):
        missing = []
        for path in _modules():
            tree = ast.parse(path.read_text())
            if not ast.get_docstring(tree):
                missing.append(str(path.relative_to(SRC)))
        assert not missing, f"modules without docstrings: {missing}"

    def test_every_public_class_and_function_documented(self):
        missing = []
        for path in _modules():
            tree = ast.parse(path.read_text())
            for node in tree.body:
                if isinstance(node, (ast.ClassDef, ast.FunctionDef,
                                     ast.AsyncFunctionDef)):
                    if node.name.startswith("_"):
                        continue
                    if not ast.get_docstring(node):
                        missing.append(
                            f"{path.relative_to(SRC)}:{node.name}")
                if isinstance(node, ast.ClassDef):
                    for sub in node.body:
                        if isinstance(sub, (ast.FunctionDef,
                                            ast.AsyncFunctionDef)) \
                                and not sub.name.startswith("_") \
                                and not ast.get_docstring(sub):
                            missing.append(
                                f"{path.relative_to(SRC)}:"
                                f"{node.name}.{sub.name}")
        assert not missing, \
            f"{len(missing)} undocumented public items: {missing[:20]}"

    def test_no_todo_markers_left(self):
        offenders = []
        for path in _modules():
            text = path.read_text()
            for marker in ("TODO", "FIXME", "XXX"):
                if marker in text:
                    offenders.append(f"{path.relative_to(SRC)}: {marker}")
        assert not offenders, offenders


class TestProjectLayout:
    def test_required_docs_exist(self):
        root = SRC.parent.parent
        for name in ("README.md", "DESIGN.md", "EXPERIMENTS.md",
                     "LICENSE", "pyproject.toml"):
            assert (root / name).exists(), name

    def test_examples_present(self):
        examples = sorted(
            (SRC.parent.parent / "examples").glob("*.py"))
        assert len(examples) >= 3
        names = {p.stem for p in examples}
        assert "quickstart" in names

    def test_benchmarks_cover_every_figure(self):
        benches = {p.stem for p in
                   (SRC.parent.parent / "benchmarks").glob("bench_*.py")}
        for fig in ("table1", "fig2", "fig3", "fig4", "fig5", "fig6",
                    "fig7", "fig8", "survey", "proposals"):
            assert f"bench_{fig}" in benches, fig


class TestAmdahlArtifact:
    def test_fixed_cost_energy_preserved(self):
        from repro.analysis.amdahl import fixed_cost_table
        ch3, ch4_same, ch4_scaled = fixed_cost_table()
        # Same device, same P: lower overhead -> lower time & energy.
        assert ch4_same.time_us < ch3.time_us
        assert ch4_same.energy < ch3.energy
        # Fixed-cost operating point: energy matches CH3's, time beats
        # both (the §4.3 claim).
        assert ch4_scaled.energy == pytest.approx(ch3.energy, rel=1e-3)
        assert ch4_scaled.time_us < ch4_same.time_us < ch3.time_us
        assert ch4_scaled.nprocs > ch3.nprocs

    def test_render(self):
        from repro.analysis.amdahl import render_fixed_cost
        text = render_fixed_cost()
        assert "fixed-cost" in text
        assert "equal-energy speedup" in text
