"""Section 2.2 usage classes and their classification rules."""

import pytest

from repro.datatypes import contiguous
from repro.datatypes.predefined import DOUBLE, INT
from repro.datatypes.usage import (DatatypeRef, UsageClass, classify,
                                   compile_time, runtime_constant)


class TestClassification:
    def test_bare_predefined_is_class2(self):
        ref = classify(DOUBLE)
        assert ref.usage is UsageClass.COMPILE_TIME
        assert ref.datatype is DOUBLE

    def test_bare_derived_is_class1(self):
        dt = contiguous(3, DOUBLE).commit()
        assert classify(dt).usage is UsageClass.DERIVED

    def test_explicit_ref_passes_through(self):
        ref = runtime_constant(INT)
        assert classify(ref) is ref

    def test_runtime_constant_is_class3(self):
        assert runtime_constant(DOUBLE).usage is UsageClass.RUNTIME_CONST

    def test_compile_time_helper(self):
        assert compile_time(DOUBLE).usage is UsageClass.COMPILE_TIME

    def test_wrapping_derived_demotes_to_class1(self):
        dt = contiguous(2, DOUBLE).commit()
        assert runtime_constant(dt).usage is UsageClass.DERIVED
        assert compile_time(dt).usage is UsageClass.DERIVED

    def test_derived_marker_requires_derived_type(self):
        with pytest.raises(ValueError):
            DatatypeRef(DOUBLE, UsageClass.DERIVED)
