"""VClock, rank translation, requests, matching engine."""

import threading

import pytest
from hypothesis import given, settings, strategies as st

from repro.consts import ANY_SOURCE, ANY_TAG
from repro.errors import MPIErrRank, MPIErrRequest
from repro.fabric.model import INFINITE, OFI_PSM2
from repro.runtime.matching import MatchingEngine, PostedRecv
from repro.runtime.message import Envelope, Message
from repro.runtime.ranktrans import (CompressedTranslation,
                                     DirectTableTranslation,
                                     build_translation)
from repro.runtime.request import Request, RequestKind, waitall, waitany
from repro.runtime.request import testall as request_testall
from repro.runtime.vclock import VClock


class TestVClock:
    def test_advance_and_merge(self):
        clock = VClock(OFI_PSM2)
        clock.advance_seconds(1e-6)
        clock.merge(0.5e-6)            # older timestamp: no change
        assert clock.now == pytest.approx(1e-6)
        clock.merge(2e-6)
        assert clock.now == pytest.approx(2e-6)

    def test_advance_instructions_uses_cpi(self):
        clock = VClock(OFI_PSM2)
        clock.advance_instructions(220)
        expected = OFI_PSM2.cycles_to_seconds(OFI_PSM2.sw_cycles(220))
        assert clock.now == pytest.approx(expected)

    def test_negative_rejected(self):
        clock = VClock(INFINITE)
        with pytest.raises(ValueError):
            clock.advance_seconds(-1.0)
        with pytest.raises(ValueError):
            VClock(INFINITE, start=-0.1)


class TestRankTranslation:
    def test_direct_table(self):
        t = DirectTableTranslation([4, 2, 9])
        assert t.world_rank(0) == 4
        assert t.world_rank(2) == 9
        assert t.size == 3
        assert t.lookup_instructions == 2
        with pytest.raises(MPIErrRank):
            t.world_rank(3)

    def test_compressed_regular(self):
        t = CompressedTranslation([10, 12, 14, 16])
        assert t.is_regular
        assert t.world_rank(3) == 16
        assert t.memory_bytes == 24
        assert t.lookup_instructions == 11

    def test_compressed_irregular_fallback(self):
        t = CompressedTranslation([0, 1, 5])
        assert not t.is_regular
        assert t.world_rank(2) == 5
        assert t.memory_bytes > 24

    def test_compressed_single_rank(self):
        t = CompressedTranslation([7])
        assert t.world_rank(0) == 7
        assert t.is_regular

    def test_builder(self):
        assert isinstance(build_translation([0, 1], "direct"),
                          DirectTableTranslation)
        assert isinstance(build_translation([0, 1], "compressed"),
                          CompressedTranslation)
        with pytest.raises(ValueError):
            build_translation([0], "quantum")

    @given(st.lists(st.integers(0, 100), min_size=1, max_size=30,
                    unique=True))
    @settings(max_examples=50, deadline=None)
    def test_strategies_agree(self, world_ranks):
        direct = DirectTableTranslation(world_ranks)
        compressed = CompressedTranslation(world_ranks)
        for i in range(len(world_ranks)):
            assert direct.world_rank(i) == compressed.world_rank(i)


def _msg(ctx=0, src=0, tag=0, data=b"x", nomatch=False, t=0.0):
    return Message(env=Envelope(ctx=ctx, src=src, tag=tag, nomatch=nomatch),
                   data=data, arrive_s=t)


def _posted(engine_hits, ctx=0, src=0, tag=0, nomatch=False):
    req = Request(RequestKind.RECV)
    return PostedRecv(ctx=ctx, src=src, tag=tag, nomatch=nomatch,
                      request=req,
                      on_match=lambda m: engine_hits.append(m)), req


class TestMatchingEngine:
    def test_posted_then_deposit(self):
        engine = MatchingEngine(0)
        hits = []
        posted, _ = _posted(hits, src=1, tag=5)
        engine.post(posted)
        engine.deposit(_msg(src=1, tag=5))
        assert len(hits) == 1
        assert engine.pending_counts() == (0, 0)
        assert engine.n_matched_posted == 1

    def test_deposit_then_post(self):
        engine = MatchingEngine(0)
        engine.deposit(_msg(src=2, tag=9))
        hits = []
        posted, _ = _posted(hits, src=2, tag=9)
        engine.post(posted)
        assert len(hits) == 1
        assert engine.n_matched_unexpected == 1

    def test_wildcards(self):
        engine = MatchingEngine(0)
        hits = []
        posted, _ = _posted(hits, src=ANY_SOURCE, tag=ANY_TAG)
        engine.post(posted)
        engine.deposit(_msg(src=3, tag=42))
        assert len(hits) == 1

    def test_context_isolation(self):
        engine = MatchingEngine(0)
        hits = []
        posted, _ = _posted(hits, ctx=1, src=ANY_SOURCE, tag=ANY_TAG)
        engine.post(posted)
        engine.deposit(_msg(ctx=2, src=0, tag=0))
        assert not hits
        assert engine.pending_counts() == (1, 1)

    def test_unexpected_queue_order_preserved(self):
        engine = MatchingEngine(0)
        engine.deposit(_msg(src=0, tag=1, data=b"first"))
        engine.deposit(_msg(src=0, tag=1, data=b"second"))
        hits = []
        posted, _ = _posted(hits, src=0, tag=1)
        engine.post(posted)
        assert hits[0].data == b"first"

    def test_tag_mismatch_queues(self):
        engine = MatchingEngine(0)
        hits = []
        posted, _ = _posted(hits, src=0, tag=7)
        engine.post(posted)
        engine.deposit(_msg(src=0, tag=8))
        assert not hits

    def test_nomatch_streams_are_separate(self):
        """A nomatch message never matches a normal receive and vice
        versa, but matches an arrival-order receive in any src/tag."""
        engine = MatchingEngine(0)
        normal_hits, nm_hits = [], []
        normal, _ = _posted(normal_hits, src=ANY_SOURCE, tag=ANY_TAG)
        engine.post(normal)
        engine.deposit(_msg(src=5, tag=77, nomatch=True))
        assert not normal_hits
        nm, _ = _posted(nm_hits, src=9, tag=1, nomatch=True)
        engine.post(nm)
        assert len(nm_hits) == 1

    def test_iprobe_and_probe(self):
        engine = MatchingEngine(0)
        assert engine.iprobe(0, ANY_SOURCE, ANY_TAG) is None
        engine.deposit(_msg(src=4, tag=6, data=b"abc"))
        env, nbytes = engine.iprobe(0, 4, 6)
        assert env.src == 4 and nbytes == 3
        env2, _ = engine.probe(0, ANY_SOURCE, ANY_TAG)
        assert env2.tag == 6
        # probing does not consume
        assert engine.pending_counts() == (0, 1)

    def test_cancel_posted(self):
        engine = MatchingEngine(0)
        hits = []
        posted, req = _posted(hits, src=0, tag=0)
        engine.post(posted)
        assert engine.cancel_posted(req)
        assert req.cancelled
        assert engine.pending_counts() == (0, 0)
        assert not engine.cancel_posted(req)


class TestRequest:
    def test_complete_and_wait(self):
        req = Request(RequestKind.SEND)
        req.complete(1.5, source=2, tag=3, count_bytes=8)
        req.wait()
        assert req.source == 2
        assert req.count_bytes == 8

    def test_double_complete_rejected(self):
        req = Request(RequestKind.SEND)
        req.complete(0.0)
        with pytest.raises(MPIErrRequest):
            req.complete(0.0)

    def test_error_propagates_at_wait(self):
        req = Request(RequestKind.RECV)
        req.complete(0.0, error=ValueError("boom"))
        with pytest.raises(ValueError):
            req.wait()

    def test_test_nonblocking(self):
        req = Request(RequestKind.RECV)
        assert not req.test()
        req.complete(0.0)
        assert req.test()

    def test_wait_blocks_until_cross_thread_completion(self):
        req = Request(RequestKind.RECV)
        timer = threading.Timer(0.05, lambda: req.complete(1.0))
        timer.start()
        req.wait()
        assert req.is_complete()

    def test_waitall_waitany_testall(self):
        reqs = [Request(RequestKind.SEND) for _ in range(3)]
        assert not request_testall(reqs)
        for r in reqs:
            r.complete(0.0)
        assert request_testall(reqs)
        waitall(reqs)
        assert waitany(reqs) in (0, 1, 2)
        with pytest.raises(MPIErrRequest):
            waitany([])
