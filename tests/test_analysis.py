"""Analysis harness: survey, figure data generators, CLI renderers."""

import pytest

from repro.analysis.figures import (fig2_data, fig6_data, proposals_data,
                                    render_fig2, render_fig6, render_fig7,
                                    render_fig8, render_proposals,
                                    render_rate_figure)
from repro.analysis.survey import (SURVEY_CORPUS, render_survey,
                                   survey_class_counts,
                                   survey_redundant_checks)
from repro.datatypes.usage import UsageClass


class TestSurvey:
    def test_corpus_has_all_three_classes(self):
        counts = survey_class_counts()
        assert counts[UsageClass.DERIVED] == 2      # HACC and MCB only
        assert counts[UsageClass.COMPILE_TIME] >= 5
        assert counts[UsageClass.RUNTIME_CONST] == 5

    def test_named_applications_present(self):
        names = {app.name for app in SURVEY_CORPUS}
        for expected in ("HACC", "MCB", "LULESH", "Nekbone", "QMCPACK",
                         "LSMS", "miniFE"):
            assert expected in names

    def test_redundant_checks_by_class(self):
        """The paper's §2.2 conclusion, executed: every class pays the
        checks without ipo; MPI-only ipo fixes Class 2 only;
        whole-program ipo additionally fixes Class 3; Class 1 keeps
        its (genuinely needed) checks everywhere."""
        rows = {r["app"]: r for r in survey_redundant_checks()}
        for row in rows.values():
            assert row["no_ipo"] == 59

        class1 = rows["HACC"]
        assert class1["mpi_only_ipo"] == 59
        assert class1["whole_program_ipo"] == 59

        class2 = rows["NAS-CG"]
        assert class2["mpi_only_ipo"] == 0
        assert class2["whole_program_ipo"] == 0

        class3 = rows["LULESH"]
        assert class3["mpi_only_ipo"] == 59
        assert class3["whole_program_ipo"] == 0

    def test_render(self):
        text = render_survey()
        assert "LULESH" in text
        assert "whole-prog ipo" in text


class TestFigureData:
    def test_fig2_matches_published(self):
        data = fig2_data()
        assert data["mpich/original"] == {"isend": 253, "put": 1342}
        assert data["mpich/ch4 (no-err-single-ipo)"] == \
            {"isend": 59, "put": 44}

    def test_fig6_chain(self):
        results = fig6_data()
        assert [r.label for r in results] == \
            ["minimal_pt2pt", "no_req", "no_match", "glob_rank",
             "no_proc_null"]
        assert results[-1].rate_millions == pytest.approx(132.8)

    def test_proposals_match_paper(self):
        rows = {r["proposal"]: r for r in proposals_data()}
        for label, row in rows.items():
            assert row["saving"] == row["paper_saving"], label

    def test_renderers_produce_text(self):
        assert "1,342" in render_fig2()
        assert "132.80" in render_fig6()
        assert "Nek5000" in render_fig7()
        assert "LAMMPS" in render_fig8()
        assert "ALL_OPTS" in render_proposals()
        from repro.analysis.figures import fig3_data
        assert "OFI" in render_rate_figure(fig3_data(), "OFI test")


class TestCLI:
    def test_main_runs_single_artifact(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "132.80" in out

    def test_main_rejects_unknown(self, capsys):
        from repro.analysis.__main__ import main
        assert main(["fig99"]) == 2
