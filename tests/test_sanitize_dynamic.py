"""Dynamic sanitizer: deadlock, leak, buffer-reuse, and epoch checks.

Every test asserts the exact diagnostic code carried by the raised
:class:`~repro.sanitize.SanitizerError`, and the final class checks the
no-observable-effect guarantee: enabling the sanitizer changes neither
program results nor charged instruction counts.
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BuildConfig
from repro.mpi.rma import Window
from repro.perf.msgrate import measure_instructions
from repro.runtime.world import World
from repro.sanitize import SanitizerError

SAN = BuildConfig(sanitize=True)


def _run(nranks, fn, config=SAN, timeout=60.0):
    return World(nranks, config).run(fn, timeout=timeout)


class TestDeadlock:
    """MSD201: cross-rank wait-for cycles and global stalls."""

    def test_two_rank_ssend_ssend_cycle(self):
        def main(comm):
            buf = np.zeros(1, dtype=np.int64)
            comm.Ssend(buf, dest=1 - comm.rank, tag=0)
            comm.Recv(buf, source=1 - comm.rank, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MSD201"
        # The report names both ranks and their blocking calls.
        assert "rank 0" in str(exc.value)
        assert "rank 1" in str(exc.value)

    def test_three_rank_recv_ring_cycle(self):
        def main(comm):
            buf = np.zeros(1, dtype=np.int64)
            comm.Recv(buf, source=(comm.rank - 1) % comm.size, tag=0)
            comm.Send(buf, dest=(comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(3, main)
        assert exc.value.code == "MSD201"
        assert "rank 2" in str(exc.value)

    def test_stall_when_peer_exits_early(self):
        def main(comm):
            if comm.rank == 0:
                buf = np.zeros(1, dtype=np.int64)
                comm.Recv(buf, source=1, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MSD201"

    def test_matched_exchange_is_clean(self):
        def main(comm):
            out = np.full(1, comm.rank, dtype=np.int64)
            buf = np.zeros(1, dtype=np.int64)
            comm.Sendrecv(out, 1 - comm.rank, buf,
                          source=1 - comm.rank)
            return int(buf[0])

        assert _run(2, main) == [1, 0]


class TestRequestLeak:
    """MSD202: requests never waited/tested before rank exit."""

    def test_isend_never_waited(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.arange(4, dtype=np.int64), dest=1, tag=3)
            else:
                buf = np.zeros(4, dtype=np.int64)
                comm.Recv(buf, source=0, tag=3)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MSD202"
        assert "MPI_Isend" in str(exc.value)

    def test_waited_request_is_clean(self):
        def main(comm):
            if comm.rank == 0:
                comm.Isend(np.arange(4, dtype=np.int64),
                           dest=1, tag=3).wait()
            else:
                buf = np.zeros(4, dtype=np.int64)
                comm.Recv(buf, source=0, tag=3)
                return int(buf.sum())

        assert _run(2, main) == [None, 6]


class TestBufferReuse:
    """MSD203: send buffer mutated before the operation completed."""

    def test_mutation_between_issend_and_wait(self):
        def main(comm):
            if comm.rank == 0:
                buf = np.arange(4, dtype=np.int64)
                req = comm.Issend(buf, dest=1, tag=0)
                buf[0] = 99   # illegal: Issend has not completed
                comm.Send(np.zeros(1, dtype=np.int64), dest=1, tag=1)
                req.wait()
            else:
                comm.Recv(np.zeros(1, dtype=np.int64), source=0, tag=1)
                data = np.zeros(4, dtype=np.int64)
                comm.Recv(data, source=0, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MSD203"

    def test_untouched_buffer_is_clean(self):
        def main(comm):
            if comm.rank == 0:
                buf = np.arange(4, dtype=np.int64)
                comm.Issend(buf, dest=1, tag=0).wait()
            else:
                data = np.zeros(4, dtype=np.int64)
                comm.Recv(data, source=0, tag=0)
                return int(data.sum())

        assert _run(2, main) == [None, 6]


class TestRMAEpoch:
    """MSD204: one-sided access outside any epoch."""

    def test_put_before_any_epoch(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            if comm.rank == 0:
                win.put(np.ones(1), target_rank=1)
            win.fence()
            win.free()

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MSD204"

    def test_put_inside_fence_epoch(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            win.fence()
            if comm.rank == 0:
                win.put(np.ones(4), target_rank=1)
            win.fence()
            win.free()
            return mem[0]

        assert _run(2, main) == [0.0, 1.0]

    def test_put_inside_lock_epoch(self):
        def main(comm):
            mem = np.zeros(4, dtype=np.float64)
            win = Window.create(comm, mem, disp_unit=8)
            comm.barrier()
            if comm.rank == 0:
                win.lock(1)
                win.put(np.ones(4), target_rank=1)
                win.unlock(1)
            comm.barrier()
            win.free()
            return mem[0]

        assert _run(2, main) == [0.0, 1.0]


class TestDeadContinuation:
    """MS109 (runtime counterpart): on_complete on a dead handle."""

    def test_attach_after_wait_raises(self):
        def main(comm):
            if comm.rank == 0:
                comm.send(7, 1, tag=0)
            else:
                r = comm.irecv(0, tag=0)
                r.wait()
                r.on_complete(lambda req: None)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main)
        assert exc.value.code == "MS109"

    def test_attach_before_wait_is_clean(self):
        def main(comm):
            import threading
            fired = threading.Event()
            if comm.rank == 0:
                comm.send(7, 1, tag=0)
                return True
            r = comm.irecv(0, tag=0)
            r.on_complete(lambda req: fired.set())
            r.wait()
            # The engine dispatches the continuation asynchronously —
            # wait() returning does not mean it has run yet.
            return fired.wait(timeout=10.0)

        assert _run(2, main, config=replace(SAN, progress="thread")) \
            == [True, True]


class TestShardedThreadedDeadlock:
    """MSD201 still fires with sharded matching and a progress engine.

    The wait-for graph is world-level while matching state is per-VCI
    and blocking happens off the progress threads — the detector must
    see through both layers (regression for the PR-6/PR-7 runtime)."""

    SHARDED = replace(SAN, num_vcis=4, progress="thread")

    def test_two_rank_ssend_cycle_under_vcis_and_progress(self):
        def main(comm):
            buf = np.zeros(1, dtype=np.int64)
            comm.Ssend(buf, dest=1 - comm.rank, tag=0)
            comm.Recv(buf, source=1 - comm.rank, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(2, main, config=self.SHARDED)
        assert exc.value.code == "MSD201"
        assert "rank 0" in str(exc.value)
        assert "rank 1" in str(exc.value)

    def test_recv_ring_cycle_under_vcis_and_progress(self):
        def main(comm):
            buf = np.zeros(1, dtype=np.int64)
            comm.Recv(buf, source=(comm.rank - 1) % comm.size, tag=0)
            comm.Send(buf, dest=(comm.rank + 1) % comm.size, tag=0)

        with pytest.raises(SanitizerError) as exc:
            _run(3, main, config=self.SHARDED)
        assert exc.value.code == "MSD201"

    def test_matched_exchange_under_vcis_and_progress_is_clean(self):
        def main(comm):
            out = np.full(1, comm.rank, dtype=np.int64)
            buf = np.zeros(1, dtype=np.int64)
            comm.Sendrecv(out, 1 - comm.rank, buf,
                          source=1 - comm.rank)
            return int(buf[0])

        assert _run(2, main, config=self.SHARDED) == [1, 0]


class TestNoObservableEffect:
    """sanitize=True never changes results or charged instructions."""

    @given(payload=st.integers(min_value=1, max_value=64),
           tag=st.integers(min_value=0, max_value=100))
    @settings(max_examples=10, deadline=None)
    def test_pingpong_results_identical(self, payload, tag):
        def main(comm):
            buf = np.zeros(payload, dtype=np.int64)
            if comm.rank == 0:
                comm.Send(np.arange(payload, dtype=np.int64),
                          dest=1, tag=tag)
            else:
                comm.Recv(buf, source=0, tag=tag)
            return int(buf.sum())

        plain = World(2, BuildConfig()).run(main)
        checked = World(2, SAN).run(main)
        assert plain == checked

    @pytest.mark.parametrize("op", ["isend", "put"])
    def test_instruction_counts_identical(self, op):
        base = BuildConfig()
        assert measure_instructions(base, op) == \
            measure_instructions(replace(base, sanitize=True), op)

    def test_collective_results_identical(self):
        def main(comm):
            vec = np.full(8, float(comm.rank + 1))
            out = np.zeros(8)
            comm.Allreduce(vec, out)
            return float(out[0])

        plain = World(4, BuildConfig()).run(main)
        checked = World(4, SAN).run(main)
        assert plain == checked
