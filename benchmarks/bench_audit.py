"""Fast-path audit throughput benchmark (emits ``BENCH_audit.json``).

Measures the static self-audit the CI gate runs
(``python -m repro.audit src/repro``): wall time and files/second for
the full three-family analysis (charge provenance over the entry-point
call graph, purity lint, lockset lint), plus the index size it covers.
The JSON also records the per-path Table 1 / Figure 2 totals the audit
rederived, so the artifact is self-describing evidence that the gate
checked the calibrated numbers.

Run standalone (writes ``BENCH_audit.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_audit.py

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_audit.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.audit import run_audit
from repro.audit.callgraph import CodeIndex

_ROOT = Path(__file__).resolve().parent.parent
_SRC = _ROOT / "src" / "repro"
_OUT = _ROOT / "BENCH_audit.json"


def audit_timing() -> tuple[dict, dict]:
    """One timed end-to-end audit of the shipped tree."""
    t0 = time.perf_counter()
    report, snapshot = run_audit([str(_SRC)])
    dt = time.perf_counter() - t0
    timing = {
        "seconds": dt,
        "files": report.files_checked,
        "files_per_s": report.files_checked / dt,
        "findings": len(report.diagnostics),
    }
    return timing, snapshot


def index_size() -> dict:
    """How much source the call-graph index covers."""
    index = CodeIndex.build([str(_SRC)])
    return {
        "modules": len(index.modules),
        "functions": len(index.functions),
        "classes": sum(len(v) for v in index.classes.values()),
        "fastpath_functions": len(index.fastpath_functions()),
    }


def run_benchmark() -> dict:
    """Collect every measurement and write ``BENCH_audit.json``."""
    timing, snapshot = audit_timing()
    data = {
        "audit": timing,
        "index": index_size(),
        "findings_by_rule": snapshot["findings"]["by_rule"],
        "path_totals": {name: p["total"]
                        for name, p in snapshot["paths"].items()},
        "registry_entries": snapshot["registry"]["entries"],
    }
    _OUT.write_text(json.dumps(data, indent=2) + "\n")
    return data


def test_bench_audit(print_artifact):
    """Tree audits clean; rederived totals match the paper."""
    data = run_benchmark()
    assert data["audit"]["findings"] == 0
    assert data["path_totals"]["ch4_isend_default"] == 221
    assert data["path_totals"]["ch4_put_default"] == 215
    assert data["path_totals"]["ch3_isend"] == 253
    assert data["path_totals"]["ch3_put"] == 1342
    assert data["index"]["fastpath_functions"] >= 15
    print_artifact("Fast-path audit throughput (BENCH_audit.json)",
                   json.dumps(data, indent=2))


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
