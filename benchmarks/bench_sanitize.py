"""Sanitizer overhead benchmark (emits ``BENCH_sanitize.json``).

Two claims, measured on the real runtime:

* **Zero charged overhead when disabled** — and, stronger, even when
  *enabled*: the sanitizer does bookkeeping in host Python outside the
  instruction ledger, so the Figure 2 isend/put counts are identical
  under ``sanitize=False`` and ``sanitize=True``.  Asserted exactly.
* **Wall-clock overhead when enabled** — a 2-rank blocking ping-pong
  timed under both configurations; the JSON reports messages/second
  and the enabled/disabled ratio.  The static linter's throughput over
  the shipped tree (files/second) is reported alongside.

Run standalone (writes ``BENCH_sanitize.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_sanitize.py

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_sanitize.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import BuildConfig
from repro.perf.msgrate import measure_instructions
from repro.runtime.world import World
from repro.sanitize import lint_paths

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_sanitize.json"
_PINGPONG_MSGS = 300


def pingpong_rate(sanitize: bool, nmsgs: int = _PINGPONG_MSGS) -> float:
    """Messages/second of a 2-rank blocking ping-pong."""
    world = World(2, BuildConfig(sanitize=sanitize))
    buf = np.zeros(8, dtype=np.int64)

    def main(comm):
        peer = 1 - comm.rank
        for i in range(nmsgs):
            if comm.rank == i % 2:
                comm.Send(buf, dest=peer, tag=0)
            else:
                comm.Recv(buf, source=peer, tag=0)

    t0 = time.perf_counter()
    world.run(main)
    return nmsgs / (time.perf_counter() - t0)


def charged_counts(sanitize: bool) -> dict[str, int]:
    """Figure 2 charged instruction counts for the default build."""
    config = BuildConfig(sanitize=sanitize)
    return {op: measure_instructions(config, op)
            for op in ("isend", "put")}


def lint_throughput() -> dict[str, float]:
    """Static-lint throughput over the shipped examples and apps."""
    paths = [str(_ROOT / "examples"), str(_ROOT / "src" / "repro" / "apps")]
    t0 = time.perf_counter()
    report = lint_paths(paths)
    dt = time.perf_counter() - t0
    return {"files": report.files_checked,
            "findings": len(report.diagnostics),
            "files_per_s": report.files_checked / dt}


def run_benchmark() -> dict:
    """Collect every measurement and write ``BENCH_sanitize.json``."""
    counts_off = charged_counts(sanitize=False)
    counts_on = charged_counts(sanitize=True)
    rate_off = pingpong_rate(sanitize=False)
    rate_on = pingpong_rate(sanitize=True)
    data = {
        "charged_instructions": {"disabled": counts_off,
                                 "enabled": counts_on,
                                 "identical": counts_off == counts_on},
        "pingpong_msgs_per_s": {"disabled": rate_off, "enabled": rate_on,
                                "enabled_over_disabled": rate_on / rate_off},
        "static_lint": lint_throughput(),
    }
    _OUT.write_text(json.dumps(data, indent=2) + "\n")
    return data


def test_bench_sanitize(print_artifact):
    """Charged counts identical; JSON artifact written."""
    data = run_benchmark()
    assert data["charged_instructions"]["identical"]
    assert data["static_lint"]["findings"] == 0
    print_artifact("Sanitizer overhead (BENCH_sanitize.json)",
                   json.dumps(data, indent=2))


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
