"""Ablation 6: collective algorithm selection (allreduce).

Recursive doubling does ceil(log2 P) rounds with every rank active;
reduce+broadcast runs two binomial trees back to back (~2 log2 P
critical-path rounds).  At the small message sizes of the paper's
strong-scaling regime — where Nek5000's CG does two allreduces per
iteration — the latency-optimal recursive doubling wins in virtual
time, which is why MPICH (and this library) selects it for small
payloads.
"""

import numpy as np

from repro.core.config import BuildConfig
from repro.fabric.topology import Topology
from repro.instrument.report import format_table
from repro.mpi import reduceops
from repro.runtime.world import World


def _allreduce_vtime(nranks, algorithm, nbytes=8, repeats=6):
    world = World(nranks, BuildConfig(fabric="bgq"),
                  topology=Topology(nranks=nranks, cores_per_node=1))

    def main(comm):
        send = np.full(nbytes // 8, float(comm.rank))
        recv = np.zeros(nbytes // 8)
        comm.barrier()
        t0 = comm.proc.vclock.now
        for _ in range(repeats):
            comm.Allreduce(send, recv, op=reduceops.SUM,
                           algorithm=algorithm)
        return (comm.proc.vclock.now - t0) / repeats, recv[0]

    results = world.run(main)
    total = sum(range(nranks))
    assert all(v == total for _, v in results), "wrong reduction!"
    return max(t for t, _ in results)


def test_recursive_doubling_wins_at_small_messages(print_artifact):
    rows = []
    for nranks in (4, 8, 16):
        rd = _allreduce_vtime(nranks, "recursive_doubling")
        rb = _allreduce_vtime(nranks, "reduce_bcast")
        rows.append([nranks, rd * 1e6, rb * 1e6, rb / rd])
        assert rd < rb, f"recursive doubling must win at P={nranks}"
    print_artifact(
        "Ablation: allreduce algorithm (8-byte payload, BG/Q fabric)",
        format_table(["Ranks", "recursive doubling (us)",
                      "reduce+bcast (us)", "Advantage"], rows))
    # The gap grows with rank count (two trees vs one doubling ladder).
    assert rows[-1][3] >= rows[0][3] * 0.9


def test_default_selection_by_size():
    """Small payloads take recursive doubling; both give identical
    results either way."""
    def main(comm):
        small_s, small_r = np.ones(4), np.zeros(4)
        comm.Allreduce(small_s, small_r, op=reduceops.SUM)
        forced_r = np.zeros(4)
        comm.Allreduce(small_s, forced_r, op=reduceops.SUM,
                       algorithm="reduce_bcast")
        return small_r.tolist() == forced_r.tolist() == [4.0] * 4

    world = World(4, BuildConfig())
    assert all(world.run(main))


def test_bench_recursive_doubling(benchmark):
    benchmark(_allreduce_vtime, 8, "recursive_doubling")


def test_bench_reduce_bcast(benchmark):
    benchmark(_allreduce_vtime, 8, "reduce_bcast")
