"""Multi-VCI message-rate benchmark (emits BENCH_vci.json).

The paper's per-rank critical section serializes MPI_THREAD_MULTIPLE
injectors: every send charges its CS-resident instructions under ONE
lock, so four threads inject no faster than one.  Per-VCI sharding
(``BuildConfig(num_vcis=N)``) gives each (ctx, peer, tag) stream its
own lock, and threads driving different streams stop contending.

Two measurements:

* **Occupancy-model sweep** — measure the per-send instruction counts
  on the real runtime once (total ``I`` and CS-resident ``C``), then
  model the steady-state aggregate rate of T injector threads over N
  VCIs (:func:`repro.perf.msgrate.modeled_threaded_rate`): threads
  sharing a VCI serialize their ``C`` portions, threads on distinct
  VCIs overlap.  This is the honest way to show the scaling this
  substrate cannot exhibit in wall-clock (the interpreter's own global
  lock serializes real Python threads no matter how we shard).
  Thread-to-VCI placement uses the *real* :class:`VCIMap` on the tags
  each thread sends with — collisions, if any, are reported, not
  assumed away.
* **Threaded correctness validation** — a real
  ``nthreads=4, num_vcis=4`` flood through
  :func:`repro.perf.msgrate.pump_messages`, checked to drain with
  nothing left in any shard and with injections actually spread
  across the VCI lanes.

Run standalone (writes ``BENCH_vci.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_vci.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_vci.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.core.config import BuildConfig
from repro.fabric.model import fabric_by_name
from repro.perf.msgrate import (
    measure_cs_instructions,
    modeled_threaded_rate,
    pump_messages,
)
from repro.runtime.vci import VCIMap
from repro.runtime.world import World

#: Injector-thread counts of the sweep.
THREADS = (1, 2, 4, 8)
#: VCI counts of the sweep (1 = the calibrated single-lock build).
VCI_COUNTS = (1, 4, 16)
#: Messages per thread in the real validation flood.
_VALIDATE_MSGS = 120
#: Send-side routing key pieces: MPI_COMM_WORLD context, peer rank 1.
_CTX, _PEER = 0, 1
_OUT = Path(__file__).resolve().parent.parent / "BENCH_vci.json"


def pick_tags(vci_map: VCIMap, nthreads: int, search: int = 512
              ) -> list[int]:
    """Per-thread tags choosing distinct VCIs where the map allows.

    Greedy app-level VCI affinity (the MPICH multi-VCI usage model:
    threads partition traffic by tag): scan tags until
    ``min(nthreads, num_vcis)`` distinct VCIs are covered, then assign
    threads round-robin over those tags.  Residual collisions — more
    threads than VCIs, or an unlucky hash — show up in the reported
    placement because the real map decides it."""
    distinct: list[int] = []
    seen: set[int] = set()
    for tag in range(search):
        idx = vci_map.index_for(_CTX, _PEER, tag)
        if idx not in seen:
            seen.add(idx)
            distinct.append(tag)
        if len(distinct) >= min(nthreads, vci_map.num_vcis):
            break
    return [distinct[t % len(distinct)] for t in range(nthreads)]


def sweep_rates(total: int, cs: int, threads=THREADS,
                vci_counts=VCI_COUNTS) -> list[dict]:
    """The modeled T x N rate grid, placement by the real VCIMap."""
    spec = fabric_by_name("infinite")
    rows = []
    for num_vcis in vci_counts:
        vci_map = VCIMap(num_vcis)
        for nthreads in threads:
            tags = pick_tags(vci_map, nthreads)
            placement = [vci_map.index_for(_CTX, _PEER, t) for t in tags]
            rate = modeled_threaded_rate(spec, total, cs, placement)
            rows.append({
                "nthreads": nthreads,
                "num_vcis": num_vcis,
                "tags": tags,
                "vci_of_thread": placement,
                "rate_mmsgs_per_s": round(rate / 1e6, 2),
            })
    return rows


def validate_threaded(nthreads: int = 4, num_vcis: int = 4,
                      nmsgs: int = _VALIDATE_MSGS) -> dict:
    """Real threaded flood on a sharded world; returns drain evidence."""
    config = BuildConfig(thread_safety=True, num_vcis=num_vcis)
    world = World(2, config)
    vci_map = world.proc(0).vci_map
    tags = pick_tags(vci_map, nthreads)
    start = time.perf_counter()
    pump_messages(world, nmsgs, nthreads=nthreads,
                  tag_of=lambda t: tags[t])
    wall_s = time.perf_counter() - start
    posted, unexpected = world.proc(1).engine.pending_counts()
    return {
        "nthreads": nthreads,
        "num_vcis": num_vcis,
        "messages_per_thread": nmsgs,
        "wall_s": round(wall_s, 3),
        "drained": posted == 0 and unexpected == 0,
        "per_vci_injections": [v.n_injected
                               for v in world.proc(0).vcis],
        "per_vci_recv_completions": [v.completion.counts()[1]
                                     for v in world.proc(1).vcis],
    }


def run_benchmark(quick: bool = False) -> dict:
    """Run both measurements; returns (and writes) the JSON artifact."""
    threads = (1, 4) if quick else THREADS
    vci_counts = (1, 4) if quick else VCI_COUNTS
    config = BuildConfig(fabric="infinite")
    total, cs = measure_cs_instructions(config, "isend")
    rows = sweep_rates(total, cs, threads, vci_counts)

    def rate_at(nthreads: int, num_vcis: int) -> float:
        return next(r["rate_mmsgs_per_s"] for r in rows
                    if r["nthreads"] == nthreads
                    and r["num_vcis"] == num_vcis)

    result = {
        "benchmark": "vci",
        "op": "isend",
        "fabric": "infinite",
        "instructions": {"total": total, "cs": cs},
        "model": "slot = max(I*spi, max_v n_v * C*spi); "
                 "rate = nthreads/slot (see perf/msgrate.py)",
        "sweep": rows,
        "speedup_t4": {
            "num_vcis_1_mmsgs": rate_at(4, 1),
            "num_vcis_4_mmsgs": rate_at(4, 4),
            "ratio": round(rate_at(4, 4) / rate_at(4, 1), 2),
        },
        "validation": validate_threaded(
            nmsgs=30 if quick else _VALIDATE_MSGS),
    }
    if not quick:   # the quick CI smoke must not clobber the artifact
        _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_vci_sharding_scales(print_artifact):
    """Acceptance: >= 2x modeled message rate at 4 injector threads
    with num_vcis=4 vs num_vcis=1, and the real threaded flood drains
    with injections spread over more than one VCI lane."""
    result = run_benchmark()
    print_artifact("Multi-VCI benchmark (BENCH_vci.json)",
                   json.dumps(result, indent=2))
    assert result["speedup_t4"]["ratio"] >= 2.0, result["speedup_t4"]
    validation = result["validation"]
    assert validation["drained"], validation
    lanes_used = sum(1 for n in validation["per_vci_injections"] if n)
    assert lanes_used > 1, validation
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small sweep + short validation flood")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
