"""Collective-algorithm crossover benchmark (emits BENCH_collectives.json).

Figure 7's Nek5000 sensitivity exists because a collective is a
schedule of device point-to-point messages: every algorithm pays its
round count in per-message software+fabric overhead and its byte
volume in serialization, so which algorithm wins depends on message
size, rank count, and how expensive the build's per-message path is.
Three measurements on the virtual clock (OFI inter-node fabric, POSIX
shm intra-node):

* **Algorithm sweep** — allreduce time vs message size for every flat
  variant (``reduce_bcast``, ``recursive_doubling``, ``ring``,
  ``reduce_scatter_allgather``) plus the topology-aware
  ``hierarchical`` and ``two_dimensional`` strategies, at multi-node
  rank counts.  Reported crossover points are *measured* sign flips
  between adjacent sweep sizes.
* **LogGP projection** — the same algorithms through
  :mod:`repro.perf.collmodel` (per-message cost from the calibrated
  221-instruction default-build send path), projecting the crossover
  and the hierarchical advantage to thousands of nodes.
* **Training workload** — the :mod:`repro.apps.training` data-parallel
  SGD mini-app's fused gradient allreduce under each communicator
  strategy (the ChainerMN scenario that motivates the selector).

Run standalone (writes ``BENCH_collectives.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_collectives.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_collectives.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.apps.training import train
from repro.core.config import BuildConfig
from repro.fabric.topology import Topology
from repro.mpi import reduceops
from repro.perf.collmodel import CollectiveModel
from repro.runtime.world import World

#: Flat allreduce algorithms under study.
ALGORITHMS = ("reduce_bcast", "recursive_doubling", "ring",
              "reduce_scatter_allgather")
#: Topology-aware strategies measured alongside them.
STRATEGIES = ("hierarchical", "two_dimensional")
#: Message sizes (bytes) of the full sweep; the expected recursive-
#: doubling -> bandwidth-optimal crossover sits inside this range.
SIZES = (1024, 16384, 65536, 262144, 1048576)
#: (nranks, cores_per_node) grid points of the full sweep.
GRID = ((8, 4), (16, 4))
_OUT = Path(__file__).resolve().parent.parent / "BENCH_collectives.json"


def measure_allreduce(nranks: int, cores_per_node: int, nbytes: int,
                      algorithm: str | None = None,
                      strategy: str = "flat") -> float:
    """Virtual-clock seconds of one allreduce (max over ranks), after
    a warm-up call that builds any strategy subcommunicators."""
    topo = Topology(nranks=nranks, cores_per_node=cores_per_node)
    config = BuildConfig(fabric="ofi", communicator_name=strategy)
    world = World(nranks, config, topology=topo)

    def job(comm):
        send = np.full(nbytes // 4, float(comm.rank + 1), np.float32)
        recv = np.empty_like(send)
        comm.Allreduce(send, recv, reduceops.SUM, algorithm=algorithm)
        comm.barrier()
        t0 = comm.proc.vclock.now
        comm.Allreduce(send, recv, reduceops.SUM, algorithm=algorithm)
        return comm.proc.vclock.now - t0

    return max(world.run(job, timeout=300))


def sweep(sizes=SIZES, grid=GRID) -> list[dict]:
    """The measured (nranks, nbytes) x algorithm grid."""
    rows = []
    for nranks, cores_per_node in grid:
        for nbytes in sizes:
            times = {}
            for algo in ALGORITHMS:
                times[algo] = measure_allreduce(
                    nranks, cores_per_node, nbytes, algorithm=algo)
            for strat in STRATEGIES:
                times[strat] = measure_allreduce(
                    nranks, cores_per_node, nbytes, strategy=strat)
            rows.append({"nranks": nranks,
                         "cores_per_node": cores_per_node,
                         "nbytes": nbytes,
                         "seconds": {k: round(v, 9)
                                     for k, v in times.items()}})
    return rows


def measured_crossovers(rows: list[dict]) -> list[dict]:
    """Sign flips between adjacent sweep sizes: algorithm *b* slower
    than *a* at one size and faster at the next."""
    out = []
    by_grid: dict[tuple, list[dict]] = {}
    for row in rows:
        by_grid.setdefault(
            (row["nranks"], row["cores_per_node"]), []).append(row)
    variants = ALGORITHMS + STRATEGIES
    for (nranks, cpn), grid_rows in by_grid.items():
        grid_rows.sort(key=lambda r: r["nbytes"])
        for a in variants:
            for b in variants:
                if a >= b:
                    continue
                for lo, hi in zip(grid_rows, grid_rows[1:]):
                    lo_s, hi_s = lo["seconds"], hi["seconds"]
                    if ((lo_s[a] < lo_s[b]) and (hi_s[a] > hi_s[b])) or \
                       ((lo_s[b] < lo_s[a]) and (hi_s[b] > hi_s[a])):
                        faster_small = a if lo_s[a] < lo_s[b] else b
                        out.append({
                            "nranks": nranks,
                            "cores_per_node": cpn,
                            "pair": [a, b],
                            "faster_below": faster_small,
                            "faster_above": b if faster_small == a else a,
                            "between_bytes": [lo["nbytes"], hi["nbytes"]],
                        })
    return out


def hierarchical_vs_flat(rows: list[dict]) -> dict:
    """The acceptance comparison: hierarchical vs the flat binomial
    (reduce+bcast) allreduce at the largest multi-node sweep point."""
    best = max(rows, key=lambda r: (r["nranks"], r["nbytes"]))
    flat = best["seconds"]["reduce_bcast"]
    hier = best["seconds"]["hierarchical"]
    return {"nranks": best["nranks"],
            "cores_per_node": best["cores_per_node"],
            "nbytes": best["nbytes"],
            "flat_binomial_s": flat,
            "hierarchical_s": hier,
            "speedup": round(flat / hier, 2)}


def training_runs(nranks: int, cores_per_node: int, nparams: int,
                  steps: int) -> dict:
    """The SGD mini-app per strategy: loss trace, replica identity,
    and the virtual-clock cost of its gradient allreduces."""
    out = {}
    for strat in ("naive", "flat") + STRATEGIES:
        topo = Topology(nranks=nranks, cores_per_node=cores_per_node)
        config = BuildConfig(fabric="ofi", communicator_name=strat)
        world = World(nranks, config, topology=topo)

        def job(comm):
            t0 = comm.proc.vclock.now
            res = train(comm, nparams=nparams, steps=steps,
                        fused=(strat != "naive"))
            return res, comm.proc.vclock.now - t0

        results = world.run(job, timeout=600)
        reslist = [r for r, _ in results]
        out[strat] = {
            "nparams": nparams,
            "steps": steps,
            "fused": strat != "naive",
            "first_loss": round(reslist[0].losses[0], 6),
            "final_loss": round(reslist[0].losses[-1], 6),
            "replicas_identical":
                len({r.params_crc for r in reslist}) == 1,
            "gradient_mbytes_reduced":
                round(reslist[0].bytes_reduced / 1e6, 2),
            "vclock_s": round(max(t for _, t in results), 6),
        }
    return out


def run_benchmark(quick: bool = False) -> dict:
    """Run all three measurements; returns (and writes) the artifact."""
    sizes = (4096, 262144) if quick else SIZES
    grid = ((4, 2),) if quick else GRID
    rows = sweep(sizes, grid)
    crossovers = measured_crossovers(rows)

    model = CollectiveModel()
    modeled_crossover = model.crossover_bytes(
        "recursive_doubling", "ring", nranks=grid[-1][0])
    result = {
        "benchmark": "collectives",
        "fabric": "ofi",
        "shm_fabric": "posix",
        "algorithms": list(ALGORITHMS),
        "strategies": list(STRATEGIES),
        "sweep": rows,
        "measured_crossovers": crossovers,
        "hierarchical_vs_flat": hierarchical_vs_flat(rows),
        "model": {
            "per_message_instructions": model.sw_instructions,
            "recdouble_to_ring_crossover_bytes": modeled_crossover,
            "projection_1MiB": model.project_scaling(
                1 << 20, cores_per_node=grid[-1][1]),
        },
        "training": training_runs(
            nranks=4 if quick else 8,
            cores_per_node=2 if quick else 4,
            nparams=20_000 if quick else 2_000_000,
            steps=2 if quick else 3),
    }
    if not quick:   # the quick CI smoke must not clobber the artifact
        _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_collective_crossover(print_artifact):
    """Acceptance: the hierarchical composition beats the flat
    binomial allreduce at the largest multi-node point, at least one
    measured crossover exists, and the training replicas stay
    bit-identical under every strategy."""
    result = run_benchmark()
    print_artifact("Collectives benchmark (BENCH_collectives.json)",
                   json.dumps(result, indent=2))
    assert result["hierarchical_vs_flat"]["speedup"] > 1.0, \
        result["hierarchical_vs_flat"]
    assert result["measured_crossovers"], \
        "no algorithm crossover observed in the sweep"
    for strat, row in result["training"].items():
        assert row["replicas_identical"], (strat, row)
        assert row["final_loss"] < row["first_loss"], (strat, row)
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small grid, tiny training run")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
