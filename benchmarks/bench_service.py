"""Endpoints-service benchmark (emits BENCH_service.json).

Two measurements of the churn-resilient dynamic-process layer:

* **Measured churn run** — a real 1-server world serves waves of
  session clients through connect/accept (each wave joins the running
  world, talks, and leaves), including one client that vanishes
  unannounced and is confirmed dead by the heartbeat detector.  The
  run reports the sustained request rate, proves zero leaked requests
  at close, and snapshots the port-registry and detector counters.
* **Occupancy-model projection** — measure the per-request server-side
  instruction counts once on the real runtime (total ``I`` and
  CS-resident ``C`` of the charged reply-send path), then project the
  sustained aggregate request rate with
  :func:`repro.perf.msgrate.modeled_service_rate`: clients sharded
  over VCIs by the real :meth:`VCIMap.shard_of_client`, each shard the
  min of its client demand and its serialized service capacity.  The
  closed form is what scales the sweep to **millions of simulated
  clients** — the headline row holds >= 1M — which no wall-clock run
  of a thread-per-rank substrate could touch.

Run standalone (writes ``BENCH_service.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_service.py -s
"""

from __future__ import annotations

import json
import pickle
import threading
import time
from pathlib import Path

from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.errors import MPIErrProcFailed, MPIErrRevoked
from repro.fabric.model import fabric_by_name
from repro.ft import ERRORS_RETURN, DetectorConfig, FaultPlan
from repro.ft.recovery import RankKilled  # noqa: F401 - doc pointer
from repro.mpi.intercomm import comm_accept
from repro.mpi.session import Session
from repro.perf.msgrate import measure_cs_instructions, modeled_service_rate
from repro.runtime.world import World

#: Client-population sweep of the projection (headline: the 1M row).
CLIENT_COUNTS = (1_000, 10_000, 100_000, 1_000_000, 4_000_000)
#: VCI counts of the projection sweep.
VCI_COUNTS = (1, 4, 16)
#: Per-client think time between requests in the projection.
THINK_S = 1e-3
#: Measured churn-run shape (full mode).
WAVES, CLIENTS_PER_WAVE, REQUESTS_PER_CLIENT = 3, 4, 10
#: Per-request poll deadline of the measured server (backstop only).
_REQUEST_TIMEOUT_S = 5.0
_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def _serve_one(inter, detector):
    """Serve one client until bye or death; returns (#requests, ok)."""
    served = 0
    while True:
        req = inter.irecv(source=0, tag=0)
        deadline = time.monotonic() + _REQUEST_TIMEOUT_S
        revoked = False
        while not req.is_complete():
            if detector is not None:
                detector.maybe_tick()
            if not revoked and time.monotonic() >= deadline:
                ext.MPIX_Comm_revoke(inter)
                revoked = True
            time.sleep(0.001)
        try:
            req.wait()
        except (MPIErrProcFailed, MPIErrRevoked):
            ext.MPIX_Comm_revoke(inter)
            return served, False
        message = pickle.loads(req.payload)
        inter.proc.request_pool.release(req)
        if message[0] == "bye":
            return served, True
        served += 1
        inter.send(("ack", message[1]), dest=0, tag=0)


def _server(comm, port, total_clients):
    """Accept *total_clients* sequentially; tally outcomes and leaks."""
    comm.set_errhandler(ERRORS_RETURN)
    detector = comm.proc.detector
    vci_map = comm.proc.vci_map
    shards: dict[int, int] = {}
    completed = failed = served = 0
    t0 = time.perf_counter()
    for client_id in range(total_clients):
        inter = comm_accept(port, comm, timeout=30.0)
        inter.set_errhandler(ERRORS_RETURN)
        shard = vci_map.shard_of_client(client_id)
        shards[shard] = shards.get(shard, 0) + 1
        n, ok = _serve_one(inter, detector)
        served += n
        completed += ok
        failed += not ok
    wall_s = time.perf_counter() - t0
    posted, unexpected = comm.proc.engine.pending_counts()
    return {"requests_completed": served, "clients_completed": completed,
            "clients_failed": failed, "wall_s": wall_s,
            "requests_leaked": posted + unexpected,
            "per_shard": dict(sorted(shards.items()))}


def _client(world, port, requests, crash):
    """One session client; a crasher vanishes without bye/finalize."""
    session = Session(world, name="bench-client")
    inter = session.connect(port)
    inter.set_errhandler(ERRORS_RETURN)
    for i in range(1 if crash else requests):
        inter.send(("work", i), dest=0, tag=0)
        inter.recv(source=0)
    if crash:
        return   # unannounced death: the detector's problem now
    inter.send(("bye",), dest=0, tag=0)
    session.finalize()


def measured_service(waves=WAVES, clients_per_wave=CLIENTS_PER_WAVE,
                     requests=REQUESTS_PER_CLIENT) -> dict:
    """The real churn run: waves of sessions, one unannounced death."""
    config = BuildConfig(
        fault_plan=FaultPlan(),
        detector=DetectorConfig(period_s=0.005, suspect_s=0.05,
                                confirm_s=0.2),
        num_vcis=4)
    world = World(1, config)
    port = world.ports.open_port()
    total = waves * clients_per_wave

    def churn():
        for wave in range(waves):
            threads = [
                threading.Thread(
                    target=_client,
                    args=(world, port, requests,
                          wave == 1 and idx == 0),
                    daemon=True)
                for idx in range(clients_per_wave)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=60.0)

    driver = threading.Thread(target=churn, daemon=True)
    driver.start()
    stats = world.run(_server, args=(port, total))[0]
    driver.join(timeout=60.0)
    stats["num_waves"] = waves
    stats["num_clients"] = total
    stats["rate_requests_per_s"] = round(
        stats["requests_completed"] / stats["wall_s"], 1)
    stats["wall_s"] = round(stats["wall_s"], 3)
    stats["ports"] = world.ports.stats()
    stats["detector"] = world.detector.stats()
    return stats


def projection_sweep(total: int, cs: int, client_counts=CLIENT_COUNTS,
                     vci_counts=VCI_COUNTS) -> list[dict]:
    """The modeled clients x VCIs rate grid (closed-form occupancy)."""
    spec = fabric_by_name("infinite")
    rows = []
    for num_clients in client_counts:
        for num_vcis in vci_counts:
            row = modeled_service_rate(
                spec, instructions_request=total, instructions_cs=cs,
                num_vcis=num_vcis, num_clients=num_clients,
                think_s=THINK_S)
            row["rate_requests_per_s"] = round(
                row["rate_requests_per_s"], 1)
            rows.append(row)
    return rows


def run_benchmark(quick: bool = False) -> dict:
    """Run both measurements; returns (and writes) the JSON artifact."""
    measured = (measured_service(waves=2, clients_per_wave=3, requests=5)
                if quick else measured_service())
    config = BuildConfig(fabric="infinite")
    total, cs = measure_cs_instructions(config, "isend")
    client_counts = (10_000, 1_000_000) if quick else CLIENT_COUNTS
    vci_counts = (1, 4) if quick else VCI_COUNTS
    rows = projection_sweep(total, cs, client_counts, vci_counts)

    top = max(r["num_clients"] for r in rows)
    headline = max((r for r in rows if r["num_clients"] == top),
                   key=lambda r: r["rate_requests_per_s"])
    result = {
        "benchmark": "service",
        "fabric": "infinite",
        "instructions_per_request": {"total": total, "cs": cs},
        "model": "per VCI: rate_v = min(n_v/(service+think), "
                 "1/service); see perf/msgrate.modeled_service_rate",
        "measured": measured,
        "projection": {"think_s": THINK_S, "sweep": rows,
                       "headline": headline},
    }
    if not quick:   # the quick CI smoke must not clobber the artifact
        _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_service_scales_to_a_million_clients(print_artifact):
    """Acceptance: the churn run leaks nothing and loses only the
    crashed client; the occupancy projection sustains a positive rate
    at >= 1M simulated clients and VCI sharding lifts the server-bound
    ceiling."""
    result = run_benchmark()
    print_artifact("Endpoints-service benchmark (BENCH_service.json)",
                   json.dumps(result, indent=2))
    measured = result["measured"]
    assert measured["requests_leaked"] == 0, measured
    assert measured["clients_failed"] == 1, measured
    assert measured["detector"]["n_confirmed"] == 1, measured
    sweep = result["projection"]["sweep"]
    headline = result["projection"]["headline"]
    assert headline["num_clients"] >= 1_000_000
    assert headline["rate_requests_per_s"] > 0

    def rate_at(clients, vcis):
        return next(r["rate_requests_per_s"] for r in sweep
                    if r["num_clients"] == clients
                    and r["num_vcis"] == vcis)

    # At 1M clients the service is server-bound: more VCI lanes mean
    # more aggregate critical-section capacity.
    assert rate_at(1_000_000, 16) > rate_at(1_000_000, 1)
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="small churn run + two-point projection")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
