"""Ablation 1 (DESIGN.md §6): CH4 fast path vs always-AM-fallback.

Forcing every operation through the active-message fallback shows what
the flow-through design buys: the fallback charges the AM header-build
and handler-dispatch overhead on top of the fast path.
"""

import numpy as np

from repro.core.config import BuildConfig
from repro.fabric.topology import Topology
from repro.netmod.base import AM_HANDLER_OVERHEAD, AM_ORIGIN_OVERHEAD
from repro.perf.msgrate import pump_messages
from repro.runtime.world import World


def _internode(config):
    return World(2, config, topology=Topology(nranks=2, cores_per_node=1))


def _traced_send(world):
    def main(comm):
        buf = np.zeros(1, dtype=np.uint8)
        from repro.datatypes.predefined import BYTE
        if comm.rank == 0:
            with comm.proc.tracer.call("send"):
                comm.Isend((buf, 1, BYTE), dest=1, tag=0).wait()
            return comm.proc.tracer.last("send").total
        comm.Recv((buf, 1, BYTE), source=0, tag=0)
        return None

    return world.run(main)[0]


def test_am_fallback_costs_the_documented_overhead(print_artifact):
    fast = _traced_send(_internode(BuildConfig.ipo_build(fabric="ofi")))
    am = _traced_send(_internode(
        BuildConfig.ipo_build(fabric="ofi", force_am_fallback=True)))
    assert fast == 59
    assert am - fast == AM_ORIGIN_OVERHEAD + AM_HANDLER_OVERHEAD
    print_artifact(
        "Ablation: fast path vs AM fallback",
        f"fast path: {fast} instructions\n"
        f"AM fallback: {am} instructions "
        f"(+{am - fast} = header {AM_ORIGIN_OVERHEAD} + handler "
        f"{AM_HANDLER_OVERHEAD})")


def test_fallback_rate_penalty_is_meaningful():
    fast = _internode(BuildConfig.ipo_build(fabric="ofi"))
    slow = _internode(BuildConfig.ipo_build(fabric="ofi",
                                            force_am_fallback=True))
    t_fast = pump_messages(fast, 100)
    t_slow = pump_messages(slow, 100)
    assert t_slow > t_fast * 1.05


def test_bench_am_fallback_wallclock(benchmark):
    world = _internode(BuildConfig.ipo_build(fabric="ofi",
                                             force_am_fallback=True))
    benchmark(pump_messages, world, 100)
