"""Figure 3: message rates with OFI/PSM2 on the IT cluster.

Shape targets from the paper: "nearly a 50% increase in the message
rate for MPI_ISEND and close to a fourfold increase ... for MPI_PUT"
between MPICH/Original and the best CH4 build.
"""

import pytest

from repro.analysis.figures import fig3_data, render_rate_figure
from repro.core.config import BuildConfig
from repro.perf.msgrate import pump_messages
from repro.runtime.world import World


def _rate(results, label, op):
    return next(r.rate_msgs_per_s for r in results
                if r.label == label and r.op == op)


def test_fig3_shape(print_artifact):
    results = fig3_data()
    print_artifact("Figure 3 (regenerated)",
                   render_rate_figure(results, "Message rates, OFI/PSM2"))

    best, orig = "mpich/ch4 (no-err-single-ipo)", "mpich/original"
    isend_gain = _rate(results, best, "isend") / _rate(results, orig,
                                                       "isend")
    put_gain = _rate(results, best, "put") / _rate(results, orig, "put")
    assert isend_gain == pytest.approx(1.5, abs=0.05)
    assert 3.5 < put_gain < 5.0

    # Monotone improvement across builds, and all bars in the figure's
    # single-digit-Mmsg/s range.
    for op in ("isend", "put"):
        rates = [r.rate_msgs_per_s for r in results if r.op == op]
        assert rates == sorted(rates)
        assert all(0.5e6 < rate < 10e6 for rate in rates)


def test_bench_ofi_injection_wallclock(benchmark):
    world = World(2, BuildConfig.ipo_build(fabric="ofi"))
    benchmark(pump_messages, world, 200)
