"""Figure 5: message rates with the infinitely fast network.

With the wire free, the software stack is the only limit: the spread
between MPICH/Original's MPI_PUT and CH4's optimized paths opens to
over an order of magnitude, and every CH4 bar dwarfs its real-network
counterpart.
"""

from repro.analysis.figures import fig3_data, fig5_data, render_rate_figure
from repro.core.config import BuildConfig
from repro.perf.msgrate import pump_messages
from repro.runtime.world import World


def test_fig5_shape(print_artifact):
    results = fig5_data()
    print_artifact("Figure 5 (regenerated)",
                   render_rate_figure(results,
                                      "Message rates, infinite network"))

    def rate(label, op):
        return next(r.rate_msgs_per_s for r in results
                    if r.label == label and r.op == op)

    orig_put = rate("mpich/original", "put")
    ipo_put = rate("mpich/ch4 (no-err-single-ipo)", "put")
    assert ipo_put / orig_put > 10     # over an order of magnitude

    # Rates are 1/instructions exactly (no fabric term): check one.
    import pytest
    ipo_isend = rate("mpich/ch4 (no-err-single-ipo)", "isend")
    default_isend = rate("mpich/ch4 (default)", "isend")
    assert ipo_isend / default_isend == pytest.approx(221 / 59)

    # Every bar beats its OFI counterpart ("the networks themselves add
    # a significant number of cycles").
    ofi = {(r.label, r.op): r.rate_msgs_per_s for r in fig3_data()}
    for r in results:
        assert r.rate_msgs_per_s > ofi[(r.label, r.op)]


def test_bench_infinite_injection_wallclock(benchmark):
    world = World(2, BuildConfig.ipo_build(fabric="infinite"))
    benchmark(pump_messages, world, 200)
