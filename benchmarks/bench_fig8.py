"""Figure 8: LAMMPS LJ strong scaling on BG/Q, 512 -> 8192 nodes.

Shape targets from the paper's §4.4: "the simulation is sped up
overall, with more speedup at higher scale as the scaling limit is
approached.  We note, however, that the MPICH/Original library
completely stops scaling at 8,192 nodes."
"""

from repro.analysis.figures import render_fig8
from repro.apps.lammps.md import LJSimulation
from repro.apps.lammps.model import NODE_COUNTS, LammpsModel
from repro.core.config import BuildConfig
from repro.runtime.world import World


def test_fig8_model_shape(print_artifact):
    model = LammpsModel()
    print_artifact("Figure 8 (regenerated)", render_fig8())

    # CH4 wins everywhere with growing margin.
    speedups = [model.speedup_percent(n) for n in NODE_COUNTS]
    assert speedups == sorted(speedups)
    assert speedups[0] < 5 < 50 < speedups[-1]

    # CH4 keeps scaling through 8192; Original flatlines there.
    ch4 = [model.timesteps_per_second(n, "ch4") for n in NODE_COUNTS]
    ch3 = [model.timesteps_per_second(n, "ch3") for n in NODE_COUNTS]
    assert ch4 == sorted(ch4)
    assert ch3[-1] / ch3[-2] < 1.10
    assert ch4[-1] / ch4[-2] > 1.25

    # 3M atoms at 512 nodes x 16 ranks = 368 atoms/core (figure axis).
    assert round(model.atoms_per_core(512)) == 368


def test_functional_md_ch4_spends_less_virtual_time():
    def main(comm):
        sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002)
        for _ in range(3):
            stats = sim.step()
        return comm.proc.vclock.now, stats.total_energy

    outcomes = {}
    for device, cfg in (("ch4", BuildConfig.default(fabric="bgq")),
                        ("ch3", BuildConfig.original(fabric="bgq"))):
        results = World(8, cfg).run(main)
        outcomes[device] = (max(t for t, _ in results), results[0][1])
    # Identical physics, cheaper communication on CH4.
    assert outcomes["ch4"][1] == outcomes["ch3"][1]
    assert outcomes["ch4"][0] < outcomes["ch3"][0]


def test_bench_md_step_wallclock(benchmark):
    world = World(8, BuildConfig(fabric="bgq"))

    def three_steps():
        def main(comm):
            sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002)
            for _ in range(3):
                sim.step()
            return sim.natoms_local

        return sum(world.run(main))

    total = benchmark(three_steps)
    assert total == 4 * 27
