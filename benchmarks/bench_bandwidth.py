"""Message-size sweep: where the paper's software overhead stops
mattering.

Not a numbered figure, but the flip side of the paper's thesis: "it is
in this important (fast) regime where message sizes are small and the
impact of lightweight MPI is important" (§4.3).  The sweep shows the
builds' one-message times converging as the wire dominates.
"""

from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.perf.bandwidth import (DEFAULT_SIZES, bandwidth_sweep,
                                  software_crossover_bytes)


def test_builds_converge_at_large_messages(print_artifact):
    ipo = bandwidth_sweep(BuildConfig.ipo_build(fabric="ofi"))
    orig = bandwidth_sweep(BuildConfig.original(fabric="ofi"))

    rows = [[a.nbytes, b.time_s * 1e6, a.time_s * 1e6,
             b.time_s / a.time_s, round(100 * a.sw_fraction, 1)]
            for a, b in zip(ipo, orig)]
    print_artifact(
        "Message-size sweep, OFI (Original vs CH4+ipo)",
        format_table(["Bytes", "Original (us)", "CH4+ipo (us)",
                      "Advantage", "sw % (ipo)"], rows))

    advantage = [b.time_s / a.time_s for a, b in zip(ipo, orig)]
    # Small messages: the software advantage is material; large: gone.
    assert advantage[0] > 1.05
    assert advantage[-1] < 1.01
    assert advantage == sorted(advantage, reverse=True)

    # Software share of the 1-byte message is large, then fades.
    assert ipo[0].sw_fraction > 0.1
    assert ipo[-1].sw_fraction < 0.01


def test_crossover_is_small_on_fast_fabrics():
    """The strong-scaling regime: the builds differ only for messages
    below a few KiB on these fabrics."""
    cross = software_crossover_bytes(
        BuildConfig.ipo_build(fabric="ofi"),
        BuildConfig.original(fabric="ofi"), "ofi")
    assert cross <= 65536
    assert cross >= 256


def test_bench_sweep(benchmark):
    result = benchmark(bandwidth_sweep, BuildConfig.ipo_build(fabric="ofi"))
    assert len(result) == len(DEFAULT_SIZES)
