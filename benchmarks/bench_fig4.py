"""Figure 4: message rates with UCX on Mellanox EDR (Gomez).

The published figure has no ipo bar (four builds only); per-build gains
are correspondingly smaller than Figure 3's.
"""

from repro.analysis.figures import fig4_data, render_rate_figure
from repro.core.config import BuildConfig
from repro.perf.msgrate import pump_messages
from repro.runtime.world import World


def test_fig4_shape(print_artifact):
    results = fig4_data()
    print_artifact("Figure 4 (regenerated)",
                   render_rate_figure(results, "Message rates, UCX/EDR"))

    labels = {r.label for r in results}
    assert "mpich/ch4 (no-err-single-ipo)" not in labels   # no ipo bar
    assert len(results) == 8

    best = next(r for r in results
                if r.label == "mpich/ch4 (no-err-single)"
                and r.op == "put")
    orig = next(r for r in results
                if r.label == "mpich/original" and r.op == "put")
    assert 3.5 < best.rate_msgs_per_s / orig.rate_msgs_per_s < 4.5

    # Gomez clocks higher (2.5 GHz): its bars top Figure 3's analogues.
    from repro.analysis.figures import fig3_data
    fig3 = {(r.label, r.op): r.rate_msgs_per_s for r in fig3_data()}
    f4_isend_orig = next(r for r in results
                         if r.label == "mpich/original"
                         and r.op == "isend")
    assert f4_isend_orig.rate_msgs_per_s > fig3[("mpich/original",
                                                 "isend")]


def test_bench_ucx_injection_wallclock(benchmark):
    world = World(2, BuildConfig.no_thread_check(fabric="ucx"))
    benchmark(pump_messages, world, 200)
