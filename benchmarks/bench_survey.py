"""Section 2.2: the datatype-usage survey and link-time-inlining study."""

from repro.analysis.survey import (SURVEY_CORPUS, render_survey,
                                   survey_class_counts,
                                   survey_redundant_checks)
from repro.datatypes.usage import UsageClass


def test_survey_reproduces_section22(print_artifact):
    rows = survey_redundant_checks()
    print_artifact("Section 2.2 survey (regenerated)",
                   render_survey(rows))

    by_class = {UsageClass(r["class"]): [] for r in rows}
    for r in rows:
        by_class[UsageClass(r["class"])].append(r)

    # Class 1 (derived): checks are genuine work, never removable.
    for r in by_class[UsageClass.DERIVED]:
        assert r["no_ipo"] == r["mpi_only_ipo"] \
            == r["whole_program_ipo"] == 59

    # Class 2: MPI-only inlining suffices.
    for r in by_class[UsageClass.COMPILE_TIME]:
        assert r["no_ipo"] == 59 and r["mpi_only_ipo"] == 0

    # Class 3: only whole-program inlining folds the checks.
    for r in by_class[UsageClass.RUNTIME_CONST]:
        assert r["mpi_only_ipo"] == 59
        assert r["whole_program_ipo"] == 0

    # The survey found derived types in exactly two applications.
    assert survey_class_counts()[UsageClass.DERIVED] == 2
    assert len(SURVEY_CORPUS) >= 13


def test_bench_survey_measurement(benchmark):
    rows = benchmark(survey_redundant_checks)
    assert len(rows) == len(SURVEY_CORPUS)
