"""Table 1: instruction attribution for MPI_ISEND / MPI_PUT.

Regenerates the table by executing traced calls on the default CH4
build, asserts every published cell, and times the traced-call path.
"""

from repro.analysis.table1 import render_table1, table1_records
from repro.instrument.categories import Category

PUBLISHED = {
    "MPI_ISEND": {
        Category.ERROR_CHECKING: 74,
        Category.THREAD_SAFETY: 6,
        Category.FUNCTION_CALL: 23,
        Category.REDUNDANT_CHECKS: 59,
        Category.MANDATORY: 59,
    },
    "MPI_PUT": {
        Category.ERROR_CHECKING: 72,
        Category.THREAD_SAFETY: 14,
        Category.FUNCTION_CALL: 25,
        Category.REDUNDANT_CHECKS: 60,   # Table-1's 62 resolved to Fig.2
        Category.MANDATORY: 44,
    },
}


def test_table1_reproduces_published_cells(print_artifact):
    records = table1_records()
    for call, cells in PUBLISHED.items():
        for category, expected in cells.items():
            measured = records[call].category(category)
            assert measured == expected, (call, category)
    assert records["MPI_ISEND"].total == 221
    assert records["MPI_PUT"].total == 215
    print_artifact("Table 1 (regenerated)", render_table1())


def test_bench_table1_measurement(benchmark):
    result = benchmark(table1_records)
    assert result["MPI_ISEND"].total == 221
