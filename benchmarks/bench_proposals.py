"""Section 3: per-proposal instruction savings, measured individually.

Paper-quoted savings: §3.1 ~10, §3.2 3-4, §3.3 8, §3.4 3, §3.5 ~10,
§3.6 5, and the §3.7 combined path at 16 instructions total.
"""

from repro.analysis.figures import proposals_data, render_proposals
from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.perf.msgrate import measure_instructions


def test_every_proposal_saving_matches_paper(print_artifact):
    rows = proposals_data()
    print_artifact("Section 3 proposal savings (regenerated)",
                   render_proposals(rows))
    for row in rows:
        assert row["saving"] == row["paper_saving"], row["proposal"]


def test_combined_path_is_16_instructions():
    cfg = BuildConfig.ipo_build()
    assert measure_instructions(cfg, "isend", ext.ALL_OPTS_PT2PT) == 16


def test_bench_proposal_measurement(benchmark):
    cfg = BuildConfig.ipo_build()
    count = benchmark(measure_instructions, cfg, "isend",
                      ext.ALL_OPTS_PT2PT)
    assert count == 16
