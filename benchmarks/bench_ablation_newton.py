"""Ablation 8: LAMMPS newton on/off.

The classic MD communication/computation trade: newton-on computes
each pair once but pays a reverse force exchange every step; newton-off
computes cross-rank pairs twice and never communicates forces.  Both
produce identical physics; the accounting shows where each one spends.
"""

import numpy as np

from repro.apps.lammps.md import LJSimulation
from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.runtime.world import World


def _run(newton):
    world = World(8, BuildConfig(fabric="bgq"))

    def main(comm):
        sim = LJSimulation(comm, cells=(3, 3, 3), dt=0.002,
                           newton=newton)
        deposited0 = comm.proc.engine.n_deposited
        energies = [sim.step().total_energy for _ in range(3)]
        return (energies,
                comm.proc.compute_seconds,
                comm.proc.engine.n_deposited - deposited0,
                comm.proc.vclock.now)

    results = world.run(main)
    return {
        "energies": results[0][0],
        "compute_s": sum(r[1] for r in results),
        "messages": sum(r[2] for r in results),
        "vtime": max(r[3] for r in results),
    }


def test_newton_tradeoff(print_artifact):
    off = _run(False)
    on = _run(True)

    np.testing.assert_allclose(on["energies"], off["energies"],
                               rtol=1e-9)
    rows = [
        ["newton off", off["compute_s"] * 1e6, off["messages"],
         off["vtime"] * 1e6],
        ["newton on", on["compute_s"] * 1e6, on["messages"],
         on["vtime"] * 1e6],
    ]
    print_artifact(
        "Ablation: LAMMPS newton on/off (108 atoms, 8 ranks, 3 steps)",
        format_table(["Mode", "Compute (us, sum)", "Messages (sum)",
                      "Virtual makespan (us)"], rows))

    # Pair work halves; message count grows (reverse communication).
    assert on["compute_s"] < 0.6 * off["compute_s"]
    assert on["messages"] > off["messages"]


def test_bench_newton_on(benchmark):
    benchmark(_run, True)


def test_bench_newton_off(benchmark):
    benchmark(_run, False)
