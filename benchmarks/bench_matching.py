"""Matching-engine + request-pool benchmark (emits BENCH_matching.json).

Two measurements, before/after style:

* **Queue-depth sweep** (engine-level): preload *d* posted receives,
  then deposit messages that match the *last*-posted tag — the linear
  engine scans the whole queue per deposit (O(d)), the bucketed engine
  hashes straight to it (O(1)).  Reported as matches/second per depth.
* **Real-path ping-pong** (whole runtime): 2-rank blocking ping-pong
  under the *before* build (``matching_engine="linear"``,
  ``request_pool=False`` — the seed configuration) and the *after*
  build (defaults: bucketed engine + pool), reported as messages/second
  of real wall-clock.

Run standalone (writes ``BENCH_matching.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_matching.py

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_matching.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import BuildConfig
from repro.runtime.matching import PostedRecv, build_engine
from repro.runtime.message import Envelope, Message
from repro.runtime.request import Request, RequestKind
from repro.runtime.world import World

#: Posted-queue depths for the sweep (the acceptance bar is >= 64).
DEPTHS = (1, 16, 64, 256)
_SWEEP_MSGS = 3000
_PINGPONG_MSGS = 400
_OUT = Path(__file__).resolve().parent.parent / "BENCH_matching.json"


def _posted(tag: int) -> PostedRecv:
    return PostedRecv(ctx=0, src=0, tag=tag, nomatch=False,
                      request=Request(RequestKind.RECV),
                      on_match=lambda msg: None)


def match_rate(kind: str, depth: int, nmsgs: int = _SWEEP_MSGS) -> float:
    """Matches/second for *kind* at posted-queue depth *depth*.

    The engine holds ``depth`` posted receives (tags 0..depth-1); each
    deposited message matches the last tag and the receive is reposted,
    keeping the depth constant — the linear engine's worst case.
    """
    engine = build_engine(0, kind)
    for tag in range(depth):
        engine.post(_posted(tag))
    tag = depth - 1
    env = Envelope(ctx=0, src=0, tag=tag)
    start = time.perf_counter()
    for _ in range(nmsgs):
        engine.deposit(Message(env=env, data=b"", arrive_s=0.0))
        engine.post(_posted(tag))
    return nmsgs / (time.perf_counter() - start)


def _pingpong(comm, nmsgs: int):
    peer = 1 - comm.rank
    buf = np.zeros(8)
    payload = np.ones(8)
    for _ in range(nmsgs):
        if comm.rank == 0:
            comm.Send(payload, dest=peer)
            comm.Recv(buf, source=peer)
        else:
            comm.Recv(buf, source=peer)
            comm.Send(buf, dest=peer)
    return comm.proc.request_pool.n_reuse


def pingpong_rate(config: BuildConfig,
                  nmsgs: int = _PINGPONG_MSGS) -> float:
    """Real wall-clock messages/second of a 2-rank blocking ping-pong
    (best of 3 after a warm-up world)."""
    World(2, config).run(_pingpong, args=(nmsgs // 4,))   # warm-up
    best = 0.0
    for _ in range(3):
        world = World(2, config)
        start = time.perf_counter()
        world.run(_pingpong, args=(nmsgs,))
        best = max(best, 2 * nmsgs / (time.perf_counter() - start))
    return best


def run_benchmark() -> dict:
    """Run both measurements; returns (and writes) the JSON artifact."""
    sweep = []
    for depth in DEPTHS:
        linear = match_rate("linear", depth)
        bucket = match_rate("bucket", depth)
        sweep.append({"depth": depth,
                      "linear_msgs_per_s": round(linear),
                      "bucket_msgs_per_s": round(bucket),
                      "speedup": round(bucket / linear, 2)})

    before_cfg = BuildConfig(matching_engine="linear", request_pool=False)
    before = pingpong_rate(before_cfg)
    after = pingpong_rate(BuildConfig())
    result = {
        "benchmark": "matching",
        "queue_depth_sweep": sweep,
        "pingpong": {
            "before": {"config": "linear engine, pool off",
                       "msgs_per_s": round(before)},
            "after": {"config": "bucket engine, pool on",
                      "msgs_per_s": round(after)},
            "speedup": round(after / before, 2),
        },
    }
    _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_bucket_engine_wins_at_depth(print_artifact):
    """Acceptance: the bucketed engine beats the linear engine at queue
    depth >= 64 and the JSON artifact is written."""
    result = run_benchmark()
    print_artifact("Matching benchmark (BENCH_matching.json)",
                   json.dumps(result, indent=2))
    deep = [row for row in result["queue_depth_sweep"]
            if row["depth"] >= 64]
    assert deep
    for row in deep:
        assert row["speedup"] > 1.0, row
    assert _OUT.exists()


if __name__ == "__main__":
    print(json.dumps(run_benchmark(), indent=2))
