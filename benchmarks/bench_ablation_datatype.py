"""Ablation 5 (DESIGN.md §6): datatype pack strategies.

Compares the zero-copy contiguous fast path against vectorized
derived-type gathering across layouts and sizes, and verifies the
gather-index cache makes repeated packs of the same (type, count)
cheap — the reuse pattern of every timestepping code.
"""

import time

import numpy as np

from repro.datatypes import contiguous, pack, subarray, unpack, vector
from repro.datatypes.pack import _gather_indices
from repro.datatypes.predefined import DOUBLE
from repro.instrument.report import format_table

N = 64


def _layouts():
    face = subarray([N, N, N], [N, N, 1], [0, 0, N - 1], DOUBLE).commit()
    plane = subarray([N, N, N], [1, N, N], [N // 2, 0, 0],
                     DOUBLE).commit()
    strided = vector(count=N, blocklength=1, stride=N,
                     base=DOUBLE).commit()
    dense = contiguous(N * N, DOUBLE).commit()
    return {"contiguous": (dense, 1), "face (z)": (face, 1),
            "plane (x)": (plane, 1), "strided column": (strided, 1)}


def test_pack_strategies_all_correct(print_artifact):
    cube = np.arange(N ** 3, dtype=np.float64).reshape(N, N, N)
    flat = np.ascontiguousarray(cube)
    rows = []
    for name, (dt, count) in _layouts().items():
        data = pack(flat, count, dt)
        out = np.zeros_like(flat)
        unpack(data, out, count, dt)
        # Every packed byte position must round-trip.
        packed_again = pack(out, count, dt)
        assert packed_again == data, name
        rows.append([name, len(data), len(dt.typemap)])
    print_artifact("Ablation: datatype pack strategies",
                   format_table(["Layout", "Packed bytes", "Segments"],
                                rows))

    # The face layout matches the numpy slice it describes.
    face, _ = _layouts()["face (z)"]
    np.testing.assert_array_equal(
        np.frombuffer(pack(flat, 1, face), np.float64),
        cube[:, :, N - 1].reshape(-1))


def test_gather_index_cache_amortizes():
    dt = subarray([N, N, N], [N, 1, N], [0, N // 2, 0], DOUBLE).commit()
    cube = np.zeros(N ** 3, dtype=np.float64)

    _gather_indices.cache_clear()
    t0 = time.perf_counter()
    pack(cube, 1, dt)
    cold = time.perf_counter() - t0

    t0 = time.perf_counter()
    for _ in range(20):
        pack(cube, 1, dt)
    warm = (time.perf_counter() - t0) / 20

    info = _gather_indices.cache_info()
    assert info.hits >= 20
    assert warm <= cold   # index building amortized away


def test_bench_pack_contiguous(benchmark):
    dt = contiguous(N * N, DOUBLE).commit()
    buf = np.zeros(N * N, dtype=np.float64)
    benchmark(pack, buf, 1, dt)


def test_bench_pack_strided(benchmark):
    dt = vector(count=N, blocklength=1, stride=N, base=DOUBLE).commit()
    buf = np.zeros(N * N, dtype=np.float64)
    benchmark(pack, buf, 1, dt)


def test_bench_pack_face(benchmark):
    dt = subarray([N, N, N], [N, N, 1], [0, 0, N - 1], DOUBLE).commit()
    buf = np.zeros(N ** 3, dtype=np.float64)
    benchmark(pack, buf, 1, dt)
