"""Ablation 7: frontier-exchange strategy in the BFS proxy.

Fine-grained-messaging territory (the paper's intro): compares bulk
alltoall against per-destination eager messages, standard vs §3.6
arrival-order matching.  Identical BFS levels in every mode; the
accounting shows what each strategy costs.
"""

import numpy as np

from repro.apps.bfs import (MODES, DistributedBFS, random_graph_edges,
                            serial_bfs_levels)
from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.instrument.categories import Subsystem
from repro.runtime.world import World

NV, DEG, SEED = 96, 3, 17


def _run_mode(mode):
    def main(comm):
        edges = random_graph_edges(NV, DEG, SEED)
        bfs = DistributedBFS(comm, NV, edges, mode=mode)
        levels = bfs.run(0)
        return (comm.gather(levels.tolist(), root=0),
                comm.proc.counter.total,
                comm.proc.counter.by_subsystem[Subsystem.MATCH_BITS],
                bfs.messages_sent,
                comm.proc.vclock.now)

    world = World(4, BuildConfig.ipo_build(fabric="bgq"))
    results = world.run(main)
    pieces = results[0][0]
    levels = np.asarray([v for p in pieces for v in p])
    return {
        "levels": levels,
        "instructions": sum(r[1] for r in results),
        "match_bits": sum(r[2] for r in results),
        "messages": sum(r[3] for r in results),
        "vtime": max(r[4] for r in results),
    }


def test_bfs_exchange_ablation(print_artifact):
    reference = serial_bfs_levels(NV, random_graph_edges(NV, DEG, SEED),
                                  0)
    outcomes = {mode: _run_mode(mode) for mode in MODES}

    rows = []
    for mode, out in outcomes.items():
        np.testing.assert_array_equal(out["levels"], reference)
        rows.append([mode, out["messages"], out["instructions"],
                     out["match_bits"], out["vtime"] * 1e6])
    print_artifact(
        "Ablation: BFS frontier exchange (96 vertices, 4 ranks)",
        format_table(["Mode", "Messages", "Instructions",
                      "Match-bit instr", "Virtual time (us)"], rows))

    # §3.6: the nomatch mode saves match-bit instructions per message.
    assert outcomes["nomatch"]["match_bits"] \
        < outcomes["isend"]["match_bits"]
    assert outcomes["nomatch"]["instructions"] \
        < outcomes["isend"]["instructions"]
    # Same message count either way (only the matching flavour differs).
    assert outcomes["nomatch"]["messages"] == outcomes["isend"]["messages"]


def test_bench_bfs_nomatch(benchmark):
    benchmark(_run_mode, "nomatch")


def test_bench_bfs_alltoall(benchmark):
    benchmark(_run_mode, "alltoall")
