"""Companion microbenchmark: small-message latency per build.

Not a numbered paper figure, but the quantity behind §4.4's "a
lower-latency MPI implementation ... will have a direct effect on
strong scaling" — regenerated per fabric from the same instruction
accounting as Figures 3-5.
"""

import pytest

from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.perf.latency import latency_sweep, modeled_latency, \
    pingpong_vtime


def test_latency_ordering_per_fabric(print_artifact):
    rows = []
    for fabric in ("ofi", "ucx", "bgq"):
        sweep = latency_sweep(fabric)
        lats = [r.latency_s for r in sweep]
        assert lats == sorted(lats, reverse=True)   # builds improve
        rows.extend([fabric, r.label, r.instructions, r.latency_us]
                    for r in sweep)
    print_artifact(
        "Small-message latency per build (modeled)",
        format_table(["Fabric", "Build", "Instructions", "Latency (us)"],
                     rows))


def test_functional_pingpong_matches_model_ordering():
    ipo = pingpong_vtime(BuildConfig.ipo_build(fabric="ofi"))
    orig = pingpong_vtime(BuildConfig.original(fabric="ofi"))
    assert ipo < orig
    # Both in the microsecond regime of a real fabric.
    assert 0.5e-6 < ipo < orig < 20e-6


def test_model_and_functional_agree_roughly():
    cfg = BuildConfig.ipo_build(fabric="ofi")
    modeled = modeled_latency(cfg, nbytes=8).latency_s
    functional = pingpong_vtime(cfg, nbytes=8)
    assert functional == pytest.approx(modeled, rel=0.5)


def test_bench_pingpong_wallclock(benchmark):
    benchmark(pingpong_vtime, BuildConfig.ipo_build(fabric="ofi"), 20)
