"""Zero-copy datapath benchmark (emits ``BENCH_bufcheck.json``).

The before/after of the bufcheck-driven conversion, measured on the
real runtime:

* **Copies per transfer** — the :mod:`repro.instrument.copies` ground
  truth across an eager contiguous message stream: the zero-copy build
  performs exactly one payload copy end-to-end (the receive-side
  scatter), the legacy ``zero_copy=False`` build exactly two (pack
  materialization + scatter).  Asserted exactly — the same numbers the
  static census in ``COPYMAP.json`` predicts.
* **Bandwidth** — wall-clock MB/s of the same stream under both
  builds, with the bytes-copied-per-byte-sent ratio alongside.
* **Census throughput** — how long ``repro.bufcheck`` takes to analyze
  the shipped tree (the cost of the CI gate itself).

Run standalone (writes ``BENCH_bufcheck.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_bufcheck.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_bufcheck.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.bufcheck.cli import default_paths, run_bufcheck
from repro.core.config import BuildConfig
from repro.instrument import copies
from repro.runtime.world import World

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_bufcheck.json"

_NMSGS = 200
_MSG_DOUBLES = 4096          #: 32 KiB per message


def stream(zero_copy: bool, nmsgs: int, n: int) -> dict:
    """Rank 0 streams *nmsgs* contiguous messages of *n* doubles to
    rank 1; returns copy counters and wall-clock bandwidth."""
    world = World(2, BuildConfig(zero_copy=zero_copy))
    src = np.arange(n, dtype=np.float64)
    dst = np.zeros(n, dtype=np.float64)

    def main(comm):
        if comm.rank == 0:
            for _ in range(nmsgs):
                comm.Send(src, dest=1, tag=0)
        else:
            for _ in range(nmsgs):
                comm.Recv(dst, source=0, tag=0)

    nbytes = n * 8
    with copies.track() as delta:
        t0 = time.perf_counter()
        world.run(main)
        dt = time.perf_counter() - t0
    moved = delta()
    return {
        "msgs": nmsgs,
        "msg_bytes": nbytes,
        "copies_per_transfer": moved.n_copies / nmsgs,
        "bytes_copied_per_byte_sent":
            moved.bytes_copied / (nmsgs * nbytes),
        "views_per_transfer": moved.n_views / nmsgs,
        "mb_per_s": nmsgs * nbytes / dt / 1e6,
    }


def census_timing() -> dict:
    """One full static census over the shipped tree."""
    t0 = time.perf_counter()
    report, snapshot = run_bufcheck(default_paths())
    dt = time.perf_counter() - t0
    per_path = {
        name: {side: {mode: row[side][mode]["copies"]
                      for mode in ("fastpath", "copy_mode")}
               for side in ("send", "recv") if row.get(side)}
        for name, row in snapshot["paths"].items()
    }
    return {"seconds": dt,
            "files": report.files_checked,
            "findings": len(report.diagnostics),
            "static_copies": per_path}


def run_benchmark(quick: bool = False) -> dict:
    """Collect every measurement; skip writing the artifact under
    *quick* (the CI smoke must not clobber the committed artifact)."""
    nmsgs = 20 if quick else _NMSGS
    n = 512 if quick else _MSG_DOUBLES
    stream(zero_copy=True, nmsgs=5, n=64)       # warmup (thread pools,
    stream(zero_copy=False, nmsgs=5, n=64)      # numpy caches)
    after = stream(zero_copy=True, nmsgs=nmsgs, n=n)
    before = stream(zero_copy=False, nmsgs=nmsgs, n=n)
    data = {
        "stream": {"zero_copy": after, "legacy": before,
                   "bandwidth_ratio": after["mb_per_s"]
                   / before["mb_per_s"]},
        "census": census_timing(),
    }
    if not quick:
        _OUT.write_text(json.dumps(data, indent=2) + "\n")
    return data


def test_bench_bufcheck(print_artifact):
    """Exactly one copy per transfer after the conversion, two before;
    the tree is finding-free; JSON artifact written."""
    data = run_benchmark()
    assert data["stream"]["zero_copy"]["copies_per_transfer"] == 1.0
    assert data["stream"]["legacy"]["copies_per_transfer"] == 2.0
    assert data["census"]["findings"] == 0
    print_artifact("Zero-copy datapath (BENCH_bufcheck.json)",
                   json.dumps(data, indent=2))


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short stream; do not write the artifact")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
