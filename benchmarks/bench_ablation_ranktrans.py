"""Ablation 3 (DESIGN.md §6): direct-table vs compressed rank
translation (paper §3.1, citing Guo et al. [22]).

Direct table: 2 instructions per lookup, O(P) memory per communicator.
Compressed: ~11 instructions, O(1) memory for regular communicators.
"""

from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.perf.msgrate import measure_instructions
from repro.runtime.ranktrans import (CompressedTranslation,
                                     DirectTableTranslation)


def test_translation_tradeoff(print_artifact):
    cfg_compressed = BuildConfig.ipo_build(rank_translation="compressed")
    cfg_direct = BuildConfig.ipo_build(rank_translation="direct")

    compressed = measure_instructions(cfg_compressed, "isend")
    direct = measure_instructions(cfg_direct, "isend")

    # 11 vs 2 instructions for the lookup itself.
    assert compressed - direct == 9
    assert compressed == 59   # the calibrated (memory-scalable) default

    rows = []
    for nranks in (16, 1024, 16384, 131072):
        ranks = range(nranks)
        d = DirectTableTranslation(ranks)
        c = CompressedTranslation(ranks)
        rows.append([nranks, d.lookup_instructions, d.memory_bytes,
                     c.lookup_instructions, c.memory_bytes])
    print_artifact(
        "Ablation: rank translation (per communicator)",
        format_table(["Ranks", "direct instr", "direct bytes",
                      "compressed instr", "compressed bytes"], rows))

    # The memory argument of §3.1: O(P) vs O(1).
    big_direct = DirectTableTranslation(range(131072))
    big_compressed = CompressedTranslation(range(131072))
    assert big_direct.memory_bytes > 1_000_000
    assert big_compressed.memory_bytes == 24


def test_bench_direct_lookup(benchmark):
    t = DirectTableTranslation(range(16384))
    benchmark(lambda: [t.world_rank(i) for i in range(0, 16384, 97)])


def test_bench_compressed_lookup(benchmark):
    t = CompressedTranslation(range(16384))
    benchmark(lambda: [t.world_rank(i) for i in range(0, 16384, 97)])
