"""Fault-tolerant transport overhead benchmark (emits BENCH_fault.json).

Two measurements, in the spirit of the paper's Figure 2 attribution:

* **Standing tax** — the per-call ``RELIABILITY`` instruction overhead
  of a fault-tolerant build on a *perfect* wire, per path (two-sided
  ``isend`` vs one-sided ``put``), measured with the same
  charge-through instrumentation as the calibrated 221/215 baselines.
  Reliability is a protocol property, not a failure-time one: sequence
  numbers, checksums, and ack piggybacking are paid on every message
  even when nothing is ever lost.
* **Failure-time cost** — a retransmit-vs-loss-rate sweep on a 2-rank
  lossy world: the same message stream is pushed through fabrics with
  increasing drop probability and the protocol's counters (retransmit
  attempts, duplicate drops, out-of-order buffering) are reported,
  together with the delivered-intact check that makes the overhead
  meaningful.

Run standalone (writes ``BENCH_fault.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_fault.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_fault.py -s
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.config import BuildConfig
from repro.ft import FaultPlan
from repro.perf.msgrate import measure_call_record
from repro.runtime.world import World

#: Wire drop probabilities of the failure-time sweep.
DROP_RATES = (0.0, 0.05, 0.1, 0.2, 0.3)
#: Messages pushed through each lossy fabric.
N_MSGS = 200
#: Seed for every lossy plan (fates are pure functions of it).
SEED = 7
_OUT = Path(__file__).resolve().parent.parent / "BENCH_fault.json"


def measure_standing_tax() -> dict:
    """Per-path instruction overhead of the protocol on a perfect wire.

    Returns one row per path with the plain-build total, the
    fault-build total, and the ``RELIABILITY`` attribution that makes
    up the difference.
    """
    rows = {}
    for op in ("isend", "put"):
        plain = measure_call_record(BuildConfig(fault_plan=None), op)
        ft = measure_call_record(BuildConfig(fault_plan=FaultPlan()), op)
        ft_cats = {c.name: n for c, n in ft.by_category.items() if n}
        rows[op] = {
            "plain_total": plain.total,
            "ft_total": ft.total,
            "reliability": ft_cats.get("RELIABILITY", 0),
            "overhead_pct": round(100.0 * (ft.total - plain.total)
                                  / plain.total, 1),
            "ft_by_category": ft_cats,
        }
    return rows


def run_lossy_stream(drop_rate: float, nmsgs: int = N_MSGS) -> dict:
    """Push *nmsgs* messages 0 -> 1 over a wire losing *drop_rate* of
    the attempts; returns the protocol counters plus the intact check."""
    plan = FaultPlan(seed=SEED, drop_rate=drop_rate,
                     duplicate_rate=0.05, reorder_rate=0.05)
    stats = {}

    def fn(comm):
        """Sender floods, receiver drains; both snapshot counters."""
        if comm.rank == 0:
            for i in range(nmsgs):
                comm.send(i, dest=1)
            got = None
        else:
            got = [comm.recv(source=0) for _ in range(nmsgs)]
        comm.barrier()
        stats[comm.rank] = comm.proc.faults.stats()
        return got

    results = World(2, BuildConfig(fault_plan=plan)).run(fn)
    sender, receiver = stats[0], stats[1]
    return {
        "drop_rate": drop_rate,
        "n_msgs": nmsgs,
        "delivered_intact": results[1] == list(range(nmsgs)),
        "n_retransmits": sender["n_retransmits"],
        "retransmits_per_msg": round(sender["n_retransmits"] / nmsgs, 3),
        "n_dup_dropped": receiver["n_dup_dropped"],
        "n_ooo_buffered": receiver["n_ooo_buffered"],
    }


def run_benchmark(quick: bool = False) -> dict:
    """Run both measurements; returns (and writes) the JSON artifact."""
    rates = (0.0, 0.2) if quick else DROP_RATES
    nmsgs = 40 if quick else N_MSGS
    sweep = [run_lossy_stream(rate, nmsgs) for rate in rates]
    result = {
        "benchmark": "fault",
        "standing_tax": measure_standing_tax(),
        "sweep_seed": SEED,
        "retransmit_sweep": sweep,
    }
    if not quick:   # the quick CI smoke must not clobber the artifact
        _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_fault_tolerance_overhead(print_artifact):
    """Acceptance: the standing tax is exactly the calibrated
    RELIABILITY attribution per path, every lossy stream still delivers
    intact, and retransmission work grows with the loss rate."""
    result = run_benchmark()
    print_artifact("Fault-tolerant transport (BENCH_fault.json)",
                   json.dumps(result, indent=2))
    tax = result["standing_tax"]
    assert tax["isend"]["reliability"] == 43
    assert tax["isend"]["ft_total"] == 221 + 43
    assert tax["put"]["reliability"] == 34
    assert tax["put"]["ft_total"] == 215 + 34
    sweep = result["retransmit_sweep"]
    assert all(row["delivered_intact"] for row in sweep)
    assert sweep[0]["n_retransmits"] == 0          # lossless wire
    assert sweep[-1]["n_retransmits"] > sweep[1]["n_retransmits"]
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="two drop rates + short streams")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
