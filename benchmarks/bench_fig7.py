"""Figure 7: Nek5000 mass-matrix inversion on Cetus (16384 ranks).

Shape targets from the paper's §4.3:

* "In the range n/P ~ 100-1000, there is a 1.2 to 1.25 performance
  gain for the three values of N considered";
* "MPICH/CH4 outperforms MPICH/Original except for the largest values
  of n/P, where the two models are equal";
* "a reduction in the ratio moving from E/P = 2 to E/P = 1";
* the N = 3 curves underperform at matched n/P.

The functional half benchmarks the real distributed CG solve at
laptop scale on both devices.
"""

import numpy as np
import pytest

from repro.analysis.figures import render_fig7
from repro.apps.nek.cg import run_nek_cg
from repro.apps.nek.model import ELEMENT_COUNTS, NekModel, figure7_series
from repro.core.config import BuildConfig
from repro.runtime.world import World


def test_fig7_model_shape(print_artifact):
    model = NekModel()
    data = figure7_series(model)
    print_artifact("Figure 7 (regenerated)", render_fig7(data))

    for order in (3, 5, 7):
        series = dict(data["center"][order])
        in_band = [v for nop, v in series.items() if 100 <= nop <= 1000]
        assert in_band and 1.18 <= max(in_band) <= 1.30

        # CH4 never loses; equal at the largest n/P.
        ratios = [v for _, v in data["center"][order]]
        assert min(ratios) >= 1.0
        assert ratios[-1] == pytest.approx(1.0, abs=0.06)

        # E/P = 1 downturn.
        assert ratios[0] < ratios[1]

    # Left panel: in the work-dominated regime (matched large n/P),
    # N=3 underperforms N=7 per grid point — the paper's caching /
    # O(M^3 N) interpolation-overhead observation.
    left = data["left"]
    n3 = dict(left[(3, "ch4")])       # n/P up to 3456
    n7 = dict(left[(7, "ch4")])       # compare near n/P ~ 2744-3456
    per_point_3 = n3[max(n3)] / max(n3)
    n7_matched = min(n7, key=lambda nop: abs(nop - max(n3)))
    per_point_7 = n7[n7_matched] / n7_matched
    assert per_point_3 < per_point_7

    # Right panel: efficiency rises with n/P and CH4 >= Original.
    for order in (5, 7):
        ch4 = [v for _, v in data["right"][(order, "ch4")]]
        ch3 = [v for _, v in data["right"][(order, "ch3")]]
        assert ch4 == sorted(ch4)
        assert all(a >= b for a, b in zip(ch4, ch3))


def test_functional_cg_ch4_spends_less_virtual_time():
    """The small-scale functional run orders the devices the same way
    the Cetus model does."""
    def main(comm):
        res = run_nek_cg(comm, nelems=27, order=3, tol=1e-11)
        return res.vtime_s, res.converged

    times = {}
    for device, cfg in (("ch4", BuildConfig.default(fabric="bgq")),
                        ("ch3", BuildConfig.original(fabric="bgq"))):
        results = World(8, cfg).run(main)
        assert all(conv for _, conv in results)
        times[device] = max(t for t, _ in results)
    assert times["ch4"] < times["ch3"]


def test_bench_cg_iteration_wallclock(benchmark):
    def solve():
        def main(comm):
            return run_nek_cg(comm, nelems=8, order=3,
                              tol=1e-10).iterations

        return World(4, BuildConfig(fabric="bgq")).run(main)[0]

    iterations = benchmark(solve)
    assert iterations >= 1
