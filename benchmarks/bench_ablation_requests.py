"""Ablation 2 (DESIGN.md §6): per-operation requests vs bulk completion.

Quantifies §3.5 along two axes: instruction counts (13 -> 3 per send)
and real Python work (no Request object, no Event, no wait) — the
request machinery is measurable in wall-clock too.
"""

import time

from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.perf.msgrate import measure_instructions, pump_messages
from repro.runtime.world import World


def test_request_vs_noreq_instruction_gap(print_artifact):
    cfg = BuildConfig.ipo_build()
    with_req = measure_instructions(cfg, "isend")
    without = measure_instructions(cfg, "isend", ext.NOREQ)
    assert with_req - without == 10
    print_artifact(
        "Ablation: request management",
        f"per-op request: {with_req} instructions\n"
        f"bulk (noreq):   {without} instructions (paper: saves ~10, "
        "counter costs ~3)")


def test_noreq_virtual_time_advantage():
    t_req = pump_messages(World(2, BuildConfig.ipo_build()), 200)
    t_noreq = pump_messages(World(2, BuildConfig.ipo_build()), 200,
                            flags=ext.NOREQ | ext.NOMATCH)
    assert t_noreq < t_req


def test_noreq_wallclock_advantage():
    """Real Python time: the noreq path skips Request allocation and
    Event waits, so it must also win on the wall clock."""
    def timed(flags):
        world = World(2, BuildConfig.ipo_build())
        start = time.perf_counter()
        pump_messages(world, 400, flags)
        return time.perf_counter() - start

    # Warm up, then best-of-3 to damp scheduler noise.
    timed(ext.NONE)
    with_req = min(timed(ext.NONE) for _ in range(3))
    without = min(timed(ext.NOREQ | ext.NOMATCH) for _ in range(3))
    assert without < with_req * 1.1   # allow noise; must not be slower


def test_bench_request_path_wallclock(benchmark):
    world = World(2, BuildConfig.ipo_build())
    benchmark(pump_messages, world, 200)


def test_bench_noreq_path_wallclock(benchmark):
    world = World(2, BuildConfig.ipo_build())
    benchmark(pump_messages, world, 200, ext.NOREQ | ext.NOMATCH)
