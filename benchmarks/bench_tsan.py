"""Race-detector overhead benchmark (emits ``BENCH_tsan.json``).

Two claims, measured on the real runtime:

* **Zero charged overhead** — the detector does all bookkeeping in
  host Python outside the instruction ledger, so the Figure 2
  isend/put charged counts are identical under ``tsan=False`` and
  ``tsan=True``.  Asserted exactly (and guarded again in
  ``tests/test_lint_ci.py`` against the committed Figure 2 numbers).
* **Wall-clock overhead when enabled** — a 2-rank threaded flood
  (3 injector threads per rank, the detector's worst case: every
  lock event and request transition is instrumented) timed under
  both configurations; the JSON reports messages/second, the
  enabled/disabled ratio, and the detector's event counters
  (lock events and annotated shared-state accesses observed), plus
  the findings count — which must be zero.

Run standalone (writes ``BENCH_tsan.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_tsan.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_tsan.py -s
"""

from __future__ import annotations

import json
import threading
import time
from pathlib import Path

import numpy as np

from repro.core.config import BuildConfig
from repro.perf.msgrate import measure_instructions
from repro.runtime.world import World

_ROOT = Path(__file__).resolve().parent.parent
_OUT = _ROOT / "BENCH_tsan.json"
_NTHREADS = 3
_FLOOD_MSGS = 60


def threaded_flood(tsan: bool, nmsgs: int = _FLOOD_MSGS) -> dict:
    """A 2-rank, ``_NTHREADS``-thread symmetric flood; returns rate
    and (when enabled) the detector's event counters."""
    config = BuildConfig(thread_safety=True, num_vcis=4, tsan=tsan)
    world = World(2, config)

    def main(comm):
        peer = 1 - comm.rank

        def worker(tid):
            sreqs = [comm.Isend(np.full(1, float(i)), dest=peer, tag=tid)
                     for i in range(nmsgs)]
            buf = np.zeros(1)
            for _ in range(nmsgs):
                comm.Recv(buf, source=peer, tag=tid)
            for r in sreqs:
                r.wait()

        workers = [threading.Thread(target=worker, args=(t,))
                   for t in range(_NTHREADS)]
        for w in workers:
            w.start()
        for w in workers:
            w.join()
        comm.barrier()

    t0 = time.perf_counter()
    world.run(main)
    wall_s = time.perf_counter() - t0
    total_msgs = 2 * _NTHREADS * nmsgs
    row = {"msgs_per_s": round(total_msgs / wall_s, 1),
           "wall_s": round(wall_s, 3)}
    if tsan:
        world.tsan.assert_clean()
        row["lock_events"] = world.tsan.n_lock_events
        row["access_events"] = world.tsan.n_access_events
        row["findings"] = len(world.tsan.findings)
    return row


def charged_counts(tsan: bool) -> dict[str, int]:
    """Figure 2 charged instruction counts for the default build."""
    config = BuildConfig(tsan=tsan)
    return {op: measure_instructions(config, op)
            for op in ("isend", "put")}


def run_benchmark(quick: bool = False) -> dict:
    """Collect every measurement; writes ``BENCH_tsan.json`` unless
    *quick* (the CI smoke must not clobber the committed artifact)."""
    nmsgs = 15 if quick else _FLOOD_MSGS
    counts_off = charged_counts(tsan=False)
    counts_on = charged_counts(tsan=True)
    flood_off = threaded_flood(tsan=False, nmsgs=nmsgs)
    flood_on = threaded_flood(tsan=True, nmsgs=nmsgs)
    data = {
        "benchmark": "tsan",
        "charged_instructions": {"disabled": counts_off,
                                 "enabled": counts_on,
                                 "identical": counts_off == counts_on},
        "threaded_flood": {
            "nthreads": _NTHREADS, "num_vcis": 4,
            "messages_per_thread": nmsgs,
            "disabled": flood_off, "enabled": flood_on,
            "enabled_over_disabled": round(
                flood_on["msgs_per_s"] / flood_off["msgs_per_s"], 3),
        },
    }
    if not quick:
        _OUT.write_text(json.dumps(data, indent=2) + "\n")
    return data


def test_bench_tsan(print_artifact):
    """Charged counts identical; flood clean; artifact written."""
    data = run_benchmark()
    assert data["charged_instructions"]["identical"]
    enabled = data["threaded_flood"]["enabled"]
    assert enabled["findings"] == 0
    assert enabled["lock_events"] > 0
    assert enabled["access_events"] > 0
    print_artifact("Race-detector overhead (BENCH_tsan.json)",
                   json.dumps(data, indent=2))
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="short flood; do not write the artifact")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
