"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Every ``bench_*`` module regenerates one table or figure of the paper:
it prints the rows/series the paper reports (add ``-s`` to see them),
asserts the reproduced shape, and times the underlying operation with
pytest-benchmark.
"""

import pytest


def emit(title: str, text: str) -> None:
    """Print a regenerated artifact (visible with ``pytest -s``)."""
    print(f"\n{'=' * 72}\n{title}\n{'=' * 72}\n{text}")


@pytest.fixture(scope="session")
def print_artifact():
    return emit
