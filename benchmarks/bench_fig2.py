"""Figure 2: instruction counts across the five builds.

Regenerates every bar, asserts the published values, and times the
isend critical path of the best (ipo) build through the real runtime.
"""

import numpy as np

from repro.analysis.figures import fig2_data, render_fig2
from repro.core.config import BuildConfig
from repro.datatypes.predefined import BYTE
from repro.runtime.world import World

PUBLISHED = {
    "mpich/original": {"isend": 253, "put": 1342},
    "mpich/ch4 (default)": {"isend": 221, "put": 215},
    "mpich/ch4 (no-err)": {"isend": 147, "put": 143},
    "mpich/ch4 (no-err-single)": {"isend": 141, "put": 129},
    "mpich/ch4 (no-err-single-ipo)": {"isend": 59, "put": 44},
}


def test_fig2_reproduces_published_bars(print_artifact):
    data = fig2_data()
    assert data == PUBLISHED
    print_artifact("Figure 2 (regenerated)", render_fig2(data))


def test_bench_isend_critical_path_wallclock(benchmark):
    """Wall-clock cost of one Isend+Recv pair on the ipo build."""
    world = World(2, BuildConfig.ipo_build())
    buf = np.zeros(1, dtype=np.uint8)

    def roundtrip():
        def main(comm):
            if comm.rank == 0:
                comm.Isend((buf, 1, BYTE), dest=1, tag=0).wait()
            else:
                comm.Recv((np.zeros(1, dtype=np.uint8), 1, BYTE),
                          source=0, tag=0)
        world.run(main)

    benchmark(roundtrip)
