"""Figure 6: the Section 3 standard-extension chain for MPI_ISEND on
the infinitely fast network — "peaking at around 132.8 million messages
per second for a single communication core".
"""

import pytest

from repro.analysis.figures import render_fig6
from repro.core import extensions as ext
from repro.core.config import BuildConfig
from repro.perf.msgrate import extension_chain_rates, pump_messages
from repro.runtime.world import World


def test_fig6_chain_and_peak(print_artifact):
    results = extension_chain_rates()
    print_artifact("Figure 6 (regenerated)", render_fig6(results))

    assert [r.label for r in results] == [
        "minimal_pt2pt", "no_req", "no_match", "glob_rank",
        "no_proc_null"]
    assert [r.instructions for r in results] == [59, 49, 44, 25, 16]
    assert results[-1].rate_msgs_per_s == pytest.approx(132.8e6)

    rates = [r.rate_msgs_per_s for r in results]
    assert rates == sorted(rates)
    # The full chain is a 3.7x rate improvement over minimal pt2pt
    # (59/16 instructions).
    assert rates[-1] / rates[0] == pytest.approx(59 / 16)


def test_bench_all_opts_wallclock_beats_minimal(benchmark):
    world = World(2, BuildConfig.ipo_build())
    benchmark(pump_messages, world, 200, ext.ALL_OPTS_PT2PT)
