"""Background progress engine benchmark (emits BENCH_progress.json).

Two measurements, following the "MPI Progress For All" framing of
strong vs weak progress:

* **Overlap ratio** — a 2-rank overlap mini-app: rank 0 posts an
  ``iallreduce`` and then *computes* (a real sleep) before waiting;
  rank 1 posts its half immediately and times its blocking ``wait``.
  Without an engine the collective's schedule only advances when a
  rank calls into MPI, so rank 1 waits out rank 0's entire compute
  phase (weak progress).  With ``BuildConfig(progress=...)`` the
  engine's continuations chain the schedule forward in the
  background and rank 1's blocking-wait share collapses.  The
  headline number is ``blocked_wait_s / overlapped_wait_s`` per
  engine mode (acceptance floor: >= 3x).
* **Zero-poll completion** — both ranks post an NBC allreduce plus a
  rendezvous-sized Isend/Irecv pair, then make *no* MPI call while
  the wall clock runs; the engine must retire all three requests
  (parked-lane drain for the rendezvous completion, continuation
  chain for the NBC) before the first ``wait``.  The engine's own
  counters are reported as evidence.

Run standalone (writes ``BENCH_progress.json`` at the repo root)::

    PYTHONPATH=src python benchmarks/bench_progress.py [--quick]

or through pytest (same JSON, plus assertions)::

    pytest benchmarks/bench_progress.py -s
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.core.config import BuildConfig
from repro.mpi import reduceops
from repro.runtime.world import World

#: Rank 0's compute phase (real seconds) in the overlap mini-app.
SLEEP_S = 0.4
#: Overlap repetitions (median taken) in the full run.
N_REPS = 3
#: Engine modes measured against the progress=None baseline.
MODES = ("thread", "per-vci")
#: Rendezvous-sized payload for the zero-poll exchange (1 MiB).
RENDEZVOUS_DOUBLES = 1 << 17
_OUT = Path(__file__).resolve().parent.parent / "BENCH_progress.json"


def run_overlap_once(progress, sleep_s: float = SLEEP_S) -> float:
    """One overlap mini-app run; returns rank 1's blocking-wait time.

    Rank 0 posts, computes for *sleep_s*, then waits; rank 1 posts and
    waits immediately.  The returned wall time is how long rank 1's
    ``wait`` blocked — the quantity background progress shrinks.
    """
    config = BuildConfig(progress=progress)

    def fn(comm):
        """Post the collective; rank 0 computes, rank 1 times its wait."""
        if comm.rank == 0:
            req = comm.iallreduce(1.0, op=reduceops.SUM)
            time.sleep(sleep_s)
            req.wait()
            return 0.0
        req = comm.iallreduce(2.0, op=reduceops.SUM)
        t0 = time.monotonic()
        req.wait()
        elapsed = time.monotonic() - t0
        assert req.result == 3.0
        return elapsed

    return World(2, config).run(fn)[1]


def measure_overlap(sleep_s: float = SLEEP_S, reps: int = N_REPS) -> dict:
    """Blocked-vs-overlapped wait comparison across engine modes."""

    def median_wait(progress):
        waits = sorted(run_overlap_once(progress, sleep_s)
                       for _ in range(reps))
        return waits[len(waits) // 2]

    blocked = median_wait(None)
    rows = {"sleep_s": sleep_s, "reps": reps,
            "blocked_wait_s": round(blocked, 4), "modes": {}}
    for mode in MODES:
        overlapped = median_wait(mode)
        rows["modes"][mode] = {
            "overlapped_wait_s": round(overlapped, 4),
            "ratio": round(blocked / max(overlapped, 1e-9), 1),
        }
    return rows


def run_zero_poll(progress: str = "thread", num_vcis: int = 1) -> dict:
    """Post NBC + rendezvous pair, stop calling MPI, check completion.

    Returns per-rank evidence: whether every request was already
    complete at the first post-compute poll, plus the engine counters
    showing *who* completed them (parked-lane drains for the
    rendezvous send, continuation dispatches for the NBC schedule).
    """
    config = BuildConfig(progress=progress, num_vcis=num_vcis)

    def fn(comm):
        """Both ranks: post three requests, sleep, then inspect."""
        peer = 1 - comm.rank
        nbc = comm.iallreduce(float(comm.rank), op=reduceops.SUM)
        big = np.zeros(RENDEZVOUS_DOUBLES)
        sreq = comm.Isend(big, dest=peer, tag=11)
        rreq = comm.Irecv(np.empty(RENDEZVOUS_DOUBLES), source=peer,
                          tag=11)
        time.sleep(0.3)
        complete_before_wait = all(
            r.is_complete() for r in (nbc, sreq, rreq))
        nbc.wait(), sreq.wait(), rreq.wait()
        assert nbc.result == 1.0
        return complete_before_wait, comm.proc.progress.stats()

    results = World(2, config).run(fn)
    return {
        "mode": progress,
        "num_vcis": num_vcis,
        "complete_before_wait": [done for done, _ in results],
        "engine_stats": [stats for _, stats in results],
    }


def run_benchmark(quick: bool = False) -> dict:
    """Run both measurements; returns (and writes) the JSON artifact."""
    sleep_s = 0.25 if quick else SLEEP_S
    reps = 1 if quick else N_REPS
    result = {
        "benchmark": "progress",
        "overlap": measure_overlap(sleep_s, reps),
        "zero_poll": [run_zero_poll("thread", num_vcis=1),
                      run_zero_poll("per-vci", num_vcis=4)],
    }
    if not quick:   # the quick CI smoke must not clobber the artifact
        _OUT.write_text(json.dumps(result, indent=2) + "\n")
    return result


def test_progress_overlap(print_artifact):
    """Acceptance: every engine mode shrinks the blocking wait >= 3x,
    and the zero-poll exchange completes entirely in the background."""
    result = run_benchmark()
    print_artifact("Background progress engine (BENCH_progress.json)",
                   json.dumps(result, indent=2))
    for mode, row in result["overlap"]["modes"].items():
        assert row["ratio"] >= 3.0, mode
    for zp in result["zero_poll"]:
        assert all(zp["complete_before_wait"]), zp["mode"]
        for stats in zp["engine_stats"]:
            assert stats["n_lane_drained"] >= 1
            assert stats["n_continuations"] >= 1
    assert _OUT.exists()


if __name__ == "__main__":
    import argparse
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="single rep + shorter compute phase")
    print(json.dumps(run_benchmark(quick=parser.parse_args().quick),
                     indent=2))
