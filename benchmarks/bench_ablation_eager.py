"""Ablation 4 (DESIGN.md §6): CH3 eager/rendezvous threshold sweep.

Sweeps the threshold across a fixed message size and shows the
completion-time cliff when the message tips into rendezvous (two extra
latency terms on BG/Q's 1.3 us links).
"""

import numpy as np

from repro.core.config import BuildConfig
from repro.fabric.model import BGQ_TORUS
from repro.fabric.topology import Topology
from repro.instrument.report import format_table
from repro.runtime.world import World

MESSAGE_BYTES = 8192


def _send_time(threshold):
    cfg = BuildConfig.original(fabric="bgq", eager_threshold=threshold)
    world = World(2, cfg, topology=Topology(nranks=2, cores_per_node=1))

    def main(comm):
        data = np.zeros(MESSAGE_BYTES // 8, dtype=np.float64)
        if comm.rank == 0:
            t0 = comm.proc.vclock.now
            comm.Isend(data, dest=1, tag=0).wait()
            return comm.proc.vclock.now - t0
        comm.Recv(np.zeros(MESSAGE_BYTES // 8, dtype=np.float64),
                  source=0, tag=0)
        return None

    return world.run(main)[0]


def test_eager_threshold_cliff(print_artifact):
    thresholds = (1024, 4096, MESSAGE_BYTES, 65536)
    times = {t: _send_time(t) for t in thresholds}
    rows = [[t, "rendezvous" if t < MESSAGE_BYTES else "eager",
             times[t] * 1e6] for t in thresholds]
    print_artifact(
        f"Ablation: CH3 eager threshold ({MESSAGE_BYTES}B message)",
        format_table(["Threshold", "Protocol", "Sender time (us)"], rows))

    # Below the message size: rendezvous pays the RTS/CTS round trip.
    assert times[1024] - times[MESSAGE_BYTES] >= 1.8 * BGQ_TORUS.latency_s
    assert times[1024] == times[4096]          # both rendezvous
    assert times[MESSAGE_BYTES] == times[65536]  # both eager


def test_protocol_counters_flip_at_threshold():
    def run(threshold):
        cfg = BuildConfig.original(fabric="bgq",
                                   eager_threshold=threshold)
        world = World(2, cfg,
                      topology=Topology(nranks=2, cores_per_node=1))

        def main(comm):
            data = np.zeros(MESSAGE_BYTES // 8, dtype=np.float64)
            if comm.rank == 0:
                comm.Isend(data, dest=1, tag=0).wait()
                dev = comm.proc.device
                return dev.n_eager, dev.n_rendezvous
            comm.Recv(np.zeros(MESSAGE_BYTES // 8, dtype=np.float64),
                      source=0, tag=0)
            return None

        return world.run(main)[0]

    assert run(1024) == (0, 1)
    assert run(65536) == (1, 0)


def test_bench_rendezvous_send(benchmark):
    benchmark(_send_time, 1024)
