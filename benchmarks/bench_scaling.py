"""Functional strong scaling of the Nek5000 proxy on the runtime.

The laptop-scale cross-check of Figure 7's premise: with the problem
fixed, adding ranks cuts the virtual solve time, efficiency decays as
communication grows relative to work, and CH4 holds higher efficiency
than Original at every point.
"""

from repro.apps.nek.cg import run_nek_cg
from repro.core.config import BuildConfig
from repro.instrument.report import format_table
from repro.perf.scaling import strong_scaling_sweep

RANKS = (1, 2, 4, 8)
NELEMS, ORDER = 64, 3


def _app(comm):
    result = run_nek_cg(comm, nelems=NELEMS, order=ORDER, tol=1e-10)
    assert result.converged


def test_nek_strong_scaling_both_devices(print_artifact):
    sweeps = {}
    for device, cfg in (("ch4", BuildConfig.default(fabric="bgq")),
                        ("ch3", BuildConfig.original(fabric="bgq"))):
        sweeps[device] = strong_scaling_sweep(_app, RANKS, cfg,
                                              ranks_per_node=4)

    rows = []
    for ch4_pt, ch3_pt in zip(sweeps["ch4"], sweeps["ch3"]):
        rows.append([ch4_pt.nranks,
                     ch3_pt.vtime_s * 1e3, ch4_pt.vtime_s * 1e3,
                     ch3_pt.efficiency, ch4_pt.efficiency])
    print_artifact(
        f"Functional strong scaling: Nek CG (E={NELEMS}, N={ORDER})",
        format_table(["Ranks", "Original (ms)", "CH4 (ms)",
                      "Original eff", "CH4 eff"], rows))

    for device, points in sweeps.items():
        times = [p.vtime_s for p in points]
        # Strong scaling: more ranks, less virtual time, throughout.
        assert times == sorted(times, reverse=True), device
        # Efficiency decays but stays meaningful at this scale.
        assert points[-1].efficiency < points[0].efficiency
        assert points[-1].speedup > 1.5

    # CH4 is faster wherever communication exists (a 1-rank solve does
    # no messaging at all, so the devices tie there).
    for ch4_pt, ch3_pt in zip(sweeps["ch4"], sweeps["ch3"]):
        if ch4_pt.nranks == 1:
            assert ch4_pt.vtime_s == ch3_pt.vtime_s
            assert ch4_pt.instructions == ch3_pt.instructions == 0
        else:
            assert ch4_pt.vtime_s < ch3_pt.vtime_s
            assert ch3_pt.instructions > ch4_pt.instructions


def test_bench_scaling_sweep(benchmark):
    def sweep():
        return strong_scaling_sweep(
            _app, (1, 4), BuildConfig.default(fabric="bgq"),
            ranks_per_node=4)

    points = benchmark(sweep)
    assert points[-1].speedup > 1.0
