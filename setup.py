"""Legacy setup shim.

The execution environment has no `wheel` package (offline), so PEP 517
editable installs fail with `invalid command 'bdist_wheel'`.  This shim
enables `pip install -e . --no-build-isolation --no-use-pep517`, which
goes through `setup.py develop` and needs no wheel build.
"""

from setuptools import setup

setup()
