"""Machine-independent collectives (MPICH's topmost-layer algorithms).

Built on the device's point-to-point path, exactly as MPICH's
machine-independent collectives are: a binomial tree for
broadcast/reduce/gather, dissemination for barrier, a ring for
allgather, pairwise exchange for alltoall, and a linear chain for
scans.  Every internal message traverses the device critical path, so
collective timings inherit the per-build instruction overheads — the
mechanism behind the Nek5000 allreduce sensitivity in Figure 7.

Internal messages use tags above the user tag space (>= 1 << 20 within
the reserved range), relying on MPI's non-overtaking guarantee for
correctness across back-to-back collectives of the same kind.
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from repro.errors import MPIErrArg, MPIErrRank
from repro.mpi import reduceops

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator

#: Internal tag block (kept below consts.TAG_UB so device-level checks
#: stay uniform; user code conventionally stays far below this).
_TAG_BASE = 1 << 20
TAG_BARRIER = _TAG_BASE + 1
TAG_BCAST = _TAG_BASE + 2
TAG_REDUCE = _TAG_BASE + 3
TAG_GATHER = _TAG_BASE + 4
TAG_ALLGATHER = _TAG_BASE + 5
TAG_SCATTER = _TAG_BASE + 6
TAG_ALLTOALL = _TAG_BASE + 7
TAG_SCAN = _TAG_BASE + 8
TAG_REDSCAT = _TAG_BASE + 9
TAG_RECDOUBLE = _TAG_BASE + 10
TAG_RING_RS = _TAG_BASE + 11
TAG_RING_AG = _TAG_BASE + 12
TAG_RSAG = _TAG_BASE + 13
TAG_BCAST_RING = _TAG_BASE + 14

#: Payload size above which buffer allreduce switches from
#: recursive doubling (latency-optimal: log P rounds) to
#: reduce+broadcast (bandwidth-friendlier trees) — MPICH-style
#: algorithm selection.
ALLREDUCE_RECDOUBLE_MAX_BYTES = 64 * 1024

#: Payload size above which buffer bcast switches from the binomial
#: tree (latency-optimal) to scatter + ring allgather (van de Geijn —
#: each byte crosses each link once instead of log P times).
BCAST_BINOMIAL_MAX_BYTES = 128 * 1024

#: Segment size for the pipelined ring (chain) broadcast: small enough
#: that the pipeline fills quickly, large enough that per-message
#: overhead stays amortized.
BCAST_RING_SEGMENT = 32 * 1024


def _check_root(comm: "Communicator", root: int) -> None:
    if not 0 <= root < comm.size:
        raise MPIErrRank(f"root {root} outside [0, {comm.size})")


def _op_or_sum(op) -> reduceops.Op:
    return op if op is not None else reduceops.SUM


# ---------------------------------------------------------------------------
# byte-level algorithms
# ---------------------------------------------------------------------------

def barrier(comm: "Communicator") -> None:
    """Dissemination barrier: ceil(log2(P)) rounds of sendrecv."""
    size, rank = comm.size, comm.rank
    if size == 1:
        return
    k = 1
    while k < size:
        dest = (rank + k) % size
        src = (rank - k) % size
        rreq = comm._irecv_bytes(src, TAG_BARRIER)
        comm._send_bytes(b"", dest, TAG_BARRIER)
        rreq.wait()
        k <<= 1


def bcast_bytes(comm: "Communicator",
                data: Optional["bytes | memoryview"],
                root: int) -> "bytes | memoryview":
    """Binomial-tree broadcast of a byte string (the root may pass a
    zero-copy view, which it also gets back)."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if size == 1:
        return data if data is not None else b""
    vrank = (rank - root) % size

    # Receive phase: a non-root rank receives from the rank that differs
    # in its lowest set bit; the loop leaves `mask` at that bit (or at
    # the first power of two >= size for the root, which receives from
    # nobody).
    mask = 1
    while mask < size:
        if vrank & mask:
            src = (rank - mask) % size
            data = comm._recv_bytes(src, TAG_BCAST)
            break
        mask <<= 1

    # Send phase: forward to every lower bit position.
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dest = (rank + mask) % size
            comm._send_bytes(data if data is not None else b"",
                             dest, TAG_BCAST)
        mask >>= 1
    return data if data is not None else b""


def bcast_scatter_allgather(comm: "Communicator",
                            data: Optional["bytes | memoryview"],
                            root: int) -> bytes:
    """Van de Geijn broadcast: scatter P near-equal chunks from the
    root, then ring-allgather them — the bandwidth-optimal large-
    message algorithm MPICH selects above its binomial threshold."""
    _check_root(comm, root)
    size = comm.size
    if size == 1:
        return data if data is not None else b""
    # Everyone needs the total length to size the chunks; ship it on
    # the binomial tree (one tiny message per edge).
    nbytes = bcast_bytes(
        comm, str(len(data)).encode() if comm.rank == root else None,
        root)
    total = int(nbytes)
    chunk = -(-total // size) if total else 0

    chunks = None
    if comm.rank == root:
        # Slice through a memoryview: chunking P ways stays zero-copy
        # whether the payload arrived as bytes or as a buffer view
        # (slicing a bytes object would copy every chunk).
        view = memoryview(data)
        chunks = [view[i * chunk:(i + 1) * chunk] for i in range(size)]
    mine = scatter_bytes(comm, chunks, root)
    # Ring allgather of the chunks, then reassemble in rank order.
    pieces = allgather_bytes(comm, mine)
    return b"".join(pieces)[:total]


def reduce_pairs(comm: "Communicator", payload: bytes, root: int,
                 combine) -> Optional[bytes]:
    """Binomial-tree reduction of byte payloads.

    *combine(lower, higher)* merges two payloads, with *lower* coming
    from the smaller virtual rank — giving canonical rank ordering so
    non-commutative combines behave deterministically.
    """
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    vrank = (rank - root) % size
    result = payload
    mask = 1
    while mask < size:
        if vrank & mask == 0:
            src_v = vrank | mask
            if src_v < size:
                src = (src_v + root) % size
                incoming = comm._recv_bytes(src, TAG_REDUCE)
                result = combine(result, incoming)
        else:
            dest_v = vrank & ~mask
            dest = (dest_v + root) % size
            comm._send_bytes(result, dest, TAG_REDUCE)
            return None
        mask <<= 1
    return result


def allreduce_recursive_doubling(comm: "Communicator", payload: bytes,
                                 combine) -> bytes:
    """Recursive-doubling allreduce: ceil(log2 P) rounds, every rank
    finishing with the full reduction — the latency-optimal algorithm
    MPICH selects for small messages.

    Non-power-of-two sizes use the standard fold: the first ``2r``
    ranks (P = 2^k + r) pre-combine pairwise so a power-of-two core
    runs the doubling, then results fan back out.

    *combine(lower, higher)* must be associative and commutative over
    payload bytes (true for all the numpy elementwise ops used here).
    """
    size, rank = comm.size, comm.rank
    if size == 1:
        return payload

    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    result = payload
    # Fold phase: ranks [0, 2*rem) pair up; odd partners send their
    # contribution to the even partner and drop out of the core.
    if rank < 2 * rem:
        if rank % 2:   # odd: contribute and wait for the final result
            comm._send_bytes(result, rank - 1, TAG_RECDOUBLE)
            result = comm._recv_bytes(rank - 1, TAG_RECDOUBLE)
            return result
        incoming = comm._recv_bytes(rank + 1, TAG_RECDOUBLE)
        result = combine(result, incoming)
        core_rank = rank // 2
    else:
        core_rank = rank - rem

    # Doubling phase over the power-of-two core.
    mask = 1
    while mask < pof2:
        partner_core = core_rank ^ mask
        partner = (partner_core * 2 if partner_core < rem
                   else partner_core + rem)
        rreq = comm._irecv_bytes(partner, TAG_RECDOUBLE)
        comm._send_bytes(result, partner, TAG_RECDOUBLE)
        rreq.wait()
        incoming = rreq.payload if rreq.payload is not None else b""
        # Canonical ordering keeps non-commutative combines sane.
        if partner_core > core_rank:
            result = combine(result, incoming)
        else:
            result = combine(incoming, result)
        mask <<= 1

    # Unfold: send the total back to the folded-out odd ranks.
    if rank < 2 * rem:
        comm._send_bytes(result, rank + 1, TAG_RECDOUBLE)
    return result


def _chunk_bounds(nitems: int, nparts: int) -> list[tuple[int, int]]:
    """Split *nitems* into *nparts* near-equal contiguous ranges (the
    first ``nitems % nparts`` ranges get the extra item)."""
    base, rem = divmod(nitems, nparts)
    bounds = []
    lo = 0
    for i in range(nparts):
        hi = lo + base + (1 if i < rem else 0)
        bounds.append((lo, hi))
        lo = hi
    return bounds


def allreduce_ring(comm: "Communicator",
                   payload: "bytes | memoryview",
                   combine, itemsize: int = 1) -> "bytes | bytearray":
    """Ring allreduce: a P-1-step reduce-scatter of P near-equal chunks
    followed by a P-1-step ring allgather — the bandwidth-optimal
    algorithm (each rank moves ``2 m (P-1)/P`` bytes total, Baidu/NCCL
    style) at the cost of 2(P-1) latency terms.

    Chunk boundaries are aligned to *itemsize* so *combine* always sees
    whole elements.  *combine* must be associative **and** commutative
    (chunk c accumulates contributions in ring-arrival order, not rank
    order) — true for every numpy elementwise op used here.

    *payload* may be a zero-copy borrow: it is copied once into the
    working accumulator at entry and never referenced again.
    """
    size, rank = comm.size, comm.rank
    nelems = len(payload) // itemsize
    bounds = [(lo * itemsize, hi * itemsize)
              for lo, hi in _chunk_bounds(nelems, size)]
    # One owned working copy; every round stages chunks as views of it.
    # Sends are blocking (delivery unpacks in this thread, unexpected
    # arrivals are owned by the engine), so mutating a *different*
    # chunk after each send is safe.  The entry copy is the algorithm's
    # accumulator — required in-place combine target, not avoidable
    # staging.
    work = bytearray(payload)  # bufcheck: ignore[BC504]
    wv = memoryview(work)
    right = (rank + 1) % size
    left = (rank - 1) % size

    # Reduce-scatter phase: step s sends chunk (rank-s) right and
    # combines the incoming partial into chunk (rank-s-1).  After P-1
    # steps rank r owns the fully reduced chunk (r+1) % P.
    for step in range(size - 1):
        slo, shi = bounds[(rank - step) % size]
        rlo, rhi = bounds[(rank - step - 1) % size]
        rreq = comm._irecv_bytes(left, TAG_RING_RS)
        comm._send_bytes(wv[slo:shi], right, TAG_RING_RS)
        rreq.wait()
        incoming = rreq.payload if rreq.payload is not None else b""
        wv[rlo:rhi] = combine(wv[rlo:rhi], incoming)

    # Allgather phase: circulate the reduced chunks the rest of the way
    # around the ring.
    for step in range(size - 1):
        slo, shi = bounds[(rank + 1 - step) % size]
        rlo, rhi = bounds[(rank - step) % size]
        rreq = comm._irecv_bytes(left, TAG_RING_AG)
        comm._send_bytes(wv[slo:shi], right, TAG_RING_AG)
        rreq.wait()
        wv[rlo:rhi] = rreq.payload if rreq.payload is not None else b""
    return work


def allreduce_reduce_scatter_allgather(comm: "Communicator",
                                       payload: "bytes | memoryview",
                                       combine,
                                       itemsize: int = 1,
                                       ) -> "bytes | bytearray":
    """Rabenseifner allreduce: recursive-halving reduce-scatter then
    recursive-doubling allgather — log P latency terms with the ring's
    ``2 m (P-1)/P`` bandwidth, the algorithm MPICH selects for large
    reductions.

    Non-power-of-two sizes use the same fold as
    :func:`allreduce_recursive_doubling`.  Each halving round records
    its parent segment on a stack; the doubling rounds pop it back —
    the partner at every level holds exactly the complement half, so no
    segment metadata crosses the wire.  *combine* must be associative
    and commutative, and *payload* may be a zero-copy borrow (copied
    once at entry).
    """
    size, rank = comm.size, comm.rank
    pof2 = 1
    while pof2 * 2 <= size:
        pof2 *= 2
    rem = size - pof2

    # Owned accumulator (see allreduce_ring): one entry copy by design.
    work = bytearray(payload)  # bufcheck: ignore[BC504]
    wv = memoryview(work)
    nelems = len(work) // itemsize

    # Fold phase (identical discipline to recursive doubling): odd
    # ranks below 2*rem contribute and wait for the final result.
    if rank < 2 * rem:
        if rank % 2:
            comm._send_bytes(wv, rank - 1, TAG_RSAG)
            return comm._recv_bytes(rank - 1, TAG_RSAG)
        incoming = comm._recv_bytes(rank + 1, TAG_RSAG)
        wv[:] = combine(wv, incoming)
        core_rank = rank // 2
    else:
        core_rank = rank - rem

    def core_to_world(cr: int) -> int:
        return cr * 2 if cr < rem else cr + rem

    # Recursive halving: each round splits the live segment, keeps the
    # half on this rank's side of the partner bit, and combines the
    # partner's contribution for that half.
    lo, hi = 0, nelems
    stack: list[tuple[int, int]] = []
    mask = pof2 >> 1
    while mask:
        partner_core = core_rank ^ mask
        partner = core_to_world(partner_core)
        mid = lo + (hi - lo) // 2
        if core_rank < partner_core:
            keep_lo, keep_hi, send_lo, send_hi = lo, mid, mid, hi
        else:
            keep_lo, keep_hi, send_lo, send_hi = mid, hi, lo, mid
        rreq = comm._irecv_bytes(partner, TAG_RSAG)
        comm._send_bytes(wv[send_lo * itemsize:send_hi * itemsize],
                         partner, TAG_RSAG)
        rreq.wait()
        incoming = rreq.payload if rreq.payload is not None else b""
        kept = wv[keep_lo * itemsize:keep_hi * itemsize]
        if partner_core > core_rank:
            merged = combine(kept, incoming)
        else:
            merged = combine(incoming, kept)
        wv[keep_lo * itemsize:keep_hi * itemsize] = merged
        stack.append((lo, hi))
        lo, hi = keep_lo, keep_hi
        mask >>= 1

    # Recursive doubling allgather: pop the segment stack; at each
    # level the partner owns the complement of this rank's segment
    # within the recorded parent, so receiving it restores the parent.
    mask = 1
    while mask < pof2:
        partner_core = core_rank ^ mask
        partner = core_to_world(partner_core)
        plo, phi = stack.pop()
        rreq = comm._irecv_bytes(partner, TAG_RSAG)
        comm._send_bytes(wv[lo * itemsize:hi * itemsize],
                         partner, TAG_RSAG)
        rreq.wait()
        incoming = rreq.payload if rreq.payload is not None else b""
        if lo == plo:          # partner held the upper half
            wv[hi * itemsize:phi * itemsize] = incoming
        else:                  # partner held the lower half
            wv[plo * itemsize:lo * itemsize] = incoming
        lo, hi = plo, phi
        mask <<= 1

    # Unfold: ship the total to the folded-out odd ranks.
    if rank < 2 * rem:
        comm._send_bytes(wv, rank + 1, TAG_RSAG)
    return work


def bcast_ring(comm: "Communicator",
               data: Optional["bytes | memoryview"],
               root: int,
               segment: int = BCAST_RING_SEGMENT,
               ) -> "bytes | bytearray | memoryview":
    """Pipelined chain (ring) broadcast: the payload moves down the
    rank chain in *segment*-byte pieces, so every link carries each
    byte exactly once and the pipeline overlaps the hops — the
    bandwidth-optimal broadcast for long chains once the pipeline
    fills.

    The total length ships first on the binomial tree (one tiny
    message per edge), exactly as :func:`bcast_scatter_allgather`
    does.  The root's payload may be a zero-copy borrow (segments are
    sliced as views and every forward is a blocking send).
    """
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if size == 1:
        return data if data is not None else b""
    nbytes = bcast_bytes(
        comm, str(len(data)).encode() if rank == root else None, root)
    total = int(nbytes)
    vrank = (rank - root) % size
    nxt = (rank + 1) % size if vrank < size - 1 else None
    prev = (rank - 1) % size
    nseg = max(1, -(-total // segment))

    if vrank == 0:
        view = memoryview(data)
        for i in range(nseg):
            comm._send_bytes(view[i * segment:(i + 1) * segment],
                             nxt, TAG_BCAST_RING)
        return data
    out = bytearray(total)
    ov = memoryview(out)
    # Pre-post every segment receive: same (src, tag) stream, so the
    # non-overtaking guarantee keeps segments in order.
    rreqs = [comm._irecv_bytes(prev, TAG_BCAST_RING) for _ in range(nseg)]
    for i, rreq in enumerate(rreqs):
        rreq.wait()
        seg = rreq.payload if rreq.payload is not None else b""
        ov[i * segment:i * segment + len(seg)] = seg
        if nxt is not None:
            comm._send_bytes(seg, nxt, TAG_BCAST_RING)
    return out


def gather_bytes(comm: "Communicator", data: bytes,
                 root: int) -> Optional[list[bytes]]:
    """Linear gather of per-rank byte strings (root receives P-1)."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if rank != root:
        comm._send_bytes(data, root, TAG_GATHER)
        return None
    out: list[Optional[bytes]] = [None] * size
    out[root] = data
    for src in range(size):
        if src != root:
            out[src] = comm._recv_bytes(src, TAG_GATHER)
    return out  # type: ignore[return-value]


def allgather_bytes(comm: "Communicator", data: bytes) -> list[bytes]:
    """Ring allgather: P-1 steps, each forwarding one block."""
    size, rank = comm.size, comm.rank
    blocks: list[Optional[bytes]] = [None] * size
    blocks[rank] = data
    right = (rank + 1) % size
    left = (rank - 1) % size
    send_idx = rank
    for _ in range(size - 1):
        rreq = comm._irecv_bytes(left, TAG_ALLGATHER)
        comm._send_bytes(blocks[send_idx], right, TAG_ALLGATHER)
        rreq.wait()
        send_idx = (send_idx - 1) % size
        blocks[send_idx] = rreq.payload if rreq.payload is not None else b""
    return blocks  # type: ignore[return-value]


def scatter_bytes(comm: "Communicator",
                  chunks: Optional[Sequence["bytes | memoryview"]],
                  root: int) -> "bytes | memoryview":
    """Linear scatter of per-rank byte chunks from the root (chunks
    may be zero-copy views; the root's own chunk is returned as-is)."""
    _check_root(comm, root)
    size, rank = comm.size, comm.rank
    if rank == root:
        if chunks is None or len(chunks) != size:
            raise MPIErrArg(
                f"scatter root needs exactly {size} chunks, got "
                f"{None if chunks is None else len(chunks)}")
        for dest in range(size):
            if dest != root:
                comm._send_bytes(chunks[dest], dest, TAG_SCATTER)
        return chunks[root]
    return comm._recv_bytes(root, TAG_SCATTER)


def alltoall_bytes(comm: "Communicator",
                   chunks: Sequence["bytes | memoryview"],
                   ) -> list["bytes | memoryview"]:
    """Pairwise-exchange alltoall (P-1 sendrecv rounds)."""
    size, rank = comm.size, comm.rank
    if len(chunks) != size:
        raise MPIErrArg(
            f"alltoall needs exactly {size} chunks, got {len(chunks)}")
    out: list[Optional[bytes]] = [None] * size
    out[rank] = chunks[rank]
    for step in range(1, size):
        dest = (rank + step) % size
        src = (rank - step) % size
        rreq = comm._irecv_bytes(src, TAG_ALLTOALL)
        comm._send_bytes(chunks[dest], dest, TAG_ALLTOALL)
        rreq.wait()
        out[src] = rreq.payload if rreq.payload is not None else b""
    return out  # type: ignore[return-value]


def scan_bytes(comm: "Communicator", payload: bytes, combine,
               inclusive: bool = True) -> Optional[bytes]:
    """Linear-chain prefix reduction.

    Inclusive: rank i returns combine(payload_0..i).  Exclusive:
    rank i returns combine(payload_0..i-1); rank 0 returns None.
    """
    size, rank = comm.size, comm.rank
    prefix_below: Optional[bytes] = None
    if rank > 0:
        prefix_below = comm._recv_bytes(rank - 1, TAG_SCAN)
    running = payload if prefix_below is None \
        else combine(prefix_below, payload)
    if rank < size - 1:
        comm._send_bytes(running, rank + 1, TAG_SCAN)
    if inclusive:
        return running
    return prefix_below


# ---------------------------------------------------------------------------
# lowercase: pickled Python objects
# ---------------------------------------------------------------------------

def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


def bcast_obj(comm: "Communicator", obj: Any, root: int) -> Any:
    """Broadcast a Python object from *root*."""
    data = bcast_bytes(comm, _dumps(obj) if comm.rank == root else None,
                       root)
    return pickle.loads(data)


def reduce_obj(comm: "Communicator", obj: Any, op, root: int) -> Any:
    """Reduce Python objects to *root* (None elsewhere)."""
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        return _dumps(the_op.combine_py(pickle.loads(lower),
                                        pickle.loads(higher)))

    result = reduce_pairs(comm, _dumps(obj), root, combine)
    return pickle.loads(result) if result is not None else None


def allreduce_obj(comm: "Communicator", obj: Any, op) -> Any:
    """Allreduce Python objects (reduce to 0, then broadcast)."""
    partial = reduce_obj(comm, obj, op, 0)
    return bcast_obj(comm, partial, 0)


def gather_obj(comm: "Communicator", obj: Any,
               root: int) -> Optional[list]:
    """Gather Python objects to *root*."""
    chunks = gather_bytes(comm, _dumps(obj), root)
    if chunks is None:
        return None
    return [pickle.loads(c) for c in chunks]


def allgather_obj(comm: "Communicator", obj: Any) -> list:
    """Allgather Python objects."""
    return [pickle.loads(c) for c in allgather_bytes(comm, _dumps(obj))]


def scatter_obj(comm: "Communicator", objs: Optional[Sequence],
                root: int) -> Any:
    """Scatter a per-rank list of Python objects from *root*."""
    chunks = None
    if comm.rank == root:
        if objs is None:
            raise MPIErrArg("scatter root must supply the object list")
        chunks = [_dumps(o) for o in objs]
    return pickle.loads(scatter_bytes(comm, chunks, root))


def alltoall_obj(comm: "Communicator", objs: Sequence) -> list:
    """All-to-all personalized exchange of Python objects."""
    chunks = alltoall_bytes(comm, [_dumps(o) for o in objs])
    return [pickle.loads(c) for c in chunks]


def reduce_scatter_block_obj(comm: "Communicator", objs: Sequence,
                             op) -> Any:
    """MPI_REDUCE_SCATTER_BLOCK over Python objects: each rank supplies
    one object per destination rank; rank i receives the op-reduction
    of everyone's i-th object."""
    if len(objs) != comm.size:
        raise MPIErrArg(
            f"reduce_scatter needs exactly {comm.size} objects, "
            f"got {len(objs)}")
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        a, b = pickle.loads(lower), pickle.loads(higher)
        return _dumps([the_op.combine_py(x, y) for x, y in zip(a, b)])

    reduced = reduce_pairs(comm, _dumps(list(objs)), 0, combine)
    chunks = None
    if comm.rank == 0:
        chunks = [_dumps(item) for item in pickle.loads(reduced)]
    return pickle.loads(scatter_bytes(comm, chunks, 0))


def scan_obj(comm: "Communicator", obj: Any, op) -> Any:
    """Inclusive prefix reduction of Python objects."""
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        return _dumps(the_op.combine_py(pickle.loads(lower),
                                        pickle.loads(higher)))

    return pickle.loads(scan_bytes(comm, _dumps(obj), combine))


def exscan_obj(comm: "Communicator", obj: Any, op) -> Any:
    """Exclusive prefix reduction (None on rank 0)."""
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        return _dumps(the_op.combine_py(pickle.loads(lower),
                                        pickle.loads(higher)))

    result = scan_bytes(comm, _dumps(obj), combine, inclusive=False)
    return pickle.loads(result) if result is not None else None


# ---------------------------------------------------------------------------
# capitalized: numpy buffers
# ---------------------------------------------------------------------------

def _as_contig(array: np.ndarray, what: str) -> np.ndarray:
    if not isinstance(array, np.ndarray):
        raise MPIErrArg(f"{what} must be a numpy array")
    if not array.flags.c_contiguous:
        raise MPIErrArg(f"{what} must be C-contiguous")
    return array


def bcast_buf(comm: "Communicator", array: np.ndarray, root: int,
              algorithm: Optional[str] = None) -> None:
    """Broadcast a numpy buffer in place, selecting the binomial tree
    for small payloads and scatter+allgather (van de Geijn) beyond
    :data:`BCAST_BINOMIAL_MAX_BYTES`; *algorithm* forces
    ``"binomial"``, ``"scatter_allgather"``, or ``"ring"`` (the
    pipelined chain)."""
    arr = _as_contig(array, "bcast buffer")
    if algorithm is None:
        algorithm = ("binomial" if arr.nbytes <= BCAST_BINOMIAL_MAX_BYTES
                     else "scatter_allgather")
    # The root's payload is a borrow of the user buffer: every forward
    # on the tree is a blocking send, and the matching engine owns any
    # unexpected copy, so no materialization is needed.
    payload = (arr.view(np.uint8).reshape(-1).data
               if comm.rank == root else None)
    if algorithm == "binomial":
        data = bcast_bytes(comm, payload, root)
    elif algorithm == "scatter_allgather":
        data = bcast_scatter_allgather(comm, payload, root)
    elif algorithm == "ring":
        data = bcast_ring(comm, payload, root)
    else:
        raise MPIErrArg(f"unknown bcast algorithm {algorithm!r}")
    if comm.rank != root:
        if len(data) != arr.nbytes:
            raise MPIErrArg(
                f"bcast buffer is {arr.nbytes} bytes on rank {comm.rank} "
                f"but the root sent {len(data)}")
        arr.view(np.uint8).reshape(-1)[:] = np.frombuffer(data, np.uint8)


def reduce_buf(comm: "Communicator", sendbuf: np.ndarray,
               recvbuf: Optional[np.ndarray], op, root: int) -> None:
    """Reduce numpy buffers elementwise into *recvbuf* at *root*."""
    send = _as_contig(sendbuf, "reduce sendbuf")
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        a = np.frombuffer(lower, dtype=send.dtype)
        b = np.frombuffer(higher, dtype=send.dtype)
        return the_op.combine_arrays(a, b).tobytes()

    # Snapshot once up front: the binomial tree holds the running
    # payload across log P combine rounds, and bounding the user-buffer
    # borrow to the entry keeps the rounds free to interleave recvs.
    result = reduce_pairs(comm, send.tobytes(), root, combine)  # bufcheck: ignore[BC504]
    if comm.rank == root:
        if recvbuf is None:
            raise MPIErrArg("reduce root needs a recvbuf")
        recv = _as_contig(recvbuf, "reduce recvbuf")
        if recv.nbytes != len(result):
            raise MPIErrArg(
                f"recvbuf holds {recv.nbytes} bytes, reduction produced "
                f"{len(result)}")
        recv.view(np.uint8).reshape(-1)[:] = np.frombuffer(result, np.uint8)


def allreduce_buf(comm: "Communicator", sendbuf: np.ndarray,
                  recvbuf: np.ndarray, op,
                  algorithm: Optional[str] = None) -> None:
    """Allreduce numpy buffers with MPICH-style algorithm selection:
    recursive doubling for small payloads, reduce+broadcast beyond
    :data:`ALLREDUCE_RECDOUBLE_MAX_BYTES`.  *algorithm* forces
    ``"recursive_doubling"``, ``"reduce_bcast"``, ``"ring"``, or
    ``"reduce_scatter_allgather"`` (Rabenseifner)."""
    send = _as_contig(sendbuf, "allreduce sendbuf")
    recv = _as_contig(recvbuf, "allreduce recvbuf")
    if recv.nbytes != send.nbytes:
        raise MPIErrArg("allreduce buffers must have equal byte size")
    if algorithm is None:
        algorithm = ("recursive_doubling"
                     if send.nbytes <= ALLREDUCE_RECDOUBLE_MAX_BYTES
                     else "reduce_bcast")
    if algorithm == "reduce_bcast":
        reduce_buf(comm, send, recv, op, 0)
        bcast_buf(comm, recv, 0)
        return
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        a = np.frombuffer(lower, dtype=send.dtype)
        b = np.frombuffer(higher, dtype=send.dtype)
        return the_op.combine_arrays(a, b).tobytes()

    if algorithm == "recursive_doubling":
        # Snapshot up front: recursive doubling reuses the running
        # payload across rounds with pre-posted receives in flight.
        result = allreduce_recursive_doubling(comm, send.tobytes(),  # bufcheck: ignore[BC504]
                                              combine)
    elif algorithm == "ring":
        # The ring owns its working copy at entry, so the sendbuf
        # borrow never outlives the call.
        result = allreduce_ring(comm, send.view(np.uint8).reshape(-1).data,
                                combine, send.dtype.itemsize)
    elif algorithm == "reduce_scatter_allgather":
        result = allreduce_reduce_scatter_allgather(
            comm, send.view(np.uint8).reshape(-1).data,
            combine, send.dtype.itemsize)
    else:
        raise MPIErrArg(f"unknown allreduce algorithm {algorithm!r}")
    recv.view(np.uint8).reshape(-1)[:] = np.frombuffer(result, np.uint8)


def allgather_buf(comm: "Communicator", sendbuf: np.ndarray,
                  recvbuf: np.ndarray) -> None:
    """Allgather equal-size blocks: recvbuf holds P x sendbuf."""
    send = _as_contig(sendbuf, "allgather sendbuf")
    recv = _as_contig(recvbuf, "allgather recvbuf")
    if recv.nbytes != send.nbytes * comm.size:
        raise MPIErrArg(
            f"allgather recvbuf must hold {comm.size} blocks of "
            f"{send.nbytes} bytes, has {recv.nbytes}")
    # Zero-copy staging: the ring's forwards are blocking sends (the
    # engine owns any unexpected copy), and the result list — the only
    # place the sendbuf borrow is stored — dies before this returns,
    # so no up-front snapshot is needed.
    blocks = allgather_bytes(comm, send.view(np.uint8).reshape(-1).data)
    flat = recv.view(np.uint8).reshape(-1)
    for i, block in enumerate(blocks):
        flat[i * send.nbytes:(i + 1) * send.nbytes] = \
            np.frombuffer(block, np.uint8)


def gather_buf(comm: "Communicator", sendbuf: np.ndarray,
               recvbuf: Optional[np.ndarray], root: int) -> None:
    """MPI_GATHER of equal-size numpy blocks into *recvbuf* at root."""
    send = _as_contig(sendbuf, "gather sendbuf")
    # Own bytes up front: the root stores its own block in the gathered
    # result list, so a sendbuf borrow would escape the call.
    chunks = gather_bytes(comm, send.tobytes(), root)  # bufcheck: ignore[BC504]
    if comm.rank != root:
        return
    if recvbuf is None:
        raise MPIErrArg("gather root needs a recvbuf")
    recv = _as_contig(recvbuf, "gather recvbuf")
    if recv.nbytes != send.nbytes * comm.size:
        raise MPIErrArg(
            f"gather recvbuf must hold {comm.size} blocks of "
            f"{send.nbytes} bytes, has {recv.nbytes}")
    flat = recv.view(np.uint8).reshape(-1)
    for i, block in enumerate(chunks):
        flat[i * send.nbytes:(i + 1) * send.nbytes] = \
            np.frombuffer(block, np.uint8)


def scatter_buf(comm: "Communicator", sendbuf: Optional[np.ndarray],
                recvbuf: np.ndarray, root: int) -> None:
    """MPI_SCATTER of equal-size numpy blocks from *sendbuf* at root."""
    recv = _as_contig(recvbuf, "scatter recvbuf")
    chunks = None
    if comm.rank == root:
        if sendbuf is None:
            raise MPIErrArg("scatter root needs a sendbuf")
        send = _as_contig(sendbuf, "scatter sendbuf")
        if send.nbytes != recv.nbytes * comm.size:
            raise MPIErrArg(
                f"scatter sendbuf must hold {comm.size} blocks of "
                f"{recv.nbytes} bytes, has {send.nbytes}")
        # Per-rank chunks are borrows of sendbuf — each linear send is
        # blocking and the engine materializes unexpected arrivals.
        raw = send.view(np.uint8).reshape(-1)
        chunks = [raw[i * recv.nbytes:(i + 1) * recv.nbytes].data
                  for i in range(comm.size)]
    block = scatter_bytes(comm, chunks, root)
    recv.view(np.uint8).reshape(-1)[:] = np.frombuffer(block, np.uint8)


def reduce_scatter_block_buf(comm: "Communicator", sendbuf: np.ndarray,
                             recvbuf: np.ndarray, op) -> None:
    """MPI_REDUCE_SCATTER_BLOCK: reduce P equal blocks elementwise and
    scatter block i to rank i (reduce-to-root + scatter)."""
    send = _as_contig(sendbuf, "reduce_scatter sendbuf")
    recv = _as_contig(recvbuf, "reduce_scatter recvbuf")
    if send.nbytes != recv.nbytes * comm.size:
        raise MPIErrArg(
            f"reduce_scatter sendbuf must hold {comm.size} blocks of "
            f"{recv.nbytes} bytes, has {send.nbytes}")
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        a = np.frombuffer(lower, dtype=send.dtype)
        b = np.frombuffer(higher, dtype=send.dtype)
        return the_op.combine_arrays(a, b).tobytes()

    reduced = reduce_pairs(comm, send.view(np.uint8).reshape(-1).data,
                           0, combine)
    chunks = None
    if comm.rank == 0:
        # The reduction output is already owned bytes (or, at P=1, the
        # sendbuf borrow itself) — chunk it with views either way.
        raw = np.frombuffer(reduced, np.uint8)
        chunks = [raw[i * recv.nbytes:(i + 1) * recv.nbytes].data
                  for i in range(comm.size)]
    block = scatter_bytes(comm, chunks, 0)
    recv.view(np.uint8).reshape(-1)[:] = np.frombuffer(block, np.uint8)


def scan_buf(comm: "Communicator", sendbuf: np.ndarray,
             recvbuf: np.ndarray, op) -> None:
    """MPI_SCAN of numpy buffers (inclusive prefix)."""
    send = _as_contig(sendbuf, "scan sendbuf")
    recv = _as_contig(recvbuf, "scan recvbuf")
    if send.nbytes != recv.nbytes:
        raise MPIErrArg("scan buffers must match in size")
    the_op = _op_or_sum(op)

    def combine(lower: bytes, higher: bytes) -> bytes:
        a = np.frombuffer(lower, dtype=send.dtype)
        b = np.frombuffer(higher, dtype=send.dtype)
        return the_op.combine_arrays(a, b).tobytes()

    # Snapshot up front: rank i's payload may be returned as-is (rank
    # 0) or forwarded down the chain after the local recv completes.
    result = scan_bytes(comm, send.tobytes(), combine)  # bufcheck: ignore[BC504]
    recv.view(np.uint8).reshape(-1)[:] = np.frombuffer(result, np.uint8)


def alltoall_buf(comm: "Communicator", sendbuf: np.ndarray,
                 recvbuf: np.ndarray) -> None:
    """Alltoall of equal-size blocks (sendbuf/recvbuf hold P blocks)."""
    send = _as_contig(sendbuf, "alltoall sendbuf")
    recv = _as_contig(recvbuf, "alltoall recvbuf")
    if send.nbytes != recv.nbytes:
        raise MPIErrArg("alltoall buffers must have equal byte size")
    if send.nbytes % comm.size:
        raise MPIErrArg(
            f"alltoall buffer of {send.nbytes} bytes does not split into "
            f"{comm.size} blocks")
    blk = send.nbytes // comm.size
    # Chunk sendbuf with views: every pairwise round is a blocking
    # sendrecv, so the borrows never outlive the exchange.
    raw = send.view(np.uint8).reshape(-1)
    chunks = [raw[i * blk:(i + 1) * blk].data
              for i in range(comm.size)]
    out = alltoall_bytes(comm, chunks)
    flat = recv.view(np.uint8).reshape(-1)
    for i, block in enumerate(out):
        flat[i * blk:(i + 1) * blk] = np.frombuffer(block, np.uint8)
