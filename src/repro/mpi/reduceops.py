"""Reduction operators (MPI_SUM, MPI_MAX, ...).

Each :class:`Op` provides three faces:

* ``apply_numpy(incoming, target_view)`` — in-place elementwise
  ``target = op(incoming, target)``; the RMA accumulate path
  (MPI-3.1's "op applied at the target") and buffer collectives use
  this, fully vectorized;
* ``combine_arrays(a, b)`` — pure combination for collective trees;
* ``combine_py(a, b)`` — generic-object reduction for the lowercase
  (pickled) collective API.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import MPIErrOp


@dataclass(frozen=True)
class Op:
    """One reduction operator."""

    name: str
    commutative: bool
    _np: Callable[[np.ndarray, np.ndarray], np.ndarray]
    _py: Callable[[object, object], object]

    def apply_numpy(self, incoming: np.ndarray, target: np.ndarray) -> None:
        """In-place ``target[:] = op(incoming, target)`` (RMA semantics)."""
        if incoming.shape != target.shape:
            raise MPIErrOp(
                f"{self.name}: shape mismatch {incoming.shape} vs "
                f"{target.shape}")
        target[:] = self._np(incoming, target)

    def combine_arrays(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise ``op(a, b)`` on equal-shaped arrays."""
        if a.shape != b.shape:
            raise MPIErrOp(
                f"{self.name}: shape mismatch {a.shape} vs {b.shape}")
        return self._np(a, b)

    def combine_py(self, a: object, b: object) -> object:
        """Combine two Python objects (generic collective path)."""
        return self._py(a, b)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Op({self.name})"


def _logical(fn: Callable[[np.ndarray, np.ndarray], np.ndarray]):
    """Logical ops produce 0/1 in the operand dtype, per the standard."""
    def wrapped(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return fn(a != 0, b != 0).astype(a.dtype)
    return wrapped


SUM = Op("MPI_SUM", True, np.add, lambda a, b: a + b)
PROD = Op("MPI_PROD", True, np.multiply, lambda a, b: a * b)
MAX = Op("MPI_MAX", True, np.maximum, max)
MIN = Op("MPI_MIN", True, np.minimum, min)
LAND = Op("MPI_LAND", True, _logical(np.logical_and),
          lambda a, b: bool(a) and bool(b))
LOR = Op("MPI_LOR", True, _logical(np.logical_or),
         lambda a, b: bool(a) or bool(b))
BAND = Op("MPI_BAND", True, np.bitwise_and, lambda a, b: a & b)
BOR = Op("MPI_BOR", True, np.bitwise_or, lambda a, b: a | b)
BXOR = Op("MPI_BXOR", True, np.bitwise_xor, lambda a, b: a ^ b)

#: RMA-only: MPI_REPLACE — accumulate that overwrites (what MPI_PUT is
#: to MPI_ACCUMULATE).
REPLACE = Op("MPI_REPLACE", False, lambda inc, tgt: inc, lambda a, b: a)
#: RMA-only: MPI_NO_OP — used with GET_ACCUMULATE for atomic reads.
NO_OP = Op("MPI_NO_OP", False, lambda inc, tgt: tgt, lambda a, b: b)

#: All operators by MPI name.
BY_NAME: dict[str, Op] = {
    op.name: op
    for op in (SUM, PROD, MAX, MIN, LAND, LOR, BAND, BOR, BXOR,
               REPLACE, NO_OP)
}
