"""MPI-4 sessions-style init/finalize for joining a running world.

The world-model of MPI-3.1 (and of :meth:`repro.runtime.world.World.run`)
is static: every rank exists at init and exits together.  The MPI-4
Sessions proposal breaks that coupling — an execution context can
initialize MPI independently, build communicators from process sets,
and finalize without a world-wide fence.  This module reproduces the
part the dynamic-process layer needs: a :class:`Session` lets *the
calling thread* join an already-running world as a fresh dynamic rank,
talk to it through connect/accept, and leave again while everyone
else keeps running.

A session rank is not a member of any pre-existing communicator
(groups snapshot their roster at creation); its communication surface
is the session's own single-rank communicator plus whatever
intercommunicators :meth:`Session.connect` produces.  On a detector
build the rank registers for heartbeat monitoring at init and departs
at finalize — so a session that ends cleanly is never declared dead,
while one whose thread silently vanishes is confirmed dead and
cleaned up through the ULFM path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import MPIErrComm
from repro.instrument.counter import install_counter, uninstall_counter
from repro.mpi.comm import Communicator
from repro.mpi.group import Group
from repro.mpi.intercomm import Intercommunicator, comm_connect

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.world import World


class Session:
    """One execution context's session with a running world.

    Construction is ``MPI_Session_init``: the calling thread becomes a
    fresh dynamic rank of *world* (the world grows by one), with its
    own instruction counter installed on the thread and — on a
    detector build — heartbeat monitoring registered.  Use as a
    context manager, or call :meth:`finalize` explicitly.

    Parameters
    ----------
    world:
        The running world to join.
    name:
        Label for the session's single-rank communicator.
    """

    def __init__(self, world: "World", name: str = "session"):
        (proc,) = world.add_ranks(1)
        self.world = world
        self.proc = proc
        self.name = name
        self._finalized = False
        install_counter(proc.counter)
        detector = proc.detector
        if detector is not None:
            detector.register()
        #: The session's own communicator (``MPI_Comm_create_from_group``
        #: over the singleton process set) — the local side of every
        #: :meth:`connect`.
        self.comm = Communicator(
            proc, Group([proc.world_rank]), world.alloc_context_id(),
            name=f"{name}.{proc.world_rank}")

    @property
    def finalized(self) -> bool:
        """Has :meth:`finalize` run?"""
        return self._finalized

    def connect(self, port_name: str, retries: int = 20,
                backoff_s: float = 0.05) -> Intercommunicator:
        """Connect this session to a server's port
        (:func:`repro.mpi.intercomm.comm_connect` over the session
        communicator)."""
        self._check_active("connect")
        return comm_connect(port_name, self.comm, retries=retries,
                            backoff_s=backoff_s)

    def finalize(self) -> None:
        """``MPI_Session_finalize``: leave the world cleanly.

        Drains the rank's reliability stash (quiescence), departs the
        heartbeat roster (a finalized session is never declared dead),
        and uninstalls the thread's instruction counter.  Idempotent.
        """
        if self._finalized:
            return
        self._finalized = True
        proc = self.proc
        if proc.faults is not None:
            proc.faults.drain()
        detector = proc.detector
        if detector is not None:
            detector.depart()
        uninstall_counter()

    def _check_active(self, op: str) -> None:
        """Raise on use after finalize."""
        if self._finalized:
            raise MPIErrComm(f"session {self.name!r} is finalized",
                             op=op)

    def __enter__(self) -> "Session":
        """Context-manager entry (the session is already initialized)."""
        return self

    def __exit__(self, *exc_info) -> None:
        """Context-manager exit: finalize."""
        self.finalize()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "finalized" if self._finalized else "active"
        return f"Session(rank={self.proc.world_rank}, {state})"
