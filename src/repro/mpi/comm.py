"""Communicators: the user-facing MPI handle.

Two API families, mpi4py-style:

* lowercase (``send``/``recv``/``bcast``/...) move pickled Python
  objects — convenient, slower;
* capitalized (``Send``/``Recv``/``Bcast``/...) move numpy/buffer data
  through the packed fast path.

Plus the paper's Section 3 extension entry points:
``isend_global`` (§3.1), ``dup_predefined`` (§3.3), ``isend_npn``
(§3.4), ``isend_noreq`` + ``waitall_noreq`` (§3.5), ``isend_nomatch``
/ ``recv_nomatch`` (§3.6), and ``isend_all_opts`` (§3.7).
"""

from __future__ import annotations

import pickle
from typing import TYPE_CHECKING, Any, Optional, Sequence

import numpy as np

from repro.consts import (ANY_SOURCE, ANY_TAG, MAX_PREDEFINED_COMMS,
                          PROC_NULL, UNDEFINED)
from repro.core import extensions as ext
from repro.core.ops import RecvOp, SendOp
from repro.errors import MPIErrArg, MPIErrComm, MPIError
from repro.ft.recovery import ERRORS_ARE_FATAL, dispatch_comm_error
from repro.instrument.categories import Category, Subsystem
from repro.instrument.costs import COSTS
from repro.instrument.fastpath import fastpath
from repro.mpi import collectives as coll
from repro.mpi.group import Group
from repro.mpi.info import Info
from repro.mpi.pt2pt import (BYTE_REF, mpi_entry, normalize_buffer,
                             validate_recv, validate_send)
from repro.mpi.status import Status
from repro.runtime.ranktrans import build_translation
from repro.runtime.request import Request

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc


class Communicator:
    """One rank's view of an MPI communicator."""

    def __init__(self, proc: "Proc", group: Group, ctx: int,
                 predefined_handle: bool = False,
                 name: str = "comm", info: Optional[Info] = None):
        self.proc = proc
        self.group = group
        self.ctx = ctx
        self.is_predefined_handle = predefined_handle
        self.name = name
        self.info = info if info is not None else Info()
        self.freed = False
        self.translation = build_translation(
            group.world_ranks, proc.config.rank_translation)
        rank = group.rank_of_world(proc.world_rank)
        if rank == UNDEFINED:
            raise MPIErrComm(
                f"world rank {proc.world_rank} is not in this communicator")
        self._rank = rank
        # §3.5 requestless-operation bookkeeping (owning thread only).
        self._noreq_count = 0
        self._noreq_latest_s = 0.0
        # Collective-strategy override (None inherits the build's
        # communicator_name) and the lazily-built subcommunicator
        # cache for the topology-aware compositions.
        self.coll_strategy: Optional[str] = None
        self._hier_ctx = None
        # MPI-3.1 default error handler: errors abort the job.  See
        # set_errhandler for the ULFM-style alternatives.
        self._errhandler = ERRORS_ARE_FATAL

    @classmethod
    def world_view(cls, proc: "Proc") -> "Communicator":
        """This rank's MPI_COMM_WORLD.

        Covers the *static* ranks only: processes born later through
        ``MPI_Comm_spawn`` or a :class:`~repro.mpi.session.Session`
        are not members (groups snapshot their roster at creation —
        the MPI dynamic-process rule) and reach the world through the
        intercommunicator their spawn/connect produced."""
        from repro.runtime.world import World
        size = getattr(proc.world, "static_nranks", proc.world.nranks)
        if proc.world_rank >= size:
            raise MPIErrComm(
                f"dynamic rank {proc.world_rank} is not a member of "
                "the static MPI_COMM_WORLD; use the spawn/connect "
                "intercommunicator or a Session communicator")
        return cls(proc, Group(range(size)), World.WORLD_CTX,
                   name="MPI_COMM_WORLD")

    # -- basic queries -----------------------------------------------------

    @property
    def rank(self) -> int:
        """This process's rank in the communicator (MPI_COMM_RANK)."""
        return self._rank

    @property
    def size(self) -> int:
        """Number of ranks in the communicator (MPI_COMM_SIZE)."""
        return self.group.size

    @property
    def world_size(self) -> int:
        """Size of MPI_COMM_WORLD (for global-rank validation)."""
        return self.proc.world.nranks

    @property
    def is_inter(self) -> bool:
        """MPI_COMM_TEST_INTER: False for intracommunicators."""
        return False

    def split_type_shared(self) -> "Communicator":
        """MPI_COMM_SPLIT_TYPE(MPI_COMM_TYPE_SHARED): the ranks sharing
        this rank's node."""
        from repro.mpi.intercomm import split_type_shared
        return split_type_shared(self)

    def create_intercomm(self, local_leader: int, peer_comm,
                         remote_leader: int, tag: int = 0):
        """MPI_INTERCOMM_CREATE (collective over this communicator)."""
        from repro.mpi.intercomm import intercomm_create
        return intercomm_create(self, local_leader, peer_comm,
                                remote_leader, tag)

    @property
    def world(self):
        """The owning runtime world."""
        return self.proc.world

    def world_rank_of(self, comm_rank: int) -> int:
        """Translate a communicator rank to its MPI_COMM_WORLD rank —
        the MPI_GROUP_TRANSLATE_RANKS step of the §3.1 recipe."""
        return self.translation.world_rank(comm_rank)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"Communicator({self.name!r}, rank={self._rank}/"
                f"{self.size}, ctx={self.ctx})")

    # ------------------------------------------------------------------ #
    # error handlers (MPI-3.1 §8.3) and fault-tolerant issue paths        #
    # ------------------------------------------------------------------ #

    def set_errhandler(self, handler) -> None:
        """MPI_COMM_SET_ERRHANDLER: *handler* is ``ERRORS_ARE_FATAL``
        (the default — any communication error aborts the whole job),
        ``ERRORS_RETURN`` (errors raise to the caller only), or a
        Python callable ``handler(comm, exc)`` invoked before the
        exception propagates (the MPI_Comm_create_errhandler shape)."""
        self._errhandler = handler

    def get_errhandler(self):
        """MPI_COMM_GET_ERRHANDLER: the current error handler."""
        return self._errhandler

    def _ft_isend(self, op: SendOp) -> Optional[Request]:
        """Issue a send through the fault-tolerance wrapping: refuse
        revoked communicators, and route any communication error
        through this communicator's error handler before it
        propagates.  Only reached when the build has a fault plan
        (plain builds call the device directly — zero added work)."""
        faults = self.proc.faults
        if faults is None:   # routed here only under the caller's guard
            return self.proc.device.isend(op)
        faults.check_self()   # collective internals bypass mpi_entry
        faults.check_comm(self)
        try:
            return self.proc.device.isend(op)
        except MPIError as exc:
            dispatch_comm_error(self, exc)
            raise

    def _ft_irecv(self, op: RecvOp) -> Request:
        """Receive-side twin of :meth:`_ft_isend`."""
        faults = self.proc.faults
        if faults is None:   # routed here only under the caller's guard
            return self.proc.device.irecv(op)
        faults.check_self()   # collective internals bypass mpi_entry
        faults.check_comm(self)
        try:
            return self.proc.device.irecv(op)
        except MPIError as exc:
            dispatch_comm_error(self, exc)
            raise

    # ------------------------------------------------------------------ #
    # internal byte-stream primitives (collectives, pickled API)          #
    # ------------------------------------------------------------------ #

    def _isend_bytes(self, data: "bytes | memoryview", dest: int,
                     tag: int, sync: bool = False,
                     flags: ext.ExtFlags = ext.NONE) -> Optional[Request]:
        buf = np.frombuffer(data, np.uint8) if data else np.empty(0, np.uint8)
        op = SendOp(buf=buf, count=len(data), dtref=BYTE_REF, dest=dest,
                    tag=tag, comm=self, flags=flags, sync=sync)
        if self.proc.faults is not None:
            return self._ft_isend(op)
        return self.proc.device.isend(op)

    def _irecv_bytes(self, source: int, tag: int,
                     flags: ext.ExtFlags = ext.NONE) -> Request:
        op = RecvOp(buf=None, count=0, dtref=BYTE_REF, source=source,
                    tag=tag, comm=self, flags=flags)
        if self.proc.faults is not None:
            return self._ft_irecv(op)
        return self.proc.device.irecv(op)

    def _send_bytes(self, data: bytes, dest: int, tag: int) -> None:
        req = self._isend_bytes(data, dest, tag)
        req.wait()
        self.proc.request_pool.release(req)

    def _recv_bytes(self, source: int, tag: int) -> bytes:
        req = self._irecv_bytes(source, tag)
        req.wait()
        data = req.payload if req.payload is not None else b""
        self.proc.request_pool.release(req)
        return data

    # ------------------------------------------------------------------ #
    # lowercase: pickled Python objects                                   #
    # ------------------------------------------------------------------ #

    def send(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking standard-mode send of a pickled object."""
        req = self.isend(obj, dest, tag)
        req.wait()
        self.proc.request_pool.release(req)

    def isend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking send of a pickled object."""
        return self._object_send(obj, dest, tag, sync=False)

    def ssend(self, obj: Any, dest: int, tag: int = 0) -> None:
        """Blocking synchronous-mode send (completes on match)."""
        req = self.issend(obj, dest, tag)
        req.wait()
        self.proc.request_pool.release(req)

    def issend(self, obj: Any, dest: int, tag: int = 0) -> Request:
        """Nonblocking synchronous-mode send."""
        return self._object_send(obj, dest, tag, sync=True)

    def _object_send(self, obj: Any, dest: int, tag: int,
                     sync: bool) -> Request:
        proc, c = self.proc, COSTS
        data = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check,
                       name="MPI_Issend" if sync else "MPI_Isend",
                       vci=proc.vci_for(self.ctx, dest, tag)):
            if proc.config.error_checking:
                validate_send(proc, c.isend_error, self, data, len(data),
                              BYTE_REF, dest, tag)
            return self._isend_bytes(data, dest, tag, sync=sync)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Any:
        """Blocking receive of a pickled object."""
        req = self.irecv(source, tag)
        req.wait()
        payload = None if req.source == PROC_NULL else req.payload
        self.proc.request_pool.release(req)
        if payload is None:
            return None
        return pickle.loads(payload)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG) -> Request:
        """Nonblocking receive of a pickled object; ``request.wait()``
        then ``pickle.loads(request.payload)`` (or use :meth:`recv`)."""
        proc, c = self.proc, COSTS
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check,
                       name="MPI_Irecv",
                       vci=proc.vci_for_recv(self.ctx, source, tag)):
            if proc.config.error_checking:
                validate_recv(proc, c.isend_error, self, 0, BYTE_REF,
                              source, tag)
            return self._irecv_bytes(source, tag)

    def sendrecv(self, obj: Any, dest: int, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Any:
        """Combined send+receive (deadlock-free ordering)."""
        rreq = self.irecv(source, recvtag)
        sreq = self.isend(obj, dest, sendtag)
        sreq.wait()
        self.proc.request_pool.release(sreq)
        rreq.wait()
        payload = None if rreq.source == PROC_NULL else rreq.payload
        self.proc.request_pool.release(rreq)
        if payload is None:
            return None
        return pickle.loads(payload)

    # ------------------------------------------------------------------ #
    # capitalized: buffer API                                             #
    # ------------------------------------------------------------------ #

    def Send(self, buf, dest: int, tag: int = 0) -> None:
        """Blocking buffer send; *buf* is an ndarray or (buf, count,
        datatype) tuple."""
        req = self.Isend(buf, dest, tag)
        req.wait()
        self.proc.request_pool.release(req)

    def Isend(self, buf, dest: int, tag: int = 0) -> Request:
        """Nonblocking buffer send — the paper's measured MPI_ISEND path."""
        return self._buffer_send(buf, dest, tag, sync=False)

    def Ssend(self, buf, dest: int, tag: int = 0) -> None:
        """Blocking synchronous buffer send."""
        req = self.Issend(buf, dest, tag)
        req.wait()
        self.proc.request_pool.release(req)

    def Issend(self, buf, dest: int, tag: int = 0) -> Request:
        """Nonblocking synchronous buffer send."""
        return self._buffer_send(buf, dest, tag, sync=True)

    def _buffer_send(self, buf, dest: int, tag: int, sync: bool,
                     flags: ext.ExtFlags = ext.NONE) -> Optional[Request]:
        proc, c = self.proc, COSTS
        data, count, dtref = normalize_buffer(buf)
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check,
                       name="MPI_Isend",
                       vci=proc.vci_for(self.ctx, dest, tag, flags.nomatch)):
            if proc.config.error_checking:
                validate_send(proc, c.isend_error, self, data, count, dtref,
                              dest, tag, global_rank=flags.global_rank)
            op = SendOp(buf=data, count=count, dtref=dtref, dest=dest,
                        tag=tag, comm=self, flags=flags, sync=sync)
            if proc.faults is not None:
                return self._ft_isend(op)
            return self.proc.device.isend(op)

    def Recv(self, buf, source: int = ANY_SOURCE,
             tag: int = ANY_TAG) -> Status:
        """Blocking buffer receive; returns the :class:`Status`."""
        req = self.Irecv(buf, source, tag)
        req.wait()
        status = Status.from_request(req)
        self.proc.request_pool.release(req)
        return status

    def Irecv(self, buf, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Request:
        """Nonblocking buffer receive."""
        return self._buffer_recv(buf, source, tag)

    def _buffer_recv(self, buf, source: int, tag: int,
                     flags: ext.ExtFlags = ext.NONE) -> Request:
        proc, c = self.proc, COSTS
        data, count, dtref = normalize_buffer(buf)
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check,
                       name="MPI_Irecv",
                       vci=proc.vci_for_recv(self.ctx, source, tag,
                                             flags.nomatch)):
            if proc.config.error_checking:
                validate_recv(proc, c.isend_error, self, count, dtref,
                              source, tag)
            op = RecvOp(buf=data, count=count, dtref=dtref, source=source,
                        tag=tag, comm=self, flags=flags)
            if proc.faults is not None:
                return self._ft_irecv(op)
            return self.proc.device.irecv(op)

    def Sendrecv(self, sendbuf, dest: int, recvbuf, source: int = ANY_SOURCE,
                 sendtag: int = 0, recvtag: int = ANY_TAG) -> Status:
        """Combined buffer send+receive."""
        rreq = self.Irecv(recvbuf, source, recvtag)
        sreq = self.Isend(sendbuf, dest, sendtag)
        sreq.wait()
        self.proc.request_pool.release(sreq)
        rreq.wait()
        status = Status.from_request(rreq)
        self.proc.request_pool.release(rreq)
        return status

    # -- persistent operations ---------------------------------------------------

    def Send_init(self, buf, dest: int, tag: int = 0):
        """MPI_SEND_INIT: build a persistent send (validate and resolve
        once, ``start()`` each iteration)."""
        from repro.mpi.persist import PersistentSend
        return PersistentSend(self, buf, dest, tag)

    def Recv_init(self, buf, source: int = ANY_SOURCE, tag: int = ANY_TAG):
        """MPI_RECV_INIT: build a persistent receive."""
        from repro.mpi.persist import PersistentRecv
        return PersistentRecv(self, buf, source, tag)

    # -- nonblocking collectives -----------------------------------------------

    def ibarrier(self):
        """MPI_IBARRIER; drive with ``request.test()``/``wait()``."""
        from repro.mpi import nbc
        return nbc.ibarrier(self)

    def ibcast(self, obj: Any = None, root: int = 0):
        """MPI_IBCAST of a pickled object; ``request.result`` holds the
        payload after completion."""
        from repro.mpi import nbc
        return nbc.ibcast(self, obj, root)

    def iallreduce(self, obj: Any, op=None):
        """MPI_IALLREDUCE of pickled objects."""
        from repro.mpi import nbc
        return nbc.iallreduce(self, obj, op)

    def iallgather(self, obj: Any):
        """MPI_IALLGATHER of pickled objects."""
        from repro.mpi import nbc
        return nbc.iallgather(self, obj)

    def igather(self, obj: Any, root: int = 0):
        """MPI_IGATHER of pickled objects."""
        from repro.mpi import nbc
        return nbc.igather(self, obj, root)

    def iscatter(self, objs: Optional[Sequence] = None, root: int = 0):
        """MPI_ISCATTER of pickled objects."""
        from repro.mpi import nbc
        return nbc.iscatter(self, list(objs) if objs is not None
                            else None, root)

    # -- topology ------------------------------------------------------------------

    def create_cart(self, dims: Sequence[int], periods: Sequence[bool],
                    reorder: bool = False):
        """MPI_CART_CREATE: a Cartesian-topology communicator (None on
        ranks beyond the grid)."""
        from repro.mpi.cart import cart_create
        return cart_create(self, dims, periods, reorder)

    # -- probing -------------------------------------------------------------

    def probe(self, source: int = ANY_SOURCE,
              tag: int = ANY_TAG) -> Status:
        """Blocking MPI_PROBE: status of the next matching message."""
        san = self.proc.sanitizer
        if san is not None:
            # Register the probe as a blocked OR-wait (concrete edge
            # only for a concrete source) so deadlock detection covers
            # probe loops; raises MSD201 instead of blocking forever.
            san.note_block_probe(
                self, source, tag,
                None if source == ANY_SOURCE
                else self.world_rank_of(source))
        try:
            env, nbytes = self.proc.engine.probe(
                self.ctx, source, tag, abort_event=self.world.abort_event)
        finally:
            if san is not None:
                san.note_unblock()
        return Status(source=env.src, tag=env.tag, count_bytes=nbytes)

    def iprobe(self, source: int = ANY_SOURCE,
               tag: int = ANY_TAG) -> Optional[Status]:
        """Nonblocking MPI_IPROBE."""
        hit = self.proc.engine.iprobe(self.ctx, source, tag)
        if hit is None:
            return None
        env, nbytes = hit
        return Status(source=env.src, tag=env.tag, count_bytes=nbytes)

    # ------------------------------------------------------------------ #
    # Section 3 extension entry points                                    #
    # ------------------------------------------------------------------ #

    def isend_global(self, buf, dest_world: int, tag: int = 0) -> Request:
        """§3.1 MPI_ISEND_GLOBAL: *dest_world* is an MPI_COMM_WORLD rank
        (pre-translated via ``group.translate_ranks``); the context
        isolation is still this communicator's.  Not valid across
        different worlds (not "intercommunicator-safe")."""
        return self._buffer_send(buf, dest_world, tag, sync=False,
                                 flags=ext.GLOBAL_RANK)

    def isend_npn(self, buf, dest: int, tag: int = 0) -> Request:
        """§3.4 MPI_ISEND_NPN: the caller guarantees *dest* is not
        MPI_PROC_NULL."""
        return self._buffer_send(buf, dest, tag, sync=False,
                                 flags=ext.NO_PROC_NULL)

    def isend_noreq(self, buf, dest: int, tag: int = 0) -> None:
        """§3.5 MPI_ISEND_NOREQ: no request returned; complete in bulk
        with :meth:`waitall_noreq`."""
        self._buffer_send(buf, dest, tag, sync=False, flags=ext.NOREQ)

    def isend_nomatch(self, buf, dest: int, tag: int = 0) -> Request:
        """§3.6 MPI_ISEND_NOMATCH: no source/tag match bits; the message
        matches a ``recv_nomatch`` in arrival order within this
        communicator."""
        return self._buffer_send(buf, dest, tag, sync=False,
                                 flags=ext.NOMATCH)

    def isend_all_opts(self, buf, dest_world: int, tag: int = 0) -> None:
        """§3.7 MPI_ISEND_ALL_OPTS: every proposal at once — global
        rank, static handle, no PROC_NULL, no request, no match bits.
        The paper's 16-instruction path."""
        self._buffer_send(buf, dest_world, tag, sync=False,
                          flags=ext.ALL_OPTS_PT2PT)

    def irecv_nomatch(self, buf) -> Request:
        """Arrival-order receive matching ``isend_nomatch`` senders."""
        return self._buffer_recv(buf, ANY_SOURCE, ANY_TAG,
                                 flags=ext.NOMATCH)

    def recv_nomatch(self, buf) -> Status:
        """Blocking arrival-order receive (see :meth:`irecv_nomatch`)."""
        req = self.irecv_nomatch(buf)
        req.wait()
        return Status.from_request(req)

    def irecv_all_opts(self, buf) -> Request:
        """Receive counterpart used with :meth:`isend_all_opts` streams
        (arrival-order matching; a request IS returned — the receive
        side must deliver data somewhere)."""
        return self._buffer_recv(buf, ANY_SOURCE, ANY_TAG,
                                 flags=ext.ALL_OPTS_PT2PT.with_(noreq=False))

    # -- §3.5 bulk completion ---------------------------------------------------

    def note_noreq_issue(self, complete_s: float) -> None:
        """Device callback: one requestless operation issued (owning
        thread only — no locking needed)."""
        self._noreq_count += 1
        if complete_s > self._noreq_latest_s:
            self._noreq_latest_s = complete_s

    @property
    def noreq_pending(self) -> int:
        """Requestless operations issued since the last waitall_noreq."""
        return self._noreq_count

    @fastpath
    def waitall_noreq(self) -> int:
        """§3.5 MPI_COMM_WAITALL: complete every requestless operation
        on this communicator; returns how many were completed."""
        proc = self.proc
        with proc.timed_call():
            proc.charge(Category.MANDATORY, COSTS.noreq_waitall,
                        Subsystem.REQUEST_MGMT)
            proc.vclock.merge(self._noreq_latest_s)
            done = self._noreq_count
            self._noreq_count = 0
            self._noreq_latest_s = 0.0
            return done

    # ------------------------------------------------------------------ #
    # collectives (delegating to repro.mpi.collectives)                   #
    # ------------------------------------------------------------------ #

    def collective_strategy(self) -> str:
        """The effective collective strategy: this communicator's
        override (set by :func:`repro.mpi.hier.create_communicator`)
        or the build's ``communicator_name``."""
        return self.coll_strategy or self.proc.config.communicator_name

    def barrier(self) -> None:
        """MPI_BARRIER (dissemination algorithm)."""
        coll.barrier(self)

    def bcast(self, obj: Any = None, root: int = 0) -> Any:
        """MPI_BCAST of a pickled object (binomial tree)."""
        return coll.bcast_obj(self, obj, root)

    def reduce(self, obj: Any, op=None, root: int = 0) -> Any:
        """MPI_REDUCE of pickled objects; *op* is a
        :class:`repro.mpi.reduceops.Op` (default SUM)."""
        return coll.reduce_obj(self, obj, op, root)

    def allreduce(self, obj: Any, op=None) -> Any:
        """MPI_ALLREDUCE of pickled objects."""
        return coll.allreduce_obj(self, obj, op)

    def gather(self, obj: Any, root: int = 0) -> Optional[list]:
        """MPI_GATHER of pickled objects (binomial tree)."""
        return coll.gather_obj(self, obj, root)

    def allgather(self, obj: Any) -> list:
        """MPI_ALLGATHER of pickled objects (ring)."""
        return coll.allgather_obj(self, obj)

    def scatter(self, objs: Optional[Sequence], root: int = 0) -> Any:
        """MPI_SCATTER of pickled objects."""
        return coll.scatter_obj(self, objs, root)

    def alltoall(self, objs: Sequence) -> list:
        """MPI_ALLTOALL of pickled objects (pairwise exchange)."""
        return coll.alltoall_obj(self, objs)

    def scan(self, obj: Any, op=None) -> Any:
        """MPI_SCAN (inclusive prefix reduction)."""
        return coll.scan_obj(self, obj, op)

    def exscan(self, obj: Any, op=None) -> Any:
        """MPI_EXSCAN (exclusive prefix; None on rank 0)."""
        return coll.exscan_obj(self, obj, op)

    def reduce_scatter_block(self, objs: Sequence, op=None) -> Any:
        """MPI_REDUCE_SCATTER_BLOCK over pickled objects."""
        return coll.reduce_scatter_block_obj(self, objs, op)

    def Bcast(self, array: np.ndarray, root: int = 0,
              algorithm: Optional[str] = None) -> None:
        """MPI_BCAST of a numpy buffer, in place (binomial for small
        payloads, van-de-Geijn scatter+allgather for large; ``"ring"``
        selects the pipelined chain).  An explicit *algorithm* always
        forces the flat schedule; otherwise the communicator's
        strategy (``communicator_name``) may route through the
        topology-aware composition (:mod:`repro.mpi.hier`)."""
        from repro.mpi import hier
        if algorithm is None:
            if hier.routes_hier(self):
                hier.bcast(self, array, root)
                return
            if self.collective_strategy() == "naive":
                algorithm = "binomial"
        coll.bcast_buf(self, array, root, algorithm)

    def Gather(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               root: int = 0) -> None:
        """MPI_GATHER of equal-size numpy blocks."""
        coll.gather_buf(self, sendbuf, recvbuf, root)

    def Scatter(self, sendbuf: Optional[np.ndarray], recvbuf: np.ndarray,
                root: int = 0) -> None:
        """MPI_SCATTER of equal-size numpy blocks."""
        coll.scatter_buf(self, sendbuf, recvbuf, root)

    def Reduce_scatter_block(self, sendbuf: np.ndarray,
                             recvbuf: np.ndarray, op=None) -> None:
        """MPI_REDUCE_SCATTER_BLOCK of numpy buffers."""
        coll.reduce_scatter_block_buf(self, sendbuf, recvbuf, op)

    def Scan(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
             op=None) -> None:
        """MPI_SCAN of numpy buffers."""
        coll.scan_buf(self, sendbuf, recvbuf, op)

    def Reduce(self, sendbuf: np.ndarray, recvbuf: Optional[np.ndarray],
               op=None, root: int = 0) -> None:
        """MPI_REDUCE of numpy buffers into *recvbuf* at root (the
        communicator's strategy may route through the leader
        composition, :mod:`repro.mpi.hier`)."""
        from repro.mpi import hier
        if hier.routes_hier(self):
            hier.reduce(self, sendbuf, recvbuf, op, root)
            return
        coll.reduce_buf(self, sendbuf, recvbuf, op, root)

    def Allreduce(self, sendbuf: np.ndarray, recvbuf: np.ndarray,
                  op=None, algorithm: Optional[str] = None) -> None:
        """MPI_ALLREDUCE of numpy buffers (recursive doubling for
        small payloads, reduce+bcast for large; *algorithm* forces
        ``"recursive_doubling"``, ``"reduce_bcast"``, ``"ring"``, or
        ``"reduce_scatter_allgather"``).  Without an explicit
        *algorithm*, the communicator's strategy
        (``communicator_name``) may route through the hierarchical or
        two-dimensional composition (:mod:`repro.mpi.hier`)."""
        from repro.mpi import hier
        if algorithm is None:
            if hier.routes_hier(self):
                hier.allreduce(self, sendbuf, recvbuf, op)
                return
            if self.collective_strategy() == "naive":
                algorithm = "reduce_bcast"
        coll.allreduce_buf(self, sendbuf, recvbuf, op, algorithm)

    def Allgather(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """MPI_ALLGATHER of equal-size numpy blocks (ring)."""
        coll.allgather_buf(self, sendbuf, recvbuf)

    def Alltoall(self, sendbuf: np.ndarray, recvbuf: np.ndarray) -> None:
        """MPI_ALLTOALL of equal-size numpy blocks (pairwise)."""
        coll.alltoall_buf(self, sendbuf, recvbuf)

    # ------------------------------------------------------------------ #
    # communicator management                                             #
    # ------------------------------------------------------------------ #

    def _agree_ctx(self) -> int:
        """Collectively agree on a fresh context id (rank 0 allocates)."""
        val = self.world.alloc_context_id() if self._rank == 0 else None
        return coll.bcast_obj(self, val, 0)

    def dup(self, name: Optional[str] = None) -> "Communicator":
        """MPI_COMM_DUP: same group, fresh context."""
        ctx = self._agree_ctx()
        return Communicator(self.proc, self.group, ctx,
                            name=name or f"{self.name}+dup",
                            info=self.info.dup())

    def dup_predefined(self, handle: int) -> "Communicator":
        """§3.3 MPI_COMM_DUP_PREDEFINED: populate one of the precreated
        communicator handles (``MPI_COMM_1`` ... ``MPI_COMM_
        {MAX_PREDEFINED_COMMS}``); object lookups on the result are
        static-index loads."""
        if not 0 <= handle < MAX_PREDEFINED_COMMS:
            raise MPIErrArg(
                f"predefined handle {handle} outside "
                f"[0, {MAX_PREDEFINED_COMMS})")
        ctx = self._agree_ctx()
        return Communicator(self.proc, self.group, ctx,
                            predefined_handle=True,
                            name=f"MPI_COMM_{handle + 1}")

    def split(self, color: int, key: int = 0) -> Optional["Communicator"]:
        """MPI_COMM_SPLIT: partition by *color*, order by (key, rank).

        Returns None for color == UNDEFINED."""
        entries = coll.allgather_obj(
            self, (color, key, self._rank, self.proc.world_rank))
        my_colors = sorted({c for c, _, _, _ in entries if c != UNDEFINED})
        # One fresh context per color, agreed collectively.
        ctxs = None
        if self._rank == 0:
            ctxs = {c: self.world.alloc_context_id() for c in my_colors}
        ctxs = coll.bcast_obj(self, ctxs, 0)
        if color == UNDEFINED:
            return None
        members = sorted(((k, r, wr) for c, k, r, wr in entries
                          if c == color))
        new_group = Group(wr for _, _, wr in members)
        return Communicator(self.proc, new_group, ctxs[color],
                            name=f"{self.name}.split({color})")

    def create(self, group: Group) -> Optional["Communicator"]:
        """MPI_COMM_CREATE: new communicator over *group* (collective
        over this communicator; ranks outside *group* get None)."""
        ctx = self._agree_ctx()
        if self.proc.world_rank not in group:
            return None
        return Communicator(self.proc, group, ctx,
                            name=f"{self.name}.create")

    def free(self) -> None:
        """MPI_COMM_FREE: mark the handle unusable."""
        if self.ctx == 0:
            raise MPIErrComm("cannot free MPI_COMM_WORLD")
        self.freed = True

    def spawn(self, fn, nprocs: int, args: tuple = (),
              root: int = 0) -> "Communicator":
        """MPI_COMM_SPAWN (see
        :func:`repro.mpi.intercomm.comm_spawn`): start *nprocs* fresh
        dynamic ranks running ``fn(child_comm, *args)``; returns the
        parent↔children intercommunicator."""
        from repro.mpi.intercomm import comm_spawn
        return comm_spawn(self, fn, nprocs, args=args, root=root)

    def get_parent(self) -> "Communicator":
        """MPI_COMM_GET_PARENT (see
        :func:`repro.mpi.intercomm.get_parent`)."""
        from repro.mpi.intercomm import get_parent
        return get_parent(self)
