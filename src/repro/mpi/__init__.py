"""The MPI-3.1 API layer (MPICH's machine-independent "MPI layer").

This is the layer users call.  Its responsibilities mirror the paper's
walk-through of MPI_PUT: (1) check the arguments when error checking
is built in, (2) look up the communication object, (3) take the
thread-safe or thread-unsafe path — then hand the full operation to
the abstract device (CH4 or CH3).

API conventions follow mpi4py where the two overlap: lowercase methods
(``send``/``recv``/``bcast``...) communicate pickled Python objects;
capitalized methods (``Send``/``Recv``/``Bcast``...) communicate
numpy/buffer data at near-raw speed.
"""

from repro.mpi.group import Group
from repro.mpi.info import Info
from repro.mpi.status import Status
from repro.mpi.reduceops import (
    Op,
    SUM,
    PROD,
    MAX,
    MIN,
    LAND,
    LOR,
    BAND,
    BOR,
    REPLACE,
    NO_OP,
)
from repro.mpi.comm import Communicator
from repro.mpi.rma import Window, WindowState, RWLock
from repro.mpi.cart import CartComm, cart_create, dims_create
from repro.mpi.intercomm import (Intercommunicator, close_port, comm_accept,
                                 comm_connect, comm_spawn, get_parent,
                                 intercomm_create, open_port)
from repro.mpi.nbc import NBCRequest
from repro.mpi.session import Session
from repro.mpi.persist import PersistentRecv, PersistentSend, startall
from repro.mpi.packapi import mpi_pack, mpi_unpack, pack_size
from repro.mpi.tools import PvarSession, pvar_get_info, pvar_names

__all__ = [
    "CartComm",
    "cart_create",
    "dims_create",
    "Intercommunicator",
    "intercomm_create",
    "open_port",
    "close_port",
    "comm_accept",
    "comm_connect",
    "comm_spawn",
    "get_parent",
    "Session",
    "NBCRequest",
    "PersistentRecv",
    "PersistentSend",
    "startall",
    "mpi_pack",
    "mpi_unpack",
    "pack_size",
    "PvarSession",
    "pvar_get_info",
    "pvar_names",
    "Group",
    "Info",
    "Status",
    "Op",
    "SUM",
    "PROD",
    "MAX",
    "MIN",
    "LAND",
    "LOR",
    "BAND",
    "BOR",
    "REPLACE",
    "NO_OP",
    "Communicator",
    "Window",
    "WindowState",
    "RWLock",
]
