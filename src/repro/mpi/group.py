"""MPI groups: ordered sets of world ranks.

Groups are the value type behind communicators, and
``translate_ranks`` is the paper's Section 3.1 vehicle: the
application pre-translates its neighbors' communicator ranks to
MPI_COMM_WORLD ranks once, then uses the ``*_global`` fast-path calls.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.consts import UNDEFINED
from repro.errors import MPIErrGroup, MPIErrRank

#: MPI_IDENT / MPI_SIMILAR / MPI_UNEQUAL comparison results.
IDENT = "ident"
SIMILAR = "similar"
UNEQUAL = "unequal"


class Group:
    """An immutable ordered set of world ranks."""

    __slots__ = ("_ranks", "_index")

    def __init__(self, world_ranks: Iterable[int]):
        ranks = tuple(world_ranks)
        if len(set(ranks)) != len(ranks):
            raise MPIErrGroup(f"duplicate ranks in group: {ranks}")
        for r in ranks:
            if r < 0:
                raise MPIErrRank(f"negative world rank {r}")
        self._ranks = ranks
        self._index = {wr: i for i, wr in enumerate(ranks)}

    # -- queries -----------------------------------------------------------

    @property
    def size(self) -> int:
        """MPI_GROUP_SIZE."""
        return len(self._ranks)

    @property
    def world_ranks(self) -> tuple[int, ...]:
        """The underlying world ranks, group order."""
        return self._ranks

    def rank_of_world(self, world_rank: int) -> int:
        """Group rank of *world_rank*, or UNDEFINED if absent
        (MPI_GROUP_RANK semantics)."""
        return self._index.get(world_rank, UNDEFINED)

    def world_rank(self, group_rank: int) -> int:
        """World rank at position *group_rank*."""
        if not 0 <= group_rank < len(self._ranks):
            raise MPIErrRank(
                f"group rank {group_rank} out of range [0, {self.size})")
        return self._ranks[group_rank]

    def __contains__(self, world_rank: int) -> bool:
        return world_rank in self._index

    def __len__(self) -> int:
        return len(self._ranks)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Group) and self._ranks == other._ranks

    def __hash__(self) -> int:
        return hash(self._ranks)

    # -- set operations (MPI_GROUP_UNION etc.) ------------------------------

    def union(self, other: "Group") -> "Group":
        """Ranks of self, then ranks of other not in self (MPI order)."""
        extra = [r for r in other._ranks if r not in self._index]
        return Group((*self._ranks, *extra))

    def intersection(self, other: "Group") -> "Group":
        """Ranks of self that are also in other, self's order."""
        return Group(r for r in self._ranks if r in other._index)

    def difference(self, other: "Group") -> "Group":
        """Ranks of self not in other, self's order."""
        return Group(r for r in self._ranks if r not in other._index)

    def incl(self, group_ranks: Sequence[int]) -> "Group":
        """MPI_GROUP_INCL: subgroup at the given positions, that order."""
        return Group(self.world_rank(r) for r in group_ranks)

    def excl(self, group_ranks: Sequence[int]) -> "Group":
        """MPI_GROUP_EXCL: subgroup without the given positions."""
        drop = set(group_ranks)
        for r in drop:
            self.world_rank(r)  # validates range
        return Group(wr for i, wr in enumerate(self._ranks) if i not in drop)

    def range_incl(self, triplets: Sequence[tuple[int, int, int]]) -> "Group":
        """MPI_GROUP_RANGE_INCL over (first, last, stride) triplets."""
        picked: list[int] = []
        for first, last, stride in triplets:
            if stride == 0:
                raise MPIErrGroup("zero stride in range_incl")
            step = stride
            stop = last + (1 if step > 0 else -1)
            picked.extend(range(first, stop, step))
        return self.incl(picked)

    # -- comparison and translation ------------------------------------------

    def compare(self, other: "Group") -> str:
        """MPI_GROUP_COMPARE: IDENT, SIMILAR, or UNEQUAL."""
        if self._ranks == other._ranks:
            return IDENT
        if set(self._ranks) == set(other._ranks):
            return SIMILAR
        return UNEQUAL

    def translate_ranks(self, ranks: Sequence[int],
                        other: "Group") -> list[int]:
        """MPI_GROUP_TRANSLATE_RANKS: map positions in self to positions
        in *other* (UNDEFINED where absent).

        This is the first step of the paper's Section 3.1 recipe: an
        application translates its communicator-ranked neighbors to
        MPI_COMM_WORLD ranks, then communicates with
        ``isend_global``."""
        return [other.rank_of_world(self.world_rank(r)) for r in ranks]

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Group({list(self._ranks)!r})"
