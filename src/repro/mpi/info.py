"""MPI_Info: string key/value hints attached to comms, windows, files.

Section 3.6 of the paper discusses (and rejects) an info-hint
alternative to ``isend_nomatch``; the hint machinery itself is part of
the MPI-3.1 surface, so it exists here with full set/get/dup/delete
semantics.
"""

from __future__ import annotations

from typing import Iterator, Optional

from repro.errors import MPIErrInfo

#: Maximum key length per the standard (MPI_MAX_INFO_KEY).
MAX_INFO_KEY = 255
#: Maximum value length per the standard (MPI_MAX_INFO_VAL).
MAX_INFO_VAL = 1024


class Info:
    """A mutable ordered mapping of string hints."""

    __slots__ = ("_data",)

    def __init__(self, initial: Optional[dict[str, str]] = None):
        self._data: dict[str, str] = {}
        if initial:
            for key, value in initial.items():
                self.set(key, value)

    def set(self, key: str, value: str) -> None:
        """MPI_INFO_SET with standard length limits."""
        if not isinstance(key, str) or not key:
            raise MPIErrInfo("info key must be a nonempty string")
        if len(key) > MAX_INFO_KEY:
            raise MPIErrInfo(f"info key exceeds {MAX_INFO_KEY} chars")
        if not isinstance(value, str):
            raise MPIErrInfo("info value must be a string")
        if len(value) > MAX_INFO_VAL:
            raise MPIErrInfo(f"info value exceeds {MAX_INFO_VAL} chars")
        self._data[key] = value

    def get(self, key: str, default: Optional[str] = None) -> Optional[str]:
        """MPI_INFO_GET; returns *default* when the key is absent."""
        return self._data.get(key, default)

    def delete(self, key: str) -> None:
        """MPI_INFO_DELETE; missing keys are an error per the standard."""
        if key not in self._data:
            raise MPIErrInfo(f"info key {key!r} not set")
        del self._data[key]

    def dup(self) -> "Info":
        """MPI_INFO_DUP."""
        return Info(dict(self._data))

    @property
    def nkeys(self) -> int:
        """MPI_INFO_GET_NKEYS."""
        return len(self._data)

    def keys(self) -> Iterator[str]:
        """Keys in insertion order (MPI_INFO_GET_NTHKEY ordering)."""
        return iter(self._data.keys())

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Info) and self._data == other._data

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Info({self._data!r})"


#: The standard's MPI_INFO_NULL.
INFO_NULL: Optional[Info] = None
