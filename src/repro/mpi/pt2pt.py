"""MPI-layer point-to-point machinery: validation, entry charging.

This module is the paper's "MPI layer" for sends/receives: the
function-call overhead, the (optional) error checking, and the
(optional) thread-safety gate all live here, each charging its Table 1
cost only when the build actually performs it.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Iterator, Optional, Union

import numpy as np

from repro.consts import ANY_SOURCE, ANY_TAG, PROC_NULL, TAG_UB
from repro.datatypes.pack import Buffer
from repro.datatypes.predefined import BYTE, from_numpy_dtype
from repro.datatypes.usage import DatatypeRef, classify, compile_time
from repro.errors import (
    MPIError,
    MPIErrBuffer,
    MPIErrComm,
    MPIErrCount,
    MPIErrDatatype,
    MPIErrRank,
    MPIErrTag,
)
from repro.instrument.categories import Category
from repro.instrument.costs import ErrorCheckCosts
from repro.instrument.fastpath import fastpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator
    from repro.runtime.proc import Proc

#: Reference used for the internal byte-stream sends of collectives
#: and the pickled-object API (a Class-2 compile-time-constant usage).
BYTE_REF = compile_time(BYTE)


@fastpath
@contextmanager
def mpi_entry(proc: "Proc", function_call_cost: int,
              thread_check_cost: int,
              name: Optional[str] = None,
              vci=None) -> Iterator[None]:
    """One MPI API entry: function-call prologue charge (unless inlined
    away by ipo), thread-safety charge + critical section (unless a
    single-threaded build).  When the rank's timeline is enabled and a
    *name* is given, the call's virtual-time span is recorded.

    *vci* routes the modeled CS: a routed entry acquires only its
    owning VCI's lock (per-VCI sharding, ``num_vcis > 1``) and records
    CS occupancy on that VCI; unrouted entries — wildcard receives,
    persistent/collective internals, every ``num_vcis=1`` call — take
    ``proc.cs_lock``, which is VCI 0's lock.  Charged instruction
    counts are identical either way (the lock choice and the occupancy
    note are real-Python bookkeeping only)."""
    config = proc.config
    t0 = proc.vclock.now if proc.timeline is not None else 0.0
    if proc.sanitizer is not None and name is not None:
        proc.sanitizer.note_api(name)   # labels leak/deadlock reports
    if proc.faults is not None:
        proc.faults.check_self()   # stash flush + fault-plan rank kill
    try:  # audit: allow[FP204] - timeline bookkeeping must not leak
        with proc.timed_call():
            if not config.ipo:
                proc.charge(Category.FUNCTION_CALL, function_call_cost)
            if config.thread_safety:
                proc.charge(Category.THREAD_SAFETY, thread_check_cost)
                cs_lock = proc.cs_lock if vci is None else vci.lock
                with cs_lock:  # audit: allow[FP203] - the modeled CS
                    if vci is None:
                        yield
                    else:
                        cs_entry_total = proc.counter.total
                        yield
                        vci.note_cs(proc.counter.total - cs_entry_total)
            else:
                yield
    except MPIError as exc:
        # Annotate every error escaping an MPI entry with the raising
        # rank and the operation name, so error-handler callbacks and
        # teardown reports can say which call on which rank failed.
        if exc.rank is None:
            exc.rank = proc.world_rank
        if exc.op is None and name is not None:
            exc.op = name
        raise
    finally:
        if proc.timeline is not None and name is not None:
            from repro.analysis.timeline import TimelineEvent
            proc.timeline.append(
                TimelineEvent(name=name, t0=t0, t1=proc.vclock.now))


# ---------------------------------------------------------------------------
# buffer normalization
# ---------------------------------------------------------------------------

BufArg = Union[np.ndarray, tuple]


def normalize_buffer(arg: BufArg) -> tuple[Buffer, int, DatatypeRef]:
    """Normalize a user buffer argument.

    Accepted forms (mpi4py-flavoured):

    * a numpy array — count and datatype inferred (Class-2 usage);
    * ``(buf, count, datatype_or_ref)`` — explicit triple, where the
      datatype slot takes a :class:`Datatype` or a classified
      :class:`DatatypeRef` (Class-3 / derived usage).
    * ``(buf, datatype_or_ref)`` — count inferred from the buffer.
    """
    if isinstance(arg, np.ndarray):
        return arg, arg.size, compile_time(from_numpy_dtype(arg.dtype))
    if isinstance(arg, tuple):
        if len(arg) == 3:
            buf, count, dt = arg
            return buf, count, classify(dt) if not isinstance(dt, DatatypeRef) else dt
        if len(arg) == 2:
            buf, dt = arg
            dtref = classify(dt) if not isinstance(dt, DatatypeRef) else dt
            nbytes = _buffer_nbytes(buf)
            if nbytes % dtref.datatype.extent:
                raise MPIErrBuffer(
                    f"buffer of {nbytes} bytes is not a whole number of "
                    f"{dtref.datatype.name} extents")
            return buf, nbytes // dtref.datatype.extent, dtref
    raise MPIErrBuffer(
        "buffer argument must be a numpy array or a (buf, count, datatype) "
        f"tuple, got {type(arg).__name__}")


def _buffer_nbytes(buf: Buffer) -> int:
    if isinstance(buf, np.ndarray):
        return buf.nbytes
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return len(buf)
    raise MPIErrBuffer(f"unsupported buffer type {type(buf).__name__}")


# ---------------------------------------------------------------------------
# error checking (Table 1 row 1 — removable, hence behind the config flag)
# ---------------------------------------------------------------------------

@fastpath
def validate_send(proc: "Proc", err: ErrorCheckCosts, comm: "Communicator",
                  buf: Optional[Buffer], count: int, dtref: DatatypeRef,
                  dest: int, tag: int, global_rank: bool = False) -> None:
    """Send-side argument validation, charging per Table 1's
    error-checking decomposition."""
    proc.charge(Category.ERROR_CHECKING, err.args_basic)
    if count < 0:
        raise MPIErrCount(f"count must be >= 0, got {count}")
    if not 0 <= tag <= TAG_UB:
        raise MPIErrTag(f"tag must be in [0, {TAG_UB}], got {tag}")
    if buf is None and count > 0:
        raise MPIErrBuffer("NULL buffer with nonzero count")

    proc.charge(Category.ERROR_CHECKING, err.datatype_committed)
    if not dtref.datatype.committed:
        raise MPIErrDatatype(
            f"datatype {dtref.datatype.name} used before commit")

    proc.charge(Category.ERROR_CHECKING, err.object_valid)
    if comm.freed:
        raise MPIErrComm("operation on a freed communicator")

    proc.charge(Category.ERROR_CHECKING, err.rank_range)
    limit = comm.world_size if global_rank else comm.size
    if dest != PROC_NULL and not 0 <= dest < limit:
        raise MPIErrRank(
            f"destination {dest} outside [0, {limit}) "
            f"({'world' if global_rank else 'communicator'} ranks)")


@fastpath
def validate_recv(proc: "Proc", err: ErrorCheckCosts, comm: "Communicator",
                  count: int, dtref: DatatypeRef, source: int,
                  tag: int) -> None:
    """Receive-side argument validation."""
    proc.charge(Category.ERROR_CHECKING, err.args_basic)
    if count < 0:
        raise MPIErrCount(f"count must be >= 0, got {count}")
    if tag != ANY_TAG and not 0 <= tag <= TAG_UB:
        raise MPIErrTag(f"tag must be ANY_TAG or in [0, {TAG_UB}], got {tag}")

    proc.charge(Category.ERROR_CHECKING, err.datatype_committed)
    if not dtref.datatype.committed:
        raise MPIErrDatatype(
            f"datatype {dtref.datatype.name} used before commit")

    proc.charge(Category.ERROR_CHECKING, err.object_valid)
    if comm.freed:
        raise MPIErrComm("operation on a freed communicator")

    proc.charge(Category.ERROR_CHECKING, err.rank_range)
    if source not in (ANY_SOURCE, PROC_NULL) and not 0 <= source < comm.size:
        raise MPIErrRank(
            f"source {source} outside [0, {comm.size}) and not a wildcard")
