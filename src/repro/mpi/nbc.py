"""Nonblocking collectives (MPI_IBARRIER / IBCAST / IALLREDUCE / ...).

Implemented the way MPICH implements them: each operation builds a
*schedule* — an ordered list of send / receive / compute steps — and a
request whose ``test``/``wait`` calls drive the schedule forward.
Receives are posted as soon as the schedule reaches them; ``test``
advances through every step that can complete without blocking and
returns whether the schedule finished; ``wait`` blocks step by step.
This is the classic *weak progress* model (progress happens inside MPI
calls), which MPI-3.1 permits.

With a background progress engine (``BuildConfig(progress=...)``),
the schedule instead chains itself forward through
:meth:`~repro.runtime.request.Request.on_complete` continuations:
whenever an advance stops at an incomplete receive, the receive's
completion re-runs the advance on the progress thread, so the whole
collective completes with *zero* user polls between post and wait —
the strong-progress discipline of "MPI Progress For All".  Advancing
is then serialized by a per-schedule lock nested inside the rank's
CS lock (the engine dispatches continuations holding the CS lock, so
that order is global).

Concurrent nonblocking collectives on one communicator are isolated by
a per-communicator sequence number folded into the message tags —
correct because the standard requires all ranks to issue their
nonblocking collectives in the same order.
"""

from __future__ import annotations

import pickle
import threading
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.mpi import reduceops
from repro.runtime.request import Request, RequestKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator

#: Tag block for nonblocking collectives (distinct from the blocking
#: collectives' block); K concurrent outstanding NBCs are isolated.
_NBC_TAG_BASE = 1 << 21
_NBC_TAG_MOD = 4096


def _dumps(obj: Any) -> bytes:
    return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)


class Step:
    """One schedule entry."""

    __slots__ = ()


class SendStep(Step):
    """Send bytes produced by *data_fn(state)* to *peer*."""

    __slots__ = ("peer", "tag", "data_fn")

    def __init__(self, peer: int, tag: int,
                 data_fn: Callable[[dict], bytes]):
        self.peer = peer
        self.tag = tag
        self.data_fn = data_fn


class RecvStep(Step):
    """Receive from *peer*; *consume(state, data)* runs on arrival."""

    __slots__ = ("peer", "tag", "consume", "request")

    def __init__(self, peer: int, tag: int,
                 consume: Callable[[dict, bytes], None]):
        self.peer = peer
        self.tag = tag
        self.consume = consume
        self.request: Optional[Request] = None


class ComputeStep(Step):
    """Local work: *fn(state)*."""

    __slots__ = ("fn",)

    def __init__(self, fn: Callable[[dict], None]):
        self.fn = fn


class NBCRequest(Request):
    """The request driving one nonblocking collective's schedule."""

    __slots__ = ("comm", "steps", "_pc", "state", "_sched_mu", "_bg_req")

    def __init__(self, comm: "Communicator", steps: list[Step],
                 state: Optional[dict] = None):
        super().__init__(RequestKind.GENERALIZED, comm.proc,
                         comm.world.abort_event)
        san = comm.proc.sanitizer
        if san is not None:
            # Built directly (not via the pool), so register explicitly.
            san.note_acquire(self, api="nonblocking collective")
        self.comm = comm
        self.steps = steps
        self.state = state if state is not None else {}
        self._pc = 0
        # Serializes schedule advancement between the application and
        # the progress engine's continuations (reentrant: a blocking
        # advance may recurse through wait paths).
        tsan = comm.proc.tsan
        if tsan is not None:
            # Key on the request serial, not id(self) — addresses are
            # reused, serials are not (see Request._tsan_serial).
            self._sched_mu = tsan.make_lock("sched",
                                            f"nbc{self._tsan_key[1]}")
        else:
            self._sched_mu = threading.RLock()
        # The receive currently armed with a background continuation —
        # identity-compared so each stall arms exactly once.
        self._bg_req: Optional[Request] = None
        # Kick the schedule as far as it goes without blocking, so
        # receives are pre-posted and early sends overlap user compute.
        self._advance(blocking=False)

    # -- schedule engine -----------------------------------------------------

    def _advance(self, blocking: bool) -> bool:
        """Run steps until done or until a receive would block
        (non-blocking mode).  Returns completion.

        With a progress engine the advance takes the rank's CS lock
        *then* the schedule lock — the same order the engine's
        continuation dispatch establishes (it runs continuations while
        holding the CS lock), so application ``test``/``wait`` calls
        and background continuations never deadlock.
        """
        proc = self.comm.proc
        if proc.progress is not None:
            with proc.cs_lock:
                with self._sched_mu:
                    return self._advance_locked(blocking)
        return self._advance_locked(blocking)

    def _advance_locked(self, blocking: bool) -> bool:
        """The actual schedule walk (see :meth:`_advance` for locking)."""
        tsan = self.comm.proc.tsan
        if tsan is not None:
            # Under the schedule lock with a progress engine; without
            # one the schedule is single-threaded (same-thread accesses
            # are ordered by the thread's own clock).
            tsan.note_access(("nbc", self._tsan_key[1]),
                             what="NBC schedule state")
        while self._pc < len(self.steps):
            step = self.steps[self._pc]
            if isinstance(step, SendStep):
                self.comm._isend_bytes(step.data_fn(self.state),
                                       step.peer, step.tag)
                self._pc += 1
            elif isinstance(step, ComputeStep):
                step.fn(self.state)
                self._pc += 1
            else:   # RecvStep
                if step.request is None:
                    step.request = self.comm._irecv_bytes(step.peer,
                                                          step.tag)
                if blocking or step.request.is_complete():
                    step.request.wait()
                    step.consume(self.state,
                                 step.request.payload or b"")
                    # The inner handle never escapes the schedule —
                    # recycle it.  Forget any armed-continuation match
                    # first: the pool may hand the same object to the
                    # next step, which must arm afresh.
                    if step.request is self._bg_req:
                        self._bg_req = None
                    self.comm.proc.request_pool.release(step.request)
                    step.request = None
                    self._pc += 1
                else:
                    self._arm_background(step)
                    return False
        if not self.is_complete():
            self.complete(self.comm.proc.vclock.now)
        return True

    def _arm_background(self, step: RecvStep) -> None:
        """Chain the stalled receive to a background re-advance.

        With a progress engine, the incomplete receive's completion
        posts a continuation that re-runs :meth:`_advance` on the
        engine thread; armed at most once per stalled receive.
        Without one this is a no-op (``wait``/``test`` keep driving
        the schedule, the weak-progress model).
        """
        progress = self.comm.proc.progress
        if progress is None or step.request is self._bg_req:
            return
        self._bg_req = step.request
        step.request.on_complete(self._bg_advance)

    def _bg_advance(self, _req: Request) -> None:
        """Continuation body: advance the schedule on the engine thread;
        a failure fails this collective's request (surfaced at wait)."""
        try:
            self._advance(blocking=False)
        except BaseException as exc:
            if not self.is_complete():
                self.fail(self.comm.proc.vclock.now, exc)

    # -- Request interface ---------------------------------------------------

    def test(self) -> bool:
        """Drive the schedule without blocking; True when finished."""
        if self.is_complete():
            return super().test()
        if self._advance(blocking=False):
            return super().test()
        return False

    def wait(self) -> "NBCRequest":
        """Drive the schedule to completion.

        With a progress engine the schedule advances itself through
        continuations, so this just blocks event-driven on the final
        completion — zero polls; otherwise the wait drives the
        schedule step by step (weak progress).
        """
        if not self.is_complete():
            if self.comm.proc.progress is None:
                self._advance(blocking=True)
        super().wait()
        return self

    @property
    def result(self) -> Any:
        """The collective's result (after wait)."""
        return self.state.get("result")


# ---------------------------------------------------------------------------
# schedule builders
# ---------------------------------------------------------------------------

def _nbc_tag(comm: "Communicator", offset: int = 0) -> int:
    seq = getattr(comm, "_nbc_seq", 0)
    comm._nbc_seq = seq + 1
    return _NBC_TAG_BASE + (seq % _NBC_TAG_MOD) * 8 + offset


def ibarrier(comm: "Communicator") -> NBCRequest:
    """MPI_IBARRIER: dissemination rounds as a schedule."""
    size, rank = comm.size, comm.rank
    tag = _nbc_tag(comm)
    steps: list[Step] = []
    k = 1
    while k < size:
        dest = (rank + k) % size
        src = (rank - k) % size
        steps.append(SendStep(dest, tag, lambda s: b""))
        steps.append(RecvStep(src, tag, lambda s, d: None))
        k <<= 1
    return NBCRequest(comm, steps)


def ibcast(comm: "Communicator", obj: Any = None,
           root: int = 0) -> NBCRequest:
    """MPI_IBCAST of a pickled object; ``request.result`` after wait."""
    size, rank = comm.size, comm.rank
    tag = _nbc_tag(comm)
    vrank = (rank - root) % size
    steps: list[Step] = []
    state = {"data": _dumps(obj) if rank == root else None}

    mask = 1
    while mask < size:
        if vrank & mask:
            src = (rank - mask) % size

            def consume(s, d):
                s["data"] = d

            steps.append(RecvStep(src, tag, consume))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if vrank + mask < size:
            dest = (rank + mask) % size
            steps.append(SendStep(dest, tag, lambda s: s["data"]))
        mask >>= 1
    steps.append(ComputeStep(
        lambda s: s.__setitem__("result", pickle.loads(s["data"]))))
    return NBCRequest(comm, steps, state)


def iallreduce(comm: "Communicator", obj: Any,
               op: Optional[reduceops.Op] = None) -> NBCRequest:
    """MPI_IALLREDUCE of pickled objects (recursive-doubling-free
    binomial reduce to 0 + binomial bcast, as one schedule)."""
    the_op = op if op is not None else reduceops.SUM
    size, rank = comm.size, comm.rank
    tag_r = _nbc_tag(comm, 0)
    tag_b = tag_r + 1
    steps: list[Step] = []
    state = {"acc": obj}

    # Phase 1: binomial reduction toward rank 0 (canonical order:
    # lower-vrank partial on the left).
    mask = 1
    while mask < size:
        if rank & mask == 0:
            src = rank | mask
            if src < size:
                def consume(s, d, combine=the_op.combine_py):
                    s["acc"] = combine(s["acc"], pickle.loads(d))

                steps.append(RecvStep(src, tag_r, consume))
        else:
            dest = rank & ~mask
            steps.append(SendStep(dest, tag_r,
                                  lambda s: _dumps(s["acc"])))
            break
        mask <<= 1

    # Phase 2: binomial broadcast of the total from rank 0.
    mask = 1
    while mask < size:
        if rank & mask:
            src = rank - mask

            def consume_b(s, d):
                s["acc"] = pickle.loads(d)

            steps.append(RecvStep(src, tag_b, consume_b))
            break
        mask <<= 1
    mask >>= 1
    while mask > 0:
        if rank + mask < size:
            steps.append(SendStep(rank + mask, tag_b,
                                  lambda s: _dumps(s["acc"])))
        mask >>= 1

    steps.append(ComputeStep(
        lambda s: s.__setitem__("result", s["acc"])))
    return NBCRequest(comm, steps, state)


def igather(comm: "Communicator", obj: Any, root: int = 0) -> NBCRequest:
    """MPI_IGATHER (linear) of pickled objects; the root's
    ``request.result`` is the rank-ordered list, None elsewhere."""
    size, rank = comm.size, comm.rank
    tag = _nbc_tag(comm)
    steps: list[Step] = []
    state: dict = {"blocks": {root: None}}
    if rank != root:
        steps.append(SendStep(root, tag, lambda s, o=obj: _dumps(o)))
        steps.append(ComputeStep(lambda s: s.__setitem__("result", None)))
        return NBCRequest(comm, steps, state)

    state["blocks"][root] = _dumps(obj)

    def make_consume(src):
        def consume(s, d):
            s["blocks"][src] = d
        return consume

    for src in range(size):
        if src != root:
            steps.append(RecvStep(src, tag, make_consume(src)))
    steps.append(ComputeStep(lambda s: s.__setitem__(
        "result", [pickle.loads(s["blocks"][i]) for i in range(size)])))
    return NBCRequest(comm, steps, state)


def iscatter(comm: "Communicator", objs: Optional[list] = None,
             root: int = 0) -> NBCRequest:
    """MPI_ISCATTER (linear) of pickled objects; every rank's
    ``request.result`` is its piece."""
    size, rank = comm.size, comm.rank
    tag = _nbc_tag(comm)
    steps: list[Step] = []
    state: dict = {}
    if rank == root:
        if objs is None or len(objs) != size:
            from repro.errors import MPIErrArg
            raise MPIErrArg(
                f"iscatter root needs exactly {size} objects")
        for dest in range(size):
            if dest != root:
                steps.append(SendStep(
                    dest, tag, lambda s, o=objs[dest]: _dumps(o)))
        steps.append(ComputeStep(
            lambda s, o=objs[root]: s.__setitem__("result", o)))
    else:
        def consume(s, d):
            s["result"] = pickle.loads(d)

        steps.append(RecvStep(root, tag, consume))
    return NBCRequest(comm, steps, state)


def iallgather(comm: "Communicator", obj: Any) -> NBCRequest:
    """MPI_IALLGATHER (ring) of pickled objects; result is the list."""
    size, rank = comm.size, comm.rank
    tag = _nbc_tag(comm)
    right = (rank + 1) % size
    left = (rank - 1) % size
    steps: list[Step] = []
    state = {"blocks": {rank: _dumps(obj)}, "send_idx": rank}

    def make_send(step_idx):
        def data_fn(s):
            return s["blocks"][s["send_idx"]]
        return data_fn

    def make_consume(k):
        def consume(s, d):
            s["send_idx"] = (s["send_idx"] - 1) % size
            s["blocks"][s["send_idx"]] = d
        return consume

    for k in range(size - 1):
        steps.append(SendStep(right, tag, make_send(k)))
        steps.append(RecvStep(left, tag, make_consume(k)))

    steps.append(ComputeStep(lambda s: s.__setitem__(
        "result", [pickle.loads(s["blocks"][i]) for i in range(size)])))
    return NBCRequest(comm, steps, state)
