"""The MPI tool information interface (MPI_T), performance variables.

MPI-3.1 chapter 14: implementations expose internal performance
variables ("pvars") that tools read at runtime.  MPICH's CH4 uses this
interface heavily for exactly the quantities this reproduction tracks —
queue depths, match statistics, fallback counts, per-category
instruction spend — so the runtime exposes them the same way:

>>> session = PvarSession(comm.proc)          # doctest: +SKIP
>>> session.read("unexpected_queue_length")   # doctest: +SKIP
0

Variables are read-only counters/levels; the registry is the
implementation-defined enumeration MPI_T prescribes
(``MPI_T_pvar_get_num`` / ``get_info`` / ``read``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

from repro.errors import MPIErrArg
from repro.instrument.categories import Category, Subsystem

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc


class PvarClass(enum.Enum):
    """MPI_T performance-variable classes (the subset used here)."""

    LEVEL = "level"          #: instantaneous value (queue depth)
    COUNTER = "counter"      #: monotonically increasing count
    TIMER = "timer"          #: accumulated time


@dataclass(frozen=True)
class PvarInfo:
    """Metadata of one performance variable (MPI_T_pvar_get_info)."""

    name: str
    pvar_class: PvarClass
    description: str
    reader: Callable[["Proc"], float]


def _category_reader(category: Category):
    return lambda proc: proc.counter.by_category[category]


def _subsystem_reader(subsystem: Subsystem):
    return lambda proc: proc.counter.by_subsystem[subsystem]


def _build_registry() -> dict[str, PvarInfo]:
    registry: dict[str, PvarInfo] = {}

    def add(name, cls, description, reader):
        registry[name] = PvarInfo(name, cls, description, reader)

    add("posted_queue_length", PvarClass.LEVEL,
        "receives posted and not yet matched",
        lambda proc: proc.engine.pending_counts()[0])
    add("unexpected_queue_length", PvarClass.LEVEL,
        "messages arrived before their receive was posted",
        lambda proc: proc.engine.pending_counts()[1])
    add("messages_deposited", PvarClass.COUNTER,
        "messages delivered into this rank's matching engine",
        lambda proc: proc.engine.n_deposited)
    add("matches_on_posted_queue", PvarClass.COUNTER,
        "arrivals that found a posted receive",
        lambda proc: proc.engine.n_matched_posted)
    add("matches_on_unexpected_queue", PvarClass.COUNTER,
        "posted receives that found a queued message",
        lambda proc: proc.engine.n_matched_unexpected)
    add("instructions_total", PvarClass.COUNTER,
        "abstract instructions charged on this rank",
        lambda proc: proc.counter.total)
    add("virtual_time_seconds", PvarClass.TIMER,
        "this rank's virtual clock",
        lambda proc: proc.vclock.now)
    add("compute_time_seconds", PvarClass.TIMER,
        "application compute charged on this rank",
        lambda proc: proc.compute_seconds)
    add("netmod_native_ops", PvarClass.COUNTER,
        "operations the netmod ran on its fast path",
        lambda proc: proc.device.netmod.n_native)
    add("netmod_am_fallbacks", PvarClass.COUNTER,
        "operations routed through the active-message fallback",
        lambda proc: proc.device.netmod.n_am_fallback)
    add("shmmod_native_ops", PvarClass.COUNTER,
        "operations carried by the shared-memory module",
        lambda proc: proc.device.shmmod.n_native)

    for category in Category:
        add(f"instructions_{category.value}", PvarClass.COUNTER,
            f"instructions attributed to {category.value}",
            _category_reader(category))
    for subsystem in Subsystem:
        add(f"mandatory_{subsystem.value}", PvarClass.COUNTER,
            f"mandatory instructions from {subsystem.value}",
            _subsystem_reader(subsystem))
    return registry


#: The implementation's pvar enumeration (MPI_T_pvar_get_num etc.).
PVARS: dict[str, PvarInfo] = _build_registry()


def pvar_get_num() -> int:
    """MPI_T_pvar_get_num."""
    return len(PVARS)


def pvar_names() -> list[str]:
    """All variable names, enumeration order."""
    return list(PVARS)


def pvar_get_info(name: str) -> PvarInfo:
    """MPI_T_pvar_get_info by name."""
    try:
        return PVARS[name]
    except KeyError:
        raise MPIErrArg(f"unknown performance variable {name!r}") from None


class PvarSession:
    """An MPI_T pvar session bound to one rank.

    Handles are implicit (name-addressed); ``read`` returns the current
    value, ``read_all`` snapshots everything, and ``delta`` measures a
    region, which is how the paper-style per-call attributions are
    gathered by tools.
    """

    def __init__(self, proc: "Proc"):
        self.proc = proc

    def read(self, name: str) -> float:
        """MPI_T_pvar_read."""
        return pvar_get_info(name).reader(self.proc)

    def read_all(self) -> dict[str, float]:
        """Snapshot every variable."""
        return {name: info.reader(self.proc)
                for name, info in PVARS.items()}

    def delta(self, fn: Callable[[], None]) -> dict[str, float]:
        """Run *fn* and return the change of every COUNTER/TIMER pvar
        (LEVEL pvars report their final value)."""
        before = self.read_all()
        fn()
        after = self.read_all()
        out = {}
        for name, info in PVARS.items():
            if info.pvar_class is PvarClass.LEVEL:
                out[name] = after[name]
            else:
                out[name] = after[name] - before[name]
        return out
