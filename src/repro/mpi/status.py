"""MPI_Status: the receive-side result record."""

from __future__ import annotations

from dataclasses import dataclass

from repro.datatypes.predefined import Datatype
from repro.errors import MPIErrTruncate
from repro.runtime.request import Request


@dataclass(frozen=True)
class Status:
    """Source, tag, and byte count of one completed operation.

    ``get_count`` converts the byte count to whole elements of a
    datatype (MPI_GET_COUNT), raising when the bytes do not divide
    evenly (the standard returns MPI_UNDEFINED; an exception is the
    Pythonic rendering).
    """

    source: int
    tag: int
    count_bytes: int
    cancelled: bool = False

    @staticmethod
    def from_request(request: Request) -> "Status":
        """Build a status from a completed request."""
        return Status(source=request.source, tag=request.tag,
                      count_bytes=request.count_bytes,
                      cancelled=request.cancelled)

    def get_count(self, datatype: Datatype) -> int:
        """Number of whole *datatype* elements received."""
        if datatype.size == 0 or self.count_bytes % datatype.size:
            raise MPIErrTruncate(
                f"{self.count_bytes} bytes is not a whole number of "
                f"{datatype.name} elements")
        return self.count_bytes // datatype.size

    def get_elements(self, datatype: Datatype) -> int:
        """Number of basic elements received (MPI_GET_ELEMENTS); for the
        predefined types used here this equals :meth:`get_count`."""
        return self.get_count(datatype)
