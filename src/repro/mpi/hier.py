"""Topology-aware collective strategies (ChainerMN-style).

A :class:`~repro.core.config.BuildConfig` (or an individual
communicator, via :func:`create_communicator`) names a collective
*strategy* — ``naive`` / ``flat`` / ``hierarchical`` /
``two_dimensional`` — governing how the buffer collectives route:

* **hierarchical** splits each collective into an intra-node phase over
  the node-local subcommunicator (whose messages the device routes to
  the shm-class fabric automatically, :meth:`Proc.fabric_to`) and an
  inter-node phase among the per-node leaders (fabric path).  An
  allreduce thus moves each element across the network once per node
  instead of once per rank — the reason ChainerMN's hierarchical
  communicator is what makes data-parallel training scale.

* **two_dimensional** is the transpose composition: a reduce along
  each *core-index column* (the ranks sharing a core slot across
  nodes — every column message is inter-node), an allreduce among the
  column roots (all on the first node — intra-node), and a bcast back
  down the columns.  Correct for any block distribution including a
  partial last node, because every rank belongs to exactly one column
  and the roots cover all columns.

The subcommunicators are built lazily (``MPI_COMM_SPLIT`` is itself a
collective, so the first routed collective constructs them on every
rank together) and cached on the communicator.  Phase internals call
the :mod:`repro.mpi.collectives` algorithms directly with explicit
algorithm names — never the ``Communicator`` strategy dispatch — so
routing can never recurse.

Hierarchical phases re-associate the reduction (node-grouped instead
of rank-ordered), so ops must be associative and commutative — true
for every numpy elementwise op shipped in :mod:`repro.mpi.reduceops`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

import numpy as np

from repro.consts import UNDEFINED
from repro.errors import MPIErrArg
from repro.mpi import collectives as coll

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator

#: Strategy names accepted by ``BuildConfig.communicator_name`` and
#: :func:`create_communicator`.
STRATEGIES = ("naive", "flat", "hierarchical", "two_dimensional")

#: Internal tag for leader<->root shuttles (continues the
#: collectives-module tag block).
TAG_HIER = coll._TAG_BASE + 15


def create_communicator(communicator_name: str,
                        comm: "Communicator") -> "Communicator":
    """ChainerMN-style factory: a dup of *comm* whose buffer
    collectives route through *communicator_name*, overriding the
    build-level selector (collective over *comm*)."""
    if communicator_name not in STRATEGIES:
        raise MPIErrArg(
            f"unknown communicator_name {communicator_name!r}; "
            f"expected one of {STRATEGIES}")
    dup = comm.dup(name=f"{comm.name}+{communicator_name}")
    dup.coll_strategy = communicator_name
    return dup


class HierContext:
    """Cached subcommunicators for one communicator's routed
    collectives (built collectively on first use).

    Attributes
    ----------
    local:
        This rank's node-local subcommunicator (ordered by comm rank,
        so ``local.rank == 0`` is the node leader).
    leaders:
        The inter-node subcommunicator over the node leaders; None on
        non-leader ranks.
    node_leader_rank:
        ``{node: leaders-comm rank}`` of every node's leader (known on
        all ranks, for rooted collectives).
    my_node:
        This rank's node id.
    columns/col_roots:
        The two_dimensional subcommunicators (same discipline: column
        ordered by comm rank; ``col_roots`` is None off the roots).
    """

    def __init__(self, comm: "Communicator"):
        topo = comm.world.topology
        self.my_node = topo.node_of(comm.proc.world_rank)
        self.local = comm.split(color=self.my_node, key=comm.rank)
        self.leaders = comm.split(
            color=0 if self.local.rank == 0 else UNDEFINED, key=comm.rank)
        # Everyone learns which leaders-comm rank fronts each node:
        # leaders allgather (node, rank), then each leader shares the
        # map with its node.
        table = None
        if self.leaders is not None:
            pairs = coll.allgather_obj(
                self.leaders, (self.my_node, self.leaders.rank))
            table = dict(pairs)
        self.node_leader_rank = coll.bcast_obj(self.local, table, 0)
        # two_dimensional: columns are the ranks sharing a core slot.
        my_col = topo.core_of(comm.proc.world_rank)
        self.columns = comm.split(color=my_col, key=comm.rank)
        self.col_roots = comm.split(
            color=0 if self.columns.rank == 0 else UNDEFINED, key=comm.rank)
        # Fault builds: register every staging subcommunicator as
        # derived from the parent, so MPIX_Comm_revoke(parent) reaches
        # a rank blocked inside a phase (the revocation cascade) — an
        # unregistered child context would strand it mid-collective.
        faults = comm.proc.faults
        if faults is not None:
            ft = faults.world_ft
            for sub in (self.local, self.leaders, self.columns,
                        self.col_roots):
                if sub is not None:
                    ft.add_derived(comm.ctx, sub.ctx)


def _ctx(comm: "Communicator") -> HierContext:
    if comm._hier_ctx is None:
        comm._hier_ctx = HierContext(comm)
    return comm._hier_ctx


def routes_hier(comm: "Communicator") -> bool:
    """True when *comm*'s strategy sends its buffer collectives through
    the topology-aware compositions (multi-rank, multi-node)."""
    strategy = comm.collective_strategy()
    if strategy not in ("hierarchical", "two_dimensional"):
        return False
    if comm.size <= 1:
        return False
    return comm.world.topology.nnodes > 1


# ---------------------------------------------------------------------------
# hierarchical (intra-node + leaders) compositions
# ---------------------------------------------------------------------------

def _hier_allreduce(comm: "Communicator", sendbuf: np.ndarray,
                    recvbuf: np.ndarray, op) -> None:
    ctx = _ctx(comm)
    # Phase 1 (shm): reduce onto the node leader, into recvbuf.
    coll.reduce_buf(ctx.local, sendbuf, recvbuf, op, 0)
    # Phase 2 (fabric): leaders allreduce the node partials.  Large
    # payloads force Rabenseifner — reduce-scatter+allgather moves
    # 2m(P-1)/P bytes per leader where the flat default's
    # reduce+bcast moves 2m log P — while small ones keep the
    # latency-optimal size-based selection.
    if ctx.leaders is not None:
        alg = (None
               if recvbuf.nbytes <= coll.ALLREDUCE_RECDOUBLE_MAX_BYTES
               else "reduce_scatter_allgather")
        # Aliasing recvbuf as both sides is safe here: every allreduce
        # algorithm snapshots (or entry-copies) the send payload before
        # writing the result back.
        coll.allreduce_buf(ctx.leaders, recvbuf, recvbuf, op,  # bufcheck: ignore[BC505]
                           alg)
    # Phase 3 (shm): leader broadcasts the total over the node.
    coll.bcast_buf(ctx.local, recvbuf, 0)


def _hier_bcast(comm: "Communicator", array: np.ndarray,
                root: int) -> None:
    ctx = _ctx(comm)
    topo = comm.world.topology
    root_node = topo.node_of(comm.world_rank_of(root))
    if ctx.my_node == root_node:
        # Reach the node leader (and the rest of the node) first.
        local_root = ctx.local.group.rank_of_world(comm.world_rank_of(root))
        coll.bcast_buf(ctx.local, array, local_root)
    if ctx.leaders is not None:
        coll.bcast_buf(ctx.leaders, array,
                       ctx.node_leader_rank[root_node])
    if ctx.my_node != root_node:
        coll.bcast_buf(ctx.local, array, 0)


def _hier_reduce(comm: "Communicator", sendbuf: np.ndarray,
                 recvbuf: Optional[np.ndarray], op, root: int) -> None:
    ctx = _ctx(comm)
    topo = comm.world.topology
    root_node = topo.node_of(comm.world_rank_of(root))
    # Phase 1 (shm): node partials land on each leader in a scratch
    # buffer (recvbuf is only valid at the real root).
    partial = (np.empty_like(sendbuf) if ctx.local.rank == 0 else None)
    coll.reduce_buf(ctx.local, sendbuf, partial, op, 0)
    # Phase 2 (fabric): leaders reduce to the root node's leader.
    if ctx.leaders is not None:
        leader_root = ctx.node_leader_rank[root_node]
        out = (np.empty_like(sendbuf)
               if ctx.leaders.rank == leader_root else None)
        coll.reduce_buf(ctx.leaders, partial, out, op, leader_root)
        partial = out
    # Phase 3 (shm): shuttle leader -> root when they differ.
    local_root = (ctx.local.group.rank_of_world(comm.world_rank_of(root))
                  if ctx.my_node == root_node else UNDEFINED)
    if comm.rank == root:
        if recvbuf is None:
            raise MPIErrArg("reduce root needs a recvbuf")
        if local_root == 0:
            recvbuf.view(np.uint8).reshape(-1)[:] = \
                partial.view(np.uint8).reshape(-1)
        else:
            data = ctx.local._recv_bytes(0, TAG_HIER)
            recvbuf.view(np.uint8).reshape(-1)[:] = \
                np.frombuffer(data, np.uint8)
    elif ctx.my_node == root_node and ctx.local.rank == 0:
        ctx.local._send_bytes(partial.view(np.uint8).reshape(-1).data,
                              local_root, TAG_HIER)


# ---------------------------------------------------------------------------
# two_dimensional (column reduce / root-row allreduce / column bcast)
# ---------------------------------------------------------------------------

def _twod_allreduce(comm: "Communicator", sendbuf: np.ndarray,
                    recvbuf: np.ndarray, op) -> None:
    ctx = _ctx(comm)
    # Phase 1 (fabric): reduce down each core-index column.
    coll.reduce_buf(ctx.columns, sendbuf, recvbuf, op, 0)
    # Phase 2 (shm, on a full first node): the column roots — one per
    # core slot — allreduce the column partials (Rabenseifner for
    # large payloads, as in the hierarchical leaders phase).
    if ctx.col_roots is not None:
        alg = (None
               if recvbuf.nbytes <= coll.ALLREDUCE_RECDOUBLE_MAX_BYTES
               else "reduce_scatter_allgather")
        # Safe self-aliasing, as in the hierarchical leaders phase.
        coll.allreduce_buf(ctx.col_roots, recvbuf, recvbuf, op,  # bufcheck: ignore[BC505]
                           alg)
    # Phase 3 (fabric): broadcast the total back down the columns.
    coll.bcast_buf(ctx.columns, recvbuf, 0)


# ---------------------------------------------------------------------------
# dispatch from Communicator methods
# ---------------------------------------------------------------------------

def bcast(comm: "Communicator", array: np.ndarray, root: int) -> None:
    """Routed MPI_BCAST (both 2D and hierarchical use the leader
    composition — a column-wise bcast would be phase 3 alone)."""
    _hier_bcast(comm, array, root)


def reduce(comm: "Communicator", sendbuf: np.ndarray,
           recvbuf: Optional[np.ndarray], op, root: int) -> None:
    """Routed MPI_REDUCE (leader composition for both strategies)."""
    _hier_reduce(comm, sendbuf, recvbuf, op, root)


def allreduce(comm: "Communicator", sendbuf: np.ndarray,
              recvbuf: np.ndarray, op) -> None:
    """Routed MPI_ALLREDUCE."""
    if comm.collective_strategy() == "two_dimensional":
        _twod_allreduce(comm, sendbuf, recvbuf, op)
    else:
        _hier_allreduce(comm, sendbuf, recvbuf, op)
