"""One-sided communication: MPI windows (MPI_WIN_*).

Implements the window flavors the paper's Section 3.2 contrasts:

* **created/allocated windows** — target locations are *offsets* from
  the window base, which the implementation must translate to virtual
  addresses on every operation (the 3–4 instructions the
  ``put_virtual_addr`` proposal removes);
* **dynamic windows** — operations address attached regions by virtual
  address directly, but the window-kind check the implementation still
  performs "costs nearly the same number of instructions ... washing
  out any potential benefit";
* the proposed ``put_virtual_addr`` / ``get_virtual_addr`` routines —
  usable on *all* window kinds, with the address pre-resolved via
  :meth:`Window.remote_addr`.

Synchronization: fence (active), lock/unlock + flush (passive, with a
real reader/writer lock per target), lock_all/unlock_all.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.consts import PROC_NULL
from repro.core import extensions as ext
from repro.core.ops import AccOp, GetOp, PutOp
from repro.errors import (MPIErrArg, MPIErrRank, MPIErrRMARange,
                          MPIErrRMASync, MPIErrWin)
from repro.instrument.costs import COSTS
from repro.mpi import reduceops
from repro.mpi.info import Info
from repro.instrument.fastpath import fastpath
from repro.mpi.pt2pt import mpi_entry, normalize_buffer

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator

#: MPI_LOCK_EXCLUSIVE / MPI_LOCK_SHARED.
LOCK_EXCLUSIVE = "exclusive"
LOCK_SHARED = "shared"


class RWLock:
    """A reader/writer lock for passive-target epochs.

    Shared locks (concurrent readers/accumulators) may coexist;
    an exclusive lock excludes everything.  Fair enough for tests:
    writers wait for readers to drain and vice versa.
    """

    def __init__(self):
        self._cond = threading.Condition()
        self._readers = 0
        self._writer = False

    def acquire(self, lock_type: str, abort_event=None) -> None:
        """Acquire in *lock_type* mode, interruptible by the abort event.

        The waiter subscribes a wake listener and blocks without a
        timeout — a world abort interrupts it immediately.  (Plain
        ``threading.Event`` abort flags are bridged by the
        foreign-event watcher; no slice polling remains.)
        """
        from repro.runtime.completion import (add_abort_listener,
                                              remove_abort_listener)

        def wake() -> None:
            with self._cond:
                self._cond.notify_all()

        listening = (abort_event is not None
                     and add_abort_listener(abort_event, wake))
        try:
            with self._cond:
                while True:
                    if abort_event is not None and abort_event.is_set():
                        from repro.runtime.world import WorldAborted
                        raise WorldAborted("world aborted acquiring win lock")
                    if lock_type == LOCK_SHARED and not self._writer:
                        self._readers += 1
                        return
                    if (lock_type == LOCK_EXCLUSIVE and not self._writer
                            and self._readers == 0):
                        self._writer = True
                        return
                    self._cond.wait()
        finally:
            if listening:
                remove_abort_listener(abort_event, wake)

    def release(self, lock_type: str) -> None:
        """Release a previously acquired mode."""
        with self._cond:
            if lock_type == LOCK_SHARED:
                if self._readers <= 0:
                    raise MPIErrRMASync("shared unlock without lock")
                self._readers -= 1
            else:
                if not self._writer:
                    raise MPIErrRMASync("exclusive unlock without lock")
                self._writer = False
            self._cond.notify_all()


class WindowState:
    """One rank's exposed memory (shared via the world registry).

    Created/allocated windows expose a single buffer; dynamic windows
    hold attached regions addressed by simulated virtual addresses.
    """

    #: Simulated VM page size used to place attached regions.
    PAGE = 4096

    def __init__(self, buffer: Optional[np.ndarray], disp_unit: int,
                 dynamic: bool = False):
        if disp_unit <= 0:
            raise MPIErrArg(f"disp_unit must be positive, got {disp_unit}")
        self.disp_unit = disp_unit
        self.dynamic = dynamic
        self.data_lock = threading.RLock()
        self.epoch_lock = RWLock()
        if dynamic:
            if buffer is not None:
                raise MPIErrWin("dynamic windows start with no memory")
            self._regions: list[tuple[int, np.ndarray]] = []
            self._next_base = self.PAGE
            self._buffer = None
        else:
            if buffer is None:
                buffer = np.empty(0, dtype=np.uint8)
            # Windows alias the user's array for their whole lifetime —
            # that is MPI_WIN_CREATE's contract, not a leaked borrow.
            self._buffer = buffer.view(np.uint8).reshape(-1)  # bufcheck: ignore[BC503]

    @property
    def nbytes(self) -> int:
        """Exposed bytes (sum of regions for dynamic windows)."""
        if self.dynamic:
            return sum(arr.size for _, arr in self._regions)
        return self._buffer.size

    # -- dynamic-window attach/detach ---------------------------------------

    def attach(self, array: np.ndarray) -> int:
        """MPI_WIN_ATTACH: expose *array*; returns its simulated virtual
        base address (what MPI_GET_ADDRESS would produce)."""
        if not self.dynamic:
            raise MPIErrWin("attach is only valid on dynamic windows")
        view = array.view(np.uint8).reshape(-1)
        base = self._next_base
        npages = -(-view.size // self.PAGE) + 1
        self._next_base += npages * self.PAGE
        self._regions.append((base, view))
        return base

    def detach(self, base: int) -> None:
        """MPI_WIN_DETACH by base address."""
        if not self.dynamic:
            raise MPIErrWin("detach is only valid on dynamic windows")
        for i, (b, _) in enumerate(self._regions):
            if b == base:
                del self._regions[i]
                return
        raise MPIErrWin(f"no attached region at address {base}")

    # -- the accessor the AM handlers use -------------------------------------

    def view(self, offset_bytes: int, span_bytes: int) -> np.ndarray:
        """Writable byte view of [offset, offset+span) of the exposed
        memory; raises :class:`MPIErrRMARange` outside it."""
        if span_bytes < 0 or offset_bytes < 0:
            raise MPIErrRMARange(
                f"negative window access: offset={offset_bytes}, "
                f"span={span_bytes}")
        if self.dynamic:
            for base, arr in self._regions:
                if base <= offset_bytes and \
                        offset_bytes + span_bytes <= base + arr.size:
                    lo = offset_bytes - base
                    return arr[lo:lo + span_bytes]
            raise MPIErrRMARange(
                f"address [{offset_bytes}, {offset_bytes + span_bytes}) "
                "is not within any attached region")
        if offset_bytes + span_bytes > self._buffer.size:
            raise MPIErrRMARange(
                f"access [{offset_bytes}, {offset_bytes + span_bytes}) "
                f"outside window of {self._buffer.size} bytes")
        return self._buffer[offset_bytes:offset_bytes + span_bytes]


class Window:
    """One rank's handle on a window (MPI_Win)."""

    def __init__(self, comm: "Communicator", win_id: int,
                 state: WindowState, predefined_handle: bool = False,
                 info: Optional[Info] = None, name: str = "win"):
        self.comm = comm
        self.proc = comm.proc
        self.win_id = win_id
        self.local_state = state
        self.is_predefined_handle = predefined_handle
        self.info = info if info is not None else Info()
        self.name = name
        self.freed = False
        #: Pending remote-completion times per target world rank.
        self._pending: dict[int, float] = {}
        self._held_locks: dict[int, str] = {}

    # -- creation (collective) ------------------------------------------------

    @classmethod
    def create(cls, comm: "Communicator", array: Optional[np.ndarray],
               disp_unit: int = 1, predefined_handle: bool = False,
               info: Optional[Info] = None) -> "Window":
        """MPI_WIN_CREATE over an existing local *array* (or None for a
        zero-size contribution)."""
        state = WindowState(array, disp_unit)
        return cls._register(comm, state, predefined_handle, info,
                             "win.create")

    @classmethod
    def allocate(cls, comm: "Communicator", nbytes: int,
                 disp_unit: int = 1, predefined_handle: bool = False,
                 info: Optional[Info] = None
                 ) -> tuple["Window", np.ndarray]:
        """MPI_WIN_ALLOCATE: the window provides the memory."""
        if nbytes < 0:
            raise MPIErrArg(f"window size must be >= 0, got {nbytes}")
        array = np.zeros(nbytes, dtype=np.uint8)
        win = cls.create(comm, array, disp_unit, predefined_handle, info)
        return win, array

    @classmethod
    def create_dynamic(cls, comm: "Communicator",
                       info: Optional[Info] = None) -> "Window":
        """MPI_WIN_CREATE_DYNAMIC: no memory yet; attach regions later."""
        state = WindowState(None, 1, dynamic=True)
        return cls._register(comm, state, False, info, "win.dynamic")

    @classmethod
    def _register(cls, comm: "Communicator", state: WindowState,
                  predefined_handle: bool, info: Optional[Info],
                  name: str) -> "Window":
        world = comm.world
        win_id = comm.bcast(
            world.alloc_window_id() if comm.rank == 0 else None, root=0)
        with world._win_lock:
            world.windows.setdefault(win_id, {})[comm.proc.world_rank] = state
        comm.barrier()   # every rank's state registered before first use
        return cls(comm, win_id, state, predefined_handle, info, name)

    # -- registry access -------------------------------------------------------

    def state_of(self, target_world_rank: int) -> WindowState:
        """The target rank's exposed-memory state."""
        try:
            return self.comm.world.windows[self.win_id][target_world_rank]
        except KeyError:
            raise MPIErrWin(
                f"world rank {target_world_rank} holds no state for "
                f"window {self.win_id}") from None

    def remote_addr(self, target_rank: int, disp: int = 0) -> int:
        """Pre-resolve a target location to a virtual address for the
        §3.2 ``*_virtual_addr`` fast path.  For created/allocated
        windows this is the byte offset ``disp * disp_unit``; the
        caller stores it once (the paper's "application keeps track of
        the remote virtual address" pattern)."""
        target_world = self.comm.world_rank_of(target_rank)
        return disp * self.state_of(target_world).disp_unit

    def note_pending(self, target_world: int, complete_s: float) -> None:
        """Device callback: an op toward *target_world* completes
        remotely at *complete_s* (drained by flush/fence/unlock)."""
        prev = self._pending.get(target_world, 0.0)
        if complete_s > prev:
            self._pending[target_world] = complete_s

    # -- communication operations ----------------------------------------------

    def _normalize_target(self, origin_count, origin_dtref, target):
        """Default the target (count, datatype) to the origin's."""
        if target is None:
            return origin_count, origin_dtref
        t_count, t_dt = target
        from repro.datatypes.usage import classify, DatatypeRef
        t_ref = t_dt if isinstance(t_dt, DatatypeRef) else classify(t_dt)
        return t_count, t_ref

    def put(self, origin, target_rank: int, target_disp: int = 0,
            target: Optional[tuple] = None,
            flags: ext.ExtFlags = ext.NONE) -> None:
        """MPI_PUT: write *origin* into the target window at
        *target_disp* (element offset scaled by the target's
        disp_unit).  *target* optionally overrides the target (count,
        datatype)."""
        proc, c = self.proc, COSTS
        buf, count, dtref = normalize_buffer(origin)
        t_count, t_ref = self._normalize_target(count, dtref, target)
        with mpi_entry(proc, c.put_function_call, c.put_thread_check,
                       name="MPI_Put",
                       vci=proc.vci_for(self.comm.ctx, target_rank, 0)):
            if proc.config.error_checking:
                self._validate_rma(buf, count, dtref, target_rank,
                                   flags.global_rank)
            if proc.sanitizer is not None and target_rank != PROC_NULL:
                proc.sanitizer.check_rma(self, target_rank)
            op = PutOp(origin_buf=buf, origin_count=count,
                       origin_dtref=dtref, target_rank=target_rank,
                       target_disp=target_disp, target_count=t_count,
                       target_dtref=t_ref, win=self, flags=flags)
            proc.device.put(op)

    def get(self, origin, target_rank: int, target_disp: int = 0,
            target: Optional[tuple] = None,
            flags: ext.ExtFlags = ext.NONE) -> None:
        """MPI_GET: read the target window into *origin*."""
        proc, c = self.proc, COSTS
        buf, count, dtref = normalize_buffer(origin)
        t_count, t_ref = self._normalize_target(count, dtref, target)
        with mpi_entry(proc, c.put_function_call, c.put_thread_check,
                       name="MPI_Get",
                       vci=proc.vci_for(self.comm.ctx, target_rank, 0)):
            if proc.config.error_checking:
                self._validate_rma(buf, count, dtref, target_rank,
                                   flags.global_rank)
            if proc.sanitizer is not None and target_rank != PROC_NULL:
                proc.sanitizer.check_rma(self, target_rank)
            op = GetOp(origin_buf=buf, origin_count=count,
                       origin_dtref=dtref, target_rank=target_rank,
                       target_disp=target_disp, target_count=t_count,
                       target_dtref=t_ref, win=self, flags=flags,
                       mpi_name="MPI_Get")
            proc.device.get(op)

    def accumulate(self, origin, target_rank: int, target_disp: int = 0,
                   op: reduceops.Op = reduceops.SUM,
                   target: Optional[tuple] = None,
                   flags: ext.ExtFlags = ext.NONE) -> None:
        """MPI_ACCUMULATE: elementwise ``target = op(origin, target)``."""
        proc, c = self.proc, COSTS
        buf, count, dtref = normalize_buffer(origin)
        t_count, t_ref = self._normalize_target(count, dtref, target)
        with mpi_entry(proc, c.put_function_call, c.put_thread_check,
                       name="MPI_Accumulate",
                       vci=proc.vci_for(self.comm.ctx, target_rank, 0)):
            if proc.config.error_checking:
                self._validate_rma(buf, count, dtref, target_rank,
                                   flags.global_rank)
            if proc.sanitizer is not None and target_rank != PROC_NULL:
                proc.sanitizer.check_rma(self, target_rank)
            acc = AccOp(origin_buf=buf, origin_count=count,
                        origin_dtref=dtref, target_rank=target_rank,
                        target_disp=target_disp, target_count=t_count,
                        target_dtref=t_ref, win=self, op=op, flags=flags)
            proc.device.accumulate(acc)

    def get_accumulate(self, origin, result: np.ndarray, target_rank: int,
                       target_disp: int = 0,
                       op: reduceops.Op = reduceops.SUM,
                       flags: ext.ExtFlags = ext.NONE) -> None:
        """MPI_GET_ACCUMULATE: fetch the old target value into *result*
        and apply *op* atomically."""
        proc, c = self.proc, COSTS
        buf, count, dtref = normalize_buffer(origin)
        with mpi_entry(proc, c.put_function_call, c.put_thread_check,
                       name="MPI_Get_accumulate",
                       vci=proc.vci_for(self.comm.ctx, target_rank, 0)):
            if proc.config.error_checking:
                self._validate_rma(buf, count, dtref, target_rank,
                                   flags.global_rank)
            if proc.sanitizer is not None and target_rank != PROC_NULL:
                proc.sanitizer.check_rma(self, target_rank)
            acc = AccOp(origin_buf=buf, origin_count=count,
                        origin_dtref=dtref, target_rank=target_rank,
                        target_disp=target_disp, target_count=count,
                        target_dtref=dtref, win=self, op=op, flags=flags,
                        fetch_buf=result, mpi_name="MPI_Get_accumulate")
            proc.device.accumulate(acc)

    def fetch_and_op(self, origin, result: np.ndarray, target_rank: int,
                     target_disp: int = 0,
                     op: reduceops.Op = reduceops.SUM) -> None:
        """MPI_FETCH_AND_OP: single-element get_accumulate."""
        self.get_accumulate(origin, result, target_rank, target_disp, op)

    def compare_and_swap(self, origin: np.ndarray, compare: np.ndarray,
                         result: np.ndarray, target_rank: int,
                         target_disp: int = 0) -> None:
        """MPI_COMPARE_AND_SWAP of one element."""
        proc, c = self.proc, COSTS
        buf, count, dtref = normalize_buffer(origin)
        if count != 1:
            raise MPIErrArg("compare_and_swap operates on one element")
        with mpi_entry(proc, c.put_function_call, c.put_thread_check,
                       name="MPI_Compare_and_swap",
                       vci=proc.vci_for(self.comm.ctx, target_rank, 0)):
            if proc.config.error_checking:
                self._validate_rma(buf, count, dtref, target_rank, False)
            if proc.sanitizer is not None and target_rank != PROC_NULL:
                proc.sanitizer.check_rma(self, target_rank)
            target_world = self.comm.world_rank_of(target_rank)
            state = self.state_of(target_world)
            from repro.core import am
            from repro.datatypes.pack import pack, unpack
            transport = proc.device._transport_for(target_world)
            res = transport.issue(dtref.datatype.size, native=True,
                                  round_trip=True)
            old = am.run_handler(
                "compare_and_swap", state,
                compare=pack(compare, 1, dtref.datatype),
                origin=pack(buf, 1, dtref.datatype),
                offset_bytes=target_disp * state.disp_unit,
                datatype=dtref.datatype)
            unpack(old, result, 1, dtref.datatype)
            self.note_pending(target_world, res.complete_s)

    # -- §3.2 extension entry points --------------------------------------------

    def put_virtual_addr(self, origin, target_rank: int, vaddr: int,
                         target: Optional[tuple] = None) -> None:
        """§3.2 MPI_PUT_VIRTUAL_ADDR: *vaddr* is a pre-resolved virtual
        address from :meth:`remote_addr` (or an attach base plus
        offset).  Valid on every window kind."""
        self.put(origin, target_rank, vaddr, target,
                 flags=ext.VIRTUAL_ADDR)

    def get_virtual_addr(self, origin, target_rank: int, vaddr: int,
                         target: Optional[tuple] = None) -> None:
        """§3.2 MPI_GET_VIRTUAL_ADDR (see :meth:`put_virtual_addr`)."""
        self.get(origin, target_rank, vaddr, target,
                 flags=ext.VIRTUAL_ADDR)

    def put_all_opts(self, origin, target_world: int, vaddr: int) -> None:
        """§3.7 combined RMA fast path: global rank + static handle +
        virtual address + no PROC_NULL."""
        self.put(origin, target_world, vaddr, None,
                 flags=ext.ALL_OPTS_RMA)

    # -- validation ----------------------------------------------------------------

    @fastpath
    def _validate_rma(self, buf, count, dtref, target_rank: int,
                      global_rank: bool) -> None:
        from repro.instrument.categories import Category
        proc, err = self.proc, COSTS.put_error
        proc.charge(Category.ERROR_CHECKING, err.args_basic)
        if count < 0:
            from repro.errors import MPIErrCount
            raise MPIErrCount(f"count must be >= 0, got {count}")
        proc.charge(Category.ERROR_CHECKING, err.datatype_committed)
        if not dtref.datatype.committed:
            from repro.errors import MPIErrDatatype
            raise MPIErrDatatype(
                f"datatype {dtref.datatype.name} used before commit")
        proc.charge(Category.ERROR_CHECKING, err.object_valid)
        if self.freed:
            raise MPIErrWin("operation on a freed window")
        proc.charge(Category.ERROR_CHECKING, err.rank_range)
        limit = self.comm.world_size if global_rank else self.comm.size
        if target_rank != PROC_NULL and not 0 <= target_rank < limit:
            raise MPIErrRank(
                f"target {target_rank} outside [0, {limit})")

    # -- synchronization ---------------------------------------------------------

    def fence(self) -> None:
        """MPI_WIN_FENCE: close the active epoch everywhere (barrier
        plus completion of all pending operations)."""
        self.flush_all()
        self.comm.barrier()
        if self.proc.sanitizer is not None:
            self.proc.sanitizer.note_fence(self)

    def lock(self, target_rank: int,
             lock_type: str = LOCK_EXCLUSIVE) -> None:
        """MPI_WIN_LOCK: open a passive epoch at *target_rank*."""
        if target_rank in self._held_locks:
            raise MPIErrRMASync(
                f"window already locked at target {target_rank}")
        target_world = self.comm.world_rank_of(target_rank)
        self.state_of(target_world).epoch_lock.acquire(
            lock_type, self.comm.world.abort_event)
        self._held_locks[target_rank] = lock_type

    def unlock(self, target_rank: int) -> None:
        """MPI_WIN_UNLOCK: complete pending ops and close the epoch."""
        try:
            lock_type = self._held_locks.pop(target_rank)
        except KeyError:
            raise MPIErrRMASync(
                f"unlock without lock at target {target_rank}") from None
        self.flush(target_rank)
        target_world = self.comm.world_rank_of(target_rank)
        self.state_of(target_world).epoch_lock.release(lock_type)

    def lock_all(self) -> None:
        """MPI_WIN_LOCK_ALL (shared mode everywhere)."""
        for r in range(self.comm.size):
            self.lock(r, LOCK_SHARED)

    def unlock_all(self) -> None:
        """MPI_WIN_UNLOCK_ALL."""
        for r in list(self._held_locks):
            self.unlock(r)

    def flush(self, target_rank: int) -> None:
        """MPI_WIN_FLUSH: complete pending ops toward *target_rank*
        (merges their completion time into this rank's clock)."""
        target_world = self.comm.world_rank_of(target_rank)
        t = self._pending.pop(target_world, None)
        if t is not None:
            self.proc.vclock.merge(t)

    def flush_all(self) -> None:
        """MPI_WIN_FLUSH_ALL."""
        if self._pending:
            self.proc.vclock.merge(max(self._pending.values()))
            self._pending.clear()

    # -- generalized active target (PSCW) ------------------------------------

    #: Tag base for post/start/complete/wait notifications; each window
    #: uses a disjoint pair derived from its id.
    _PSCW_TAG_BASE = (1 << 19) + 64

    def _pscw_tags(self) -> tuple[int, int]:
        base = Window._PSCW_TAG_BASE + 2 * self.win_id
        return base, base + 1   # (post, complete)

    def post(self, origin_ranks: Sequence[int]) -> None:
        """MPI_WIN_POST: expose the local window to *origin_ranks*
        (communicator ranks); they may access it after their matching
        :meth:`start`."""
        if getattr(self, "_exposure", None):
            raise MPIErrRMASync("post while an exposure epoch is open")
        post_tag, _ = self._pscw_tags()
        self._exposure = list(origin_ranks)
        for origin in self._exposure:
            self.comm._isend_bytes(b"", origin, post_tag)

    def start(self, target_ranks: Sequence[int]) -> None:
        """MPI_WIN_START: open an access epoch to *target_ranks*; blocks
        until each target has posted."""
        if getattr(self, "_access", None):
            raise MPIErrRMASync("start while an access epoch is open")
        post_tag, _ = self._pscw_tags()
        self._access = list(target_ranks)
        for target in self._access:
            self.comm._recv_bytes(target, post_tag)

    def complete(self) -> None:
        """MPI_WIN_COMPLETE: finish the access epoch opened by start."""
        targets = getattr(self, "_access", None)
        if not targets:
            raise MPIErrRMASync("complete without start")
        _, complete_tag = self._pscw_tags()
        for target in targets:
            self.flush(target)
            self.comm._isend_bytes(b"", target, complete_tag)
        self._access = None

    def wait_sync(self) -> None:
        """MPI_WIN_WAIT: close the exposure epoch opened by post
        (blocks until every granted origin completed)."""
        origins = getattr(self, "_exposure", None)
        if not origins:
            raise MPIErrRMASync("wait without post")
        _, complete_tag = self._pscw_tags()
        for origin in origins:
            self.comm._recv_bytes(origin, complete_tag)
        self._exposure = None

    def free(self) -> None:
        """MPI_WIN_FREE (collective): complete and drop the window."""
        self.fence()
        self.freed = True
        if self.proc.sanitizer is not None:
            self.proc.sanitizer.note_win_free(self)
