"""Explicit pack/unpack (MPI_PACK / MPI_UNPACK / MPI_PACK_SIZE).

The user-facing face of the datatype engine: serialize typed data into
a caller-managed byte buffer and back, with MPI's incremental
``position`` cursor semantics.
"""

from __future__ import annotations

from typing import Union

import numpy as np

from repro.datatypes.pack import Buffer, as_bytes, pack, packed_size, unpack
from repro.datatypes.predefined import Datatype
from repro.errors import MPIErrArg, MPIErrBuffer


def pack_size(count: int, datatype: Datatype) -> int:
    """MPI_PACK_SIZE: bytes needed to pack (count, datatype)."""
    return packed_size(count, datatype)


def mpi_pack(inbuf: Buffer, count: int, datatype: Datatype,
             outbuf: Union[bytearray, np.ndarray],
             position: int = 0) -> int:
    """MPI_PACK: append (count, datatype) of *inbuf* to *outbuf* at
    *position*; returns the updated position."""
    if position < 0:
        raise MPIErrArg(f"position must be >= 0, got {position}")
    data = pack(inbuf, count, datatype)
    out = as_bytes(outbuf)
    if not out.flags.writeable:
        raise MPIErrBuffer("pack output buffer is read-only")
    end = position + len(data)
    if end > out.size:
        raise MPIErrBuffer(
            f"pack overflows output buffer: need {end} bytes, "
            f"have {out.size}")
    out[position:end] = np.frombuffer(data, np.uint8)
    return end


def mpi_unpack(inbuf: Buffer, position: int, outbuf: Buffer, count: int,
               datatype: Datatype) -> int:
    """MPI_UNPACK: extract (count, datatype) into *outbuf* from *inbuf*
    starting at *position*; returns the updated position."""
    if position < 0:
        raise MPIErrArg(f"position must be >= 0, got {position}")
    raw = as_bytes(inbuf)
    nbytes = packed_size(count, datatype)
    end = position + nbytes
    if end > raw.size:
        raise MPIErrBuffer(
            f"unpack reads past input buffer: need {end} bytes, "
            f"have {raw.size}")
    # Feed the scatter a view of the input range — materializing it
    # first would be a pointless extra copy (bufcheck rule BC504).
    unpack(raw[position:end].data, outbuf, count, datatype)
    return end
