"""Cartesian process topologies (MPI_CART_*).

The paper's §3.1 example — "a five-point stencil computation on a
Cartesian grid where the application could simply store the
MPI_COMM_WORLD ranks of its north, south, east, and west neighbors" —
is exactly what :meth:`CartComm.shift` plus
:meth:`CartComm.shift_global` provide: the former returns communicator
ranks (with MPI_PROC_NULL at non-periodic boundaries, §3.4), the
latter returns pre-translated world ranks for the ``isend_global``
fast path.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.consts import PROC_NULL
from repro.errors import MPIErrArg
from repro.mpi.comm import Communicator
from repro.mpi.group import Group


def dims_create(nnodes: int, ndims: int,
                dims: Optional[Sequence[int]] = None) -> list[int]:
    """MPI_DIMS_CREATE: balanced factorization of *nnodes* over *ndims*
    dimensions; nonzero entries of *dims* are fixed constraints."""
    if nnodes <= 0:
        raise MPIErrArg(f"nnodes must be positive, got {nnodes}")
    if ndims <= 0:
        raise MPIErrArg(f"ndims must be positive, got {ndims}")
    fixed = list(dims) if dims is not None else [0] * ndims
    if len(fixed) != ndims:
        raise MPIErrArg(f"dims has {len(fixed)} entries, ndims={ndims}")
    remaining = nnodes
    for d in fixed:
        if d < 0:
            raise MPIErrArg(f"dims entries must be >= 0, got {d}")
        if d > 0:
            if remaining % d:
                raise MPIErrArg(
                    f"fixed dims {fixed} do not divide {nnodes}")
            remaining //= d
    free = [i for i, d in enumerate(fixed) if d == 0]
    # Greedy: repeatedly give the largest prime factor to the smallest
    # current dimension.
    factors = _prime_factors(remaining)
    sizes = {i: 1 for i in free}
    for f in sorted(factors, reverse=True):
        smallest = min(free, key=lambda i: sizes[i]) if free else None
        if smallest is None:
            break
        sizes[smallest] *= f
    out = list(fixed)
    for i in free:
        out[i] = sizes[i]
    prod = 1
    for d in out:
        prod *= d
    if prod != nnodes:
        raise MPIErrArg(
            f"cannot factor {nnodes} into {ndims} dims with {fixed}")
    return out


def _prime_factors(n: int) -> list[int]:
    out = []
    f = 2
    while f * f <= n:
        while n % f == 0:
            out.append(f)
            n //= f
        f += 1
    if n > 1:
        out.append(n)
    return out


class CartComm(Communicator):
    """A communicator with Cartesian topology attached."""

    def __init__(self, proc, group: Group, ctx: int,
                 dims: Sequence[int], periods: Sequence[bool],
                 name: str = "cart"):
        super().__init__(proc, group, ctx, name=name)
        self.dims = tuple(int(d) for d in dims)
        self.periods = tuple(bool(p) for p in periods)
        if len(self.dims) != len(self.periods):
            raise MPIErrArg("dims and periods length mismatch")
        prod = 1
        for d in self.dims:
            if d <= 0:
                raise MPIErrArg(f"cart dims must be positive: {self.dims}")
            prod *= d
        if prod != self.size:
            raise MPIErrArg(
                f"cart grid {self.dims} holds {prod} ranks, "
                f"communicator has {self.size}")

    # -- coordinate mapping (row-major, last dim fastest: MPI order) -----

    @property
    def ndims(self) -> int:
        """MPI_CARTDIM_GET."""
        return len(self.dims)

    def coords(self, rank: Optional[int] = None) -> tuple[int, ...]:
        """MPI_CART_COORDS of *rank* (default: this rank)."""
        r = self.rank if rank is None else rank
        if not 0 <= r < self.size:
            from repro.errors import MPIErrRank
            raise MPIErrRank(f"rank {r} outside [0, {self.size})")
        out = []
        for d in reversed(self.dims):
            out.append(r % d)
            r //= d
        return tuple(reversed(out))

    def cart_rank(self, coords: Sequence[int]) -> int:
        """MPI_CART_RANK: coordinates to rank, wrapping periodic
        dimensions; PROC_NULL for out-of-range non-periodic ones."""
        if len(coords) != self.ndims:
            raise MPIErrArg(
                f"expected {self.ndims} coordinates, got {len(coords)}")
        rank = 0
        for c, d, periodic in zip(coords, self.dims, self.periods):
            if periodic:
                c %= d
            elif not 0 <= c < d:
                return PROC_NULL
            rank = rank * d + c
        return rank

    # -- neighbor queries ----------------------------------------------------

    def shift(self, direction: int, disp: int = 1) -> tuple[int, int]:
        """MPI_CART_SHIFT: ``(source, dest)`` communicator ranks for a
        displacement *disp* along *direction* (PROC_NULL at non-
        periodic edges — §3.4's convenience)."""
        if not 0 <= direction < self.ndims:
            raise MPIErrArg(
                f"direction {direction} outside [0, {self.ndims})")
        me = list(self.coords())
        up = list(me)
        up[direction] += disp
        down = list(me)
        down[direction] -= disp
        return self.cart_rank(down), self.cart_rank(up)

    def shift_global(self, direction: int,
                     disp: int = 1) -> tuple[int, int]:
        """The §3.1 recipe in one call: :meth:`shift` results
        pre-translated to MPI_COMM_WORLD ranks (PROC_NULL preserved),
        ready to store "in four separate variables" and use with
        ``isend_global``."""
        src, dest = self.shift(direction, disp)
        to_world = (lambda r: PROC_NULL if r == PROC_NULL
                    else self.world_rank_of(r))
        return to_world(src), to_world(dest)

    def neighbors(self) -> list[tuple[int, int]]:
        """(source, dest) pairs for every dimension, unit displacement."""
        return [self.shift(d, 1) for d in range(self.ndims)]

    # -- neighborhood collectives (MPI_NEIGHBOR_*) -------------------------------

    _NEIGHBOR_TAG = (1 << 19) + 51

    def _neighbor_list(self) -> list[int]:
        """Neighbor order per the standard: for each dimension, the
        negative-displacement neighbor then the positive one."""
        out = []
        for d in range(self.ndims):
            src, dest = self.shift(d, 1)
            out.extend((src, dest))
        return out

    def neighbor_allgather(self, obj) -> list:
        """MPI_NEIGHBOR_ALLGATHER: send *obj* to every neighbor,
        collect one object per neighbor (None across PROC_NULL)."""
        import pickle
        neighbors = self._neighbor_list()
        payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
        reqs = []
        for nbr in neighbors:
            if nbr != PROC_NULL:
                reqs.append(self._isend_bytes(payload, nbr,
                                              self._NEIGHBOR_TAG))
        out = []
        for nbr in neighbors:
            if nbr == PROC_NULL:
                out.append(None)
            else:
                out.append(pickle.loads(
                    self._recv_bytes(nbr, self._NEIGHBOR_TAG)))
        for req in reqs:
            req.wait()
        return out

    def neighbor_alltoall(self, objs: Sequence) -> list:
        """MPI_NEIGHBOR_ALLTOALL: personalized exchange with each
        neighbor (objs in standard neighbor order)."""
        import pickle
        neighbors = self._neighbor_list()
        if len(objs) != len(neighbors):
            raise MPIErrArg(
                f"need {len(neighbors)} objects (one per neighbor), "
                f"got {len(objs)}")
        reqs = []
        for nbr, obj in zip(neighbors, objs):
            if nbr != PROC_NULL:
                reqs.append(self._isend_bytes(
                    pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL),
                    nbr, self._NEIGHBOR_TAG + 1))
        out = []
        for nbr in neighbors:
            if nbr == PROC_NULL:
                out.append(None)
            else:
                out.append(pickle.loads(
                    self._recv_bytes(nbr, self._NEIGHBOR_TAG + 1)))
        for req in reqs:
            req.wait()
        return out

    # -- sub-grids --------------------------------------------------------------

    def sub(self, remain_dims: Sequence[bool]) -> "CartComm":
        """MPI_CART_SUB: split into sub-grids keeping the dimensions
        flagged in *remain_dims*."""
        if len(remain_dims) != self.ndims:
            raise MPIErrArg(
                f"remain_dims needs {self.ndims} entries")
        me = self.coords()
        color = 0
        for c, d, keep in zip(me, self.dims, remain_dims):
            if not keep:
                color = color * d + c
        key = 0
        for c, d, keep in zip(me, self.dims, remain_dims):
            if keep:
                key = key * d + c
        flat = self.split(color=color, key=key)
        sub_dims = [d for d, keep in zip(self.dims, remain_dims) if keep]
        sub_periods = [p for p, keep in zip(self.periods, remain_dims)
                       if keep]
        if not sub_dims:
            sub_dims, sub_periods = [1], [False]
        return CartComm(self.proc, flat.group, flat.ctx, sub_dims,
                        sub_periods, name=f"{self.name}.sub")


def cart_create(comm: Communicator, dims: Sequence[int],
                periods: Sequence[bool],
                reorder: bool = False) -> Optional[CartComm]:
    """MPI_CART_CREATE (collective): attach a Cartesian topology.

    Ranks beyond ``prod(dims)`` receive None, per the standard.
    *reorder* is accepted but ignored (rank order is already optimal
    for the block placement the runtime uses).
    """
    prod = 1
    for d in dims:
        prod *= d
    if prod > comm.size:
        raise MPIErrArg(
            f"cart grid {tuple(dims)} needs {prod} ranks, "
            f"communicator has {comm.size}")
    sub = comm.split(color=0 if comm.rank < prod else 1, key=comm.rank)
    if comm.rank >= prod:
        return None
    return CartComm(comm.proc, sub.group, sub.ctx, dims, periods,
                    name=f"{comm.name}.cart")
