"""Intercommunicators (MPI_INTERCOMM_CREATE / MPI_COMM_REMOTE_*).

Point-to-point on an intercommunicator addresses ranks of the *remote*
group.  This module exists partly to honour a specific sentence of the
paper's §3.1: the proposed ``MPI_ISEND_GLOBAL`` "would not be
'intercommunicator-safe'" — and indeed
:meth:`Intercommunicator.isend_global` refuses to run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.errors import MPIErrArg, MPIErrComm, MPIErrRank
from repro.mpi.comm import Communicator
from repro.mpi.group import Group

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc

#: Handshake tag used by intercomm_create's leader exchange.
_CREATE_TAG = (1 << 19) + 61


class Intercommunicator(Communicator):
    """A communicator whose send/recv targets live in a remote group.

    Matching uses the shared context id; envelope source ranks are the
    sender's rank in its *local* group, which is exactly what the
    receiver names with its ``source`` argument (the remote group from
    the receiver's point of view).
    """

    def __init__(self, proc: "Proc", local_group: Group,
                 remote_group: Group, ctx: int, name: str = "intercomm"):
        super().__init__(proc, local_group, ctx, name=name)
        self.remote_group = remote_group
        # Translation for *targets* must map remote ranks.
        from repro.runtime.ranktrans import build_translation
        self._remote_translation = build_translation(
            remote_group.world_ranks, proc.config.rank_translation)

    # -- queries ----------------------------------------------------------------

    @property
    def is_inter(self) -> bool:
        """MPI_COMM_TEST_INTER."""
        return True

    @property
    def remote_size(self) -> int:
        """MPI_COMM_REMOTE_SIZE."""
        return self.remote_group.size

    def world_rank_of(self, comm_rank: int) -> int:
        """Targets denote remote-group ranks on an intercommunicator."""
        return self._remote_translation.world_rank(comm_rank)

    # -- overridden addressing ---------------------------------------------------

    def _isend_bytes(self, data, dest, tag, sync=False, flags=None):
        from repro.core import extensions as ext
        import numpy as np
        from repro.core.ops import SendOp
        from repro.mpi.pt2pt import BYTE_REF
        if flags is None:
            flags = ext.NONE
        if flags.global_rank:
            raise MPIErrArg(
                "MPI_ISEND_GLOBAL is not intercommunicator-safe (§3.1)")
        buf = np.frombuffer(data, np.uint8) if data \
            else np.empty(0, np.uint8)
        op = SendOp(buf=buf, count=len(data), dtref=BYTE_REF, dest=dest,
                    tag=tag, comm=self, flags=flags, sync=sync)
        return self.proc.device.isend(op)

    @property
    def translation(self):
        """The device resolves destinations through this translation;
        for an intercommunicator that is the remote group's."""
        return self._remote_translation

    @translation.setter
    def translation(self, value):
        """Base-class __init__ assigns the local translation; keep it
        for the local group (the remote one is built afterwards)."""
        self._local_translation = value

    # -- the paper's §3.1 restriction ---------------------------------------------

    def isend_global(self, buf, dest_world: int, tag: int = 0):
        """Rejected: the paper's proposal explicitly excludes
        intercommunicators ("one could not use this function for
        communicating across processes that belong to different
        MPI_COMM_WORLD communicators")."""
        raise MPIErrArg(
            "MPI_ISEND_GLOBAL is not intercommunicator-safe (§3.1)")

    def isend_all_opts(self, buf, dest_world: int, tag: int = 0):
        """Rejected: subsumes the global-rank addressing of §3.1."""
        raise MPIErrArg(
            "MPI_ISEND_ALL_OPTS is not intercommunicator-safe (§3.1)")

    # -- unsupported-on-inter operations --------------------------------------------

    def dup(self, name: Optional[str] = None):
        """Intercomm dup: same groups, fresh context (agreed across
        both sides through the local leaders)."""
        raise MPIErrComm(
            "intercommunicator dup is not implemented in this runtime")

    def _no_inter_collectives(self, what: str):
        raise MPIErrComm(
            f"intercommunicator {what} is not implemented in this "
            "runtime (point-to-point only)")

    def barrier(self):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("barrier")

    def bcast(self, obj=None, root=0):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("bcast")

    def allreduce(self, obj, op=None):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("allreduce")

    def allgather(self, obj):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("allgather")


def intercomm_create(local_comm: Communicator, local_leader: int,
                     peer_comm: Communicator, remote_leader: int,
                     tag: int = 0) -> Intercommunicator:
    """MPI_INTERCOMM_CREATE.

    Collective over both local communicators; the leaders exchange
    group information and a jointly allocated context id through
    *peer_comm* (a communicator containing both leaders —
    MPI_COMM_WORLD in the tests, as is typical).
    """
    if not 0 <= local_leader < local_comm.size:
        raise MPIErrRank(
            f"local leader {local_leader} outside [0, {local_comm.size})")
    proc = local_comm.proc
    i_am_leader = local_comm.rank == local_leader

    handshake = None
    if i_am_leader:
        # Deterministic context agreement: the leader with the smaller
        # peer rank allocates and sends; the other receives.
        my_ranks = list(local_comm.group.world_ranks)
        if peer_comm.rank < remote_leader:
            ctx = proc.world.alloc_context_id()
            peer_comm.send((ctx, my_ranks), dest=remote_leader,
                           tag=_CREATE_TAG + tag)
            _, remote_ranks = peer_comm.recv(source=remote_leader,
                                             tag=_CREATE_TAG + tag)
        else:
            ctx, remote_ranks = peer_comm.recv(source=remote_leader,
                                               tag=_CREATE_TAG + tag)
            peer_comm.send((ctx, my_ranks), dest=remote_leader,
                           tag=_CREATE_TAG + tag)
        handshake = (ctx, remote_ranks)

    ctx, remote_ranks = local_comm.bcast(handshake, root=local_leader)
    return Intercommunicator(proc, local_comm.group, Group(remote_ranks),
                             ctx, name=f"{local_comm.name}.inter")


def split_type_shared(comm: Communicator) -> Communicator:
    """MPI_COMM_SPLIT_TYPE(MPI_COMM_TYPE_SHARED): one communicator per
    node — the ranks whose traffic the shmmod carries."""
    node = comm.proc.world.topology.node_of(comm.proc.world_rank)
    return comm.split(color=node, key=comm.rank)
