"""Intercommunicators and the dynamic-process layer.

Covers MPI_INTERCOMM_CREATE / MPI_COMM_REMOTE_* plus the
dynamic-process surface of MPI chapter 10: ``MPI_Open_port`` /
``MPI_Comm_accept`` / ``MPI_Comm_connect`` (the client/server model)
and ``MPI_Comm_spawn`` / ``MPI_Comm_get_parent``.  The
:class:`PortRegistry` is the runtime's analog of the out-of-band
channel real implementations use for the connect/accept handshake (a
published port name resolved through a nameserver or the launcher):
it lives on the world, outside MPI messaging, and only carries the
handshake — the resulting communication happens on an ordinary
:class:`Intercommunicator` over the modeled fabric.

Point-to-point on an intercommunicator addresses ranks of the *remote*
group.  This module also honours a specific sentence of the paper's
§3.1: the proposed ``MPI_ISEND_GLOBAL`` "would not be
'intercommunicator-safe'" — and indeed
:meth:`Intercommunicator.isend_global` refuses to run.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable, Optional

from repro.errors import (MPIErrArg, MPIErrComm, MPIErrPort, MPIErrRank,
                          MPIErrSpawn, MPIError)
from repro.mpi.comm import Communicator
from repro.mpi.group import Group

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc
    from repro.runtime.world import World

#: Handshake tag used by intercomm_create's leader exchange.
_CREATE_TAG = (1 << 19) + 61


class Intercommunicator(Communicator):
    """A communicator whose send/recv targets live in a remote group.

    Matching uses the shared context id; envelope source ranks are the
    sender's rank in its *local* group, which is exactly what the
    receiver names with its ``source`` argument (the remote group from
    the receiver's point of view).
    """

    def __init__(self, proc: "Proc", local_group: Group,
                 remote_group: Group, ctx: int, name: str = "intercomm"):
        super().__init__(proc, local_group, ctx, name=name)
        self.remote_group = remote_group
        # Translation for *targets* must map remote ranks.
        from repro.runtime.ranktrans import build_translation
        self._remote_translation = build_translation(
            remote_group.world_ranks, proc.config.rank_translation)

    # -- queries ----------------------------------------------------------------

    @property
    def is_inter(self) -> bool:
        """MPI_COMM_TEST_INTER."""
        return True

    @property
    def remote_size(self) -> int:
        """MPI_COMM_REMOTE_SIZE."""
        return self.remote_group.size

    def world_rank_of(self, comm_rank: int) -> int:
        """Targets denote remote-group ranks on an intercommunicator."""
        return self._remote_translation.world_rank(comm_rank)

    # -- overridden addressing ---------------------------------------------------

    def _isend_bytes(self, data, dest, tag, sync=False, flags=None):
        from repro.core import extensions as ext
        import numpy as np
        from repro.core.ops import SendOp
        from repro.mpi.pt2pt import BYTE_REF
        if flags is None:
            flags = ext.NONE
        if flags.global_rank:
            raise MPIErrArg(
                "MPI_ISEND_GLOBAL is not intercommunicator-safe (§3.1)")
        buf = np.frombuffer(data, np.uint8) if data \
            else np.empty(0, np.uint8)
        op = SendOp(buf=buf, count=len(data), dtref=BYTE_REF, dest=dest,
                    tag=tag, comm=self, flags=flags, sync=sync)
        return self.proc.device.isend(op)

    @property
    def translation(self):
        """The device resolves destinations through this translation;
        for an intercommunicator that is the remote group's."""
        return self._remote_translation

    @translation.setter
    def translation(self, value):
        """Base-class __init__ assigns the local translation; keep it
        for the local group (the remote one is built afterwards)."""
        self._local_translation = value

    # -- the paper's §3.1 restriction ---------------------------------------------

    def isend_global(self, buf, dest_world: int, tag: int = 0):
        """Rejected: the paper's proposal explicitly excludes
        intercommunicators ("one could not use this function for
        communicating across processes that belong to different
        MPI_COMM_WORLD communicators")."""
        raise MPIErrArg(
            "MPI_ISEND_GLOBAL is not intercommunicator-safe (§3.1)")

    def isend_all_opts(self, buf, dest_world: int, tag: int = 0):
        """Rejected: subsumes the global-rank addressing of §3.1."""
        raise MPIErrArg(
            "MPI_ISEND_ALL_OPTS is not intercommunicator-safe (§3.1)")

    # -- unsupported-on-inter operations --------------------------------------------

    def dup(self, name: Optional[str] = None):
        """Intercomm dup: same groups, fresh context (agreed across
        both sides through the local leaders)."""
        raise MPIErrComm(
            "intercommunicator dup is not implemented in this runtime")

    def _no_inter_collectives(self, what: str):
        raise MPIErrComm(
            f"intercommunicator {what} is not implemented in this "
            "runtime (point-to-point only)")

    def barrier(self):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("barrier")

    def bcast(self, obj=None, root=0):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("bcast")

    def allreduce(self, obj, op=None):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("allreduce")

    def allgather(self, obj):
        """Unsupported on intercommunicators in this runtime."""
        self._no_inter_collectives("allgather")


def intercomm_create(local_comm: Communicator, local_leader: int,
                     peer_comm: Communicator, remote_leader: int,
                     tag: int = 0) -> Intercommunicator:
    """MPI_INTERCOMM_CREATE.

    Collective over both local communicators; the leaders exchange
    group information and a jointly allocated context id through
    *peer_comm* (a communicator containing both leaders —
    MPI_COMM_WORLD in the tests, as is typical).
    """
    if not 0 <= local_leader < local_comm.size:
        raise MPIErrRank(
            f"local leader {local_leader} outside [0, {local_comm.size})")
    proc = local_comm.proc
    i_am_leader = local_comm.rank == local_leader

    handshake = None
    if i_am_leader:
        # Deterministic context agreement: the leader with the smaller
        # peer rank allocates and sends; the other receives.
        my_ranks = list(local_comm.group.world_ranks)
        if peer_comm.rank < remote_leader:
            ctx = proc.world.alloc_context_id()
            peer_comm.send((ctx, my_ranks), dest=remote_leader,
                           tag=_CREATE_TAG + tag)
            _, remote_ranks = peer_comm.recv(source=remote_leader,
                                             tag=_CREATE_TAG + tag)
        else:
            ctx, remote_ranks = peer_comm.recv(source=remote_leader,
                                               tag=_CREATE_TAG + tag)
            peer_comm.send((ctx, my_ranks), dest=remote_leader,
                           tag=_CREATE_TAG + tag)
        handshake = (ctx, remote_ranks)

    ctx, remote_ranks = local_comm.bcast(handshake, root=local_leader)
    return Intercommunicator(proc, local_comm.group, Group(remote_ranks),
                             ctx, name=f"{local_comm.name}.inter")


def split_type_shared(comm: Communicator) -> Communicator:
    """MPI_COMM_SPLIT_TYPE(MPI_COMM_TYPE_SHARED): one communicator per
    node — the ranks whose traffic the shmmod carries."""
    node = comm.proc.world.topology.node_of(comm.proc.world_rank)
    return comm.split(color=node, key=comm.rank)


# -- ports and connect/accept (MPI chapter 10 client/server model) ----------

class _PortOffer:
    """One posted accept: the server's half of a handshake, waiting
    for a client to claim it and fill in the other half."""

    __slots__ = ("ctx", "server_ranks", "client_ranks", "event")

    def __init__(self, ctx: int, server_ranks: list[int]):
        self.ctx = ctx
        self.server_ranks = server_ranks
        #: Filled by the claiming client before it fires ``event``.
        self.client_ranks: Optional[list[int]] = None
        self.event = threading.Event()


class _Port:
    """One opened port: a FIFO of posted accepts."""

    __slots__ = ("open", "offers")

    def __init__(self):
        self.open = True
        self.offers: deque[_PortOffer] = deque()


class PortRegistry:
    """World-level port namespace for connect/accept.

    The honest analog of the out-of-band channel behind
    ``MPI_Open_port``: port names resolve here, outside MPI messaging,
    and each posted accept is claimed by **exactly one** connect (the
    FIFO pop happens under the registry lock), so two racing clients
    can never share a handshake.  Built lazily by
    :attr:`repro.runtime.world.World.ports`.
    """

    def __init__(self, world: "World"):
        self.world = world
        self._cv = threading.Condition()
        self._ports: dict[str, _Port] = {}
        self._serial = 0
        #: Observational counters (tests and the service benchmark).
        self.n_opened = 0
        self.n_accepts = 0
        self.n_connects = 0

    def open_port(self) -> str:
        """MPI_OPEN_PORT: a fresh world-unique port name."""
        with self._cv:
            name = f"port#{self._serial}"
            self._serial += 1
            self._ports[name] = _Port()
            self.n_opened += 1
            return name

    def close_port(self, name: str) -> None:
        """MPI_CLOSE_PORT: further connects fail instead of waiting."""
        with self._cv:
            port = self._ports.get(name)
            if port is None:
                raise MPIErrPort(f"unknown port {name!r}",
                                 op="MPI_Close_port")
            port.open = False
            self._cv.notify_all()

    def post_offer(self, name: str, offer: _PortOffer) -> None:
        """Queue one accept on *name* (server side)."""
        with self._cv:
            port = self._ports.get(name)
            if port is None or not port.open:
                raise MPIErrPort(f"port {name!r} is not open",
                                 op="MPI_Comm_accept")
            port.offers.append(offer)
            self.n_accepts += 1
            self._cv.notify_all()

    def cancel_offer(self, name: str, offer: _PortOffer) -> bool:
        """Withdraw a timed-out accept.  Returns False when a client
        claimed it first — the accept then must complete normally."""
        with self._cv:
            port = self._ports.get(name)
            if port is None or offer not in port.offers:
                return False
            port.offers.remove(offer)
            return True

    def claim(self, name: str, deadline: float) -> Optional[_PortOffer]:
        """Pop one posted accept from *name*, waiting until *deadline*
        (monotonic) for a port that is not open yet or has no accept
        queued; None on timeout, :class:`MPIErrPort` on a closed port
        (the server is gone — retrying is pointless)."""
        with self._cv:
            while True:
                port = self._ports.get(name)
                if port is not None and not port.open:
                    raise MPIErrPort(f"port {name!r} is closed",
                                     op="MPI_Comm_connect")
                if port is not None and port.offers:
                    self.n_connects += 1
                    return port.offers.popleft()
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return None
                if self.world.abort_event.is_set():
                    from repro.runtime.world import WorldAborted
                    raise WorldAborted(
                        "world aborted during MPI_Comm_connect")
                self._cv.wait(min(remaining, 0.05))

    def stats(self) -> dict:
        """Counters snapshot."""
        with self._cv:
            return {"n_opened": self.n_opened,
                    "n_accepts": self.n_accepts,
                    "n_connects": self.n_connects}


def open_port(comm: Communicator) -> str:
    """MPI_OPEN_PORT (local: any rank may open a port)."""
    return comm.proc.world.ports.open_port()


def close_port(comm: Communicator, name: str) -> None:
    """MPI_CLOSE_PORT."""
    comm.proc.world.ports.close_port(name)


def _bcast_handshake(comm: Communicator, root: int,
                     build: Callable[[], object]) -> object:
    """Run *build* on the root and broadcast its result (or its MPI
    error) over *comm*, so a root-side failure raises collectively
    instead of stranding the non-roots in the broadcast."""
    payload = None
    if comm.rank == root:
        try:
            payload = ("ok", build())
        except MPIError as exc:
            comm.bcast(("error", exc), root=root)
            raise
    kind, value = comm.bcast(payload, root=root)
    if kind == "error":
        raise type(value)(value.message, rank=value.rank, op=value.op)
    return value


def comm_accept(port_name: str, comm: Communicator, root: int = 0,
                timeout: Optional[float] = None) -> Intercommunicator:
    """MPI_COMM_ACCEPT: collective over *comm*; blocks until one client
    connects to *port_name* (at most *timeout* wall seconds, then
    ``MPI_ERR_PORT``) and returns the server↔client intercommunicator.
    """
    proc = comm.proc
    registry = proc.world.ports

    def build():
        offer = _PortOffer(proc.world.alloc_context_id(),
                           list(comm.group.world_ranks))
        registry.post_offer(port_name, offer)
        deadline = (None if timeout is None
                    else time.monotonic() + timeout)
        det = proc.detector
        if det is not None:
            # A rank blocked in accept is alive by construction: park
            # it (a monitored server waiting out a slow client must
            # never be suspected), and keep offering roster scans —
            # the accept loop may be the only runnable thread.
            det.enter_wait()
        try:
            while not offer.event.is_set():
                if proc.world.abort_event.is_set():
                    from repro.runtime.world import WorldAborted
                    raise WorldAborted(
                        "world aborted during MPI_Comm_accept")
                if deadline is not None \
                        and time.monotonic() >= deadline:
                    if registry.cancel_offer(port_name, offer):
                        raise MPIErrPort(
                            f"no connection on {port_name!r} within "
                            f"{timeout}s", op="MPI_Comm_accept")
                    # A client claimed at the buzzer: its reply is
                    # imminent, so this accept completes normally.
                    offer.event.wait()
                    break
                if det is not None:
                    det.maybe_tick()
                offer.event.wait(0.02)
        finally:
            if det is not None:
                det.exit_wait()
        return offer.ctx, offer.client_ranks

    ctx, client_ranks = _bcast_handshake(comm, root, build)
    return Intercommunicator(proc, comm.group, Group(client_ranks), ctx,
                             name=f"{comm.name}.accept")


def comm_connect(port_name: str, comm: Communicator, root: int = 0,
                 retries: int = 20, backoff_s: float = 0.05,
                 ) -> Intercommunicator:
    """MPI_COMM_CONNECT: collective over *comm*; claims one posted
    accept on *port_name*, retrying with exponential backoff while the
    server has not opened the port or posted an accept yet.  Raises
    ``MPI_ERR_PORT`` once the attempts are exhausted (or immediately
    when the port has been *closed* — the server is gone)."""
    proc = comm.proc
    registry = proc.world.ports

    def build():
        offer = None
        det = proc.detector
        if det is not None:
            # A rank queued behind a busy server makes no MPI calls
            # while it waits, so its heartbeat would go stale: park it
            # like a blocking wait — connecting is proof of life.
            det.enter_wait()
        try:
            for attempt in range(retries + 1):
                wait_s = backoff_s * (2 ** min(attempt, 5))
                offer = registry.claim(port_name,
                                       time.monotonic() + wait_s)
                if offer is not None:
                    break
            if offer is None:
                raise MPIErrPort(
                    f"nothing accepting on port {port_name!r} after "
                    f"{retries + 1} attempts", op="MPI_Comm_connect")
        finally:
            if det is not None:
                det.exit_wait()
        offer.client_ranks = list(comm.group.world_ranks)
        offer.event.set()
        return offer.ctx, offer.server_ranks

    ctx, server_ranks = _bcast_handshake(comm, root, build)
    return Intercommunicator(proc, comm.group, Group(server_ranks), ctx,
                             name=f"{comm.name}.connect")


# -- MPI_COMM_SPAWN / MPI_COMM_GET_PARENT -----------------------------------

def _child_comm_factory(child_ranks: list[int], child_ctx: int,
                        inter_ctx: int, parent_ranks: list[int],
                        ) -> Callable:
    """The communicator view a spawned rank's thread starts with: the
    children's own world communicator, carrying the parent
    intercommunicator for :func:`get_parent`."""
    def factory(proc: "Proc") -> Communicator:
        comm = Communicator(proc, Group(child_ranks), child_ctx,
                            name="MPI_COMM_WORLD.spawned")
        comm._parent_inter = Intercommunicator(
            proc, Group(child_ranks), Group(parent_ranks), inter_ctx,
            name="parent.inter")
        return comm
    return factory


def comm_spawn(comm: Communicator, fn: Callable, nprocs: int,
               args: tuple = (), root: int = 0) -> Intercommunicator:
    """MPI_COMM_SPAWN: collective over *comm*; starts *nprocs* fresh
    dynamic ranks running ``fn(child_comm, *args)`` and returns the
    parent↔children intercommunicator.

    The children share a world communicator of their own (they are not
    members of any parent communicator — groups snapshot their roster
    at creation) and reach the parents through
    :func:`get_parent`.  Join their threads with
    :meth:`repro.runtime.world.World.join_dynamic`.  On a detector
    build the children are registered for heartbeat monitoring — a
    spawned rank that vanishes is confirmed dead, exactly like a
    session client."""
    if nprocs <= 0:
        raise MPIErrSpawn(f"nprocs must be positive, got {nprocs}",
                          op="MPI_Comm_spawn")
    proc = comm.proc
    world = proc.world

    def build():
        born = world.add_ranks(nprocs)
        child_ranks = [p.world_rank for p in born]
        child_ctx = world.alloc_context_id()
        inter_ctx = world.alloc_context_id()
        parent_ranks = list(comm.group.world_ranks)
        factory = _child_comm_factory(child_ranks, child_ctx,
                                      inter_ctx, parent_ranks)
        for child in born:
            det = child.detector
            if det is not None:
                det.register()
            world.launch_rank(child, fn, args, comm_factory=factory,
                              name=f"mpi-spawn-{child.world_rank}")
        return child_ranks, inter_ctx

    child_ranks, inter_ctx = _bcast_handshake(comm, root, build)
    return Intercommunicator(proc, comm.group, Group(child_ranks),
                             inter_ctx, name=f"{comm.name}.spawn")


def get_parent(comm: Communicator) -> Intercommunicator:
    """MPI_COMM_GET_PARENT: the intercommunicator to the spawning
    processes; raises ``MPI_ERR_COMM`` on a process that was not
    spawned (where the standard returns MPI_COMM_NULL)."""
    parent = getattr(comm, "_parent_inter", None)
    if parent is None:
        raise MPIErrComm(
            "this process was not spawned — MPI_Comm_get_parent "
            "would return MPI_COMM_NULL")
    return parent
