"""Persistent communication requests (MPI_SEND_INIT / MPI_START).

MPI-3.1's own answer to repeated identical transfers: validate and
set up once, then ``start()`` each iteration.  The CH4 start path
charges only request-reuse plus the descriptor fill (the arguments
were frozen at init, so error checking, datatype derivation, rank
translation, object lookup, PROC_NULL and match-bit work are all
amortized away) — an in-standard cousin of the paper's Section 3
proposals, and a useful baseline for them.  CH3 has no optimized
persistent path: start re-runs its full device machinery, mirroring
the historically unoptimized persistent path of MPICH/CH3.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.consts import ANY_SOURCE, PROC_NULL
from repro.core.config import Device
from repro.core.ops import RecvOp, SendOp
from repro.datatypes.pack import pack
from repro.errors import MPIErrRequest
from repro.instrument.categories import Category, Subsystem
from repro.instrument.costs import COSTS
from repro.instrument.fastpath import fastpath
from repro.mpi.pt2pt import mpi_entry, normalize_buffer, validate_recv, \
    validate_send
from repro.runtime.matching import PostedRecv
from repro.runtime.message import Envelope, Message
from repro.runtime.request import Request, RequestKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.mpi.comm import Communicator


class PersistentRequest:
    """A reusable operation handle: ``start()`` then ``wait()``, repeat."""

    def __init__(self, comm: "Communicator"):
        self.comm = comm
        self.active: Optional[Request] = None
        self.freed = False

    def start(self) -> Request:
        """MPI_START: launch one instance of the operation."""
        if self.freed:
            raise MPIErrRequest("start on a freed persistent request")
        if self.active is not None and not self.active.is_complete():
            raise MPIErrRequest(
                "start while the previous instance is still active")
        self.active = self._launch()
        return self.active

    def wait(self) -> Request:
        """Wait for the active instance."""
        if self.active is None:
            raise MPIErrRequest("wait without start")
        self.active.wait()
        return self.active

    def free(self) -> None:
        """MPI_REQUEST_FREE for persistent handles."""
        self.freed = True

    def _launch(self) -> Request:  # pragma: no cover - abstract
        raise NotImplementedError


class PersistentSend(PersistentRequest):
    """MPI_SEND_INIT product: everything resolved once, at init."""

    def __init__(self, comm: "Communicator", buf, dest: int, tag: int):
        super().__init__(comm)
        proc, c = comm.proc, COSTS
        data, count, dtref = normalize_buffer(buf)
        # Init pays the full MPI-layer cost once.
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check):
            if proc.config.error_checking:
                validate_send(proc, c.isend_error, comm, data, count,
                              dtref, dest, tag)
        self.buf, self.count, self.dtref = data, count, dtref
        self.dest, self.tag = dest, tag
        self.is_null = dest == PROC_NULL
        if not self.is_null:
            #: Pre-resolved at init — the amortization persistent
            #: requests exist for.
            self.dest_world = comm.translation.world_rank(dest)
            self.env = Envelope(ctx=comm.ctx, src=comm.rank, tag=tag)

    @fastpath
    def _launch(self) -> Request:
        proc, comm = self.comm.proc, self.comm
        request = proc.request_pool.acquire(RequestKind.SEND)
        if self.is_null:
            request.complete(proc.vclock.now)
            return request
        with proc.timed_call():
            if not proc.config.ipo:
                proc.charge(Category.FUNCTION_CALL,
                            COSTS.isend_function_call)
            if proc.config.device is Device.CH4:
                # Reuse + descriptor only: the persistent fast start.
                proc.charge(Category.MANDATORY, COSTS.noreq_counter_inc,
                            Subsystem.REQUEST_MGMT)
                proc.charge(Category.MANDATORY,
                            COSTS.isend_mandatory.descriptor,
                            Subsystem.DESCRIPTOR)
                device = proc.device
                payload = pack(self.buf, self.count, self.dtref.datatype,
                               copy=not proc.config.zero_copy
                               or proc.faults is not None)
                request._keepalive = payload
                if proc.sanitizer is not None:
                    proc.sanitizer.note_send(
                        request, self.dest_world, False, payload,
                        (self.buf, self.count, self.dtref.datatype))
                transport = device._transport_for(self.dest_world)
                native = (not device.force_am and transport.send_is_native(
                    self.dtref.datatype.contig))
                result = transport.issue(len(payload), native)
                proc.deliver(self.dest_world,
                             Message(env=self.env, data=payload,
                                     arrive_s=result.arrive_s))
                request.complete(result.complete_s)
            else:
                # CH3 never specialized persistent ops: full path.
                op = SendOp(buf=self.buf, count=self.count,
                            dtref=self.dtref, dest=self.dest,
                            tag=self.tag, comm=comm,
                            mpi_name="MPI_Start")
                inner = proc.device.isend(op)
                inner.wait()
                request.complete(inner.complete_s)
                proc.request_pool.release(inner)
        return request


class PersistentRecv(PersistentRequest):
    """MPI_RECV_INIT product."""

    def __init__(self, comm: "Communicator", buf, source: int, tag: int):
        super().__init__(comm)
        proc, c = comm.proc, COSTS
        data, count, dtref = normalize_buffer(buf)
        with mpi_entry(proc, c.isend_function_call, c.isend_thread_check):
            if proc.config.error_checking:
                validate_recv(proc, c.isend_error, comm, count, dtref,
                              source, tag)
        self.buf, self.count, self.dtref = data, count, dtref
        self.source, self.tag = source, tag

    @fastpath
    def _launch(self) -> Request:
        proc, comm = self.comm.proc, self.comm
        if self.source == PROC_NULL:
            request = proc.request_pool.acquire(RequestKind.RECV)
            request.complete(proc.vclock.now, source=PROC_NULL, tag=-1)
            return request
        with proc.timed_call():
            if not proc.config.ipo:
                proc.charge(Category.FUNCTION_CALL,
                            COSTS.isend_function_call)
            if proc.config.device is Device.CH4:
                proc.charge(Category.MANDATORY, COSTS.noreq_counter_inc,
                            Subsystem.REQUEST_MGMT)
                proc.charge(Category.MANDATORY,
                            COSTS.isend_mandatory.descriptor,
                            Subsystem.DESCRIPTOR)
                request = proc.request_pool.acquire(RequestKind.RECV)
                buf, count, datatype = self.buf, self.count, \
                    self.dtref.datatype

                def on_match(msg: Message) -> None:
                    try:
                        from repro.datatypes.pack import unpack
                        unpack(msg.data, buf, count, datatype)
                        request.complete(msg.arrive_s, source=msg.env.src,
                                         tag=msg.env.tag,
                                         count_bytes=len(msg.data))
                    except BaseException as exc:  # noqa: BLE001
                        request.complete(msg.arrive_s,
                                         source=msg.env.src,
                                         tag=msg.env.tag, error=exc)

                if proc.sanitizer is not None:
                    proc.sanitizer.note_recv(
                        request, None if self.source == ANY_SOURCE
                        else comm.translation.world_rank(self.source))
                proc.engine.post(
                    PostedRecv(ctx=comm.ctx, src=self.source,
                               tag=self.tag, nomatch=False,
                               request=request, on_match=on_match),
                    now_s=proc.vclock.now)
                return request
            op = RecvOp(buf=self.buf, count=self.count, dtref=self.dtref,
                        source=self.source, tag=self.tag, comm=comm,
                        mpi_name="MPI_Start")
            return proc.device.irecv(op)


def startall(requests: list[PersistentRequest]) -> list[Request]:
    """MPI_STARTALL."""
    return [r.start() for r in requests]
