"""``python -m repro.check`` entry point."""

import sys

from repro.check.cli import main

sys.exit(main())
