"""Unified analysis gate: sanitize + audit + bufcheck in one command.

``python -m repro.check`` — see :mod:`repro.check.cli`.
"""

from repro.check.cli import main, run_check

__all__ = ["main", "run_check"]
