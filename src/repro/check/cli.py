"""Unified analysis driver: ``python -m repro.check``.

One command that runs every static analysis the tree ships — the MPI
correctness linter (``repro.sanitize``), the fast-path audit
(``repro.audit``) and the buffer-ownership census (``repro.bufcheck``)
— and, with ``--stress``, a quick threaded stress pass under the race
detector (``benchmarks/bench_tsan.py --quick``).  This is the single
entry point CI (and a developer before pushing) needs instead of four
invocations.

With no paths, each tool checks its CI default target: the linter
checks the shipped programs (``examples/`` and ``repro.apps``), the
audit and the census check the installed ``repro`` package.  With
explicit paths, all tools check exactly those paths.

``--json [FILE]`` writes one merged snapshot::

    {"version": 1, "exit": <max of tool exits>,
     "sanitize": {...}, "audit": {...}, "bufcheck": {...},
     "tsan": {...} | {"skipped": "<why>"}}

where each tool key holds that tool's own ``--json`` payload verbatim.
Exit status is the max of the component codes — the familiar
0 clean / 1 findings / 2 usage-error contract.
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.audit.cli import run_audit
from repro.audit.rules import render_fp_catalog
from repro.bufcheck.cli import run_bufcheck
from repro.bufcheck.rules import render_bc_catalog
from repro.sanitize.astlint import lint_paths
from repro.sanitize.cli import build_snapshot as sanitize_snapshot
from repro.sanitize.diagnostics import render_rule_catalog

#: Seconds allowed for the optional stress subprocess.
STRESS_TIMEOUT = 300.0


def package_dir() -> Path:
    """The installed ``repro`` package directory."""
    return Path(__file__).resolve().parent.parent


def repo_root() -> Path:
    """The checkout root (two levels above the package: ``src/repro``)."""
    return package_dir().parent.parent


def default_lint_paths() -> list[str]:
    """The linter's CI targets that exist in this checkout: shipped
    example programs plus the mini-apps."""
    candidates = [repo_root() / "examples", package_dir() / "apps"]
    found = [str(p) for p in candidates if p.is_dir()]
    return found or [str(package_dir())]


def run_stress() -> dict:
    """``benchmarks/bench_tsan.py --quick`` as a subprocess; returns a
    summary dict (or ``{"skipped": why}`` when unavailable)."""
    script = repo_root() / "benchmarks" / "bench_tsan.py"
    if not script.is_file():
        return {"skipped": f"{script} not found"}
    proc = subprocess.run(
        [sys.executable, str(script), "--quick"],
        cwd=repo_root(), capture_output=True, text=True,
        timeout=STRESS_TIMEOUT)
    if proc.returncode != 0:
        return {"exit": proc.returncode,
                "error": (proc.stderr or proc.stdout)[-2000:]}
    try:
        result = json.loads(proc.stdout)
    except ValueError:
        return {"exit": proc.returncode, "error": "unparseable output"}
    flood = result.get("threaded_flood", {}).get("enabled", {})
    return {"exit": 0,
            "findings": flood.get("findings"),
            "lock_events": flood.get("lock_events")}


def run_check(paths: Sequence[str], stress: bool = False,
              ) -> tuple[int, dict, list[str]]:
    """Run every analysis; returns (exit, merged snapshot, rendered
    per-tool reports)."""
    explicit = list(paths)
    tree = explicit or [str(package_dir())]
    lint_targets = explicit or default_lint_paths()

    renders: list[str] = []
    lint_report = lint_paths(lint_targets)
    renders.append("sanitize: " + lint_report.render())
    audit_report, audit_snap = run_audit(tree)
    renders.append("audit:    " + audit_report.render())
    buf_report, buf_snap = run_bufcheck(tree)
    renders.append("bufcheck: " + buf_report.render())

    exit_code = max(lint_report.exit_code(), audit_report.exit_code(),
                    buf_report.exit_code())
    snapshot = {
        "version": 1,
        "sanitize": sanitize_snapshot(lint_report),
        "audit": audit_snap,
        "bufcheck": buf_snap,
    }
    if stress:
        tsan = run_stress()
        snapshot["tsan"] = tsan
        if "skipped" in tsan:
            renders.append(f"tsan:     skipped ({tsan['skipped']})")
        else:
            renders.append(
                f"tsan:     exit {tsan['exit']}, "
                f"{tsan.get('findings')} finding(s) under stress")
            exit_code = max(exit_code, 1 if tsan["exit"] else 0)
    snapshot["exit"] = exit_code
    return exit_code, snapshot, renders


def render_catalogs() -> str:
    """All three rule catalogs, concatenated."""
    return "\n\n".join([render_rule_catalog(), render_fp_catalog(),
                        render_bc_catalog()])


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.check",
        description="Unified analysis gate: repro.sanitize + "
                    "repro.audit + repro.bufcheck (and, with --stress, "
                    "a quick race-detector stress pass).  Exit status: "
                    "0 clean, 1 findings, 2 usage error.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="source files or directories to check (default: each "
             "tool's CI target)")
    parser.add_argument(
        "--json", metavar="FILE", nargs="?", const="-", default=None,
        help="write the merged snapshot to FILE (default stdout)")
    parser.add_argument(
        "--stress", action="store_true",
        help="also run benchmarks/bench_tsan.py --quick and fold its "
             "verdict into the exit status")
    parser.add_argument(
        "--rules", action="store_true",
        help="print every tool's rule catalog and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.rules:
        print(render_catalogs())
        return 0
    exit_code, snapshot, renders = run_check(args.paths,
                                             stress=args.stress)
    for line in renders:
        print(line)
    if args.json is not None:
        if args.json == "-":
            json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"snapshot written to {args.json}")
    return exit_code
