"""Interprocedural buffer-ownership dataflow.

The engine walks function bodies (reusing :class:`repro.audit.callgraph.
CodeIndex` for parsing and call-edge resolution — it never imports the
analyzed code) and tracks payload buffers as abstract *taints*:

* a :class:`Taint` records a buffer's role (``src`` / ``dest`` /
  ``inout``), how many times its bytes were already materialized on
  this path, whether the current reference is a *borrow* (a view of
  storage someone else owns), whether it is already *dense* contiguous
  bytes, and whether it is even contiguous;
* composites (operation descriptors, messages) are dicts of field
  taints, so ``SendOp(buf=...)`` → ``device.isend(op)`` → ``op.buf``
  flows through without losing track.

Every materialization (``tobytes()``, ``bytes()``, a scatter store
``dst[a:b] = src``), borrow (``memoryview``, ``.data``, a view slice),
and ownership transfer (``Message.own_data``) is recorded as an
:class:`Event` tagged with *branch qualifiers* — which build/protocol
branch it sits on (``strided``, ``copy_mode``, ``faults``, ...).  The
census (:mod:`repro.bufcheck.census`) filters events by qualifier to
count the copies of each published path variant; the ``BC5xx`` rules
fire directly during the walk.

Calls descend through :meth:`CodeIndex.resolve_call` (the audit's
over-approximation) whenever at least one argument carries taint, with
memoization keyed on the callee plus the canonical shape of its tainted
arguments.  Closures are analyzed *at their definition site* with the
enclosing environment — the ``on_match`` callbacks they define are the
entire receive-side datapath.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence, Union

from repro.analysis_common import Finding, suppressed
from repro.audit.callgraph import CodeIndex, FunctionInfo
from repro.bufcheck.rules import MARKER

# --------------------------------------------------------------------- #
# abstract values                                                        #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Taint:
    """Abstract state of one buffer reference."""

    role: str = "src"        #: "src" | "dest" | "inout"
    copies: int = 0          #: materializations already on this path
    borrowed: bool = False   #: view of storage owned elsewhere
    dense: bool = False      #: already-materialized contiguous bytes
    contig: bool = True      #: covers a contiguous byte range
    seq: bool = False        #: sequence of per-rank payloads
    owned: bool = False      #: storage is a local materialized copy —
    #: stores through views of it mutate runtime scratch, never the
    #: application's bytes (the multi-round collectives' accumulators)


#: A tracked value: one buffer, a field->value composite (ops,
#: messages), a tuple of values (multi-returns), or untracked (None).
Value = Union[Taint, dict, list, None]


def first_taint(value: Value) -> Optional[Taint]:
    """The first :class:`Taint` reachable inside *value*, if any."""
    if isinstance(value, Taint):
        return value
    if isinstance(value, dict):
        for v in value.values():
            t = first_taint(v)
            if t is not None:
                return t
    if isinstance(value, list):
        for v in value:
            t = first_taint(v)
            if t is not None:
                return t
    return None


def merge_values(values: Sequence[Value]) -> Value:
    """Join of possible values (used for branch merges and multi-callee
    returns): identical shapes merge field-wise, otherwise the first
    tainted value wins (over-approximation, never silently untainted)."""
    tainted = [v for v in values if first_taint(v) is not None]
    if not tainted:
        return None
    head = tainted[0]
    if isinstance(head, Taint):
        out = head
        for other in tainted[1:]:
            if isinstance(other, Taint):
                out = replace(
                    out,
                    copies=max(out.copies, other.copies),
                    borrowed=out.borrowed or other.borrowed,
                    dense=out.dense or other.dense,
                    contig=out.contig and other.contig,
                    seq=out.seq or other.seq)
        return out
    return head


def canon(value: Value) -> tuple:
    """Canonical hashable shape of a value — the memoization key part.
    Copy counts saturate at 2: beyond "already copied twice" nothing
    in the rules or census distinguishes further."""
    if isinstance(value, Taint):
        return ("t", value.role, min(value.copies, 2), value.borrowed,
                value.dense, value.contig, value.seq)
    if isinstance(value, dict):
        return ("c",) + tuple(sorted(
            (k, canon(v)) for k, v in value.items()
            if first_taint(v) is not None))
    if isinstance(value, list):
        return ("l",) + tuple(canon(v) for v in value[:8])
    return ("n",)


# --------------------------------------------------------------------- #
# events                                                                 #
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class Event:
    """One data-movement site on an analyzed path."""

    qual: str                #: FunctionInfo.qualname of the site
    line: int                #: line inside that function's module
    kind: str                #: "copy" | "borrow" | "transfer"
    what: str                #: tobytes / scatter / memoryview / ...
    quals: frozenset = frozenset()   #: branch qualifiers

    @property
    def site(self) -> str:
        """Line-number-free site id (stable across unrelated edits)."""
        return f"{self.qual}::{self.kind}:{self.what}"


#: Qualifiers marking a site off the contiguous zero-copy fast path.
OFFPATH_QUALS = frozenset({
    "strided", "copy_mode", "payload_recv",
    "faults", "sanitizer", "progress", "tsan",
})

#: Qualifiers marking a site off the legacy always-copy path.
OFFCOPY_QUALS = frozenset({
    "strided", "view_mode", "payload_recv",
    "faults", "sanitizer", "progress", "tsan",
})

#: Feature attributes whose ``is (not) None`` guards gate optional
#: subsystems (the audit's FP304/305/306 None-guard pattern).
FEATURE_ATTRS = frozenset({"faults", "sanitizer", "progress", "tsan"})


def branch_quals(test: ast.expr) -> tuple[frozenset, frozenset]:
    """Qualifiers for the body / else branches of an ``if`` *test*."""
    none = frozenset()
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        body, orelse = branch_quals(test.operand)
        return orelse, body
    if isinstance(test, ast.BoolOp) and isinstance(test.op, ast.And):
        body = none
        for value in test.values:
            body = body | branch_quals(value)[0]
        return body, none          # which conjunct failed is unknown
    if isinstance(test, ast.Attribute) and test.attr == "contig":
        return none, frozenset({"strided"})
    if isinstance(test, ast.Name) and test.id == "copy":
        return frozenset({"copy_mode"}), frozenset({"view_mode"})
    if (isinstance(test, ast.Compare) and len(test.ops) == 1
            and isinstance(test.comparators[0], ast.Constant)
            and test.comparators[0].value is None):
        left = test.left
        if isinstance(left, ast.Name) and left.id == "buf":
            pos, neg = frozenset({"payload_recv"}), \
                frozenset({"buffer_recv"})
        elif isinstance(left, ast.Attribute) and left.attr in FEATURE_ATTRS:
            pos, neg = none, frozenset({left.attr})
        else:
            return none, none
        if isinstance(test.ops[0], ast.Is):
            return pos, neg
        return neg, pos
    return none, none


# --------------------------------------------------------------------- #
# name tables                                                            #
# --------------------------------------------------------------------- #

#: Calls that only read their buffer argument (checksums, sizes, ...).
SCALAR_CALLS = frozenset({
    "len", "int", "float", "bool", "str", "repr", "format", "range",
    "enumerate", "isinstance", "issubclass", "min", "max", "sum", "abs",
    "sorted", "zip", "print", "id", "hash", "type", "getattr", "hasattr",
    "divmod", "round", "all", "any", "iter", "next", "packed_size",
    "crc32", "ord", "chr",
})

#: Attribute reads on a taint that yield untracked scalars.
SCALAR_ATTRS = frozenset({
    "nbytes", "size", "shape", "dtype", "itemsize", "ndim", "flags",
    "contiguous", "readonly", "format",
})

#: Methods on a taint that materialize a dense private copy.
COPY_METHODS = frozenset({"tobytes", "copy", "flatten", "astype"})

#: Methods on a taint that return another view of the same storage.
BORROW_METHODS = frozenset({"view", "reshape", "ravel", "cast",
                            "squeeze", "byteswap"})

#: numpy-namespace constructors by behavior (receiver is ``np``).
NP_BORROW_FUNCS = frozenset({"frombuffer", "asarray"})
NP_COPY_FUNCS = frozenset({"array", "copy", "concatenate",
                           "ascontiguousarray"})

#: Descriptor constructors whose keyword fields carry payload buffers.
COMPOSITE_CTORS = frozenset({
    "SendOp", "RecvOp", "PutOp", "GetOp", "AccOp", "Message",
})

#: Attribute stores that ARE the sanctioned escape hatches — pinning a
#: view on its owning request/message is the keepalive BC503 demands.
SANCTIONED_ATTRS = frozenset({"_keepalive", "payload", "data", "buf"})

#: Name-based parameter seeding for the whole-tree scan.  ``origin``
#: is inout: it is the source of a put but the destination of a get.
SRC_PARAMS = frozenset({"sendbuf", "origin_buf", "inbuf", "send"})
DEST_PARAMS = frozenset({"recvbuf", "outbuf", "fetch_buf", "recv"})
DENSE_SRC_PARAMS = frozenset({"data", "payload"})
INOUT_PARAMS = frozenset({"buf", "array", "arr", "buffer", "origin"})
MSG_PARAMS = frozenset({"msg", "message"})

#: Op-annotation composite seeds (``def isend(self, op: SendOp)``).
OP_ANNOTATION_SEEDS = {
    "SendOp": {"buf": Taint("src", borrowed=True)},
    "RecvOp": {"buf": Taint("dest", borrowed=True)},
    "PutOp": {"origin_buf": Taint("src", borrowed=True)},
    "GetOp": {"origin_buf": Taint("dest", borrowed=True)},
    "AccOp": {"origin_buf": Taint("src", borrowed=True),
              "fetch_buf": Taint("dest", borrowed=True)},
}

#: Two-buffer APIs where aliased send/recv arguments violate MPI's
#: no-overlap rule (BC505) — checked syntactically.
ALIAS_APIS = frozenset({
    "Sendrecv", "sendrecv",
    "reduce_buf", "allreduce_buf", "scan_buf", "exscan_buf",
    "reduce_scatter_block_buf", "alltoall_buf", "allgather_buf",
    "gather_buf", "scatter_buf", "bcast_buf",
})

MAX_DEPTH = 16
MAX_CANDIDATES = 6


def name_seeds(func: FunctionInfo) -> dict[str, Value]:
    """Whole-tree-scan seeds for *func*'s parameters, by naming
    convention (entry-rooted analyses pass concrete taints instead)."""
    seeds: dict[str, Value] = {}
    for arg in func.node.args.args + func.node.args.kwonlyargs:
        name = arg.arg
        ann = arg.annotation
        ann_name = None
        if isinstance(ann, ast.Name):
            ann_name = ann.id
        elif isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            ann_name = ann.value.strip('"')
        if ann_name in OP_ANNOTATION_SEEDS:
            seeds[name] = dict(OP_ANNOTATION_SEEDS[ann_name])
        elif name in MSG_PARAMS or ann_name == "Message":
            seeds[name] = {"data": Taint("src", borrowed=True)}
        elif name in SRC_PARAMS:
            seeds[name] = Taint("src", borrowed=True)
        elif name in DEST_PARAMS:
            seeds[name] = Taint("dest", borrowed=True)
        elif name in DENSE_SRC_PARAMS:
            seeds[name] = Taint("src", dense=True)
        elif name in INOUT_PARAMS:
            seeds[name] = Taint("inout", borrowed=True)
    return seeds


# --------------------------------------------------------------------- #
# the engine                                                             #
# --------------------------------------------------------------------- #


@dataclass
class Summary:
    """Result of analyzing one function under one taint signature."""

    events: list = field(default_factory=list)
    ret: Value = None


class _Ctx:
    """Per-analysis mutable state for one function activation."""

    __slots__ = ("func", "events", "depth")

    def __init__(self, func: FunctionInfo, depth: int):
        self.func = func
        self.events: list[Event] = []
        self.depth = depth


class Analyzer:
    """The interprocedural walker.  One instance per tool run; findings
    and memoized summaries accumulate across entries."""

    def __init__(self, index: CodeIndex):
        self.index = index
        self.findings: dict[tuple, Finding] = {}
        self._memo: dict[tuple, Summary] = {}
        self._active: set[tuple] = set()

    # -- findings ----------------------------------------------------------

    def _report(self, func: FunctionInfo, node: ast.AST, rule_id: str,
                message: str) -> None:
        line = getattr(node, "lineno", 0)
        if suppressed(func.module.lines, line, rule_id, MARKER):
            return
        key = (rule_id, func.module.rel, line)
        if key not in self.findings:
            self.findings[key] = Finding(
                rule_id=rule_id, path=str(func.module.path), line=line,
                message=message)

    # -- entry points ------------------------------------------------------

    def run_entry(self, cls: Optional[str], method: str,
                  seeds: dict[str, Value]) -> list[Event]:
        """Analyze one call-graph root with concrete seeds; returns the
        full event stream of everything reachable from it."""
        func = (self.index.find_method(cls, method) if cls is not None
                else next((f for f in self.index.by_name.get(method, [])
                           if f.cls is None), None))
        if func is None:
            return []
        return self.analyze(func, seeds, depth=0).events

    def analyze(self, func: FunctionInfo, seeds: dict[str, Value],
                depth: int) -> Summary:
        """Memoized analysis of *func* under *seeds*."""
        key = (func.qualname, tuple(sorted(
            (k, canon(v)) for k, v in seeds.items()
            if first_taint(v) is not None)))
        cached = self._memo.get(key)
        if cached is not None:
            return cached
        if depth > MAX_DEPTH or key in self._active:
            return Summary()
        self._active.add(key)
        ctx = _Ctx(func, depth)
        env: dict[str, Value] = dict(seeds)
        summary = Summary()
        try:
            self._exec_block(func.node.body, env, frozenset(), ctx,
                             summary)
        finally:
            self._active.discard(key)
        summary.events = ctx.events
        self._memo[key] = summary
        return summary

    # -- statements --------------------------------------------------------

    @staticmethod
    def _terminates(stmts) -> bool:
        return bool(stmts) and isinstance(
            stmts[-1], (ast.Return, ast.Raise, ast.Break, ast.Continue))

    def _exec_block(self, stmts, env, quals, ctx, summary) -> None:
        for i, stmt in enumerate(stmts):
            # Early-return branching: when an if-body always leaves the
            # block, the statements after the if ARE the else branch
            # and inherit its qualifier (the `if datatype.contig: ...
            # return view` / fall-through-to-gather idiom).
            if isinstance(stmt, ast.If) and not stmt.orelse \
                    and self._terminates(stmt.body):
                body_q, else_q = branch_quals(stmt.test)
                self._eval(stmt.test, env, quals, ctx)
                self._exec_block(stmt.body, dict(env), quals | body_q,
                                 ctx, summary)
                self._exec_block(stmts[i + 1:], env, quals | else_q,
                                 ctx, summary)
                return
            self._exec(stmt, env, quals, ctx, summary)

    def _exec(self, stmt, env, quals, ctx, summary) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, env, quals, ctx)
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, quals, ctx)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                value = self._eval(stmt.value, env, quals, ctx)
                summary.ret = merge_values([summary.ret, value])
        elif isinstance(stmt, ast.If):
            body_q, else_q = branch_quals(stmt.test)
            self._eval(stmt.test, env, quals, ctx)
            body_env, else_env = dict(env), dict(env)
            self._exec_block(stmt.body, body_env, quals | body_q, ctx,
                             summary)
            self._exec_block(stmt.orelse, else_env, quals | else_q, ctx,
                             summary)
            for name in set(body_env) | set(else_env):
                env[name] = merge_values(
                    [body_env.get(name), else_env.get(name),
                     env.get(name)])
        elif isinstance(stmt, (ast.For, ast.AsyncFor)):
            iter_val = self._eval(stmt.iter, env, quals, ctx)
            elem = None
            if isinstance(iter_val, Taint) and iter_val.seq:
                elem = replace(iter_val, seq=False)
            elif isinstance(iter_val, list):
                elem = merge_values(iter_val)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = elem
            # Two passes reach the loop-carried fixpoint that matters
            # for taint shapes (copy counts saturate at 2 anyway).
            for _ in range(2):
                self._exec_block(stmt.body, env, quals, ctx, summary)
            self._exec_block(stmt.orelse, env, quals, ctx, summary)
        elif isinstance(stmt, ast.While):
            self._eval(stmt.test, env, quals, ctx)
            for _ in range(2):
                self._exec_block(stmt.body, env, quals, ctx, summary)
            self._exec_block(stmt.orelse, env, quals, ctx, summary)
        elif isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                value = self._eval(item.context_expr, env, quals, ctx)
                if (item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)):
                    env[item.optional_vars.id] = value
            self._exec_block(stmt.body, env, quals, ctx, summary)
        elif isinstance(stmt, ast.Try):
            self._exec_block(stmt.body, env, quals, ctx, summary)
            for handler in stmt.handlers:
                self._exec_block(handler.body, dict(env), quals, ctx,
                                 summary)
            self._exec_block(stmt.orelse, env, quals, ctx, summary)
            self._exec_block(stmt.finalbody, env, quals, ctx, summary)
        elif isinstance(stmt, ast.FunctionDef):
            # Closures ARE the datapath here: on_match callbacks carry
            # the receive side.  Analyze at the definition site with
            # the enclosing bindings plus name-based parameter seeds
            # (the future call's message argument).
            seeds = dict(name_seeds(
                FunctionInfo(module=ctx.func.module, cls=None,
                             name=stmt.name, node=stmt, fastpath=False,
                             staticmethod=False)))
            for name, value in env.items():
                if first_taint(value) is not None and name not in seeds:
                    seeds[name] = value
            if seeds:
                closure = FunctionInfo(
                    module=ctx.func.module, cls=ctx.func.cls,
                    name=f"{ctx.func.name}.<{stmt.name}>", node=stmt,
                    fastpath=False, staticmethod=False)
                inner = self.analyze(closure, seeds, ctx.depth + 1)
                for ev in inner.events:
                    ctx.events.append(
                        replace(ev, quals=ev.quals | quals))
        elif isinstance(stmt, ast.Raise):
            if stmt.exc is not None:
                self._eval(stmt.exc, env, quals, ctx)
        elif isinstance(stmt, ast.Assert):
            self._eval(stmt.test, env, quals, ctx)
        elif isinstance(stmt, (ast.Delete, ast.Global, ast.Nonlocal,
                               ast.Pass, ast.Break, ast.Continue,
                               ast.Import, ast.ImportFrom,
                               ast.ClassDef)):
            pass

    def _exec_assign(self, stmt, env, quals, ctx) -> None:
        if isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env, quals, ctx)
            targets = [stmt.target]
        elif isinstance(stmt, ast.AnnAssign):
            value = (self._eval(stmt.value, env, quals, ctx)
                     if stmt.value is not None else None)
            targets = [stmt.target]
        else:
            value = self._eval(stmt.value, env, quals, ctx)
            targets = stmt.targets
        for target in targets:
            self._assign_target(target, value, env, quals, ctx)

    def _assign_target(self, target, value, env, quals, ctx) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
        elif isinstance(target, (ast.Tuple, ast.List)):
            elems = (value if isinstance(value, list)
                     else [value] * len(target.elts))
            for sub, v in zip(target.elts, elems):
                self._assign_target(sub, v, env, quals, ctx)
        elif isinstance(target, ast.Subscript):
            base = None
            if isinstance(target.value, ast.Name):
                base = env.get(target.value.id)
            if isinstance(base, Taint) and base.borrowed \
                    and base.role == "src" and not base.owned:
                self._report(
                    ctx.func, target, "BC502",
                    f"store into borrowed send buffer "
                    f"'{target.value.id}' — the application owns these "
                    "bytes until the operation completes")
            # A slice-store of tainted bytes is the scatter copy (the
            # legitimate one-per-path-end data movement); an element
            # store is a reference stash, not a byte copy.
            if isinstance(target.slice, ast.Slice) \
                    and first_taint(value) is not None:
                ctx.events.append(Event(
                    qual=ctx.func.qualname, line=target.lineno,
                    kind="copy", what="scatter", quals=quals))
        elif isinstance(target, ast.Attribute):
            self._check_escape(target, value, env, quals, ctx)
            base = None
            if isinstance(target.value, ast.Name):
                base = env.get(target.value.id)
            if isinstance(base, dict):
                base[target.attr] = value

    def _check_escape(self, target: ast.Attribute, value, env, quals,
                      ctx) -> None:
        """BC503: a borrowed, not-yet-owned view stored on an object."""
        if not isinstance(value, Taint):
            return
        if not value.borrowed or value.dense:
            return
        if target.attr in SANCTIONED_ATTRS:
            return
        self._report(
            ctx.func, target, "BC503",
            f"borrowed buffer view stored as .{target.attr} outlives "
            "the operation — pin it on the owning request "
            "(request._keepalive) or take ownership with bytes()")

    # -- expressions -------------------------------------------------------

    def _eval(self, node, env, quals, ctx) -> Value:
        if isinstance(node, ast.Name):
            return env.get(node.id)
        if isinstance(node, ast.Constant):
            return None
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, env, quals, ctx)
        if isinstance(node, ast.Subscript):
            return self._eval_subscript(node, env, quals, ctx)
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, quals, ctx)
        if isinstance(node, (ast.Tuple, ast.List)):
            return [self._eval(e, env, quals, ctx) for e in node.elts]
        if isinstance(node, ast.IfExp):
            self._eval(node.test, env, quals, ctx)
            return merge_values([
                self._eval(node.body, env, quals, ctx),
                self._eval(node.orelse, env, quals, ctx)])
        if isinstance(node, ast.BoolOp):
            return merge_values([self._eval(v, env, quals, ctx)
                                 for v in node.values])
        if isinstance(node, ast.BinOp):
            left = self._eval(node.left, env, quals, ctx)
            right = self._eval(node.right, env, quals, ctx)
            if isinstance(node.op, ast.Add):
                parts = [v for v in (left, right)
                         if isinstance(v, Taint)]
                if parts:
                    # bytes concatenation materializes a new buffer
                    ctx.events.append(Event(
                        qual=ctx.func.qualname, line=node.lineno,
                        kind="copy", what="concat", quals=quals))
                    t = merge_values(parts)
                    return replace(t, copies=t.copies + 1, dense=True,
                                   borrowed=False, contig=True)
            return None
        if isinstance(node, ast.Compare):
            self._eval(node.left, env, quals, ctx)
            for comp in node.comparators:
                self._eval(comp, env, quals, ctx)
            return None
        if isinstance(node, ast.UnaryOp):
            self._eval(node.operand, env, quals, ctx)
            return None
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, quals, ctx)
        if isinstance(node, (ast.ListComp, ast.SetComp,
                             ast.GeneratorExp)):
            return self._eval_comprehension(node, env, quals, ctx)
        if isinstance(node, ast.DictComp):
            inner = dict(env)
            self._bind_comp_targets(node.generators, inner, quals, ctx)
            self._eval(node.key, inner, quals, ctx)
            self._eval(node.value, inner, quals, ctx)
            return None
        if isinstance(node, ast.JoinedStr):
            for v in node.values:
                if isinstance(v, ast.FormattedValue):
                    self._eval(v.value, env, quals, ctx)
            return None
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            return self._eval(node.value, env, quals, ctx)
        if isinstance(node, ast.Yield):
            return (self._eval(node.value, env, quals, ctx)
                    if node.value is not None else None)
        if isinstance(node, ast.Dict):
            for v in node.values:
                if v is not None:
                    self._eval(v, env, quals, ctx)
            return None
        return None

    def _bind_comp_targets(self, generators, env, quals, ctx) -> None:
        for gen in generators:
            iter_val = self._eval(gen.iter, env, quals, ctx)
            elem = None
            if isinstance(iter_val, Taint) and iter_val.seq:
                elem = replace(iter_val, seq=False)
            elif isinstance(iter_val, list):
                elem = merge_values(iter_val)
            if isinstance(gen.target, ast.Name):
                env[gen.target.id] = elem

    def _eval_comprehension(self, node, env, quals, ctx) -> Value:
        inner = dict(env)
        self._bind_comp_targets(node.generators, inner, quals, ctx)
        elem = self._eval(node.elt, inner, quals, ctx)
        if isinstance(elem, Taint):
            return replace(elem, seq=True)
        return None

    def _eval_attribute(self, node: ast.Attribute, env, quals,
                        ctx) -> Value:
        base = self._eval(node.value, env, quals, ctx)
        if isinstance(base, dict):
            return base.get(node.attr)
        if isinstance(base, Taint):
            if node.attr in SCALAR_ATTRS:
                return None
            if node.attr == "data":
                # ndarray.data / memoryview export: a zero-copy borrow.
                ctx.events.append(Event(
                    qual=ctx.func.qualname, line=node.lineno,
                    kind="borrow", what="memoryview", quals=quals))
                return replace(base, borrowed=True)
            if node.attr == "T":
                return replace(base, borrowed=True, contig=False)
        return None

    def _eval_subscript(self, node: ast.Subscript, env, quals,
                        ctx) -> Value:
        base = self._eval(node.value, env, quals, ctx)
        sl = node.slice
        if isinstance(base, list):
            if isinstance(sl, ast.Constant) and isinstance(sl.value, int) \
                    and -len(base) <= sl.value < len(base):
                return base[sl.value]
            return merge_values(base)
        if not isinstance(base, Taint):
            if sl is not None and not isinstance(sl, ast.Slice):
                self._eval(sl, env, quals, ctx)
            return None
        if isinstance(sl, ast.Slice):
            for part in (sl.lower, sl.upper, sl.step):
                if part is not None:
                    self._eval(part, env, quals, ctx)
            contig = base.contig and sl.step is None
            if base.dense and not base.borrowed:
                # Slicing a bytes object copies the range.
                event = Event(qual=ctx.func.qualname, line=node.lineno,
                              kind="copy", what="byte-slice",
                              quals=quals)
                ctx.events.append(event)
                self._check_copy(node, base, "byte-slice", quals, ctx)
                return replace(base, copies=base.copies + 1,
                               dense=True, contig=True)
            # ndarray / memoryview slicing is a view.
            ctx.events.append(Event(
                qual=ctx.func.qualname, line=node.lineno,
                kind="borrow", what="slice", quals=quals))
            return replace(base, borrowed=True, contig=contig)
        if isinstance(sl, ast.Name):
            self._eval(sl, env, quals, ctx)
            # Fancy indexing: a gather staging view (the materializing
            # copy is the tobytes that follows — matching the runtime
            # counter, which notes one copy for the gathered bytes).
            return replace(base, borrowed=True, contig=False)
        if sl is not None:
            self._eval(sl, env, quals, ctx)
        return None             # scalar element read

    # -- calls -------------------------------------------------------------

    def _eval_call(self, node: ast.Call, env, quals, ctx) -> Value:
        argvals = [self._eval(a, env, quals, ctx) for a in node.args]
        kwvals = {kw.arg: self._eval(kw.value, env, quals, ctx)
                  for kw in node.keywords if kw.arg is not None}
        self._check_aliasing(node, ctx)
        func = node.func

        if isinstance(func, ast.Name):
            return self._call_name(node, func.id, argvals, kwvals,
                                   env, quals, ctx)
        if isinstance(func, ast.Attribute):
            return self._call_attr(node, func, argvals, kwvals,
                                   env, quals, ctx)
        return None

    def _check_aliasing(self, node: ast.Call, ctx) -> None:
        """BC505: the same bare name in two buffer slots of a
        two-buffer API (syntactic — no taint needed)."""
        func = node.func
        name = (func.id if isinstance(func, ast.Name)
                else func.attr if isinstance(func, ast.Attribute)
                else None)
        if name not in ALIAS_APIS:
            return
        buf_names = [a.id for a in node.args
                     if isinstance(a, ast.Name)]
        buf_names += [kw.value.id for kw in node.keywords
                      if isinstance(kw.value, ast.Name)]
        seen: set[str] = set()
        for nm in buf_names:
            if nm in ("self", "comm", "win"):
                continue
            if nm in seen:
                self._report(
                    ctx.func, node, "BC505",
                    f"'{nm}' passed twice to {name}() — MPI forbids "
                    "aliased send/receive buffers")
                return
            seen.add(nm)

    def _materialize(self, node, base: Taint, what: str, quals,
                     ctx) -> Taint:
        """Record a copy event + rule checks; return the dense result."""
        ctx.events.append(Event(
            qual=ctx.func.qualname, line=node.lineno, kind="copy",
            what=what, quals=quals))
        self._check_copy(node, base, what, quals, ctx)
        return Taint(role=base.role, copies=base.copies + 1,
                     borrowed=False, dense=True, contig=True,
                     seq=base.seq, owned=True)

    def _check_copy(self, node, base: Taint, what: str, quals,
                    ctx) -> None:
        if "copy_mode" in quals or "strided" in quals:
            return              # the legacy / gather paths copy by design
        if base.copies >= 1:
            self._report(
                ctx.func, node, "BC501",
                f"{what} of a payload already materialized upstream — "
                "a second copy on the same transfer path")
        elif base.dense or (base.borrowed and base.contig
                            and base.role in ("src", "inout")):
            self._report(
                ctx.func, node, "BC504",
                f"{what} of already-contiguous data — borrow a view "
                "instead (pack(...) returns one on the contig path)")

    def _call_name(self, node, name: str, argvals, kwvals, env, quals,
                   ctx) -> Value:
        arg0 = argvals[0] if argvals else None
        if name in SCALAR_CALLS:
            return None
        if name in ("bytes", "bytearray"):
            if isinstance(arg0, Taint):
                return self._materialize(node, arg0, name, quals, ctx)
            return None
        if name == "memoryview":
            if isinstance(arg0, Taint):
                ctx.events.append(Event(
                    qual=ctx.func.qualname, line=node.lineno,
                    kind="borrow", what="memoryview", quals=quals))
                return replace(arg0, borrowed=True)
            return None
        if name in COMPOSITE_CTORS:
            comp = {k: v for k, v in kwvals.items()
                    if first_taint(v) is not None}
            return comp or None
        if name == "run_handler":
            return self._call_run_handler(node, argvals, kwvals, quals,
                                          ctx)
        candidates = [f for f in self.index.by_name.get(name, [])
                      if f.cls is None]
        return self._descend(candidates, argvals, kwvals, quals, ctx)

    def _call_attr(self, node, func: ast.Attribute, argvals, kwvals,
                   env, quals, ctx) -> Value:
        attr = func.attr
        if attr == "run_handler":
            return self._call_run_handler(node, argvals, kwvals, quals,
                                          ctx)
        base = self._eval(func.value, env, quals, ctx)
        arg0 = argvals[0] if argvals else None

        if isinstance(base, Taint):
            if attr in COPY_METHODS:
                return self._materialize(node, base, attr, quals, ctx)
            if attr in BORROW_METHODS:
                ctx.events.append(Event(
                    qual=ctx.func.qualname, line=node.lineno,
                    kind="borrow", what=attr, quals=quals))
                return replace(base, borrowed=True)
            return None

        if isinstance(base, dict):
            data = base.get("data")
            if attr in ("own_data", "owned_data") \
                    and isinstance(data, Taint):
                ctx.events.append(Event(
                    qual=ctx.func.qualname, line=node.lineno,
                    kind="transfer", what=attr, quals=quals))
                owned = replace(data, dense=True, borrowed=False,
                                contig=True)
                base["data"] = owned
                return owned if attr == "owned_data" else None
            # Fall through: methods on descriptor objects resolve
            # through the index below (self-call style).

        # numpy namespace constructors (np.frombuffer / np.array ...).
        if attr in NP_BORROW_FUNCS and isinstance(arg0, Taint):
            ctx.events.append(Event(
                qual=ctx.func.qualname, line=node.lineno,
                kind="borrow", what=attr, quals=quals))
            return replace(arg0, borrowed=True)
        if attr in NP_COPY_FUNCS:
            t = first_taint(arg0)
            if t is not None:
                return self._materialize(node, t, attr, quals, ctx)
        if attr == "join":
            joined = merge_values(argvals)
            t = first_taint(joined)
            if t is not None:
                return self._materialize(
                    node, replace(t, seq=False), "join", quals, ctx)
            return None
        if attr in ("append", "extend", "add", "appendleft"):
            if isinstance(arg0, Taint) and arg0.borrowed \
                    and not arg0.dense:
                self._report(
                    ctx.func, node, "BC503",
                    f"borrowed buffer view {attr}()ed into a container "
                    "outlives the operation — take ownership with "
                    "bytes() or pin it on the owning request")
            return None

        candidates = self.index.resolve_call(func, ctx.func)
        return self._descend(candidates, argvals, kwvals, quals, ctx)

    def _call_run_handler(self, node, argvals, kwvals, quals,
                          ctx) -> Value:
        """``am.run_handler("put", state, data=...)`` dispatches by
        string — map it onto ``am_put`` statically."""
        if not node.args or not isinstance(node.args[0], ast.Constant):
            return None
        handler_name = f"am_{node.args[0].value}"
        candidates = [f for f in self.index.by_name.get(handler_name, [])]
        # Positional args after the name map onto the handler params.
        return self._descend(candidates, argvals[1:], kwvals, quals, ctx)

    def _map_args(self, callee: FunctionInfo, argvals,
                  kwvals) -> dict[str, Value]:
        params = [a.arg for a in callee.node.args.args]
        if callee.cls is not None and not callee.staticmethod \
                and params and params[0] in ("self", "cls"):
            params = params[1:]
        kwonly = [a.arg for a in callee.node.args.kwonlyargs]
        seeds: dict[str, Value] = {}
        for i, value in enumerate(argvals):
            if first_taint(value) is not None and i < len(params):
                seeds[params[i]] = value
        for name, value in kwvals.items():
            if first_taint(value) is not None \
                    and (name in params or name in kwonly):
                seeds[name] = value
        return seeds

    def _descend(self, candidates, argvals, kwvals, quals, ctx) -> Value:
        rets: list[Value] = []
        for cand in candidates[:MAX_CANDIDATES]:
            seeds = self._map_args(cand, argvals, kwvals)
            if not seeds:
                continue
            summ = self.analyze(cand, seeds, ctx.depth + 1)
            for ev in summ.events:
                ctx.events.append(replace(ev, quals=ev.quals | quals))
            rets.append(summ.ret)
        return merge_values(rets)


# --------------------------------------------------------------------- #
# whole-tree scan                                                        #
# --------------------------------------------------------------------- #


def scan_tree(analyzer: Analyzer) -> list[Finding]:
    """Analyze every function whose parameter names mark it as buffer-
    handling (the BC502/BC503/BC504/BC505 sweep beyond the census
    entry points).  Findings dedupe inside the analyzer."""
    for func in analyzer.index.functions.values():
        seeds = name_seeds(func)
        if seeds:
            analyzer.analyze(func, seeds, depth=0)
    return sorted(analyzer.findings.values(),
                  key=lambda f: (f.path, f.line, f.rule_id))
