"""Rule catalog for the buffer-ownership / copy-census analyzer.

``BC5xx`` rules police how payload bytes move through the runtime:
every avoidable materialization (``bytes()``, ``tobytes()``) on a
transfer's critical path is instructions and memory bandwidth the
paper's Figure 2 accounting says the fast path cannot afford.  The
analyzer (:mod:`repro.bufcheck.dataflow`) tracks buffer *taints* from
the MPI entry points down through pack/unpack, the devices, and the
matching engine, and fires these rules at the offending sites.

Suppress per line with ``# bufcheck: ignore[BC504]`` (bare
``# bufcheck: ignore`` suppresses every rule on the line).  Every
pragma in the tree must carry a justification comment — the census
counts suppressed sites as deliberate copies, not accidents.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Mapping

from repro.analysis_common import Rule, render_catalog

#: Pragma spelling (parsed by :func:`repro.analysis_common.suppressed`).
MARKER = "# bufcheck: ignore"

RULES: Mapping[str, Rule] = MappingProxyType({
    "BC501": Rule(
        rule_id="BC501",
        title="redundant copy: payload materialized a second time on "
              "one send/recv path",
        example="data = buf.tobytes(); wire = bytes(data)",
        fix="transfer the first materialization; delete the second "
            "copy (one copy per path end is the budget)",
    ),
    "BC502": Rule(
        rule_id="BC502",
        title="mutation of a borrowed send buffer without ownership "
              "transfer",
        example="payload = memoryview(sendbuf); sendbuf[0] = 99",
        fix="materialize (bytes(view)) before mutating, or move the "
            "mutation after the operation completes",
    ),
    "BC503": Rule(
        rule_id="BC503",
        title="borrowed buffer view escapes the operation without a "
              "keepalive",
        example="self.stash = memoryview(sendbuf)",
        fix="pin the view on the owning request (request._keepalive) "
            "or take ownership with bytes(view) before storing",
    ),
    "BC504": Rule(
        rule_id="BC504",
        title="needless materialization: bytes()/tobytes() of "
              "already-contiguous data where a view suffices",
        example="payload = arr.tobytes()  # arr is contiguous",
        fix="borrow instead (memoryview(arr) / arr.data / a slice); "
            "pack(..., copy=False) returns a view on the contig path",
    ),
    "BC505": Rule(
        rule_id="BC505",
        title="same object passed as both send and receive buffer "
              "(MPI aliasing rule)",
        example="comm.Sendrecv(buf, dest, recvbuf=buf)",
        fix="use distinct buffers, or the *_replace form when the API "
            "provides one",
    ),
})


def render_bc_catalog() -> str:
    """The ``--rules`` listing."""
    return render_catalog(RULES)
