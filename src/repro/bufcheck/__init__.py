"""Buffer-ownership & copy-census static analyzer (``BC5xx`` rules).

``python -m repro.bufcheck`` tracks payload buffers interprocedurally
from the MPI entry points through pack/unpack, the CH4/CH3 devices and
the matching engine, classifying every data-movement site as a *copy*,
a *borrow* (zero-copy view), or an *ownership transfer*.  It enforces
the zero-copy datapath discipline (rules BC501-BC505) and emits the
``COPYMAP.json`` census — static copies-per-path for every published
build variant — that tier-1 CI diffs alongside AUDIT.json.
"""

from repro.bufcheck.census import build_copymap
from repro.bufcheck.cli import main, run_bufcheck
from repro.bufcheck.dataflow import Analyzer, Event, Taint, scan_tree
from repro.bufcheck.rules import MARKER, RULES, render_bc_catalog

__all__ = [
    "Analyzer", "Event", "MARKER", "RULES", "Taint", "build_copymap",
    "main", "render_bc_catalog", "run_bufcheck", "scan_tree",
]
