"""The copy census: static copies-per-path for the published variants.

For each :class:`repro.audit.manifest.PathSpec` (the same 12 rows the
audit's AUDIT.json freezes), the census roots the dataflow engine at
the spec's MPI entry point with the entry buffer tainted, collects the
event stream, and counts the *distinct data-movement sites* on two
protocol variants:

* **fastpath** — the contiguous zero-copy eager path (events carrying
  no off-path qualifier: no ``strided``, no ``copy_mode``, no optional
  subsystem);
* **copy_mode** — the legacy always-copy path
  (``BuildConfig(zero_copy=False)``; ``view_mode`` events drop out
  instead).

Send (isend) paths additionally carry a ``recv`` census rooted at
``Communicator.Irecv`` — a transfer's end-to-end copy count is the
send census plus the receive census.  CH4 paths exclude sites in the
CH3 device tree and vice versa (the call-graph resolver
over-approximates across devices).

Site ids are line-number-free (``module:func::kind:what`` plus an
ordinal for repeats), so the committed ``COPYMAP.json`` only changes
when data movement actually changes — the same diff discipline as
AUDIT.json.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.audit.callgraph import CodeIndex
from repro.audit.manifest import AuditManifest, PathSpec, default_manifest
from repro.bufcheck.dataflow import (Analyzer, Event, OFFCOPY_QUALS,
                                     OFFPATH_QUALS, Taint)

#: Entry parameter names carrying the user buffer, per path side.
SEND_BUF_PARAMS = frozenset({"buf", "origin", "origin_buf", "sendbuf"})
RECV_BUF_PARAMS = frozenset({"buf", "recvbuf"})

#: The canonical receive twin for send-path censuses.
RECV_TWIN = ("Communicator", "Irecv")

#: The buffer collectives: (key, method, send params, recv params).
#: Each gets its own send- and recv-side census — the per-collective
#: receive paths the plain ``Irecv`` twin cannot see (staging in
#: :mod:`repro.mpi.collectives` happens *inside* the collective call,
#: e.g. a ring round's combine or an allgather's reassembly loop).
#: ``Bcast``'s single ``array`` is both sides: the root sends it, every
#: other rank receives into it.
COLLECTIVE_ENTRIES = (
    ("bcast", "Bcast", frozenset({"array"}), frozenset({"array"})),
    ("reduce", "Reduce", frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("allreduce", "Allreduce",
     frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("allgather", "Allgather",
     frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("gather", "Gather", frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("scatter", "Scatter",
     frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("alltoall", "Alltoall",
     frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("reduce_scatter_block", "Reduce_scatter_block",
     frozenset({"sendbuf"}), frozenset({"recvbuf"})),
    ("scan", "Scan", frozenset({"sendbuf"}), frozenset({"recvbuf"})),
)


def _entry_seeds(index: CodeIndex, cls: str, method: str,
                 names: frozenset, taint: Taint) -> dict:
    func = index.find_method(cls, method)
    if func is None:
        return {}
    return {a.arg: taint for a in func.node.args.args
            if a.arg in names}


def _module_filter(spec_name: str) -> Callable[[Event], bool]:
    """Keep only events in the spec's device tree (plus shared code)."""
    if spec_name.startswith("ch3_"):
        return lambda ev: not ev.qual.startswith("repro/core/ch4.py")
    return lambda ev: not ev.qual.startswith("repro/ch3/")


def _site_table(events: list[Event]) -> dict[str, dict]:
    """Group events into distinct sites.  A site's id gains a ``#n``
    ordinal (by in-function line order) only when one function holds
    several same-kind same-what sites — relative order is stable under
    unrelated edits, absolute line numbers are not."""
    by_site: dict[str, dict[int, set]] = {}
    for ev in events:
        by_site.setdefault(ev.site, {}).setdefault(
            ev.line, set()).add(ev.quals)
    table: dict[str, dict] = {}
    for site, lines in by_site.items():
        ordered = sorted(lines)
        for ordinal, line in enumerate(ordered):
            site_id = site if len(ordered) == 1 else f"{site}#{ordinal}"
            table[site_id] = {
                "kind": site.rsplit("::", 1)[1].split(":", 1)[0],
                "qualsets": lines[line],
            }
    return table


def _variant(table: dict[str, dict], off: frozenset) -> dict:
    """Count sites reachable with every off-variant qualifier absent."""
    picked = {
        site: info for site, info in table.items()
        if any(not (qs & off) for qs in info["qualsets"])
    }
    def sites_of(kind: str) -> list[str]:
        return sorted(s for s, i in picked.items() if i["kind"] == kind)
    copies = sites_of("copy")
    return {
        "copies": len(copies),
        "copy_sites": copies,
        "views": len(sites_of("borrow")),
        "transfers": len(sites_of("transfer")),
    }


def _census(analyzer: Analyzer, cls: str, method: str,
            names: frozenset, taint: Taint,
            keep: Callable[[Event], bool]) -> Optional[dict]:
    seeds = _entry_seeds(analyzer.index, cls, method, names, taint)
    if not seeds:
        return None
    events = [ev for ev in analyzer.run_entry(cls, method, seeds)
              if keep(ev)]
    table = _site_table(events)
    return {
        "fastpath": _variant(table, OFFPATH_QUALS),
        "copy_mode": _variant(table, OFFCOPY_QUALS),
    }


def census_for_path(analyzer: Analyzer, spec: PathSpec) -> dict:
    """The COPYMAP row for one published path."""
    cls, method = spec.entry
    keep = _module_filter(spec.name)
    row: dict = {"op": spec.op, "entry": f"{cls}.{method}"}
    send = _census(analyzer, cls, method, SEND_BUF_PARAMS,
                   Taint("src", borrowed=True), keep)
    row["send"] = send if send is not None else {}
    if spec.op == "isend":
        recv = _census(analyzer, RECV_TWIN[0], RECV_TWIN[1],
                       RECV_BUF_PARAMS, Taint("dest", borrowed=True),
                       keep)
        row["recv"] = recv if recv is not None else {}
    return row


def build_copymap(analyzer: Analyzer,
                  manifest: Optional[AuditManifest] = None) -> dict:
    """The ``paths`` payload of COPYMAP.json (all 12 specs)."""
    manifest = manifest if manifest is not None else default_manifest()
    return {spec.name: census_for_path(analyzer, spec)
            for spec in manifest.paths}


def build_collective_census(analyzer: Analyzer) -> dict:
    """The ``collectives`` payload of COPYMAP.json: send- and
    recv-side staging censuses for every buffer collective (CH4 tree
    only — the collectives sit above the device split)."""
    keep = _module_filter("ch4_collectives")
    out: dict = {}
    for key, method, send_names, recv_names in COLLECTIVE_ENTRIES:
        row: dict = {"entry": f"Communicator.{method}"}
        send = _census(analyzer, "Communicator", method, send_names,
                       Taint("src", borrowed=True), keep)
        row["send"] = send if send is not None else {}
        recv = _census(analyzer, "Communicator", method, recv_names,
                       Taint("dest", borrowed=True), keep)
        row["recv"] = recv if recv is not None else {}
        out[key] = row
    return out
