"""``python -m repro.bufcheck`` entry point."""

import sys

from repro.bufcheck.cli import main

sys.exit(main())
