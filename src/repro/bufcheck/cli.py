"""CLI and snapshot builder: ``python -m repro.bufcheck``.

Runs the buffer-ownership dataflow over the tree (default: the
installed ``repro`` package sources), prints BC5xx findings, and exits
1 on any unsuppressed finding.  ``--json [FILE]`` writes the
machine-readable ``COPYMAP.json`` snapshot the calibration test diffs
(FILE defaults to stdout):

* per published build/extension path: distinct copy / view /
  ownership-transfer sites on the zero-copy fast path and on the
  legacy always-copy path;
* the finding counts by rule.

Same exit contract as ``repro.sanitize`` / ``repro.audit``:
0 clean, 1 findings, 2 usage error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro.analysis_common import Report, iter_python_files
from repro.audit.callgraph import CodeIndex
from repro.audit.manifest import AuditManifest, default_manifest
from repro.bufcheck.census import build_collective_census, build_copymap
from repro.bufcheck.dataflow import Analyzer, scan_tree
from repro.bufcheck.rules import render_bc_catalog


def default_paths() -> list[str]:
    """The runtime's own package directory — ``python -m repro.bufcheck``
    with no arguments checks the tree it was imported from."""
    return [str(Path(__file__).resolve().parent.parent)]


def run_bufcheck(paths: Sequence[str],
                 manifest: Optional[AuditManifest] = None,
                 ) -> tuple[Report, dict]:
    """Check *paths*; returns (report, COPYMAP.json snapshot dict)."""
    manifest = manifest if manifest is not None else default_manifest()
    files = iter_python_files(list(paths))
    index = CodeIndex.build(files)
    analyzer = Analyzer(index)

    # Census first: the entry-rooted analyses seed the memo tables the
    # whole-tree scan then reuses, and report path-context findings.
    copymap = build_copymap(analyzer, manifest)
    collectives = build_collective_census(analyzer)
    findings = scan_tree(analyzer)

    report = Report(diagnostics=findings,
                    files_checked=len(index.modules))
    snapshot = {
        "version": 1,
        "paths": dict(sorted(copymap.items())),
        "collectives": dict(sorted(collectives.items())),
        "findings": {
            "count": len(report.diagnostics),
            "by_rule": dict(sorted(report.counts_by_rule().items())),
        },
    }
    return report, snapshot


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.bufcheck",
        description="Buffer-ownership & copy-census analyzer of the "
                    "repro runtime (rules BC501-BC505; suppress per "
                    "line with '# bufcheck: ignore[BCxxx]').  Exit "
                    "status: 0 clean, 1 findings, 2 usage error.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="source files or directories to check (default: the "
             "installed repro package)")
    parser.add_argument(
        "--json", metavar="FILE", nargs="?", const="-", default=None,
        help="write the COPYMAP.json snapshot to FILE (default stdout)")
    parser.add_argument(
        "--rules", action="store_true",
        help="print the bufcheck rule catalog and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.rules:
        print(render_bc_catalog())
        return 0
    paths = list(args.paths) if args.paths else default_paths()
    report, snapshot = run_bufcheck(paths)
    print(report.render())
    if args.json is not None:
        if args.json == "-":
            json.dump(snapshot, sys.stdout, indent=2, sort_keys=True)
            sys.stdout.write("\n")
        else:
            with open(args.json, "w", encoding="utf-8") as fh:
                json.dump(snapshot, fh, indent=2, sort_keys=True)
                fh.write("\n")
            print(f"snapshot written to {args.json}")
    return report.exit_code()
