"""OFI netmod: libfabric over PSM2 on Intel Omni-Path (the IT cluster).

Models PSM2's matched-queue hardware: tagged sends are native, RDMA
put/get works for contiguous layouts, non-contiguous layouts and
atomics fall back to the CH4 active-message path — the exact example
the paper's Section 2 walks through for MPI_PUT.
"""

from __future__ import annotations

from repro.netmod.base import Netmod


class OFINetmod(Netmod):
    """Omni-Path/PSM2 capabilities."""

    name = "ofi"
    native_noncontig_send = False
    native_rma_contig = True
    native_rma_noncontig = False
    native_atomics = True   # PSM2 exposes a small native atomic set
