"""Netmod registry: name -> class, plus the builder the device uses."""

from __future__ import annotations

from typing import TYPE_CHECKING, Type

from repro.fabric.model import FabricSpec, fabric_by_name
from repro.netmod.base import Netmod
from repro.netmod.infinite import InfiniteNetmod
from repro.netmod.ofi import OFINetmod
from repro.netmod.ucx import UCXNetmod

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc

#: Netmods by fabric name.  BG/Q's MU interface behaves like the OFI
#: model for capability purposes (native contiguous, AM for the rest).
#: ``"faulty"`` — the lossy-fabric wrapper of :mod:`repro.ft`, which
#: delegates timing/capabilities to an inner (infinite) netmod and is
#: also auto-wrapped around any fabric when the build carries a
#: ``fault_plan`` — registers itself here on import; :func:`build_netmod`
#: imports it lazily (the class subclasses :class:`Netmod`, so a
#: top-level import here would be circular).
NETMODS: dict[str, Type[Netmod]] = {
    "ofi": OFINetmod,
    "ucx": UCXNetmod,
    "infinite": InfiniteNetmod,
    "bgq": OFINetmod,
    "aries": OFINetmod,   # uGNI/FMA: capability profile matches OFI's
}


def build_netmod(proc: "Proc", fabric_name: str,
                 spec: FabricSpec | None = None) -> Netmod:
    """Construct the netmod registered for *fabric_name*.

    The ``"faulty"`` pseudo-fabric has no timing model of its own: its
    spec falls back to the infinite fabric's (zero injection cost, no
    latency), so only the injected faults distinguish it.  When the
    build carries a ``fault_plan``, whatever netmod was selected is
    wrapped in a :class:`FaultyNetmod` so the reliability layer has a
    place to tally its fault observations.
    """
    from repro.ft.injection import FaultyNetmod  # registers "faulty"
    try:
        cls = NETMODS[fabric_name]
    except KeyError:
        raise KeyError(
            f"no netmod registered for fabric {fabric_name!r}; "
            f"choose from {sorted(NETMODS)}") from None
    if spec is None:
        spec = fabric_by_name(
            "infinite" if fabric_name == "faulty" else fabric_name)
    mod = cls(proc, spec)
    if proc.config.fault_plan is not None \
            and not isinstance(mod, FaultyNetmod):
        mod = FaultyNetmod(proc, spec, inner=mod)
    return mod
