"""Netmod registry: name -> class, plus the builder the device uses."""

from __future__ import annotations

from typing import TYPE_CHECKING, Type

from repro.fabric.model import FabricSpec, fabric_by_name
from repro.netmod.base import Netmod
from repro.netmod.infinite import InfiniteNetmod
from repro.netmod.ofi import OFINetmod
from repro.netmod.ucx import UCXNetmod

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc

#: Netmods by fabric name.  BG/Q's MU interface behaves like the OFI
#: model for capability purposes (native contiguous, AM for the rest).
NETMODS: dict[str, Type[Netmod]] = {
    "ofi": OFINetmod,
    "ucx": UCXNetmod,
    "infinite": InfiniteNetmod,
    "bgq": OFINetmod,
    "aries": OFINetmod,   # uGNI/FMA: capability profile matches OFI's
}


def build_netmod(proc: "Proc", fabric_name: str,
                 spec: FabricSpec | None = None) -> Netmod:
    """Construct the netmod registered for *fabric_name*."""
    try:
        cls = NETMODS[fabric_name]
    except KeyError:
        raise KeyError(
            f"no netmod registered for fabric {fabric_name!r}; "
            f"choose from {sorted(NETMODS)}") from None
    return cls(proc, spec if spec is not None else fabric_by_name(fabric_name))
