"""Shared-memory modules (Figure 1's POSIX and XPMEM shmmods).

Intra-node communication bypasses the network entirely.  The POSIX
shmmod models the classic double-copy through a shared ring; the XPMEM
shmmod models single-copy cross-mapping (lower latency, higher
bandwidth, and native handling of every layout since the copy engine
is just memcpy on mapped pages).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.fabric.model import SHM_POSIX, SHM_XPMEM, FabricSpec
from repro.netmod.base import Netmod

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc


class PosixShmmod(Netmod):
    """Double-copy POSIX shared-memory transport."""

    name = "posix"
    native_noncontig_send = True
    native_rma_contig = True
    native_rma_noncontig = True
    native_atomics = True


class XpmemShmmod(Netmod):
    """Single-copy XPMEM cross-mapping transport."""

    name = "xpmem"
    native_noncontig_send = True
    native_rma_contig = True
    native_rma_noncontig = True
    native_atomics = True


_SHMMODS = {"posix": (PosixShmmod, SHM_POSIX),
            "xpmem": (XpmemShmmod, SHM_XPMEM)}


def build_shmmod(proc: "Proc", name: str,
                 spec: FabricSpec | None = None) -> Netmod:
    """Construct the named shmmod for *proc*."""
    try:
        cls, default_spec = _SHMMODS[name]
    except KeyError:
        raise KeyError(
            f"unknown shmmod {name!r}; choose from {sorted(_SHMMODS)}"
        ) from None
    return cls(proc, spec if spec is not None else default_spec)
