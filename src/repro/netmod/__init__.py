"""Network modules (netmods) and shared-memory modules (shmmods).

In the CH4 architecture (Figure 1 of the paper) the netmod/shmmod is
the layer that owns the low-level communication API.  Because the MPI
operation flows through intact, the module can decide per operation
whether its hardware supports it *natively* (the fast path) or whether
to fall back to the active-message implementation in the CH4 core.

Each module here models one of the paper's targets:

* :class:`~repro.netmod.ofi.OFINetmod` — libfabric/PSM2 on Omni-Path;
* :class:`~repro.netmod.ucx.UCXNetmod` — UCX on Mellanox EDR;
* :class:`~repro.netmod.infinite.InfiniteNetmod` — the modified
  "infinitely fast network" build;
* :class:`~repro.netmod.shm.PosixShmmod` /
  :class:`~repro.netmod.shm.XpmemShmmod` — intra-node transports.
"""

from repro.netmod.base import Netmod, IssueResult
from repro.netmod.ofi import OFINetmod
from repro.netmod.ucx import UCXNetmod
from repro.netmod.infinite import InfiniteNetmod
from repro.netmod.shm import PosixShmmod, XpmemShmmod, build_shmmod
from repro.netmod.registry import build_netmod, NETMODS

__all__ = [
    "Netmod",
    "IssueResult",
    "OFINetmod",
    "UCXNetmod",
    "InfiniteNetmod",
    "PosixShmmod",
    "XpmemShmmod",
    "build_netmod",
    "build_shmmod",
    "NETMODS",
]
