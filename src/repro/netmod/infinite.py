"""The "infinitely fast network" netmod (paper Section 4.2, Figure 5).

The paper modified the MPI library "to perform all the relevant
operations except the actual network communication", so the software
stack is fully exercised while the wire costs nothing.  Here that is a
netmod whose fabric has zero injection cost, zero latency, and infinite
bandwidth — and which accepts every operation natively, so no AM
fallback noise enters the software-limited measurements.
"""

from __future__ import annotations

from repro.netmod.base import Netmod


class InfiniteNetmod(Netmod):
    """Everything native, nothing costs wire time."""

    name = "infinite"
    native_noncontig_send = True
    native_rma_contig = True
    native_rma_noncontig = True
    native_atomics = True
