"""UCX netmod: Mellanox EDR InfiniBand (the Gomez cluster).

Models Verbs-style RDMA: contiguous put/get native, tag matching in
software (still native from the netmod's viewpoint — no AM needed),
iovec support allows short non-contiguous sends natively, atomics are
native for word sizes.
"""

from __future__ import annotations

from repro.netmod.base import Netmod


class UCXNetmod(Netmod):
    """Mellanox EDR / UCX capabilities."""

    name = "ucx"
    native_noncontig_send = True   # UCX iovec datatypes
    native_rma_contig = True
    native_rma_noncontig = False
    native_atomics = True
