"""Netmod interface: capabilities, issue timing, AM fallback accounting.

A netmod is constructed per rank and owns that rank's injection
interface to one fabric.  Its job in this reproduction:

* declare which operations the modeled hardware supports natively
  (drives the fast-path-vs-AM-fallback branch in the CH4 core);
* charge the fabric's injection overhead to the rank's virtual clock
  and compute message arrival times;
* charge the extra instructions of the active-message fallback when
  the CH4 core routes an operation through it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.fabric.model import FabricSpec
from repro.instrument.categories import Category, Subsystem
from repro.instrument.fastpath import fastpath

if TYPE_CHECKING:  # pragma: no cover
    from repro.runtime.proc import Proc

#: Extra origin-side instructions of the active-message fallback:
#: build the AM header and trigger the remote handler machinery.
AM_ORIGIN_OVERHEAD = 34
#: Extra instructions modeled for running an AM handler (charged at the
#: origin in this single-address-space substrate; documented in
#: DESIGN.md).
AM_HANDLER_OVERHEAD = 26


@dataclass(frozen=True)
class IssueResult:
    """Timing outcome of issuing one operation.

    Attributes
    ----------
    complete_s:
        Virtual time at which the *origin* considers the operation
        locally complete (buffer reusable).
    arrive_s:
        Virtual time at which the payload is available at the target.
    """

    complete_s: float
    arrive_s: float


class Netmod:
    """Base netmod; concrete modules override the capability flags."""

    #: Registry name.
    name = "base"
    #: Hardware can send non-contiguous layouts without packing.
    native_noncontig_send = False
    #: Hardware has RDMA put/get for contiguous data.
    native_rma_contig = True
    #: Hardware has RDMA for non-contiguous (e.g. iovec-capable) data.
    native_rma_noncontig = False
    #: Hardware performs atomics (accumulate) natively.
    native_atomics = False

    def __init__(self, proc: "Proc", spec: FabricSpec):
        self.proc = proc
        self.spec = spec
        #: Counters for tests/ablations.
        self.n_native = 0
        self.n_am_fallback = 0
        #: Parked injection-lane completions retired by the background
        #: progress engine rather than inline (observational).
        self.n_background_drains = 0

    def note_background_drain(self) -> None:
        """Record one parked completion drained by the progress engine.

        Called by the engine thread under the owning rank's CS lock;
        observational only — charged instruction counts and virtual
        times were fixed at issue time.
        """
        self.n_background_drains += 1

    # -- capability decisions (flow-through: full op knowledge) -----------

    def send_is_native(self, contig: bool) -> bool:
        """Can this send use the hardware path without packing help?"""
        return contig or self.native_noncontig_send

    def rma_is_native(self, contig: bool, atomic: bool = False) -> bool:
        """Can this RMA op run as RDMA, or must it fall back to AM?"""
        if atomic:
            return self.native_atomics
        return self.native_rma_contig if contig else self.native_rma_noncontig

    # -- issue -------------------------------------------------------------------

    @fastpath

    def charge_am_fallback(self) -> None:
        """Charge the active-message fallback overhead (origin side)."""
        self.proc.charge(Category.MANDATORY, AM_ORIGIN_OVERHEAD,
                         Subsystem.DESCRIPTOR)
        self.proc.charge(Category.MANDATORY, AM_HANDLER_OVERHEAD,
                         Subsystem.DESCRIPTOR)

    @fastpath

    def issue(self, nbytes: int, native: bool,
              round_trip: bool = False, vci=None) -> IssueResult:
        """Charge injection overhead and compute completion/arrival times.

        Must be called *after* the device has charged the operation's
        software instructions (the clock then already includes them).

        *vci* identifies the injection lane under per-VCI sharding
        (``num_vcis > 1``): the injection is tallied on that VCI's
        counters.  Lane bookkeeping is observational — charges and
        timing are identical with or without it.
        """
        if not native:
            self.charge_am_fallback()
            self.n_am_fallback += 1
        else:
            self.n_native += 1
        if vci is not None:
            vci.note_injection(native)
        clock = self.proc.vclock
        clock.advance_cycles(self.spec.inject_cycles)
        arrive = clock.now + self.spec.transfer_seconds(nbytes)
        complete = arrive + self.spec.latency_s if round_trip else clock.now
        return IssueResult(complete_s=complete, arrive_s=arrive)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(fabric={self.spec.name!r})"
