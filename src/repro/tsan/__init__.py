"""repro.tsan — hybrid race & deadlock detector for the runtime.

An opt-in (``BuildConfig(tsan=True)``) dynamic checker in the style
of Eraser + FastTrack: instrumented locks (:mod:`repro.tsan.locks`)
and annotated shared-state accesses maintain per-thread vector
clocks (:mod:`repro.tsan.vectorclock`) and per-field locksets; the
detector (:mod:`repro.tsan.detector`) reports:

* ``TS401`` — data race (no happens-before edge *and* empty lockset
  intersection);
* ``TS402`` — lock-order inversion in the observed runtime lock
  graph (potential deadlock, even if it never manifested);
* ``TS403`` — lock held across a blocking wait;
* ``TS404`` — continuation dispatched while holding an engine /
  shard / wildcard matching lock.

The detector charges nothing: ``tsan=False`` builds bind
``proc.tsan = None`` and every hook site outside this package guards
it (audit rule FP306), so calibrated Figure 2 / Table 1 charging is
byte-identical either way.
"""

from __future__ import annotations

from repro.analysis_common import Rule, render_catalog
from repro.tsan.detector import (BLOCK_EXEMPT_KINDS,
                                 CONTINUATION_FLAGGED_KINDS, RankTsan,
                                 TsanFinding, WorldTsan)
from repro.tsan.locks import TsanLock
from repro.tsan.vectorclock import Epoch, VectorClock

#: The detector rule catalog, keyed by rule id.
TS_RULES: dict[str, Rule] = {r.rule_id: r for r in (
    Rule("TS401", "data race: two threads access an annotated shared "
         "field, at least one writing, with no happens-before edge "
         "between them and an empty lockset intersection",
         "engine thread writes request state the app thread reads "
         "bare, with no completion edge",
         "order the pair with a lock both sides hold, or publish an "
         "explicit edge (hb_publish/hb_consume) across the handoff",
         dynamic=True),
    Rule("TS402", "lock-order inversion: the observed runtime lock "
         "graph contains an acquisition cycle (a potential deadlock, "
         "even if the schedule never manifested it)",
         "thread A holds shard lock acquiring the wild lock while "
         "thread B nests them the other way around",
         "pick one global acquisition order (see the lock-ordering "
         "notes in runtime/vci.py) and restructure the odd path",
         dynamic=True),
    Rule("TS403", "lock held across a blocking wait: a thread parks "
         "on a request while holding a tracked runtime lock",
         "with engine lock held: request.wait()",
         "release the lock before blocking — only the NBC schedule "
         "lock ('sched') may deliberately span inner waits",
         dynamic=True),
    Rule("TS404", "continuation dispatched under an engine lock: the "
         "progress engine runs a callback while its thread holds an "
         "engine/shard/wildcard matching lock",
         "fn(request) inside 'with engine._lock:'",
         "dispatch continuations outside matching locks (holding the "
         "reentrant VCI cs_lock is the documented engine design and "
         "is allowed)",
         dynamic=True),
)}


def render_ts_catalog() -> str:
    """The TS401–TS404 rule listing (mirrors the CLI catalogs)."""
    return render_catalog(TS_RULES)


__all__ = [
    "BLOCK_EXEMPT_KINDS", "CONTINUATION_FLAGGED_KINDS", "Epoch",
    "RankTsan", "TS_RULES", "TsanFinding", "TsanLock", "VectorClock",
    "WorldTsan", "render_ts_catalog",
]
