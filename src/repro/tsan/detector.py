"""The hybrid happens-before + lockset detector (Eraser + FastTrack).

One :class:`WorldTsan` per ``BuildConfig(tsan=True)`` world holds all
detector state — threads cross rank boundaries in this runtime (a
sender's application thread acquires the *destination* rank's engine
lock inside ``deposit``), so vector clocks, the observed lock-order
graph, and the per-field access histories must be world-global.
:class:`RankTsan` is the per-rank view every hook site binds
(``proc.tsan``, ``None`` on plain builds — audit rule FP306).

The four rules:

* **TS401 data race** — two accesses to the same annotated field from
  different threads, at least one a write, with *no* happens-before
  edge between them **and** an empty lockset intersection.  Requiring
  both halves keeps the detector sound against threads it never saw
  fork (Eraser's consistent-lock discipline covers them) while still
  accepting lock-free publication that is ordered by an explicit
  :meth:`RankTsan.hb_publish` / :meth:`RankTsan.hb_consume` edge
  (FastTrack's message clocks cover those).
* **TS402 lock-order inversion** — inserting an observed ``A`` held
  while acquiring ``B`` edge closes a cycle in the runtime lock
  graph.  This fires on *potential* deadlocks: the inverted pair need
  never actually interleave.
* **TS403 lock held across a blocking wait** — a thread parks on a
  request while holding any tracked lock.  Kind ``"sched"`` is exempt
  (the NBC weak-progress path deliberately spans inner waits with its
  schedule lock; see :mod:`repro.mpi.nbc`).
* **TS404 continuation under an engine lock** — the progress engine
  dispatches a continuation while the dispatching thread holds an
  ``engine``/``shard``/``wild`` matching lock.  The reentrant VCI
  ``cs_lock`` is *allowed*: continuations run under it by documented
  engine design (:mod:`repro.progress.engine`).

All detector state is guarded by one plain leaf ``threading.Lock``
that is never held while acquiring a runtime lock, so instrumentation
cannot deadlock the runtime it watches.  The detector charges nothing
— ``tsan=True`` is observational, and ``tsan=False`` charging is
byte-identical by construction (guarded in ``test_lint_ci.py``).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import TYPE_CHECKING, Hashable, Iterable

from repro.tsan.locks import TsanLock
from repro.tsan.vectorclock import Epoch, VectorClock

if TYPE_CHECKING:
    from repro.runtime.proc import Proc
    from repro.runtime.world import World

#: Lock kinds exempt from TS403 (held across a blocking wait).
BLOCK_EXEMPT_KINDS = frozenset({"sched"})

#: Lock kinds TS404 flags under a dispatching continuation.
CONTINUATION_FLAGGED_KINDS = frozenset({"engine", "shard", "wild"})


@dataclass(frozen=True)
class TsanFinding:
    """One detector finding (a TS rule firing at runtime)."""

    rule_id: str
    message: str

    def render(self) -> str:
        """One-line ``[RULE] message`` form for reports."""
        return f"[{self.rule_id}] {self.message}"


class _ThreadState:
    """Per-thread detector state (vector clock + held-lock stack)."""

    __slots__ = ("tid", "name", "vc", "held")

    def __init__(self, tid: int, name: str):
        self.tid = tid
        self.name = name
        self.vc = VectorClock()
        self.vc.increment(tid)
        #: Tracked locks currently held, in acquisition order.
        self.held: list[TsanLock] = []


class _FieldState:
    """FastTrack access history for one annotated field.

    The last write is an epoch plus its Eraser lockset; reads since
    that write are per-thread epochs with their locksets (a write
    must be ordered after — or share a lock with — every one).
    """

    __slots__ = ("write", "reads")

    def __init__(self):
        #: (Epoch, frozenset[lock ids], thread name) of the last write.
        self.write: tuple[Epoch, frozenset, str] | None = None
        #: tid -> (timestamp, frozenset[lock ids], thread name).
        self.reads: dict[int, tuple[int, frozenset, str]] = {}


class WorldTsan:
    """World-level hybrid race/deadlock detector.

    Built by :class:`repro.runtime.world.World` when
    ``config.tsan`` is set, before the per-rank procs so every
    runtime lock can be constructed already instrumented.
    """

    def __init__(self, world: "World | None" = None):
        self.world = world
        self._mu = threading.Lock()
        self._tls = threading.local()
        self._next_tid = 0
        self._states: list[_ThreadState] = []
        #: Annotated-field access histories, keyed by annotation key.
        self._fields: dict[Hashable, _FieldState] = {}
        #: Message clocks for explicit hb_publish/hb_consume edges.
        self._sync: dict[Hashable, VectorClock] = {}
        #: Observed lock-order graph: id(A) -> {id(B): (A, B)}.
        self._edges: dict[int, dict[int, tuple[TsanLock, TsanLock]]] = {}
        #: Findings, deduplicated by (rule, site) key.
        self.findings: list[TsanFinding] = []
        self._seen: set = set()
        #: Observational counters (for BENCH_tsan and tests).
        self.n_lock_events = 0
        self.n_access_events = 0

    # -- thread identity ------------------------------------------------

    def _state(self) -> _ThreadState:
        state = getattr(self._tls, "state", None)
        if state is None:
            with self._mu:
                tid = self._next_tid
                self._next_tid += 1
                state = _ThreadState(tid, threading.current_thread().name)
                self._states.append(state)
            self._tls.state = state
        return state

    # -- construction helpers (rank views call these) -------------------

    def make_lock(self, kind: str, name: str) -> TsanLock:
        """An instrumented reentrant lock for a runtime structure."""
        return TsanLock(self, kind, name)

    def rank_view(self, proc: "Proc") -> "RankTsan":
        """The per-rank hook view bound as ``proc.tsan``."""
        return RankTsan(self, proc.world_rank)

    # -- findings -------------------------------------------------------

    def _report(self, rule_id: str, dedup_key: Hashable,
                message: str) -> None:
        """Record one deduplicated finding.  Callers hold ``self._mu``."""
        key = (rule_id, dedup_key)
        if key in self._seen:
            return
        self._seen.add(key)
        self.findings.append(TsanFinding(rule_id, message))

    def report(self) -> list[str]:
        """Rendered findings, stable order."""
        with self._mu:
            return [f.render() for f in self.findings]

    def assert_clean(self) -> None:
        """Raise if any rule fired (the CI stress suite's postcondition)."""
        lines = self.report()
        if lines:
            raise AssertionError(
                "tsan found {} issue(s):\n{}".format(
                    len(lines), "\n".join(lines)))

    # -- FastTrack lock events ------------------------------------------

    def note_acquire(self, lock: TsanLock) -> None:
        """Outermost acquire: lock-order edges, then HB join."""
        state = self._state()
        with self._mu:
            self.n_lock_events += 1
            for held in state.held:
                if held is lock:
                    continue
                self._add_edge(held, lock)
            clock = self._sync.get(("lock", id(lock)))
            if clock is not None:
                state.vc.join(clock)
            state.held.append(lock)

    def note_release(self, lock: TsanLock) -> None:
        """Outermost release: publish the thread clock into the lock."""
        state = self._state()
        with self._mu:
            self.n_lock_events += 1
            self._sync[("lock", id(lock))] = state.vc.copy()
            state.vc.increment(state.tid)
            if lock in state.held:
                state.held.remove(lock)

    def _add_edge(self, a: TsanLock, b: TsanLock) -> None:
        """Record held-A-acquiring-B; cycle check on new edges only.

        Callers hold ``self._mu``.
        """
        out = self._edges.setdefault(id(a), {})
        if id(b) in out:
            return
        out[id(b)] = (a, b)
        cycle = self._find_path(id(b), id(a))
        if cycle is not None:
            # cycle lists the locks along b ->* a, ending at a itself,
            # so [a, b] + cycle walks the full loop back to a.
            loop = [a, b] + cycle
            chain = " -> ".join(f"{lk.kind}:{lk.name}" for lk in loop)
            self._report(
                "TS402", tuple(sorted(id(lk) for lk in loop)),
                f"lock-order inversion: observed acquisition cycle "
                f"{chain} (threads taking these locks in opposite "
                "orders can deadlock)")

    def _find_path(self, src: int, dst: int) -> list[TsanLock] | None:
        """DFS path src ->* dst in the edge graph (locks along it)."""
        stack: list[tuple[int, list[TsanLock]]] = [(src, [])]
        visited = {src}
        while stack:
            node, path = stack.pop()
            for nxt, (_, lock_b) in self._edges.get(node, {}).items():
                if nxt == dst:
                    return path + [lock_b]
                if nxt not in visited:
                    visited.add(nxt)
                    stack.append((nxt, path + [lock_b]))
        # src itself may be dst's node object
        if src == dst:
            return []
        return None

    # -- explicit happens-before message edges --------------------------

    def hb_publish(self, key: Hashable) -> None:
        """Publish the calling thread's clock under *key* (release side)."""
        state = self._state()
        with self._mu:
            clock = self._sync.get(("msg", key))
            if clock is None:
                self._sync[("msg", key)] = state.vc.copy()
            else:
                clock.join(state.vc)
            state.vc.increment(state.tid)

    def hb_consume(self, key: Hashable) -> None:
        """Join the clock published under *key* (acquire side)."""
        state = self._state()
        with self._mu:
            clock = self._sync.get(("msg", key))
            if clock is not None:
                state.vc.join(clock)

    def thread_fork(self, key: Hashable) -> None:
        """Parent-side edge before starting a child thread."""
        self.hb_publish(("fork", key))

    def thread_begin(self, key: Hashable) -> None:
        """Child-side edge at the top of the thread body."""
        self.hb_consume(("fork", key))

    def thread_end(self, key: Hashable) -> None:
        """Child-side edge at the bottom of the thread body."""
        self.hb_publish(("join", key))

    def thread_join(self, key: Hashable) -> None:
        """Joiner-side edge after ``thread.join()`` returns."""
        self.hb_consume(("join", key))

    # -- annotated shared-state accesses (TS401) ------------------------

    def note_access(self, key: Hashable, write: bool = True,
                    what: str | None = None) -> None:
        """One annotated access to shared field *key*.

        Applies the hybrid rule: a cross-thread conflicting pair races
        iff it is unordered by happens-before *and* the two accesses'
        locksets are disjoint.
        """
        state = self._state()
        with self._mu:
            self.n_access_events += 1
            field = self._fields.get(key)
            if field is None:
                field = self._fields[key] = _FieldState()
            heldset = frozenset(id(lk) for lk in state.held)
            label = what or repr(key)
            prior = field.write
            if prior is not None:
                epoch, lockset, wname = prior
                if (epoch.tid != state.tid
                        and not epoch.happens_before(state.vc)
                        and not (lockset & heldset)):
                    self._report(
                        "TS401", ("w", key),
                        f"data race on {label}: "
                        f"{'write' if write else 'read'} by thread "
                        f"{state.name!r} is unordered with the write by "
                        f"thread {wname!r} and the accesses share no "
                        "lock")
            if write:
                for tid, (t, lockset, rname) in field.reads.items():
                    if (tid != state.tid and t > state.vc.get(tid)
                            and not (lockset & heldset)):
                        self._report(
                            "TS401", ("r", key, tid),
                            f"data race on {label}: write by thread "
                            f"{state.name!r} is unordered with the read "
                            f"by thread {rname!r} and the accesses "
                            "share no lock")
                field.write = (Epoch(state.tid, state.vc.get(state.tid)),
                               heldset, state.name)
                field.reads.clear()
            else:
                field.reads[state.tid] = (
                    state.vc.get(state.tid), heldset, state.name)

    # -- structural checks (TS403 / TS404) ------------------------------

    def _held_kinds(self, exempt: Iterable[str]) -> list[TsanLock]:
        state = self._state()
        return [lk for lk in state.held if lk.kind not in exempt]

    def check_blocking_wait(self, what: str) -> None:
        """TS403: about to block on *what* — is any tracked lock held?"""
        state = self._state()
        with self._mu:
            offenders = [lk for lk in state.held
                         if lk.kind not in BLOCK_EXEMPT_KINDS]
            if offenders:
                names = ", ".join(f"{lk.kind}:{lk.name}"
                                  for lk in offenders)
                self._report(
                    "TS403", (what, tuple(id(lk) for lk in offenders)),
                    f"lock held across a blocking wait: thread "
                    f"{state.name!r} blocks on {what} while holding "
                    f"{names} (any thread needing those locks to "
                    "complete the wait deadlocks)")

    def check_continuation(self, what: str) -> None:
        """TS404: about to run a continuation — engine locks held?"""
        state = self._state()
        with self._mu:
            offenders = [lk for lk in state.held
                         if lk.kind in CONTINUATION_FLAGGED_KINDS]
            if offenders:
                names = ", ".join(f"{lk.kind}:{lk.name}"
                                  for lk in offenders)
                self._report(
                    "TS404", (what, tuple(id(lk) for lk in offenders)),
                    f"continuation {what} dispatched while holding "
                    f"{names}: a callback making MPI calls would "
                    "re-enter the matching engine and self-deadlock")


class RankTsan:
    """Rank *rank*'s view of the world detector.

    Every ``proc.tsan`` hook site outside :mod:`repro.tsan` guards
    this against ``None`` (audit rule FP306); the view itself only
    adds the rank label to lock names and delegates all state to the
    shared :class:`WorldTsan`.
    """

    __slots__ = ("world_tsan", "rank")

    def __init__(self, world_tsan: WorldTsan, rank: int):
        self.world_tsan = world_tsan
        self.rank = rank

    def make_lock(self, kind: str, name: str) -> TsanLock:
        """An instrumented lock named with this rank's prefix."""
        return self.world_tsan.make_lock(kind, f"r{self.rank}.{name}")

    # Delegation — kept explicit (not __getattr__) so the hook surface
    # the runtime depends on is greppable.

    def note_access(self, key, write: bool = True,
                    what: str | None = None) -> None:
        """Annotated shared-state access (see :meth:`WorldTsan.note_access`)."""
        self.world_tsan.note_access(key, write, what)

    def hb_publish(self, key) -> None:
        """Release-side message edge (see :meth:`WorldTsan.hb_publish`)."""
        self.world_tsan.hb_publish(key)

    def hb_consume(self, key) -> None:
        """Acquire-side message edge (see :meth:`WorldTsan.hb_consume`)."""
        self.world_tsan.hb_consume(key)

    def thread_fork(self, key) -> None:
        """Parent-side edge before starting a child thread."""
        self.world_tsan.thread_fork(key)

    def thread_begin(self, key) -> None:
        """Child-side edge at the top of a thread body."""
        self.world_tsan.thread_begin(key)

    def thread_end(self, key) -> None:
        """Child-side edge at the bottom of a thread body."""
        self.world_tsan.thread_end(key)

    def thread_join(self, key) -> None:
        """Joiner-side edge after ``thread.join()`` returns."""
        self.world_tsan.thread_join(key)

    def check_blocking_wait(self, what: str) -> None:
        """TS403 hook: about to block on *what*."""
        self.world_tsan.check_blocking_wait(what)

    def check_continuation(self, what: str) -> None:
        """TS404 hook: about to dispatch a continuation."""
        self.world_tsan.check_continuation(what)

    def report(self) -> list[str]:
        """Rendered findings of the shared world detector."""
        return self.world_tsan.report()

    def assert_clean(self) -> None:
        """Raise if any rule fired anywhere in the world."""
        self.world_tsan.assert_clean()
