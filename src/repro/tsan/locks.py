"""Instrumented locks for the hybrid race detector.

:class:`TsanLock` wraps an ``RLock`` and reports every acquire and
release to the rank's detector, which maintains the FastTrack
happens-before edges (acquire joins the lock's clock, the final
release publishes the thread's clock) and the Eraser-style held-set
used for lockset intersection, lock-order (TS402), blocked-while-
holding (TS403) and continuation-under-lock (TS404) checks.

The wrapper implements the full private protocol that
``threading.Condition`` probes for — ``_release_save`` /
``_acquire_restore`` / ``_is_owned`` — so runtime condition variables
built as ``threading.Condition(tsan.make_lock(...))`` release their
tracked lock correctly while waiting: a thread blocked in
``Condition.wait`` does *not* hold the lock, and the detector's
held-set reflects that.

Reentrancy is tracked per thread: nested acquires and their matching
releases add no happens-before edges and no lock-order edges (only
the outermost pair does), mirroring FastTrack's treatment of
reentrant monitors.
"""

from __future__ import annotations

import threading
from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from repro.tsan.detector import RankTsan


class TsanLock:
    """A detector-instrumented reentrant lock.

    ``kind`` labels the lock's role in the runtime ("engine", "vci",
    "wild", "request", "cseg", "ft", "tx", "sched", "progress_cv") and
    drives the per-rule exemptions: TS403 exempts "sched" (the NBC
    weak-progress schedule lock deliberately spans inner waits) and
    TS404 flags only "engine"/"shard"/"wild" (continuations run under
    the reentrant VCI-0 ``cs_lock`` by documented engine design).
    """

    __slots__ = ("kind", "name", "_tsan", "_lock", "_depth")

    def __init__(self, tsan: "RankTsan", kind: str, name: str):
        self.kind = kind
        self.name = name
        self._tsan = tsan
        self._lock = threading.RLock()
        #: Per-thread reentrancy depth (detector-thread-local storage).
        self._depth = threading.local()

    def _get_depth(self) -> int:
        return getattr(self._depth, "n", 0)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        """Acquire the underlying RLock; the outermost acquire per
        thread reports a detector lock event (HB join + held-set)."""
        got = self._lock.acquire(blocking, timeout)
        if got:
            depth = self._get_depth()
            self._depth.n = depth + 1
            if depth == 0:
                self._tsan.note_acquire(self)
        return got

    def release(self) -> None:
        """Release once; the outermost release per thread publishes the
        thread's clock into the lock and leaves the held-set."""
        depth = self._get_depth()
        if depth == 1:
            self._tsan.note_release(self)
        self._depth.n = depth - 1
        self._lock.release()

    __enter__ = acquire

    def __exit__(self, *exc) -> None:
        self.release()

    # -- threading.Condition private protocol ---------------------------

    def _release_save(self):
        """Fully release (any depth) for a Condition.wait; the saved
        state restores the same depth on wakeup.  The detector sees
        one release now and one acquire on restore — a blocked waiter
        holds nothing."""
        depth = self._get_depth()
        if depth > 0:
            self._tsan.note_release(self)
        self._depth.n = 0
        for _ in range(depth):
            self._lock.release()
        return depth

    def _acquire_restore(self, saved) -> None:
        """Reacquire to the depth saved by :meth:`_release_save`."""
        for _ in range(saved):
            self._lock.acquire()
        self._depth.n = saved
        if saved > 0:
            self._tsan.note_acquire(self)

    def _is_owned(self) -> bool:
        """Condition's ownership probe: held by the calling thread?"""
        return self._get_depth() > 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TsanLock({self.kind}:{self.name})"
