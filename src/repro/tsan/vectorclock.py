"""Vector clocks for the happens-before half of the hybrid detector.

A :class:`VectorClock` maps detector-assigned thread ids (small
monotone ints, see :mod:`repro.tsan.detector`) to logical timestamps.
The representation is a plain dict because the thread population is
tiny (rank threads + engine threads + test threads) and sparse —
FastTrack's epoch optimisation is applied one level up, in the
per-field access records, not here.

Operations follow the standard FastTrack/DJIT+ algebra:

* ``copy``      — snapshot (used when publishing a clock into a lock
  or a message edge).
* ``join``      — component-wise max (acquire / consume side).
* ``increment`` — advance one thread's own component (release /
  publish side, and thread-local step counting).
* ``leq``       — component-wise ``<=``; ``a.leq(b)`` means every
  event in *a* happens-before (or is) the frontier of *b*.
"""

from __future__ import annotations


class VectorClock:
    """A sparse vector clock over detector thread ids."""

    __slots__ = ("_c",)

    def __init__(self, clocks: dict[int, int] | None = None):
        self._c: dict[int, int] = dict(clocks) if clocks else {}

    def copy(self) -> "VectorClock":
        """An independent snapshot (for publishing into a sync object)."""
        return VectorClock(self._c)

    def get(self, tid: int) -> int:
        """Thread *tid*'s component (0 if never seen)."""
        return self._c.get(tid, 0)

    def increment(self, tid: int) -> None:
        """Advance thread *tid*'s own component by one."""
        self._c[tid] = self._c.get(tid, 0) + 1

    def join(self, other: "VectorClock") -> None:
        """Component-wise max with *other*, in place (acquire side)."""
        for tid, t in other._c.items():
            if t > self._c.get(tid, 0):
                self._c[tid] = t

    def leq(self, other: "VectorClock") -> bool:
        """Component-wise ``<=``: every event here is ordered before
        (or at) *other*'s frontier."""
        return all(t <= other._c.get(tid, 0)
                   for tid, t in self._c.items())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(f"t{tid}:{t}"
                          for tid, t in sorted(self._c.items()))
        return f"VC({inner})"


class Epoch:
    """A FastTrack epoch: one (tid, timestamp) pair.

    Represents the common case where a field's whole access history
    is summarised by its last write (or a same-thread read): ordering
    against an epoch is a single component lookup instead of a full
    clock comparison.
    """

    __slots__ = ("tid", "t")

    def __init__(self, tid: int, t: int):
        self.tid = tid
        self.t = t

    def happens_before(self, vc: VectorClock) -> bool:
        """True iff this epoch's event is ordered before *vc*'s frontier."""
        return self.t <= vc.get(self.tid)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"E(t{self.tid}@{self.t})"
