"""MPI-3.1 named constants used across the runtime.

These mirror the constants of the MPI standard that the reproduced
critical paths must honour.  ``PROC_NULL`` in particular is load-bearing
for Section 3.4 of the paper: *every* communication call on the
standard path must branch on it, and the ``isend_npn`` extension exists
precisely to remove that branch.
"""

from __future__ import annotations

from typing import Final

#: Wildcard source rank for receive matching (MPI_ANY_SOURCE).
ANY_SOURCE: Final[int] = -1

#: Wildcard tag for receive matching (MPI_ANY_TAG).
ANY_TAG: Final[int] = -1

#: Null process: communication to it is discarded (MPI_PROC_NULL).
PROC_NULL: Final[int] = -2

#: Returned where the standard leaves a value undefined (MPI_UNDEFINED).
UNDEFINED: Final[int] = -32766

#: Sentinel for an invalid communicator handle (MPI_COMM_NULL).
COMM_NULL: Final[None] = None

#: Upper bound on user tags guaranteed by the standard (MPI_TAG_UB).
TAG_UB: Final[int] = 2**30 - 1

#: Maximum number of predefined communicator handles exposed by the
#: Section 3.3 proposal (``MPI_COMM_1`` .. ``MPI_COMM_<MAX>``).
MAX_PREDEFINED_COMMS: Final[int] = 8

#: Status field value when no wildcard information is available.
STATUS_IGNORE: Final[None] = None


def is_wildcard_source(source: int) -> bool:
    """Return True when *source* is the receive-side source wildcard."""
    return source == ANY_SOURCE


def is_wildcard_tag(tag: int) -> bool:
    """Return True when *tag* is the receive-side tag wildcard."""
    return tag == ANY_TAG
