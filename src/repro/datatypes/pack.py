"""Vectorized pack/unpack engines.

Messages travel through the runtime as contiguous byte ranges.
Packing a ``(buffer, count, datatype)`` triple gathers the true-data
bytes of *count* elements; unpacking scatters them back.  Both paths
are numpy-vectorized: a gather-index array is built once per
``(datatype, count)`` and cached, after which pack/unpack are single
fancy-indexing operations — the idiom the HPC-Python guides prescribe
(vectorize the loop, reuse the index arrays, avoid per-element Python).

The fast path (contiguous datatype) is genuinely zero-copy: ``pack``
returns a read-through ``memoryview`` of the caller's storage unless
``copy=True`` forces the legacy materializing behaviour.  Ownership
discipline for the view (who must materialize it, and when) is what
``repro.bufcheck`` statically verifies; every copy/borrow performed
here reports to :mod:`repro.instrument.copies` so the static census
can be cross-checked at runtime.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Union

import numpy as np

from repro.datatypes.predefined import Datatype
from repro.errors import MPIErrBuffer, MPIErrCount, MPIErrTruncate
from repro.instrument import copies

Buffer = Union[bytes, bytearray, memoryview, np.ndarray]


def as_bytes(buf: Buffer) -> np.ndarray:
    """View any supported buffer as a 1-D uint8 array without copying.

    Raises
    ------
    MPIErrBuffer
        If *buf* does not expose a usable contiguous byte view.
    """
    if isinstance(buf, np.ndarray):
        if not buf.flags.c_contiguous:
            raise MPIErrBuffer("buffer must be C-contiguous")
        return buf.view(np.uint8).reshape(-1)
    if isinstance(buf, (bytes, bytearray, memoryview)):
        return np.frombuffer(buf, dtype=np.uint8)
    raise MPIErrBuffer(f"unsupported buffer type {type(buf).__name__}")


def packed_size(count: int, datatype: Datatype) -> int:
    """Bytes of true data in *count* elements of *datatype*."""
    if count < 0:
        raise MPIErrCount(f"count must be >= 0, got {count}")
    return count * datatype.size


@lru_cache(maxsize=512)
def _gather_indices(datatype: Datatype, count: int) -> np.ndarray:
    """Byte gather indices for *count* elements of *datatype*.

    Built from the per-element offsets broadcast across element
    extents; cached because applications reuse the same (type, count)
    on every timestep.
    """
    per_elem = np.asarray(datatype.typemap.byte_offsets(), dtype=np.intp)
    starts = np.arange(count, dtype=np.intp) * datatype.extent
    return (starts[:, None] + per_elem[None, :]).reshape(-1)


def _required_span(count: int, datatype: Datatype) -> int:
    """Minimum buffer length in bytes to hold *count* elements."""
    if count == 0:
        return 0
    return (count - 1) * datatype.extent + datatype.typemap.ub


Packed = Union[bytes, memoryview]


def pack(buf: Buffer, count: int, datatype: Datatype,
         copy: bool = False) -> Packed:
    """Gather *count* elements of *datatype* from *buf* into a dense
    byte range.

    Contiguous datatypes return a zero-copy ``memoryview`` of *buf*'s
    storage (the caller borrows the application buffer; whoever may
    hold the range past the call must take ownership via
    ``Message.own_data()`` / ``bytes()``) unless ``copy=True``, which
    forces an owned ``bytes`` snapshot — the pre-zero-copy behaviour,
    kept for fault-injected builds and as the before-side of the copy
    benchmarks.  Non-contiguous gathers always materialize.
    """
    if count < 0:
        raise MPIErrCount(f"count must be >= 0, got {count}")
    if count == 0:
        return b""
    raw = as_bytes(buf)
    need = _required_span(count, datatype)
    if raw.size < need:
        raise MPIErrBuffer(
            f"buffer holds {raw.size} bytes, need {need} for "
            f"{count} x {datatype.name}")
    if datatype.contig:
        seg = raw[: count * datatype.size]
        if copy:
            copies.note_copy(seg.size)
            return seg.tobytes()   # bufcheck: ignore[BC504] - copy mode
        copies.note_view(seg.size)
        return seg.data
    idx = _gather_indices(datatype, count)
    gathered = raw[idx]
    copies.note_copy(gathered.size)
    return gathered.tobytes()


def unpack(data: Packed, buf: Buffer, count: int,
           datatype: Datatype) -> int:
    """Scatter dense bytes *data* into *buf* as *count* elements.

    Returns the number of whole elements written (MPI_GET_COUNT
    semantics).  Receiving fewer bytes than ``count*size`` is allowed;
    receiving more raises :class:`MPIErrTruncate`.
    """
    if count < 0:
        raise MPIErrCount(f"count must be >= 0, got {count}")
    full = packed_size(count, datatype)
    if len(data) > full:
        raise MPIErrTruncate(
            f"message of {len(data)} bytes exceeds receive buffer of "
            f"{full} bytes ({count} x {datatype.name})")
    if len(data) % datatype.size:
        raise MPIErrTruncate(
            f"message of {len(data)} bytes is not a whole number of "
            f"{datatype.name} elements")
    nelem = len(data) // datatype.size
    if nelem == 0:
        return 0
    raw = as_bytes(buf)
    if not raw.flags.writeable:
        raise MPIErrBuffer("cannot unpack into a read-only buffer")
    need = _required_span(nelem, datatype)
    if raw.size < need:
        raise MPIErrBuffer(
            f"receive buffer holds {raw.size} bytes, need {need}")
    src = np.frombuffer(data, dtype=np.uint8)
    copies.note_copy(src.size)
    if datatype.contig:
        raw[: len(data)] = src   # the one receive-side scatter copy
    else:
        idx = _gather_indices(datatype, nelem)
        raw[idx] = src
    return nelem
