"""Predefined MPI datatypes.

A :class:`Datatype` knows its size, extent, and (when one exists) its
numpy dtype.  Predefined types are created committed; derived types
(:mod:`repro.datatypes.derived`) must be committed before use, which is
one of the error checks the paper's default build performs.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.datatypes.typemap import TypeSegment, Typemap


class Datatype:
    """An MPI datatype handle.

    Parameters
    ----------
    name:
        MPI-style name, e.g. ``"MPI_DOUBLE"``.
    size:
        Number of bytes of true data per element (sum of segment
        lengths).
    extent:
        Span in bytes from the element's lower bound to its upper
        bound; for predefined types this equals ``size``.
    typemap:
        Flattened byte-segment layout of one element.
    np_dtype:
        Corresponding numpy dtype for predefined types, else None.
    """

    __slots__ = ("name", "size", "extent", "lb", "typemap", "np_dtype",
                 "committed", "predefined", "contig")

    def __init__(self, name: str, size: int, extent: int,
                 typemap: Typemap, np_dtype: Optional[np.dtype] = None,
                 committed: bool = True, predefined: bool = True,
                 lb: int = 0):
        self.name = name
        self.size = size
        self.extent = extent
        self.lb = lb
        self.typemap = typemap
        self.np_dtype = np_dtype
        self.committed = committed
        self.predefined = predefined
        #: True when one element's data occupies [lb, lb+size) densely
        #: and extent == size — the layout the fast path requires.
        self.contig = typemap.is_contiguous() and extent == size and lb == 0

    def commit(self) -> "Datatype":
        """Mark the type ready for use in communication (MPI_TYPE_COMMIT)."""
        self.committed = True
        return self

    def free(self) -> None:
        """Release the handle (MPI_TYPE_FREE).  Predefined types cannot
        be freed."""
        if self.predefined:
            from repro.errors import MPIErrDatatype
            raise MPIErrDatatype(f"cannot free predefined type {self.name}")
        self.committed = False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "predefined" if self.predefined else "derived"
        return (f"Datatype({self.name!r}, size={self.size}, "
                f"extent={self.extent}, {kind})")


def _make(name: str, np_dtype_str: str) -> Datatype:
    dt = np.dtype(np_dtype_str)
    size = dt.itemsize
    return Datatype(name=name, size=size, extent=size,
                    typemap=Typemap((TypeSegment(0, size),)),
                    np_dtype=dt)


BYTE = _make("MPI_BYTE", "u1")
CHAR = _make("MPI_CHAR", "i1")
SHORT = _make("MPI_SHORT", "i2")
INT = _make("MPI_INT", "i4")
LONG = _make("MPI_LONG", "i8")
LONG_LONG = _make("MPI_LONG_LONG", "i8")
UNSIGNED = _make("MPI_UNSIGNED", "u4")
UNSIGNED_LONG = _make("MPI_UNSIGNED_LONG", "u8")
FLOAT = _make("MPI_FLOAT", "f4")
DOUBLE = _make("MPI_DOUBLE", "f8")
INT8 = _make("MPI_INT8_T", "i1")
INT16 = _make("MPI_INT16_T", "i2")
INT32 = _make("MPI_INT32_T", "i4")
INT64 = _make("MPI_INT64_T", "i8")
UINT8 = _make("MPI_UINT8_T", "u1")
UINT16 = _make("MPI_UINT16_T", "u2")
UINT32 = _make("MPI_UINT32_T", "u4")
UINT64 = _make("MPI_UINT64_T", "u8")
FLOAT32 = _make("MPI_FLOAT", "f4")
FLOAT64 = _make("MPI_DOUBLE", "f8")
COMPLEX64 = _make("MPI_C_FLOAT_COMPLEX", "c8")
COMPLEX128 = _make("MPI_C_DOUBLE_COMPLEX", "c16")

#: All distinct predefined handles by name.
PREDEFINED: dict[str, Datatype] = {
    dt.name: dt
    for dt in (BYTE, CHAR, SHORT, INT, LONG, LONG_LONG, UNSIGNED,
               UNSIGNED_LONG, FLOAT, DOUBLE, INT8, INT16, INT32, INT64,
               UINT8, UINT16, UINT32, UINT64, COMPLEX64, COMPLEX128)
}

_NUMPY_TO_PREDEFINED: dict[str, Datatype] = {
    "uint8": UINT8, "int8": INT8, "uint16": UINT16, "int16": INT16,
    "uint32": UINT32, "int32": INT32, "uint64": UINT64, "int64": INT64,
    "float32": FLOAT, "float64": DOUBLE,
    "complex64": COMPLEX64, "complex128": COMPLEX128,
}


def from_numpy_dtype(dtype: np.dtype | str) -> Datatype:
    """Map a numpy dtype to the equivalent predefined MPI datatype.

    This is how the Class-3 interlibrary type-conversion pattern of
    Section 2.2 (LULESH's ``baseType``, Nekbone's switch) appears in
    this library's application proxies.

    Raises
    ------
    KeyError
        If no predefined MPI type corresponds to *dtype*.
    """
    name = np.dtype(dtype).name
    return _NUMPY_TO_PREDEFINED[name]
