"""Datatype usage classes (Section 2.2 of the paper).

The paper surveys 62 applications and buckets their datatype usage:

* **Class 1** — derived datatypes in the critical path (rare; HACC and
  MCB only, and only in setup).  Redundant checks are genuinely needed.
* **Class 2** — predefined datatypes passed as compile-time constants
  (``MPI_DOUBLE`` literally at the call site).  MPI-only link-time
  inlining lets the compiler fold the datatype checks away.
* **Class 3** — predefined datatypes held in a runtime-constant
  variable (LULESH's ``baseType``, Nekbone's switch, QMCPACK/LSMS/
  miniFE templates).  Only *whole-program* link-time inlining can fold
  the checks.

In this reproduction the distinction is carried by how the caller
passes the datatype: a bare :class:`~repro.datatypes.predefined.Datatype`
models Class 2, a :func:`runtime_constant` wrapper models Class 3, and
a derived type is Class 1.  The CH4 MPI layer consults the class plus
the build's :class:`~repro.core.config.IpoScope` to decide whether the
redundant runtime checks execute (and hence charge instructions).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Union

from repro.datatypes.predefined import Datatype


class UsageClass(enum.Enum):
    """How the application supplies the datatype argument."""

    DERIVED = 1          #: Class 1 — derived datatype
    COMPILE_TIME = 2     #: Class 2 — predefined, compile-time constant
    RUNTIME_CONST = 3    #: Class 3 — predefined, runtime constant


@dataclass(frozen=True)
class DatatypeRef:
    """A datatype argument together with its usage class."""

    datatype: Datatype
    usage: UsageClass

    def __post_init__(self):
        if self.usage is UsageClass.DERIVED and self.datatype.predefined:
            raise ValueError("DERIVED usage requires a derived datatype")


def compile_time(datatype: Datatype) -> DatatypeRef:
    """Mark a predefined datatype as a compile-time constant (Class 2)."""
    return DatatypeRef(datatype, UsageClass.COMPILE_TIME
                       if datatype.predefined else UsageClass.DERIVED)


def runtime_constant(datatype: Datatype) -> DatatypeRef:
    """Mark a predefined datatype as a runtime constant (Class 3) —
    the LULESH ``baseType`` pattern."""
    return DatatypeRef(datatype, UsageClass.RUNTIME_CONST
                       if datatype.predefined else UsageClass.DERIVED)


def classify(arg: Union[Datatype, DatatypeRef]) -> DatatypeRef:
    """Normalize a user datatype argument to a classified reference.

    A bare predefined handle models the common Class-2 call site; a
    bare derived handle is Class 1; an explicit :class:`DatatypeRef`
    passes through unchanged.
    """
    if isinstance(arg, DatatypeRef):
        return arg
    if arg.predefined:
        return DatatypeRef(arg, UsageClass.COMPILE_TIME)
    return DatatypeRef(arg, UsageClass.DERIVED)
