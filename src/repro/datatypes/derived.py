"""Derived datatype constructors (MPI_TYPE_*).

These implement the MPI-3.1 type constructors the paper's Section 2.2
survey discusses: HACC and MCB are the Class-1 applications that build
such types (in their setup phase).  All constructors return an
uncommitted :class:`DerivedDatatype`; communication with an
uncommitted type is an error the default build catches.
"""

from __future__ import annotations

from typing import Sequence

from repro.datatypes.predefined import Datatype
from repro.datatypes.typemap import TypeSegment, Typemap
from repro.errors import MPIErrArg, MPIErrDatatype


class DerivedDatatype(Datatype):
    """A user-constructed datatype; starts uncommitted.

    Keeps a reference to its construction recipe (``combiner`` and
    arguments) for introspection, mirroring MPI_TYPE_GET_ENVELOPE.
    """

    __slots__ = ("combiner", "base", "construction_args")

    def __init__(self, name: str, typemap: Typemap, extent: int,
                 combiner: str, base: Datatype | Sequence[Datatype],
                 construction_args: dict, lb: int = 0):
        super().__init__(name=name, size=typemap.size, extent=extent,
                         typemap=typemap, np_dtype=None,
                         committed=False, predefined=False, lb=lb)
        self.combiner = combiner
        self.base = base
        self.construction_args = dict(construction_args)

    def dup(self) -> "DerivedDatatype":
        """MPI_TYPE_DUP: an uncommitted copy of this type."""
        return DerivedDatatype(
            name=self.name, typemap=self.typemap, extent=self.extent,
            combiner="dup", base=self, construction_args={}, lb=self.lb)


def _require_positive(value: int, what: str) -> None:
    if value <= 0:
        raise MPIErrArg(f"{what} must be positive, got {value}")


def _require_committed_or_predefined(base: Datatype) -> None:
    if not (base.predefined or isinstance(base, DerivedDatatype)):
        raise MPIErrDatatype(f"invalid base datatype {base!r}")


def contiguous(count: int, base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_CONTIGUOUS: *count* back-to-back copies of *base*."""
    _require_positive(count, "count")
    _require_committed_or_predefined(base)
    typemap = base.typemap.replicate(count, base.extent)
    return DerivedDatatype(
        name=f"contig({count},{base.name})", typemap=typemap,
        extent=count * base.extent, combiner="contiguous", base=base,
        construction_args={"count": count})


def vector(count: int, blocklength: int, stride: int,
           base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_VECTOR: *count* blocks of *blocklength* elements, block
    starts *stride* elements apart (stride in units of the base extent)."""
    _require_positive(count, "count")
    _require_positive(blocklength, "blocklength")
    if stride == 0 and count > 1:
        raise MPIErrArg("zero stride with count > 1 overlaps blocks")
    return hvector(count, blocklength, stride * base.extent, base)


def hvector(count: int, blocklength: int, stride_bytes: int,
            base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_CREATE_HVECTOR: like :func:`vector` with byte stride.

    Negative strides are normalized so the typemap's lowest byte sits
    at offset 0 (the runtime addresses buffers from their start).
    """
    _require_positive(count, "count")
    _require_positive(blocklength, "blocklength")
    _require_committed_or_predefined(base)
    block = base.typemap.replicate(blocklength, base.extent)
    if stride_bytes >= 0:
        typemap = block.replicate(count, stride_bytes)
    else:
        # Place block k at k*stride (negative), then shift so min = 0.
        shift = -(count - 1) * stride_bytes
        pieces: list[TypeSegment] = []
        for k in range(count):
            pieces.extend(block.shifted(shift + k * stride_bytes).segments)
        typemap = Typemap(pieces)
    return DerivedDatatype(
        name=f"hvector({count},{blocklength},{stride_bytes},{base.name})",
        typemap=typemap, extent=typemap.ub,
        combiner="hvector", base=base,
        construction_args={"count": count, "blocklength": blocklength,
                           "stride_bytes": stride_bytes})


def indexed(blocklengths: Sequence[int], displacements: Sequence[int],
            base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_INDEXED: blocks of varying length at varying element
    displacements (in units of the base extent)."""
    disp_bytes = [d * base.extent for d in displacements]
    return hindexed(blocklengths, disp_bytes, base)


def hindexed(blocklengths: Sequence[int], displacements_bytes: Sequence[int],
             base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_CREATE_HINDEXED: like :func:`indexed` with byte
    displacements."""
    if len(blocklengths) != len(displacements_bytes):
        raise MPIErrArg("blocklengths and displacements length mismatch")
    if not blocklengths:
        raise MPIErrArg("indexed type needs at least one block")
    _require_committed_or_predefined(base)
    pieces: list[TypeSegment] = []
    for blen, disp in zip(blocklengths, displacements_bytes):
        _require_positive(blen, "blocklength")
        if disp < 0:
            raise MPIErrArg("negative displacements are not supported; "
                            "address buffers from their start")
        block = base.typemap.replicate(blen, base.extent).shifted(disp)
        pieces.extend(block.segments)
    typemap = Typemap(pieces)
    return DerivedDatatype(
        name=f"hindexed({len(blocklengths)} blocks,{base.name})",
        typemap=typemap, extent=typemap.ub, combiner="hindexed", base=base,
        construction_args={"blocklengths": list(blocklengths),
                           "displacements_bytes": list(displacements_bytes)})


def indexed_block(blocklength: int, displacements: Sequence[int],
                  base: Datatype) -> DerivedDatatype:
    """MPI_TYPE_CREATE_INDEXED_BLOCK: equal-length blocks at element
    displacements."""
    return indexed([blocklength] * len(displacements), displacements, base)


def struct(blocklengths: Sequence[int], displacements_bytes: Sequence[int],
           types: Sequence[Datatype]) -> DerivedDatatype:
    """MPI_TYPE_CREATE_STRUCT: heterogeneous blocks of distinct types."""
    if not (len(blocklengths) == len(displacements_bytes) == len(types)):
        raise MPIErrArg("struct argument arrays must have equal length")
    if not types:
        raise MPIErrArg("struct type needs at least one block")
    pieces: list[TypeSegment] = []
    for blen, disp, base in zip(blocklengths, displacements_bytes, types):
        _require_positive(blen, "blocklength")
        _require_committed_or_predefined(base)
        block = base.typemap.replicate(blen, base.extent).shifted(disp)
        pieces.extend(block.segments)
    typemap = Typemap(pieces)
    return DerivedDatatype(
        name=f"struct({len(types)} blocks)", typemap=typemap,
        extent=typemap.ub, combiner="struct", base=list(types),
        construction_args={"blocklengths": list(blocklengths),
                           "displacements_bytes": list(displacements_bytes)})


def subarray(sizes: Sequence[int], subsizes: Sequence[int],
             starts: Sequence[int], base: Datatype,
             order: str = "C") -> DerivedDatatype:
    """MPI_TYPE_CREATE_SUBARRAY: an n-dimensional sub-block of an
    n-dimensional array — the halo-exchange workhorse.

    Parameters
    ----------
    sizes / subsizes / starts:
        Full-array shape, sub-block shape, and sub-block origin, all in
        elements of *base*.
    order:
        ``"C"`` (row-major) or ``"F"`` (column-major).
    """
    ndim = len(sizes)
    if not (len(subsizes) == len(starts) == ndim) or ndim == 0:
        raise MPIErrArg("sizes/subsizes/starts must be equal, nonzero length")
    for d in range(ndim):
        _require_positive(sizes[d], "size")
        _require_positive(subsizes[d], "subsize")
        if starts[d] < 0 or starts[d] + subsizes[d] > sizes[d]:
            raise MPIErrArg(
                f"dim {d}: sub-block [{starts[d]}, {starts[d]+subsizes[d]})"
                f" exceeds array size {sizes[d]}")
    if order not in ("C", "F"):
        raise MPIErrArg(f"order must be 'C' or 'F', got {order!r}")
    _require_committed_or_predefined(base)

    if order == "F":
        sizes = list(reversed(sizes))
        subsizes = list(reversed(subsizes))
        starts = list(reversed(starts))

    # Row-major strides in elements.
    strides = [1] * ndim
    for d in range(ndim - 2, -1, -1):
        strides[d] = strides[d + 1] * sizes[d + 1]

    # Enumerate the element offsets of the sub-block, merging the
    # innermost (contiguous) dimension into block runs.
    run_len = subsizes[-1]
    outer_dims = ndim - 1
    offsets: list[int] = []

    def walk(dim: int, element_offset: int) -> None:
        if dim == outer_dims:
            offsets.append(element_offset + starts[-1])
            return
        base_off = element_offset + starts[dim] * strides[dim]
        for i in range(subsizes[dim]):
            walk(dim + 1, base_off + i * strides[dim])

    walk(0, 0)

    ext = base.extent
    pieces: list[TypeSegment] = []
    for off in offsets:
        block = base.typemap.replicate(run_len, ext).shifted(off * ext)
        pieces.extend(block.segments)
    typemap = Typemap(pieces)
    full_elems = 1
    for s in sizes:
        full_elems *= s
    return DerivedDatatype(
        name=f"subarray({list(subsizes)} of {list(sizes)},{base.name})",
        typemap=typemap, extent=full_elems * ext, combiner="subarray",
        base=base,
        construction_args={"sizes": list(sizes), "subsizes": list(subsizes),
                           "starts": list(starts), "order": order})


def resized(base: Datatype, lb: int, extent: int) -> DerivedDatatype:
    """MPI_TYPE_CREATE_RESIZED: same typemap, adjusted lb/extent —
    used to interleave elements tighter or looser than their span."""
    if extent <= 0:
        raise MPIErrArg(f"extent must be positive, got {extent}")
    _require_committed_or_predefined(base)
    return DerivedDatatype(
        name=f"resized({base.name},lb={lb},extent={extent})",
        typemap=base.typemap, extent=extent, combiner="resized", base=base,
        construction_args={"lb": lb, "extent": extent}, lb=lb)
