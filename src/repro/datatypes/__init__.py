"""MPI datatype engine: predefined and derived datatypes.

Implements the subset of MPI-3.1 datatype machinery the paper's
critical-path analysis exercises:

* predefined types (``MPI_DOUBLE``, ``MPI_INT``, ...) with sizes and
  numpy correspondence (:mod:`repro.datatypes.predefined`);
* derived-type constructors — contiguous, vector, hvector, indexed,
  hindexed, struct, subarray, resized — with commit semantics and
  typemap flattening (:mod:`repro.datatypes.derived`,
  :mod:`repro.datatypes.typemap`);
* vectorized pack/unpack engines (:mod:`repro.datatypes.pack`); and
* the Section 2.2 usage-class taxonomy — Class 1 (derived in the
  critical path), Class 2 (predefined, compile-time constant), Class 3
  (predefined, runtime constant) — that governs whether link-time
  inlining can remove the redundant datatype checks
  (:mod:`repro.datatypes.usage`).
"""

from repro.datatypes.predefined import (
    Datatype,
    PREDEFINED,
    BYTE,
    CHAR,
    SHORT,
    INT,
    LONG,
    LONG_LONG,
    UNSIGNED,
    UNSIGNED_LONG,
    FLOAT,
    DOUBLE,
    INT8,
    INT16,
    INT32,
    INT64,
    UINT8,
    UINT16,
    UINT32,
    UINT64,
    FLOAT32,
    FLOAT64,
    COMPLEX64,
    COMPLEX128,
    from_numpy_dtype,
)
from repro.datatypes.typemap import TypeSegment, Typemap
from repro.datatypes.derived import (
    DerivedDatatype,
    contiguous,
    vector,
    hvector,
    indexed,
    hindexed,
    indexed_block,
    struct,
    subarray,
    resized,
)
from repro.datatypes.pack import pack, unpack, packed_size, as_bytes
from repro.datatypes.usage import (
    UsageClass,
    DatatypeRef,
    compile_time,
    runtime_constant,
    classify,
)

__all__ = [
    "Datatype",
    "DerivedDatatype",
    "PREDEFINED",
    "TypeSegment",
    "Typemap",
    "contiguous",
    "vector",
    "hvector",
    "indexed",
    "hindexed",
    "indexed_block",
    "struct",
    "subarray",
    "resized",
    "pack",
    "unpack",
    "packed_size",
    "as_bytes",
    "UsageClass",
    "DatatypeRef",
    "compile_time",
    "runtime_constant",
    "classify",
    "from_numpy_dtype",
    "BYTE", "CHAR", "SHORT", "INT", "LONG", "LONG_LONG",
    "UNSIGNED", "UNSIGNED_LONG", "FLOAT", "DOUBLE",
    "INT8", "INT16", "INT32", "INT64",
    "UINT8", "UINT16", "UINT32", "UINT64",
    "FLOAT32", "FLOAT64", "COMPLEX64", "COMPLEX128",
]
