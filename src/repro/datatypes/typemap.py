"""Flattened typemaps: the byte-segment layout of one datatype element.

MPI defines a datatype by its *typemap* — a sequence of (basic type,
displacement) pairs.  For movement purposes only the byte coverage
matters, so we flatten to sorted, coalesced ``(offset, length)``
segments.  The segment list is what the pack engine turns into numpy
index arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


@dataclass(frozen=True, order=True)
class TypeSegment:
    """A half-open byte range ``[offset, offset+length)`` of true data
    within one element extent."""

    offset: int
    length: int

    def __post_init__(self):
        if self.length <= 0:
            raise ValueError(f"segment length must be positive, got {self.length}")
        if self.offset < 0:
            raise ValueError(f"segment offset must be >= 0, got {self.offset}")

    @property
    def end(self) -> int:
        """One past the last byte of the segment."""
        return self.offset + self.length

    def shifted(self, delta: int) -> "TypeSegment":
        """The same segment displaced by *delta* bytes."""
        return TypeSegment(self.offset + delta, self.length)


class Typemap:
    """An immutable, sorted, coalesced sequence of :class:`TypeSegment`.

    Overlapping input segments are rejected: an MPI typemap never maps
    two basic components onto the same byte of a single element.
    """

    __slots__ = ("segments",)

    def __init__(self, segments: Iterable[TypeSegment]):
        ordered = sorted(segments)
        coalesced: list[TypeSegment] = []
        for seg in ordered:
            if coalesced and seg.offset < coalesced[-1].end:
                raise ValueError(
                    f"overlapping typemap segments: {coalesced[-1]} and {seg}")
            if coalesced and seg.offset == coalesced[-1].end:
                prev = coalesced.pop()
                coalesced.append(TypeSegment(prev.offset,
                                             prev.length + seg.length))
            else:
                coalesced.append(seg)
        if not coalesced:
            raise ValueError("typemap must contain at least one segment")
        self.segments: tuple[TypeSegment, ...] = tuple(coalesced)

    def __iter__(self) -> Iterator[TypeSegment]:
        return iter(self.segments)

    def __len__(self) -> int:
        return len(self.segments)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Typemap) and self.segments == other.segments

    def __hash__(self) -> int:
        return hash(self.segments)

    @property
    def size(self) -> int:
        """Total bytes of true data in one element."""
        return sum(s.length for s in self.segments)

    @property
    def lb(self) -> int:
        """Lower bound: offset of the first byte of true data."""
        return self.segments[0].offset

    @property
    def ub(self) -> int:
        """Upper bound: one past the last byte of true data."""
        return self.segments[-1].end

    @property
    def span(self) -> int:
        """Bytes from lower to upper bound (>= size; == size iff dense)."""
        return self.ub - self.lb

    def is_contiguous(self) -> bool:
        """True when the element is one dense segment starting at 0."""
        return len(self.segments) == 1 and self.segments[0].offset == 0

    def replicate(self, count: int, stride_bytes: int) -> "Typemap":
        """Typemap of *count* copies of this map placed every
        *stride_bytes* bytes — the core of the vector constructor."""
        if count <= 0:
            raise ValueError(f"count must be positive, got {count}")
        out: list[TypeSegment] = []
        for k in range(count):
            delta = k * stride_bytes
            out.extend(seg.shifted(delta) for seg in self.segments)
        return Typemap(out)

    def shifted(self, delta: int) -> "Typemap":
        """The whole map displaced by *delta* bytes."""
        return Typemap(seg.shifted(delta) for seg in self.segments)

    def merged(self, other: "Typemap") -> "Typemap":
        """Union of two non-overlapping maps (struct constructor)."""
        return Typemap((*self.segments, *other.segments))

    def byte_offsets(self) -> Sequence[int]:
        """Every true-data byte offset of one element, ascending.

        Used by the pack engine to build gather indices; O(size).
        """
        out: list[int] = []
        for seg in self.segments:
            out.extend(range(seg.offset, seg.end))
        return out

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        inner = ", ".join(f"({s.offset},{s.length})" for s in self.segments)
        return f"Typemap[{inner}]"
