"""AST index and name-based call graph over the repro's own source.

The audit never imports the code it analyzes — it parses every file
under the given root and builds:

* a function/method index (with ``@fastpath`` markers detected
  syntactically, so the analysis works on any tree, importable or not);
* a class table with base-class names, giving an inheritance *family*
  (ancestors + descendants) for ``self.method()`` resolution;
* an over-approximate call-edge resolver: ``self.x()`` prefers the
  caller's class family, ``obj.x()`` and ``x()`` fall back to every
  known function of that name.  Over-approximation is safe for every
  audit rule: reachability checks only get quieter with extra edges,
  never wrongly loud.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional, Sequence

from repro.analysis_common import iter_python_files


def _rel_name(path: Path) -> str:
    """Stable tree-relative name: start at the ``repro`` package dir."""
    parts = path.as_posix().split("/")
    if "repro" in parts:
        return "/".join(parts[parts.index("repro"):])
    return path.name


def _is_fastpath_marked(node: ast.AST) -> bool:
    for deco in getattr(node, "decorator_list", []):
        target = deco.func if isinstance(deco, ast.Call) else deco
        if isinstance(target, ast.Name) and target.id == "fastpath":
            return True
        if isinstance(target, ast.Attribute) and target.attr == "fastpath":
            return True
    return False


def _is_staticmethod(node: ast.AST) -> bool:
    for deco in getattr(node, "decorator_list", []):
        if isinstance(deco, ast.Name) and deco.id in ("staticmethod",
                                                      "classmethod"):
            return True
    return False


@dataclass
class ModuleInfo:
    """One parsed source file plus its module-level constant tables."""

    path: Path
    rel: str
    tree: ast.Module
    lines: list[str]
    #: ``_MAND = Category.MANDATORY`` style aliases -> member name.
    category_aliases: dict[str, str] = field(default_factory=dict)
    #: Module-level integer constants (``AM_ORIGIN_OVERHEAD = 34``).
    int_constants: dict[str, int] = field(default_factory=dict)


@dataclass
class FunctionInfo:
    """One function or method definition in the indexed tree."""

    module: ModuleInfo
    cls: Optional[str]
    name: str
    node: ast.FunctionDef
    fastpath: bool
    staticmethod: bool

    @property
    def short(self) -> str:
        """``Class.method`` or bare function name."""
        return f"{self.cls}.{self.name}" if self.cls else self.name

    @property
    def qualname(self) -> str:
        """Stable provenance id: ``repro/core/ch4.py:CH4Device.isend``."""
        return f"{self.module.rel}:{self.short}"


@dataclass
class ClassInfo:
    """One class definition: base names and own methods."""

    name: str
    module: ModuleInfo
    bases: tuple[str, ...]
    methods: dict[str, FunctionInfo] = field(default_factory=dict)


class CodeIndex:
    """Parsed view of a source tree with call-edge resolution."""

    def __init__(self) -> None:
        self.modules: list[ModuleInfo] = []
        self.functions: dict[str, FunctionInfo] = {}
        self.by_name: dict[str, list[FunctionInfo]] = {}
        self.classes: dict[str, list[ClassInfo]] = {}
        self._family_cache: dict[str, frozenset[str]] = {}

    # -- construction ------------------------------------------------------

    @classmethod
    def build(cls, paths: Sequence[str | Path]) -> "CodeIndex":
        """Parse every ``*.py`` under *paths* into one index."""
        index = cls()
        for path in iter_python_files([str(p) for p in paths]):
            index.add_file(Path(path))
        return index

    def add_file(self, path: Path) -> None:
        """Parse one file into the index (syntax errors are skipped —
        the sanitizer/compileall tiers own syntax checking)."""
        try:
            source = path.read_text(encoding="utf-8")
            tree = ast.parse(source)
        except (OSError, SyntaxError):
            return
        mod = ModuleInfo(path=path, rel=_rel_name(path), tree=tree,
                         lines=source.splitlines())
        self.modules.append(mod)
        for stmt in tree.body:
            if isinstance(stmt, ast.Assign) and len(stmt.targets) == 1 \
                    and isinstance(stmt.targets[0], ast.Name):
                name = stmt.targets[0].id
                value = stmt.value
                if (isinstance(value, ast.Attribute)
                        and isinstance(value.value, ast.Name)
                        and value.value.id == "Category"):
                    mod.category_aliases[name] = value.attr
                elif isinstance(value, ast.Constant) \
                        and isinstance(value.value, int):
                    mod.int_constants[name] = value.value
            elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._add_function(mod, None, stmt)
            elif isinstance(stmt, ast.ClassDef):
                self._add_class(mod, stmt)

    def _add_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        bases = tuple(b.id if isinstance(b, ast.Name) else b.attr
                      for b in node.bases
                      if isinstance(b, (ast.Name, ast.Attribute)))
        info = ClassInfo(name=node.name, module=mod, bases=bases)
        self.classes.setdefault(node.name, []).append(info)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._add_function(
                    mod, node.name, stmt)

    def _add_function(self, mod: ModuleInfo, cls: Optional[str],
                      node: ast.FunctionDef) -> FunctionInfo:
        info = FunctionInfo(module=mod, cls=cls, name=node.name, node=node,
                            fastpath=_is_fastpath_marked(node),
                            staticmethod=_is_staticmethod(node))
        self.functions[info.qualname] = info
        self.by_name.setdefault(node.name, []).append(info)
        return info

    # -- queries -----------------------------------------------------------

    def fastpath_functions(self) -> list[FunctionInfo]:
        """Every function carrying the ``@fastpath`` marker."""
        return [f for f in self.functions.values() if f.fastpath]

    def find_method(self, cls: str, name: str) -> Optional[FunctionInfo]:
        """Locate ``cls.name`` anywhere in the tree (first match)."""
        for info in self.classes.get(cls, []):
            if name in info.methods:
                return info.methods[name]
        return None

    def class_family(self, cls: str) -> frozenset[str]:
        """*cls* plus its (transitive, name-matched) ancestors and
        descendants."""
        cached = self._family_cache.get(cls)
        if cached is not None:
            return cached
        family = {cls}
        # Ancestors.
        frontier = [cls]
        while frontier:
            current = frontier.pop()
            for info in self.classes.get(current, []):
                for base in info.bases:
                    if base not in family:
                        family.add(base)
                        frontier.append(base)
        # Descendants (one fixpoint sweep per new member).
        changed = True
        while changed:
            changed = False
            for name, infos in self.classes.items():
                if name in family:
                    continue
                if any(base in family for info in infos
                       for base in info.bases):
                    family.add(name)
                    changed = True
        result = frozenset(family)
        self._family_cache[cls] = result
        return result

    def resolve_call(self, func_expr: ast.expr,
                     caller: FunctionInfo) -> list[FunctionInfo]:
        """Over-approximate callee set for a ``Call.func`` expression."""
        if isinstance(func_expr, ast.Name):
            # Plain call: module-level functions of that name anywhere.
            return [f for f in self.by_name.get(func_expr.id, [])
                    if f.cls is None]
        if isinstance(func_expr, ast.Attribute):
            name = func_expr.attr
            candidates = self.by_name.get(name, [])
            if (isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in ("self", "cls")
                    and caller.cls is not None):
                family = self.class_family(caller.cls)
                in_family = [f for f in candidates if f.cls in family]
                if in_family:
                    return in_family
            return candidates
        return []

    def walk_body(self, func: FunctionInfo) -> Iterable[ast.AST]:
        """Walk a function body, *excluding* nested function/class
        definitions (closures run off the audited path)."""
        stack: list[ast.AST] = list(func.node.body)
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))
