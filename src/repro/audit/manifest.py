"""What the audit checks against: entry points, registry, path specs.

The manifest binds the static analysis to the calibrated cost model:

* **entry points** — the MPI-layer methods the paper measures (isend /
  irecv / put / get, the Section 3 extension variants, persistent
  starts, and the §3.5 bulk completion);
* **registry** — every cost the runtime may legitimately charge: the
  flattened :func:`repro.instrument.costs.cost_model_entries` plus the
  few auxiliary constants charged outside the model (rank-translation
  table lookups, AM-fallback overheads);
* **path specs** — for each published build/extension variant, the
  exact set of registry keys its default critical path charges, with
  the Figure 2 / Table 1 total it must sum to (asserted at import).
"""

from __future__ import annotations

from dataclasses import dataclass
from types import MappingProxyType
from typing import Mapping, Optional

from repro.instrument.categories import Category, Subsystem
from repro.instrument.costs import COSTS, CostEntry, cost_model_entries
from repro.netmod.base import AM_HANDLER_OVERHEAD, AM_ORIGIN_OVERHEAD
from repro.runtime.ranktrans import DirectTableTranslation

#: Costs charged outside the CostModel dataclass, keyed like model
#: entries.  The audit treats them as first-class registry entries.
AUX_ENTRIES: Mapping[str, CostEntry] = MappingProxyType({
    "translation.lookup_instructions": CostEntry(
        "translation.lookup_instructions", Category.MANDATORY,
        Subsystem.RANK_TRANSLATION,
        DirectTableTranslation.lookup_instructions),
    "am_origin_overhead": CostEntry(
        "am_origin_overhead", Category.MANDATORY, Subsystem.DESCRIPTOR,
        AM_ORIGIN_OVERHEAD),
    "am_handler_overhead": CostEntry(
        "am_handler_overhead", Category.MANDATORY, Subsystem.DESCRIPTOR,
        AM_HANDLER_OVERHEAD),
})

#: Module-level constant names that resolve to auxiliary registry keys.
AUX_NAME_KEYS: Mapping[str, str] = MappingProxyType({
    "AM_ORIGIN_OVERHEAD": "am_origin_overhead",
    "AM_HANDLER_OVERHEAD": "am_handler_overhead",
})

#: Attribute names that resolve to auxiliary registry keys regardless
#: of their receiver (``comm.translation.lookup_instructions``).
AUX_ATTR_KEYS: Mapping[str, str] = MappingProxyType({
    "lookup_instructions": "translation.lookup_instructions",
})

#: (class, method) pairs the call-graph is rooted at.
ENTRY_POINTS: tuple[tuple[str, str], ...] = (
    ("Communicator", "Isend"),
    ("Communicator", "Issend"),
    ("Communicator", "Irecv"),
    ("Communicator", "isend"),
    ("Communicator", "issend"),
    ("Communicator", "irecv"),
    ("Communicator", "isend_global"),
    ("Communicator", "isend_npn"),
    ("Communicator", "isend_noreq"),
    ("Communicator", "isend_nomatch"),
    ("Communicator", "isend_all_opts"),
    ("Communicator", "irecv_nomatch"),
    ("Communicator", "irecv_all_opts"),
    ("Communicator", "Send_init"),
    ("Communicator", "Recv_init"),
    ("Communicator", "waitall_noreq"),
    ("Window", "put"),
    ("Window", "get"),
    ("Window", "accumulate"),
    ("Window", "get_accumulate"),
    ("Window", "fetch_and_op"),
    ("Window", "compare_and_swap"),
    ("Window", "put_virtual_addr"),
    ("Window", "get_virtual_addr"),
    ("Window", "put_all_opts"),
    ("PersistentSend", "_launch"),
    ("PersistentRecv", "_launch"),
    ("RankProgress", "run_once"),
)


@dataclass(frozen=True)
class PathSpec:
    """One published build/extension variant of one operation."""

    name: str                     #: e.g. ``"ch4_isend_default"``
    op: str                       #: ``"isend"`` or ``"put"``
    entry: tuple[str, str]        #: (class, method) call-graph root
    keys: frozenset[str]          #: registry keys its default path charges
    expected_total: int           #: the paper's published aggregate


def _keys(registry: Mapping[str, CostEntry], *prefixes: str,
          names: tuple[str, ...] = ()) -> frozenset[str]:
    picked = set(names)
    for prefix in prefixes:
        picked.update(k for k in registry if k.startswith(prefix + "."))
    return frozenset(picked)


def build_paths(registry: Optional[Mapping[str, CostEntry]] = None,
                ) -> tuple[PathSpec, ...]:
    """The calibrated path table (totals asserted against COSTS)."""
    reg = registry if registry is not None else cost_model_entries()

    isend_err = _keys(reg, "isend_error")
    put_err = _keys(reg, "put_error")
    isend_layer = isend_err | {"isend_thread_check", "isend_function_call"}
    put_layer = put_err | {"put_thread_check", "put_function_call"}
    isend_red = _keys(reg, "isend_redundant")
    put_red = _keys(reg, "put_redundant")
    # Default-path mandatory keys: zero-cost subsystems (no request /
    # match bits for PUT, no VM addressing for ISEND) are excluded —
    # the code genuinely never charges them.
    isend_man = frozenset(
        f"isend_mandatory.{s}" for s in
        ("rank_translation", "object_lookup", "proc_null",
         "request_mgmt", "match_bits", "descriptor"))
    put_man = frozenset(
        f"put_mandatory.{s}" for s in
        ("rank_translation", "vm_addressing", "object_lookup",
         "proc_null", "descriptor"))

    isend_default = isend_layer | isend_red | isend_man
    put_default = put_layer | put_red | put_man

    isend_entry = ("Communicator", "Isend")
    put_entry = ("Window", "put")

    specs = (
        PathSpec("ch4_isend_default", "isend", isend_entry, isend_default,
                 COSTS.expected_ch4_default("isend")),
        PathSpec("ch4_put_default", "put", put_entry, put_default,
                 COSTS.expected_ch4_default("put")),
        PathSpec("ch4_isend_noerr", "isend", isend_entry,
                 isend_default - isend_err, COSTS.expected_ch4_noerr("isend")),
        PathSpec("ch4_put_noerr", "put", put_entry,
                 put_default - put_err, COSTS.expected_ch4_noerr("put")),
        PathSpec("ch4_isend_nothread", "isend", isend_entry,
                 isend_default - isend_err - {"isend_thread_check"},
                 COSTS.expected_ch4_nothread("isend")),
        PathSpec("ch4_put_nothread", "put", put_entry,
                 put_default - put_err - {"put_thread_check"},
                 COSTS.expected_ch4_nothread("put")),
        PathSpec("ch4_isend_ipo", "isend", isend_entry, isend_man,
                 COSTS.expected_ch4_ipo("isend")),
        PathSpec("ch4_put_ipo", "put", put_entry, put_man,
                 COSTS.expected_ch4_ipo("put")),
        PathSpec("isend_all_opts", "isend",
                 ("Communicator", "isend_all_opts"),
                 frozenset({"global_rank_lookup", "predefined_object_lookup",
                            "npn_proc_null", "noreq_counter_inc",
                            "nomatch_bits_static", "fused_descriptor_isend"}),
                 COSTS.expected_all_opts("isend")),
        PathSpec("put_all_opts", "put", ("Window", "put_all_opts"),
                 frozenset({"global_rank_lookup", "virtual_addr_lookup",
                            "predefined_object_lookup", "npn_proc_null",
                            "fused_descriptor_put"}),
                 COSTS.expected_all_opts("put")),
        PathSpec("ch3_isend", "isend", isend_entry,
                 isend_layer | _keys(reg, "ch3_isend_steps"),
                 COSTS.expected_ch3("isend")),
        PathSpec("ch3_put", "put", put_entry,
                 put_layer | _keys(reg, "ch3_put_steps"),
                 COSTS.expected_ch3("put")),
    )
    for spec in specs:
        total = sum(reg[k].cost for k in spec.keys)
        assert total == spec.expected_total, \
            f"{spec.name}: key sum {total} != published {spec.expected_total}"
    return specs


@dataclass(frozen=True)
class AuditManifest:
    """Everything the analyses need, bundled (tests build tiny ones)."""

    registry: Mapping[str, CostEntry]
    entry_points: tuple[tuple[str, str], ...]
    paths: tuple[PathSpec, ...]
    aux_name_keys: Mapping[str, str]
    aux_attr_keys: Mapping[str, str]


def default_manifest() -> AuditManifest:
    """The manifest for auditing the repro tree itself."""
    registry = dict(cost_model_entries())
    registry.update(AUX_ENTRIES)
    return AuditManifest(registry=MappingProxyType(registry),
                         entry_points=ENTRY_POINTS,
                         paths=build_paths(registry),
                         aux_name_keys=AUX_NAME_KEYS,
                         aux_attr_keys=AUX_ATTR_KEYS)
