"""Static self-audit of the repro's fast path.

``python -m repro.audit src/repro`` checks the runtime's *own source*
against the calibrated cost model, without executing it:

* **charge provenance** (FP101–FP104) — an AST call graph rooted at
  the MPI entry points (isend/irecv/put/get, the Section 3 extension
  variants, persistent starts) maps every reachable ``proc.charge``
  site to a registry entry of
  :func:`repro.instrument.costs.cost_model_entries`, proves every
  non-zero entry reachable, and flags ``@fastpath`` work that charges
  nothing;
* **fast-path purity** (FP201–FP205) — allocations, per-iteration
  lookups, locks, try blocks, and logging inside ``@fastpath`` bodies;
* **lockset discipline** (FP301–FP302) — inconsistent attribute
  locksets and lock-order cycles in ``repro/runtime``.

``--json AUDIT.json`` writes the machine-readable snapshot whose
per-path totals the tier-1 calibration test diffs against Table 1 /
Figure 2.  Shares diagnostics machinery (and the per-line pragma
idiom, here ``# audit: allow[FPxxx]``) with :mod:`repro.sanitize` via
:mod:`repro.analysis_common`.
"""

from repro.audit.callgraph import CodeIndex
from repro.audit.cli import build_snapshot, main, run_audit
from repro.audit.lockset import scan_lockset
from repro.audit.manifest import AuditManifest, default_manifest
from repro.audit.provenance import ProvenanceAnalyzer, run_provenance
from repro.audit.purity import scan_purity
from repro.audit.rules import FP_RULES, render_fp_catalog

__all__ = [
    "AuditManifest",
    "CodeIndex",
    "FP_RULES",
    "ProvenanceAnalyzer",
    "build_snapshot",
    "default_manifest",
    "main",
    "render_fp_catalog",
    "run_audit",
    "run_provenance",
    "scan_lockset",
    "scan_purity",
]
