"""FP305 — progress-hook guard discipline.

The background progress engine (:mod:`repro.progress`) hooks into the
measured fast paths through exactly one attribute: ``proc.progress``
(``world.progress`` at build time), which is ``None`` on every build
without ``BuildConfig.progress``.  The calibration guarantee —
``progress=None`` builds charge byte-identical Table 1 / Figure 2
totals — holds only if every hook site outside ``repro/progress/``
*tests* that attribute before touching it.

The rule (same shape as FP304 for ``proc.faults``): any function
outside ``repro/progress/`` that loads a ``.progress`` attribute must
also contain an ``is None`` / ``is not None`` test of a ``.progress``
expression (or of a local name bound from one).  Stores (the bindings
in ``Proc.__init__`` / ``World.__init__``) are exempt, as is the
guard comparison itself.  Suppress a deliberate unguarded use with
``# audit: allow[FP305]``.
"""

from __future__ import annotations

import ast

from repro.analysis_common import Finding, suppressed
from repro.audit.callgraph import CodeIndex, FunctionInfo
from repro.audit.rules import PRAGMA_MARKER

#: The hook attribute every progress-engine interception flows through.
_HOOK_ATTR = "progress"


def _progress_aliases(index: CodeIndex, func: FunctionInfo) -> set[str]:
    """Local names assigned from a ``.progress`` load in *func*."""
    aliases: set[str] = set()
    for node in index.walk_body(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == _HOOK_ATTR:
            aliases.add(node.targets[0].id)
    return aliases


def _is_progress_expr(expr: ast.expr, aliases: set[str]) -> bool:
    return ((isinstance(expr, ast.Attribute) and expr.attr == _HOOK_ATTR)
            or (isinstance(expr, ast.Name) and expr.id in aliases))


def _has_none_guard(index: CodeIndex, func: FunctionInfo,
                    aliases: set[str]) -> bool:
    """Does *func* compare a ``.progress`` expression against None?"""
    for node in index.walk_body(func):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        if any(_is_progress_expr(s, aliases) for s in sides) and any(
                isinstance(s, ast.Constant) and s.value is None
                for s in sides):
            return True
    return False


def _guard_compare_lines(index: CodeIndex, func: FunctionInfo,
                         aliases: set[str]) -> set[int]:
    """Lines whose only ``.progress`` load is the guard test itself."""
    lines: set[int] = set()
    for node in index.walk_body(func):
        if isinstance(node, ast.Compare):
            for side in (node.left, *node.comparators):
                if _is_progress_expr(side, aliases):
                    lines.add(side.lineno)
    return lines


def scan_progressguard(index: CodeIndex,
                       path_filter: str = "repro/",
                       exempt_prefix: str = "repro/progress/"
                       ) -> list[Finding]:
    """Run FP305 over every function in *index* outside
    ``repro/progress/``."""
    findings: list[Finding] = []
    for func in index.functions.values():
        rel = func.module.rel
        if path_filter and not rel.startswith(path_filter):
            continue
        if exempt_prefix and rel.startswith(exempt_prefix):
            continue
        aliases = _progress_aliases(index, func)
        loads = [node for node in index.walk_body(func)
                 if isinstance(node, ast.Attribute)
                 and node.attr == _HOOK_ATTR
                 and isinstance(node.ctx, ast.Load)]
        if not loads:
            continue
        if _has_none_guard(index, func, aliases):
            continue
        guard_lines = _guard_compare_lines(index, func, aliases)
        for node in loads:
            if node.lineno in guard_lines:
                continue
            if suppressed(func.module.lines, node.lineno, "FP305",
                          PRAGMA_MARKER):
                continue
            findings.append(Finding(
                "FP305", str(func.module.path), node.lineno,
                f"{func.short} uses .progress without an is-None guard: "
                "progress hooks outside repro/progress/ must test "
                "'progress is None' so plain builds stay byte-identical"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings
