"""Parameterized is-None-guard discipline (FP304-FP307).

Four opt-in subsystems hook into the measured fast paths through
exactly one attribute each, which is ``None`` on every build that does
not enable them:

* ``proc.faults``   — fault tolerance (:mod:`repro.ft`), FP304;
* ``proc.progress`` — background progress engine
  (:mod:`repro.progress`), FP305;
* ``proc.tsan``     — hybrid race detector (:mod:`repro.tsan`), FP306;
* ``proc.detector`` — heartbeat failure detector
  (:mod:`repro.ft.detector`), FP307.

The calibration guarantee — disabled builds charge byte-identical
Table 1 / Figure 2 totals — holds only if every hook site outside the
subsystem's own package *tests* that attribute before touching it.
The shared rule: any function outside the exempt package that loads
the hook attribute must also contain an ``is None`` / ``is not None``
test of a hook expression (or of a local name bound from one).
Stores (the bindings in ``Proc.__init__``) are exempt, as is the
guard comparison itself.  Suppress a deliberate unguarded use with
``# audit: allow[FPxxx]``.

Each subsystem is one :class:`GuardSpec`; the per-rule ``scan_*``
entry points the CLI and tests call are thin partial applications of
:func:`scan_noneguard` over :data:`GUARD_SPECS`.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis_common import Finding, suppressed
from repro.audit.callgraph import CodeIndex, FunctionInfo
from repro.audit.rules import PRAGMA_MARKER


@dataclass(frozen=True)
class GuardSpec:
    """One hook attribute's guard-discipline parameters."""

    #: Rule id the checker reports (``FP304``...``FP307``).
    rule_id: str
    #: The hook attribute name every interception flows through.
    hook_attr: str
    #: Package whose own code may use the hook bare (``repro/ft/``...).
    exempt_prefix: str
    #: Human name for the subsystem, used in the finding message.
    subsystem: str


#: The registered guard disciplines, keyed by rule id.
GUARD_SPECS: dict[str, GuardSpec] = {spec.rule_id: spec for spec in (
    GuardSpec("FP304", "faults", "repro/ft/", "fault"),
    GuardSpec("FP305", "progress", "repro/progress/", "progress"),
    GuardSpec("FP306", "tsan", "repro/tsan/", "tsan"),
    GuardSpec("FP307", "detector", "repro/ft/", "failure-detector"),
)}


def _hook_aliases(index: CodeIndex, func: FunctionInfo,
                  hook_attr: str) -> set[str]:
    """Local names assigned from a hook-attribute load in *func*."""
    aliases: set[str] = set()
    for node in index.walk_body(func):
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name) \
                and isinstance(node.value, ast.Attribute) \
                and node.value.attr == hook_attr:
            aliases.add(node.targets[0].id)
    return aliases


def _is_hook_expr(expr: ast.expr, hook_attr: str,
                  aliases: set[str]) -> bool:
    """Is *expr* the hook attribute or a local alias of it?"""
    return ((isinstance(expr, ast.Attribute) and expr.attr == hook_attr)
            or (isinstance(expr, ast.Name) and expr.id in aliases))


def _has_none_guard(index: CodeIndex, func: FunctionInfo,
                    hook_attr: str, aliases: set[str]) -> bool:
    """Does *func* compare a hook expression against None?"""
    for node in index.walk_body(func):
        if not isinstance(node, ast.Compare):
            continue
        if not all(isinstance(op, (ast.Is, ast.IsNot)) for op in node.ops):
            continue
        sides = [node.left, *node.comparators]
        if any(_is_hook_expr(s, hook_attr, aliases) for s in sides) \
                and any(isinstance(s, ast.Constant) and s.value is None
                        for s in sides):
            return True
    return False


def _guard_compare_lines(index: CodeIndex, func: FunctionInfo,
                         hook_attr: str, aliases: set[str]) -> set[int]:
    """Lines whose only hook load is the guard test itself."""
    lines: set[int] = set()
    for node in index.walk_body(func):
        if isinstance(node, ast.Compare):
            for side in (node.left, *node.comparators):
                if _is_hook_expr(side, hook_attr, aliases):
                    lines.add(side.lineno)
    return lines


def scan_noneguard(index: CodeIndex, spec: GuardSpec,
                   path_filter: str = "repro/",
                   exempt_prefix: str | None = None) -> list[Finding]:
    """Run *spec*'s guard rule over every function in *index*.

    *exempt_prefix* overrides the spec's own (tests pass ``""`` along
    with ``path_filter=""`` to scan bare fixture files).
    """
    if exempt_prefix is None:
        exempt_prefix = spec.exempt_prefix
    findings: list[Finding] = []
    for func in index.functions.values():
        rel = func.module.rel
        if path_filter and not rel.startswith(path_filter):
            continue
        if exempt_prefix and rel.startswith(exempt_prefix):
            continue
        aliases = _hook_aliases(index, func, spec.hook_attr)
        loads = [node for node in index.walk_body(func)
                 if isinstance(node, ast.Attribute)
                 and node.attr == spec.hook_attr
                 and isinstance(node.ctx, ast.Load)]
        if not loads:
            continue
        if _has_none_guard(index, func, spec.hook_attr, aliases):
            continue
        guard_lines = _guard_compare_lines(index, func, spec.hook_attr,
                                           aliases)
        for node in loads:
            if node.lineno in guard_lines:
                continue
            if suppressed(func.module.lines, node.lineno, spec.rule_id,
                          PRAGMA_MARKER):
                continue
            findings.append(Finding(
                spec.rule_id, str(func.module.path), node.lineno,
                f"{func.short} uses .{spec.hook_attr} without an "
                f"is-None guard: {spec.subsystem} hooks outside "
                f"{spec.exempt_prefix} must test "
                f"'{spec.hook_attr} is None' so plain builds stay "
                "byte-identical"))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings


def scan_ftguard(index: CodeIndex, path_filter: str = "repro/",
                 exempt_prefix: str | None = None) -> list[Finding]:
    """FP304 over *index* (fault hooks outside ``repro/ft/``)."""
    return scan_noneguard(index, GUARD_SPECS["FP304"], path_filter,
                          exempt_prefix)


def scan_progressguard(index: CodeIndex, path_filter: str = "repro/",
                       exempt_prefix: str | None = None) -> list[Finding]:
    """FP305 over *index* (progress hooks outside ``repro/progress/``)."""
    return scan_noneguard(index, GUARD_SPECS["FP305"], path_filter,
                          exempt_prefix)


def scan_tsanguard(index: CodeIndex, path_filter: str = "repro/",
                   exempt_prefix: str | None = None) -> list[Finding]:
    """FP306 over *index* (tsan hooks outside ``repro/tsan/``)."""
    return scan_noneguard(index, GUARD_SPECS["FP306"], path_filter,
                          exempt_prefix)


def scan_detectorguard(index: CodeIndex, path_filter: str = "repro/",
                       exempt_prefix: str | None = None) -> list[Finding]:
    """FP307 over *index* (detector hooks outside ``repro/ft/``)."""
    return scan_noneguard(index, GUARD_SPECS["FP307"], path_filter,
                          exempt_prefix)
