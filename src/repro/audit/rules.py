"""Rule catalog for the fast-path self-audit (``FP1xx``–``FP3xx``).

Four analysis families over the repro's own source:

* ``FP10x`` — charge provenance: every ``proc.charge`` site reachable
  from an MPI entry point must attribute a documented category and a
  registered cost-model entry, and every non-zero cost-model entry
  must be reachable from the critical path.
* ``FP20x`` — fast-path purity: functions marked ``@fastpath`` must
  not hide expensive host-Python work (allocations, repeated lookups
  in loops, locks, exception setup, logging) behind the accounting.
* ``FP30x`` — lockset discipline for ``runtime/*.py``: shared
  attributes are either always or never written under their lock, and
  lock acquisition order is acyclic.
* ``FP304`` — fault-hook guard discipline: every ``.faults`` hook site
  outside ``repro/ft/`` tests the attribute against None, so builds
  without a ``fault_plan`` charge byte-identical calibrated totals.
* ``FP305`` — progress-hook guard discipline: every ``.progress`` hook
  site outside ``repro/progress/`` tests the attribute against None,
  so builds without a progress engine charge byte-identical
  calibrated totals.
* ``FP306`` — tsan-hook guard discipline: every ``.tsan`` hook site
  outside ``repro/tsan/`` tests the attribute against None, so builds
  without the race detector charge byte-identical calibrated totals.
* ``FP307`` — detector-hook guard discipline: every ``.detector`` hook
  site outside ``repro/ft/`` tests the attribute against None, so
  builds without the heartbeat failure detector charge byte-identical
  calibrated totals.

FP304-FP307 share one parameterized checker
(:mod:`repro.audit.noneguard`).  Suppress a finding on its line with
``# audit: allow[FPxxx]``.
"""

from __future__ import annotations

from repro.analysis_common import Rule, render_catalog

#: Pragma marker understood by every audit rule.
PRAGMA_MARKER = "# audit: allow"

#: The audit rule catalog, keyed by rule id.
FP_RULES: dict[str, Rule] = {r.rule_id: r for r in (
    Rule("FP101", "charge with an unknown category: the first argument "
         "of proc.charge does not resolve to a Category member",
         "proc.charge(some_value, 5)",
         "charge Category.<MEMBER> (or a module alias bound to one)"),
    Rule("FP102", "charge with an unresolvable cost: the amount does "
         "not trace back to a registered cost-model entry",
         "proc.charge(Category.MANDATORY, 7)",
         "charge a field of repro.instrument.costs.COSTS (or a "
         "registered auxiliary constant) so calibration stays auditable"),
    Rule("FP103", "unreachable cost-model entry: a non-zero registry "
         "entry is never charged on any path from an MPI entry point "
         "(or an expected per-path key has no reachable charge site)",
         "adding a COSTS field no code ever charges",
         "charge the entry on its code path, set it to zero, or remove "
         "it from the model"),
    Rule("FP104", "uncharged fast-path work: a @fastpath function "
         "performs observable work (request/packet/delivery calls) but "
         "neither it nor any callee charges instructions",
         "def _null_send(...): request = pool.acquire(); "
         "request.complete()",
         "charge the modeled cost of the work, or document why the "
         "path is free with '# audit: allow[FP104]'"),
    Rule("FP201", "allocation on the fast path: list/dict/set display, "
         "comprehension, or builtin container constructor in a "
         "@fastpath body",
         "pending = [r for r in reqs if not r.done]",
         "hoist the allocation out of the fast path or reuse a "
         "preallocated object (pools exist for exactly this)"),
    Rule("FP202", "repeated lookup in a fast-path loop: a multi-level "
         "attribute chain or subscript re-evaluated every iteration",
         "for x in items: self.proc.counter.charge(...)",
         "hoist the lookup into a local before the loop "
         "(charge = self.proc.charge)"),
    Rule("FP203", "lock acquisition on the fast path",
         "with self._lock: ...   # inside a @fastpath function",
         "restructure so the fast path stays lock-free, or document "
         "the required critical section with '# audit: allow[FP203]'"),
    Rule("FP204", "exception setup on the fast path: a try statement "
         "in a @fastpath body",
         "try: issue(op) finally: log_time()",
         "move the handler off the critical path, or document it with "
         "'# audit: allow[FP204]'"),
    Rule("FP205", "logging/printing on the fast path",
         "print(f'sending {nbytes}')",
         "remove it, or route diagnostics through the (off-path) "
         "timeline/trace machinery"),
    Rule("FP301", "inconsistent lockset: a runtime attribute is "
         "written under a lock in one place and without it in another",
         "complete() guards self.error with self._lock; _reset() "
         "writes it bare",
         "hold the same lock at every write site (reads on the owning "
         "thread may stay bare, but writes must agree)"),
    Rule("FP302", "lock-order cycle: two locks are acquired in "
         "opposite nesting orders on some pair of paths",
         "A: with x: with y   ...   B: with y: with x",
         "pick one global acquisition order and restructure the "
         "offending path"),
    Rule("FP303", "cross-VCI lock nesting: a second VCI-family lock "
         "(any <base>.lock) is acquired — or a function acquiring one "
         "is called — while one is already held",
         "with self.vcis[0].lock: with self.vcis[1].lock: ...",
         "restructure to hold at most one VCI lock at a time (the "
         "multi-VCI discipline in runtime/vci.py shows how wildcard "
         "scans stay single-lock)"),
    Rule("FP304", "unguarded fault hook: a function outside repro/ft/ "
         "loads a .faults attribute without an 'is None' / 'is not "
         "None' test of it (or of a local bound from it)",
         "proc.faults.check_self()   # with no guard in the function",
         "guard the hook ('if proc.faults is not None: ...') so "
         "fault_plan=None builds never enter fault-tolerance code, or "
         "document the site with '# audit: allow[FP304]'"),
    Rule("FP305", "unguarded progress hook: a function outside "
         "repro/progress/ loads a .progress attribute without an "
         "'is None' / 'is not None' test of it (or of a local bound "
         "from it)",
         "proc.progress.park_completion(...)   # with no guard",
         "guard the hook ('if proc.progress is not None: ...') so "
         "progress=None builds never enter engine code, or document "
         "the site with '# audit: allow[FP305]'"),
    Rule("FP306", "unguarded tsan hook: a function outside repro/tsan/ "
         "loads a .tsan attribute without an 'is None' / 'is not None' "
         "test of it (or of a local bound from it)",
         "proc.tsan.note_access(key)   # with no guard",
         "guard the hook ('if proc.tsan is not None: ...') so "
         "tsan=False builds never enter detector code, or document "
         "the site with '# audit: allow[FP306]'"),
    Rule("FP307", "unguarded failure-detector hook: a function outside "
         "repro/ft/ loads a .detector attribute without an "
         "'is None' / 'is not None' test of it (or of a local bound "
         "from it)",
         "proc.detector.beat()   # with no guard",
         "guard the hook ('if proc.detector is not None: ...') so "
         "detector=None builds never enter heartbeat code, or document "
         "the site with '# audit: allow[FP307]'"),
)}


def render_fp_catalog() -> str:
    """The ``--rules`` listing for ``python -m repro.audit``."""
    return render_catalog(FP_RULES)
