"""Lockset and lock-order lint for the runtime core (FP301–FP302).

Scope: classes defined in modules whose tree-relative path starts with
``repro/runtime/`` (the audit CLI applies the filter; the functions
here accept any module list so fixtures can exercise the rules).

FP301 — *inconsistent lockset*: for each class, every ``self.<attr>``
write site is labeled with the set of ``self.<lock>`` locks held.
Lock-held status propagates intra-class: a helper only ever called
with a lock held inherits that lock (fixpoint over call sites, using
the intersection across sites).  An attribute written both with and
without a given lock — outside ``__init__`` — is flagged at the bare
write site.  Attributes never written under any lock are ignored
(single-owner state is a legitimate design, e.g. the request pool).

FP302 — *lock-order cycles*: nesting ``with self.a: ... with self.b:``
adds a directed edge (Class.a -> Class.b); a lock-held call into a
method (of any class, name-resolved) that acquires its own lock adds a
one-level interprocedural edge.  Any cycle in the resulting digraph is
reported once per participating edge set.

FP303 — *cross-VCI lock nesting*: VCI-family locks are every
``<base>.lock`` attribute (``self.lock``, ``vci.lock``,
``self.vcis[i].lock`` — the per-VCI critical-section locks).  The
multi-VCI discipline (``repro/runtime/vci.py``) allows at most ONE
family lock held at a time: two ranks' injector threads may acquire
shard locks in opposite orders, so nesting deadlocks.  Flagged:
acquiring a family lock with a textually different base while one is
held (same base is reentrant and allowed), and calling — one level,
name-resolved — a function that itself acquires a family lock while
one is held.  The wildcard registry lock is deliberately NOT named
``lock`` so its documented shard-then-registry nesting stays outside
the family.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Optional

from repro.analysis_common import Finding, suppressed
from repro.audit.callgraph import ClassInfo, CodeIndex, FunctionInfo
from repro.audit.rules import PRAGMA_MARKER

#: Method names treated as in-place mutations of ``self.<attr>``.
MUTATOR_CALLS = frozenset({
    "append", "appendleft", "clear", "pop", "popleft", "remove", "add",
    "update", "setdefault", "extend", "insert", "discard", "set",
})

#: Lock-constructor names recognized in ``__init__``.
LOCK_CTORS = frozenset({"Lock", "RLock", "Condition", "Semaphore",
                        "BoundedSemaphore"})


def _lock_attrs(cls: ClassInfo) -> frozenset[str]:
    """Self-attributes holding locks: assigned a Lock/RLock/Condition/
    Semaphore constructor result in ``__init__``."""
    locks: set[str] = set()
    init = cls.methods.get("__init__")
    if init is not None:
        for node in ast.walk(init.node):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Attribute) \
                        and isinstance(target.value, ast.Name) \
                        and target.value.id == "self":
                    value = node.value
                    ctor = None
                    if isinstance(value, ast.Call):
                        fn = value.func
                        ctor = (fn.attr if isinstance(fn, ast.Attribute)
                                else fn.id if isinstance(fn, ast.Name)
                                else None)
                    if ctor in LOCK_CTORS:
                        locks.add(target.attr)
    return frozenset(locks)


def _self_attr(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) \
            and node.value.id == "self":
        return node.attr
    return None


@dataclass
class _Write:
    attr: str
    line: int
    held: frozenset[str]
    method: FunctionInfo


@dataclass
class _MethodFacts:
    func: FunctionInfo
    writes: list[_Write] = field(default_factory=list)
    #: (callee-name, held-locks, line, receiver-is-self)
    calls: list[tuple[str, frozenset[str], int, bool]] = field(
        default_factory=list)
    #: locks this method itself acquires at top level of its body
    acquires: set[str] = field(default_factory=set)


class _MethodScanner(ast.NodeVisitor):
    """Collect writes/calls of one method with the held-lock set."""

    def __init__(self, func: FunctionInfo, locks: frozenset[str]):
        self.func = func
        self.locks = locks
        self.held: tuple[str, ...] = ()
        self.facts = _MethodFacts(func=func)

    def run(self) -> _MethodFacts:
        for stmt in self.func.node.body:
            self.visit(stmt)
        return self.facts

    # -- structure ---------------------------------------------------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs: separate (unaudited) execution context

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks:
                acquired.append(attr)
                self.facts.acquires.add(attr)
        self.held = self.held + tuple(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.held = self.held[:len(self.held) - len(acquired)]

    visit_AsyncWith = visit_With

    # -- writes ------------------------------------------------------------

    def _note_write(self, target: ast.expr, line: int) -> None:
        attr = _self_attr(target)
        if attr is not None and attr not in self.locks:
            self.facts.writes.append(_Write(
                attr=attr, line=line, held=frozenset(self.held),
                method=self.func))

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if isinstance(target, ast.Tuple):
                for elt in target.elts:
                    self._note_write(elt, node.lineno)
            else:
                self._note_write(target, node.lineno)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._note_write(node.target, node.lineno)
        self.generic_visit(node)

    # -- calls -------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        fn = node.func
        if isinstance(fn, ast.Attribute):
            # self.attr.append(...) counts as writing self.attr.
            owner = _self_attr(fn.value)
            if owner is not None and fn.attr in MUTATOR_CALLS \
                    and owner not in self.locks:
                self.facts.writes.append(_Write(
                    attr=owner, line=node.lineno,
                    held=frozenset(self.held), method=self.func))
            recv_is_self = (isinstance(fn.value, ast.Name)
                            and fn.value.id == "self")
            self.facts.calls.append((fn.attr, frozenset(self.held),
                                     node.lineno, recv_is_self))
        elif isinstance(fn, ast.Name):
            self.facts.calls.append((fn.id, frozenset(self.held),
                                     node.lineno, False))
        self.generic_visit(node)


def _class_facts(cls: ClassInfo, locks: frozenset[str],
                 ) -> dict[str, _MethodFacts]:
    return {name: _MethodScanner(func, locks).run()
            for name, func in cls.methods.items()}


def _propagate_held(facts: dict[str, _MethodFacts]) -> dict[str, frozenset[str]]:
    """Locks guaranteed held on entry to each method: the intersection
    of held-sets at every intra-class ``self.m()`` call site (fixpoint;
    methods never called intra-class get the empty set — they are
    external entry points)."""
    entry: dict[str, frozenset[str]] = {name: frozenset()
                                        for name in facts}
    sites: dict[str, list[tuple[str, frozenset[str]]]] = {
        name: [] for name in facts}
    for caller, mf in facts.items():
        for callee, held, _line, recv_is_self in mf.calls:
            if recv_is_self and callee in facts:
                sites[callee].append((caller, held))
    changed = True
    while changed:
        changed = False
        for name, call_sites in sites.items():
            if not call_sites:
                continue
            candidate: Optional[frozenset[str]] = None
            for caller, held in call_sites:
                effective = held | entry[caller]
                candidate = (effective if candidate is None
                             else candidate & effective)
            candidate = candidate or frozenset()
            if candidate != entry[name]:
                entry[name] = candidate
                changed = True
    return entry


def scan_lockset(index: CodeIndex,
                 path_filter: str = "repro/runtime/") -> list[Finding]:
    """Run FP301 + FP302 over classes in modules matching *path_filter*."""
    findings: list[Finding] = []
    lock_graph: dict[tuple[str, str], set[tuple[str, str]]] = {}
    edge_lines: dict[tuple[tuple[str, str], tuple[str, str]],
                     tuple[FunctionInfo, int]] = {}
    acquires_by_class: dict[str, set[str]] = {}
    all_facts: list[tuple[ClassInfo, dict[str, _MethodFacts],
                          dict[str, frozenset[str]]]] = []

    for name, infos in sorted(index.classes.items()):
        for cls in infos:
            if path_filter and not cls.module.rel.startswith(path_filter):
                continue
            locks = _lock_attrs(cls)
            if not locks:
                continue
            facts = _class_facts(cls, locks)
            entry_locks = _propagate_held(facts)
            all_facts.append((cls, facts, entry_locks))
            acquires_by_class.setdefault(cls.name, set()).update(
                lock for mf in facts.values() for lock in mf.acquires)

    # FP301 — per (class, attr): guarded somewhere, bare elsewhere.
    for cls, facts, entry_locks in all_facts:
        guarded: dict[str, set[str]] = {}
        for name, mf in facts.items():
            for write in mf.writes:
                held = write.held | entry_locks[name]
                if held:
                    guarded.setdefault(write.attr, set()).update(held)
        for name, mf in facts.items():
            if name == "__init__":
                continue
            for write in mf.writes:
                held = write.held | entry_locks[name]
                if write.attr in guarded and not held:
                    if suppressed(cls.module.lines, write.line, "FP301",
                                  PRAGMA_MARKER):
                        continue
                    locks_txt = "/".join(
                        f"self.{lock}"
                        for lock in sorted(guarded[write.attr]))
                    findings.append(Finding(
                        "FP301", str(cls.module.path), write.line,
                        f"{cls.name}.{name} writes self.{write.attr} "
                        f"without {locks_txt}, which guards the same "
                        "attribute elsewhere in the class"))

    # FP302 — build the lock-order digraph.
    for cls, facts, entry_locks in all_facts:
        for name, mf in facts.items():
            base = entry_locks[name]
            # Direct nesting inside this method.
            _collect_nesting_edges(cls, facts[name].func, base,
                                   lock_graph, edge_lines)
            # One-level interprocedural edge: lock-held call into a
            # method (any class) that itself acquires a lock.
            for callee, held, line, _recv_self in mf.calls:
                held = held | base
                if not held:
                    continue
                for target in index.by_name.get(callee, []):
                    if target.cls is None:
                        continue
                    for t_lock in acquires_by_class.get(target.cls, ()):
                        for h_lock in held:
                            src = (cls.name, h_lock)
                            dst = (target.cls, t_lock)
                            if src != dst:
                                lock_graph.setdefault(src, set()).add(dst)
                                edge_lines.setdefault(
                                    (src, dst), (facts[name].func, line))

    findings.extend(_report_cycles(lock_graph, edge_lines))
    findings.extend(_scan_vci_nesting(index, path_filter))
    findings.sort(key=lambda f: (f.path, f.line, f.rule_id))
    return findings


# ---------------------------------------------------------------------------
# FP303 — cross-VCI lock nesting
# ---------------------------------------------------------------------------

def _family_base(expr: ast.expr) -> Optional[str]:
    """The VCI-family lock base: a ``<base>.lock`` attribute returns
    the unparsed base text (its identity); anything else — bare names,
    other attribute names — is outside the family."""
    if isinstance(expr, ast.Attribute) and expr.attr == "lock":
        return ast.unparse(expr.value)
    return None


def _acquires_family_lock(index: CodeIndex, func: FunctionInfo) -> bool:
    for node in index.walk_body(func):
        if isinstance(node, (ast.With, ast.AsyncWith)):
            if any(_family_base(item.context_expr) is not None
                   for item in node.items):
                return True
    return False


class _VCINestingScanner(ast.NodeVisitor):
    """Track the held VCI-family lock base through one function body,
    flagging different-base nesting and lock-held calls to family
    acquirers.  Same held-stack discipline as :class:`_MethodScanner`;
    nested defs are separate execution contexts and skipped."""

    def __init__(self, index: CodeIndex, func: FunctionInfo,
                 acquirers: set[int], findings: list[Finding]):
        self.index = index
        self.func = func
        self.acquirers = acquirers
        self.findings = findings
        self.held: tuple[str, ...] = ()

    def run(self) -> None:
        for stmt in self.func.node.body:
            self.visit(stmt)

    def _qualname(self) -> str:
        return (f"{self.func.cls}.{self.func.name}" if self.func.cls
                else self.func.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        return  # nested defs: separate (unaudited) execution context

    visit_AsyncFunctionDef = visit_FunctionDef

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        return

    def visit_With(self, node: ast.With) -> None:
        acquired: list[str] = []
        for item in node.items:
            self.visit(item.context_expr)  # calls inside the expr
            base = _family_base(item.context_expr)
            if base is None:
                continue
            others = [h for h in self.held + tuple(acquired) if h != base]
            if others and not suppressed(
                    self.func.module.lines, node.lineno, "FP303",
                    PRAGMA_MARKER):
                self.findings.append(Finding(
                    "FP303", str(self.func.module.path), node.lineno,
                    f"{self._qualname()} acquires {base}.lock while "
                    f"holding {others[0]}.lock — at most one VCI-family "
                    "lock may be held (cross-VCI nesting deadlocks "
                    "against opposite-order injectors)"))
            acquired.append(base)
        self.held = self.held + tuple(acquired)
        for stmt in node.body:
            self.visit(stmt)
        if acquired:
            self.held = self.held[:len(self.held) - len(acquired)]

    visit_AsyncWith = visit_With

    def visit_Call(self, node: ast.Call) -> None:
        if self.held:
            fn = node.func
            callee = (fn.attr if isinstance(fn, ast.Attribute)
                      else fn.id if isinstance(fn, ast.Name) else None)
            if callee is not None and any(
                    id(t) in self.acquirers
                    for t in self.index.by_name.get(callee, [])):
                if not suppressed(self.func.module.lines, node.lineno,
                                  "FP303", PRAGMA_MARKER):
                    self.findings.append(Finding(
                        "FP303", str(self.func.module.path), node.lineno,
                        f"{self._qualname()} calls {callee}() — which "
                        "acquires a VCI-family lock — while holding "
                        f"{self.held[-1]}.lock"))
        self.generic_visit(node)


def _scan_vci_nesting(index: CodeIndex, path_filter: str) -> list[Finding]:
    """FP303 over every function in modules matching *path_filter*.

    Acquirer resolution (for the one-level interprocedural check) is
    computed over the whole index so a filtered caller reaching an
    unfiltered acquirer is still caught."""
    acquirers = {id(f) for f in index.functions.values()
                 if _acquires_family_lock(index, f)}
    findings: list[Finding] = []
    for func in index.functions.values():
        if path_filter and not func.module.rel.startswith(path_filter):
            continue
        _VCINestingScanner(index, func, acquirers, findings).run()
    return findings


def _collect_nesting_edges(cls: ClassInfo, func: FunctionInfo,
                           base: frozenset[str], graph, edge_lines) -> None:
    locks = _lock_attrs(cls)

    def walk(stmts, held: tuple[str, ...]) -> None:
        for stmt in stmts:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                continue
            inner_held = held
            if isinstance(stmt, (ast.With, ast.AsyncWith)):
                acquired = [attr for item in stmt.items
                            if (attr := _self_attr(item.context_expr))
                            is not None and attr in locks]
                for new in acquired:
                    for old in held:
                        src, dst = (cls.name, old), (cls.name, new)
                        if src != dst:
                            graph.setdefault(src, set()).add(dst)
                            edge_lines.setdefault((src, dst),
                                                  (func, stmt.lineno))
                inner_held = held + tuple(acquired)
            for child_block in (getattr(stmt, "body", None),
                                getattr(stmt, "orelse", None),
                                getattr(stmt, "finalbody", None)):
                if child_block:
                    walk(child_block, inner_held)
            for handler in getattr(stmt, "handlers", []) or []:
                walk(handler.body, inner_held)

    walk(func.node.body, tuple(base))


def _report_cycles(graph, edge_lines) -> list[Finding]:
    findings: list[Finding] = []
    seen_cycles: set[frozenset] = set()
    for start in sorted(graph):
        stack = [(start, (start,))]
        while stack:
            node, path = stack.pop()
            for succ in sorted(graph.get(node, ())):
                if succ == path[0] and len(path) > 1:
                    cycle = frozenset(path)
                    if cycle in seen_cycles:
                        continue
                    seen_cycles.add(cycle)
                    func, line = edge_lines.get(
                        (node, succ), (None, 0))
                    order = " -> ".join(f"{c}.{a}" for c, a in
                                        path + (succ,))
                    findings.append(Finding(
                        "FP302",
                        str(func.module.path) if func else "<lock-graph>",
                        line,
                        f"lock-order cycle: {order}"))
                elif succ not in path and len(path) < 6:
                    stack.append((succ, path + (succ,)))
    return findings
