"""CLI and snapshot builder: ``python -m repro.audit src/repro``.

Runs all three analysis families (charge provenance, fast-path purity,
runtime lockset) over the given tree, prints a report, and exits 1 on
any unsuppressed finding.  ``--json AUDIT.json`` additionally writes
the machine-readable snapshot the calibration test diffs:

* per published build/extension path: the exact registry keys its
  critical path charges, per-category subtotals, and the Table 1 /
  Figure 2 total;
* per registry key: the (stable, line-number-free) provenance of every
  reachable charge site;
* the finding counts by rule.
"""

from __future__ import annotations

import argparse
import json
from typing import Mapping, Optional, Sequence

from repro.analysis_common import Finding, Report, iter_python_files
from repro.audit.callgraph import CodeIndex
from repro.audit.lockset import scan_lockset
from repro.audit.manifest import AuditManifest, default_manifest
from repro.audit.noneguard import (scan_detectorguard, scan_ftguard,
                                   scan_progressguard, scan_tsanguard)
from repro.audit.provenance import EntryResult, run_provenance
from repro.audit.purity import scan_purity
from repro.audit.rules import render_fp_catalog


def run_audit(paths: Sequence[str],
              manifest: Optional[AuditManifest] = None,
              ) -> tuple[Report, dict]:
    """Audit *paths*; returns (report, AUDIT.json snapshot dict)."""
    manifest = manifest if manifest is not None else default_manifest()
    files = iter_python_files(list(paths))
    index = CodeIndex.build(files)

    findings: list[Finding] = []
    prov_findings, results = run_provenance(index, manifest)
    findings.extend(prov_findings)
    findings.extend(scan_purity(index))
    findings.extend(scan_lockset(index))
    findings.extend(scan_ftguard(index))
    findings.extend(scan_progressguard(index))
    findings.extend(scan_tsanguard(index))
    findings.extend(scan_detectorguard(index))

    report = Report(diagnostics=findings, files_checked=len(index.modules))
    snapshot = build_snapshot(manifest, results, report)
    return report, snapshot


def build_snapshot(manifest: AuditManifest,
                   results: Mapping[str, EntryResult],
                   report: Report) -> dict:
    """The deterministic AUDIT.json payload."""
    paths: dict[str, dict] = {}
    for spec in manifest.paths:
        by_category: dict[str, int] = {}
        for key in spec.keys:
            entry = manifest.registry[key]
            name = entry.category.value
            by_category[name] = by_category.get(name, 0) + entry.cost
        paths[spec.name] = {
            "op": spec.op,
            "entry": f"{spec.entry[0]}.{spec.entry[1]}",
            "keys": {k: manifest.registry[k].cost for k in sorted(spec.keys)},
            "by_category": dict(sorted(by_category.items())),
            "total": sum(manifest.registry[k].cost for k in spec.keys),
        }

    site_sets: dict[str, set[str]] = {}
    for result in results.values():
        for key, sites in result.reachable_keys().items():
            site_sets.setdefault(key, set()).update(sites)
    provenance = {k: sorted(v) for k, v in sorted(site_sets.items())}

    return {
        "version": 1,
        "paths": dict(sorted(paths.items())),
        "registry": {
            "entries": len(manifest.registry),
            "zero_cost_keys": sorted(
                k for k, e in manifest.registry.items() if e.cost == 0),
        },
        "provenance": provenance,
        "findings": {
            "count": len(report.diagnostics),
            "by_rule": dict(sorted(report.counts_by_rule().items())),
        },
    }


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.audit",
        description="Static fast-path self-audit of the repro runtime "
                    "(rules FP101-FP307; suppress per line with "
                    "'# audit: allow[FPxxx]').  Exit status: 0 clean, "
                    "1 findings, 2 usage error.")
    parser.add_argument(
        "paths", nargs="*", metavar="PATH",
        help="source files or directories to audit (typically src/repro)")
    parser.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the machine-readable AUDIT.json snapshot to FILE")
    parser.add_argument(
        "--rules", action="store_true",
        help="print the audit rule catalog and exit")
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.rules:
        print(render_fp_catalog())
        return 0
    if not args.paths:
        parser.error("no paths given (or use --rules)")
    report, snapshot = run_audit(args.paths)
    print(report.render())
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"snapshot written to {args.json}")
    return report.exit_code()
