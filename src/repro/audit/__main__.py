"""Module entry point: ``python -m repro.audit <paths>``."""

import sys

from repro.audit.cli import main

sys.exit(main())
